// Anatomy of a GEA attack (paper Figs. 1 and 4).
//
// Builds two small firmware programs, disassembles them, extracts their
// CFGs, prints both labelings, then GEA-combines them and shows how the
// shared-entry/shared-exit merge perturbs every label — the property
// Soteria's detector keys on.
//
//   ./examples/gea_attack [seed]
#include <cstdio>
#include <cstdlib>

#include "cfg/extractor.h"
#include "cfg/gea.h"
#include "cfg/labeling.h"
#include "dataset/family_profiles.h"
#include "isa/codegen.h"
#include "isa/isa.h"

namespace {

void print_labeling(const soteria::cfg::Cfg& cfg, const char* name) {
  using namespace soteria;
  const auto dbl = cfg::label_nodes(cfg, cfg::LabelingMethod::kDensity);
  const auto lbl = cfg::label_nodes(cfg, cfg::LabelingMethod::kLevel);
  std::printf("%s: %zu blocks, %zu edges, entry block %zu\n", name,
              cfg.node_count(), cfg.edge_count(), cfg.entry());
  std::printf("  node:  ");
  for (std::size_t v = 0; v < std::min<std::size_t>(cfg.node_count(), 12);
       ++v) {
    std::printf("%4zu", v);
  }
  std::printf("%s\n", cfg.node_count() > 12 ? " ..." : "");
  std::printf("  DBL:   ");
  for (std::size_t v = 0; v < std::min<std::size_t>(cfg.node_count(), 12);
       ++v) {
    std::printf("%4zu", dbl[v]);
  }
  std::printf("%s\n", cfg.node_count() > 12 ? " ..." : "");
  std::printf("  LBL:   ");
  for (std::size_t v = 0; v < std::min<std::size_t>(cfg.node_count(), 12);
       ++v) {
    std::printf("%4zu", lbl[v]);
  }
  std::printf("%s\n", cfg.node_count() > 12 ? " ..." : "");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace soteria;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  math::Rng rng(seed);

  // A malicious sample (Mirai-flavoured) and a benign target.
  auto mirai_profile = dataset::profile_for(dataset::Family::kMirai);
  mirai_profile.max_functions = 3;
  mirai_profile.max_constructs = 3;
  const auto malware_binary = isa::generate_binary(mirai_profile, rng);

  auto benign_profile = dataset::profile_for(dataset::Family::kBenign);
  benign_profile.max_functions = 3;
  benign_profile.max_constructs = 3;
  const auto benign_binary = isa::generate_binary(benign_profile, rng);

  std::printf("malware binary: %zu bytes\n", malware_binary.size());
  const auto instructions = isa::disassemble(malware_binary);
  std::printf("first instructions:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(instructions.size(), 8);
       ++i) {
    std::printf("  %3zu: %s\n", i,
                isa::to_string(instructions[i], i).c_str());
  }

  const cfg::Cfg malware_cfg = cfg::extract(malware_binary);
  const cfg::Cfg benign_cfg = cfg::extract(benign_binary);
  std::printf("\n--- original sample (Fig. 1a / Fig. 4a,c) ---\n");
  print_labeling(malware_cfg, "malware CFG");
  std::printf("\n--- injection target (Fig. 1b) ---\n");
  print_labeling(benign_cfg, "benign CFG");

  const cfg::GeaResult gea = cfg::gea_combine(malware_cfg, benign_cfg);
  std::printf("\n--- GEA combination (Fig. 1c / Fig. 4b,d) ---\n");
  print_labeling(gea.combined, "combined CFG");
  std::printf("shared entry = node %zu, shared exit = node %zu\n",
              gea.shared_entry, gea.shared_exit);
  std::printf("original blocks now live at ids %zu..%zu, target blocks at "
              "%zu..%zu\n",
              gea.original_offset,
              gea.original_offset + malware_cfg.node_count() - 1,
              gea.target_offset,
              gea.target_offset + benign_cfg.node_count() - 1);

  // Show the label perturbation: how many of the original sample's
  // blocks kept their DBL label after the merge?
  const auto before = cfg::label_nodes(malware_cfg,
                                       cfg::LabelingMethod::kDensity);
  const auto after = cfg::label_nodes(gea.combined,
                                      cfg::LabelingMethod::kDensity);
  std::size_t unchanged = 0;
  for (std::size_t v = 0; v < malware_cfg.node_count(); ++v) {
    if (before[v] == after[gea.original_offset + v]) ++unchanged;
  }
  std::printf("\nDBL labels preserved across the merge: %zu / %zu — every "
              "shifted label perturbs the walk grams Soteria observes.\n",
              unchanged, malware_cfg.node_count());
  return 0;
}
