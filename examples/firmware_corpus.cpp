// Corpus explorer: generates the synthetic IoT firmware corpus and
// reports per-family structural statistics — the CFG shape signal the
// classifiers learn from.
//
//   ./examples/firmware_corpus [scale] [seed]
#include <cstdio>
#include <cstdlib>

#include "dataset/generator.h"
#include "eval/table.h"
#include "graph/properties.h"
#include "math/stats.h"

int main(int argc, char** argv) {
  using namespace soteria;
  const double scale = argc > 1 ? std::strtod(argv[1], nullptr) : 0.02;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  dataset::DatasetConfig config;
  config.scale = scale;
  math::Rng rng(seed);
  const auto data = dataset::generate_dataset(config, rng);
  std::printf("corpus: %zu train / %zu test (scale %.3f)\n\n",
              data.train.size(), data.test.size(), scale);

  eval::Table table({"Family", "N", "Nodes (min/med/max)", "Mean edges",
                     "Mean density", "Mean diameter", "Branch blocks"});
  for (auto family : dataset::all_families()) {
    std::vector<double> nodes;
    std::vector<double> edges;
    std::vector<double> densities;
    std::vector<double> diameters;
    std::vector<double> branches;
    for (const auto& sample : data.train) {
      if (sample.family != family) continue;
      const auto props = graph::graph_properties(sample.cfg.graph());
      nodes.push_back(static_cast<double>(props.node_count));
      edges.push_back(static_cast<double>(props.edge_count));
      densities.push_back(props.density);
      diameters.push_back(static_cast<double>(props.diameter));
      branches.push_back(static_cast<double>(props.branch_count));
    }
    if (nodes.empty()) continue;
    char node_range[64];
    std::snprintf(node_range, sizeof(node_range), "%.0f / %.0f / %.0f",
                  math::min(nodes), math::median(nodes), math::max(nodes));
    table.add_row({dataset::family_name(family),
                   std::to_string(nodes.size()), node_range,
                   eval::format_double(math::mean(edges), 1),
                   eval::format_double(math::mean(densities), 4),
                   eval::format_double(math::mean(diameters), 1),
                   eval::format_double(math::mean(branches), 1)});
  }
  std::printf("%s\n", table.render("Per-family CFG structure (train split)")
                          .c_str());
  std::printf("paper node-count ranges: Benign 10-443, Gafgyt 13-133, "
              "Mirai 12-235, Tsunami 15-79\n");
  return 0;
}
