// Quickstart: train Soteria on a small synthetic corpus, then analyze a
// clean sample and a GEA adversarial example.
//
//   ./examples/quickstart [seed]
//
// Walks through the whole public API: dataset generation, system
// training, GEA attack construction, and the analyze() verdicts.
#include <cstdio>
#include <cstdlib>

#include "cfg/gea.h"
#include "dataset/adversarial.h"
#include "dataset/generator.h"
#include "soteria/presets.h"
#include "soteria/system.h"

int main(int argc, char** argv) {
  using namespace soteria;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. A small corpus at the paper's class ratios.
  dataset::DatasetConfig data_config;
  data_config.scale = 0.02;  // ~80 Gafgyt more everything else smaller
  math::Rng data_rng(seed);
  const dataset::Dataset data =
      dataset::generate_dataset(data_config, data_rng);
  std::printf("corpus: %zu train / %zu test samples\n", data.train.size(),
              data.test.size());

  // 2. Train the full system (feature pipeline + detector + classifier).
  core::SoteriaConfig config = core::tiny_config();
  config.seed = seed;
  std::printf("training Soteria (tiny preset)...\n");
  const core::SoteriaSystem system =
      core::SoteriaSystem::train(data.train, config);
  std::printf("detector threshold: %.4f (mean %.4f + %.1f * stddev %.4f)\n",
              system.detector().threshold(),
              system.detector().training_mean(),
              system.detector().alpha(),
              system.detector().training_stddev());

  // 3. Analyze a clean test sample.
  math::Rng analyze_rng(seed ^ 0xabcdef);
  const dataset::Sample& clean = data.test.front();
  const core::Verdict clean_verdict = system.analyze(clean.cfg, analyze_rng);
  std::printf("\nclean sample (truth %s, %zu blocks):\n",
              dataset::family_name(clean.family), clean.cfg.node_count());
  std::printf("  adversarial: %s  (RE %.4f)\n",
              clean_verdict.adversarial ? "YES" : "no",
              clean_verdict.reconstruction_error);
  std::printf("  predicted family: %s\n",
              dataset::family_name(clean_verdict.predicted));

  // 4. Mount a GEA attack: embed a target from another class and
  //    analyze the combined CFG.
  const auto targets = dataset::select_targets(
      data.train, clean.family == dataset::Family::kBenign
                      ? dataset::Family::kMirai
                      : dataset::Family::kBenign);
  const auto& target = targets[1];  // the Medium-size target
  const cfg::GeaResult attack = cfg::gea_combine(clean.cfg, target.cfg);
  std::printf("\nGEA attack: embedded a %s %s target (%zu blocks) -> "
              "combined CFG has %zu blocks\n",
              dataset::target_size_name(target.size),
              dataset::family_name(target.family), target.node_count,
              attack.combined.node_count());

  const core::Verdict ae_verdict =
      system.analyze(attack.combined, analyze_rng);
  std::printf("  adversarial: %s  (RE %.4f, threshold %.4f)\n",
              ae_verdict.adversarial ? "YES" : "no",
              ae_verdict.reconstruction_error,
              system.detector().threshold());
  if (ae_verdict.adversarial) {
    std::printf("  -> blocked before the classifier, as designed.\n");
  } else {
    std::printf("  -> missed; classifier would have said %s\n",
                dataset::family_name(ae_verdict.predicted));
  }
  return 0;
}
