// Model persistence: train a system, save it, reload it, and verify the
// reloaded system produces identical verdicts — the deploy/reload cycle
// a production consumer of the library needs.
//
//   ./examples/model_persistence [path]
#include <cstdio>
#include <cstdlib>

#include "dataset/generator.h"
#include "soteria/presets.h"
#include "soteria/system.h"

int main(int argc, char** argv) {
  using namespace soteria;
  const char* path = argc > 1 ? argv[1] : "/tmp/soteria_model.bin";

  dataset::DatasetConfig data_config;
  data_config.scale = 0.01;
  math::Rng rng(123);
  const auto data = dataset::generate_dataset(data_config, rng);

  core::SoteriaConfig config = core::tiny_config();
  config.seed = 123;
  std::printf("training on %zu samples...\n", data.train.size());
  const core::SoteriaSystem system =
      core::SoteriaSystem::train(data.train, config);

  system.save_file(path);
  std::printf("saved trained system to %s\n", path);
  core::SoteriaSystem reloaded = core::SoteriaSystem::load_file(path);
  std::printf("reloaded: threshold %.6f (original %.6f)\n",
              reloaded.detector().threshold(),
              system.detector().threshold());

  std::size_t agreements = 0;
  const std::size_t checks = std::min<std::size_t>(data.test.size(), 20);
  for (std::size_t i = 0; i < checks; ++i) {
    // Identical walk draws for both systems -> verdicts must agree.
    math::Rng walk_rng_a(1000 + i);
    math::Rng walk_rng_b(1000 + i);
    const auto a = system.analyze(data.test[i].cfg, walk_rng_a);
    const auto b = reloaded.analyze(data.test[i].cfg, walk_rng_b);
    if (a.adversarial == b.adversarial && a.predicted == b.predicted &&
        a.reconstruction_error == b.reconstruction_error) {
      ++agreements;
    }
  }
  std::printf("verdict agreement: %zu / %zu samples\n", agreements, checks);
  return agreements == checks ? 0 : 1;
}
