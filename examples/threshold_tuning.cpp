// Threshold tuning: characterize a trained detector with the ROC API
// and re-derive its operating point without retraining.
//
//   ./examples/threshold_tuning [seed]
//
// Demonstrates: AeDetector::scores / set_alpha, eval::roc_curve / auc /
// best_youden_threshold, and the GEA adversarial-set builder.
#include <cstdio>
#include <cstdlib>

#include "dataset/adversarial.h"
#include "dataset/generator.h"
#include "eval/roc.h"
#include "soteria/presets.h"
#include "soteria/system.h"

int main(int argc, char** argv) {
  using namespace soteria;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  dataset::DatasetConfig data_config;
  data_config.scale = 0.015;
  math::Rng rng(seed);
  const auto data = dataset::generate_dataset(data_config, rng);

  core::SoteriaConfig config = core::tiny_config();
  config.seed = seed;
  std::printf("training on %zu samples...\n", data.train.size());
  auto system = core::SoteriaSystem::train(data.train, config);

  // Score the clean test split and one GEA set per class.
  math::Rng score_rng(seed ^ 0x5c07e5);
  std::vector<double> clean_scores;
  for (const auto& sample : data.test) {
    const auto features = system.extract(sample.cfg, score_rng);
    clean_scores.push_back(
        system.detector().sample_error(core::pooled_matrix(features)));
  }
  std::vector<double> attack_scores;
  std::vector<dataset::Sample> everything = data.train;
  everything.insert(everything.end(), data.test.begin(), data.test.end());
  for (auto family : dataset::all_families()) {
    const auto targets = dataset::select_targets(everything, family);
    const auto aes =
        dataset::generate_adversarial_set(data.test, targets[1]);
    for (std::size_t i = 0; i < aes.size(); i += 3) {  // subsample
      const auto features = system.extract(aes[i].cfg, score_rng);
      attack_scores.push_back(
          system.detector().sample_error(core::pooled_matrix(features)));
    }
  }
  std::printf("scored %zu clean and %zu adversarial samples\n",
              clean_scores.size(), attack_scores.size());

  std::printf("detector AUC: %.4f\n",
              eval::auc(attack_scores, clean_scores));
  const auto curve = eval::roc_curve(attack_scores, clean_scores, 10);
  std::printf("%-10s %-8s %-8s\n", "threshold", "TPR", "FPR");
  for (const auto& point : curve) {
    std::printf("%-10.4f %-8.3f %-8.3f\n", point.threshold,
                point.true_positive_rate, point.false_positive_rate);
  }

  const double youden =
      eval::best_youden_threshold(attack_scores, clean_scores);
  std::printf("\nYouden-optimal threshold: %.4f\n", youden);
  std::printf("calibrated threshold (alpha=%.1f): %.4f\n",
              system.detector().alpha(), system.detector().threshold());

  // Re-derive alpha so the calibrated rule lands on the Youden point —
  // no retraining required.
  const double mean = system.detector().training_mean();
  const double stddev = system.detector().training_stddev();
  if (stddev > 0.0) {
    const double alpha = std::max(0.0, (youden - mean) / stddev);
    system.detector().set_alpha(alpha);
    std::printf("alpha re-derived to %.2f -> threshold %.4f\n", alpha,
                system.detector().threshold());
  }
  return 0;
}
