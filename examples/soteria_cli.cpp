// soteria_cli — command-line front end over the library, the interface
// a downstream user would script against.
//
//   soteria_cli train <model-path> [scale] [seed]
//       Generate a corpus, train the full system, save it.
//   soteria_cli analyze <model-path> [seed]
//       Load a model, draw a fresh test corpus, analyze every sample
//       and print the verdict summary.
//   soteria_cli attack <model-path> [seed] [--attack gea|score|adaptive]
//                      [--params k=v,...]
//       Load a model, mount attacks from the attacker registry against
//       it, verify the AEs execute (VM), and report how many the
//       detector catches and what they cost in oracle queries.
//   soteria_cli eval-matrix <model-path> [seed] [--threads N]
//                      [--victims N] [--out <json-path>]
//       Run the attack x defense robustness matrix: per-cell detection
//       / evasion / family-flip rates and query counts, as a text table
//       plus versioned JSON (bit-identical for a fixed seed at any
//       --threads setting).
//   soteria_cli corpus <dir> [scale] [seed]
//       Write a fresh test corpus as raw firmware binaries into <dir>
//       and print one path per line (pipe into `serve`).
//   soteria_cli serve <model-path> [--queue-depth N] [--threads T]
//                     [--shards K] [--batch B] [--seed S]
//                     [--swap-model <path>] [--store <dir>]
//       Run the async analysis service: read firmware binary paths from
//       stdin (one per line), stream one JSON verdict per line to
//       stdout in submission order. --shards runs K consistent-hash
//       replicas (requests route by binary content hash); --batch
//       bounds the per-worker micro-batch. Verdicts are bit-identical
//       at every setting. The control line `!swap <path>` hot-swaps
//       the model on every shard, as does SIGHUP when --swap-model is
//       given.
//   soteria_cli store <stats|compact|verify|clear> <dir> [capacity]
//       Maintain a persistent feature store directory: print stats,
//       evict down to [capacity] entries, re-validate every entry
//       (quarantining corrupt ones), or delete all entries.
//
// `analyze` and `serve` accept --store <dir> to route feature
// extraction through a persistent feature store at <dir> (verdicts are
// bit-identical with the store on or off). Any command accepts
// --metrics (human-readable per-stage breakdown on stdout after the
// run) and/or --metrics-json (same data as one JSON document).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>

#include "attack/attacker.h"
#include "attack/registry.h"
#include "cfg/extractor.h"
#include "dataset/adversarial.h"
#include "dataset/generator.h"
#include "eval/matrix.h"
#include "eval/metrics.h"
#include "frontend/frontend.h"
#include "isa/vm.h"
#include "loader/elf.h"
#include "loader/elf_writer.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "soteria/error.h"
#include "soteria/presets.h"
#include "soteria/system.h"
#include "store/feature_store.h"

#ifdef SOTERIA_HAVE_SERVE
#include <chrono>
#include <csignal>
#include <deque>
#include <iostream>
#include <utility>

#include "serve/service.h"
#include "serve/sharded_service.h"
#endif

namespace {

using namespace soteria;

int usage() {
  std::fprintf(stderr,
               "usage: soteria_cli train   <model-path> [scale] [seed]\n"
               "       soteria_cli analyze <model-path> [seed]"
               " [--store <dir>] [--format auto|toy|elf] [--arch <name>]\n"
               "       soteria_cli attack  <model-path> [seed]"
               " [--attack gea|score|adaptive] [--params k=v,...]"
               " [--data-scale S] [--data-seed N]\n"
               "       soteria_cli eval-matrix <model-path> [seed]"
               " [--threads N] [--victims N] [--out <json-path>]"
               " [--data-scale S] [--data-seed N]\n"
               "       soteria_cli corpus  <dir> [scale] [seed]"
               " [--format toy|elf]\n"
#ifdef SOTERIA_HAVE_SERVE
               "       soteria_cli serve   <model-path> [--queue-depth N]"
               " [--threads T] [--shards K] [--batch B] [--seed S]"
               " [--swap-model <path>] [--store <dir>]"
               " [--format auto|toy|elf] [--arch <name>]\n"
#endif
               "       soteria_cli store   <stats|compact|verify|clear>"
               " <dir> [capacity]\n"
               "options: --metrics        print per-stage metrics report\n"
               "         --metrics-json   print metrics as JSON\n"
               "         --format         binary container: auto-detect,\n"
               "                          raw toy bytes, or ELF (corpus\n"
               "                          --format elf wraps samples in\n"
               "                          ELF64 containers)\n"
               "         --arch           force a decoder front end by\n"
               "                          name (toy, x86_64); default\n"
               "                          auto-detects\n");
  return 2;
}

/// Decodes one binary into a CFG under the --format/--arch policy:
/// "auto" sniffs the container (ELF magic vs raw toy bytes), "toy"
/// forces the raw historical path, "elf" requires an ELF container.
/// `arch` names a front end ("toy", "x86_64"); empty auto-detects.
cfg::Cfg decode_binary(std::span<const std::uint8_t> bytes,
                       const std::string& format, const std::string& arch) {
  loader::Image image;
  if (format == "toy") {
    image.bytes = bytes;
    image.text = bytes;
  } else if (format == "elf") {
    image = loader::load_elf(bytes);
  } else if (format == "auto" || format.empty()) {
    image = loader::load_image(bytes);
  } else {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "unknown --format " + format +
                          " (expected auto, toy, or elf)");
  }
  const auto& fe = frontend::resolve_frontend(
      frontend::FrontendRegistry::builtin(), image, arch);
  return fe.extract(image);
}

dataset::Dataset make_corpus(double scale, std::uint64_t seed) {
  dataset::DatasetConfig config;
  config.scale = scale;
  math::Rng rng(seed);
  return dataset::generate_dataset(config, rng);
}

int cmd_train(const char* path, double scale, std::uint64_t seed) {
  const auto data = make_corpus(scale, seed);
  std::printf("corpus: %zu train / %zu test samples (scale %.3f)\n",
              data.train.size(), data.test.size(), scale);
  core::SoteriaConfig config = core::cpu_scaled_config();
  config.seed = seed;
  std::printf("training...\n");
  const auto system = core::SoteriaSystem::train(data.train, config);
  system.save_file(path);
  std::printf("model saved to %s (threshold %.4f)\n", path,
              system.detector().threshold());
  return 0;
}

int cmd_analyze(const char* path, std::uint64_t seed,
                const std::string& store_dir, const std::string& format,
                const std::string& arch) {
  const auto system = core::SoteriaSystem::load_file(path);
  const auto data = make_corpus(0.01, seed + 1);

  core::AnalyzeOptions options;
  if (!store_dir.empty()) {
    options.feature_store = std::make_shared<store::FeatureStore>(
        store::StoreConfig{store_dir});
  }
  std::vector<cfg::Cfg> cfgs;
  cfgs.reserve(data.test.size());
  if (format.empty()) {
    // Historical path: the generator's CFGs, no binary decode.
    for (const auto& sample : data.test) cfgs.push_back(sample.cfg);
  } else {
    // Exercise the loader/frontend seam end to end: every sample's
    // runnable binary goes through container load + decoder resolution
    // (--format elf wraps the toy binaries in ELF64 containers first,
    // so the ELF parser sits on the path too).
    for (const auto& sample : data.test) {
      if (sample.binary.empty()) {
        cfgs.push_back(sample.cfg);
        continue;
      }
      if (format == "elf") {
        const auto wrapped = loader::write_elf(sample.binary);
        cfgs.push_back(decode_binary(wrapped, format, arch));
      } else {
        cfgs.push_back(decode_binary(sample.binary, format, arch));
      }
    }
  }
  const auto verdicts =
      system.analyze_batch(cfgs, math::Rng(seed ^ 0xa11ce), options);

  eval::ConfusionMatrix confusion(dataset::kFamilyCount);
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (verdicts[i].adversarial) {
      ++flagged;
      continue;
    }
    confusion.record(dataset::family_index(data.test[i].family),
                     dataset::family_index(verdicts[i].predicted));
  }
  std::printf("analyzed %zu fresh samples: %zu flagged as adversarial\n",
              data.test.size(), flagged);
  if (options.feature_store) {
    const auto stats = options.feature_store->stats();
    std::fprintf(stderr,
                 "feature store: %llu hits, %llu misses, %llu writes\n",
                 static_cast<unsigned long long>(stats.hits),
                 static_cast<unsigned long long>(stats.misses),
                 static_cast<unsigned long long>(stats.writes));
  }
  std::printf("classification accuracy over passed samples: %.2f%%\n",
              100.0 * confusion.overall_accuracy());
  for (auto family : dataset::all_families()) {
    const auto i = dataset::family_index(family);
    if (confusion.class_total(i) == 0) continue;
    std::printf("  %-8s %zu samples, %.2f%% correct\n",
                dataset::family_name(family), confusion.class_total(i),
                100.0 * confusion.class_accuracy(i));
  }
  return 0;
}

int cmd_attack(const char* path, std::uint64_t seed, double data_scale,
               std::uint64_t data_seed, const std::string& attack_name,
               const std::string& attack_params) {
  const auto system = core::SoteriaSystem::load_file(path);
  // The victims must come from the distribution the model was fitted
  // on (same scale/seed as `train`): against shifted data the detector
  // flags even clean samples, and every attack drowns in that noise.
  const auto data = make_corpus(data_scale, data_seed);
  const auto attacker =
      attack::make_attacker(attack_name, attack_params, &system);
  const math::Rng rng(seed ^ 0x47ac);

  std::size_t attacks = 0;
  std::size_t executable = 0;
  std::size_t detected = 0;
  std::size_t flipped = 0;
  std::size_t queries = 0;
  const std::size_t limit = std::min<std::size_t>(data.test.size(), 24);
  for (std::size_t i = 0; i < limit; ++i) {
    const auto& victim = data.test[i];
    math::Rng generate_rng = rng.child(2 * i);
    attack::AttackResult result;
    try {
      result = attacker->generate(victim, data.train, generate_rng);
    } catch (const core::Error& e) {
      std::fprintf(stderr, "attack on sample %zu failed: %s\n", i,
                   e.what());
      continue;
    }
    if (victim.family == result.target_family) continue;
    ++attacks;
    queries += result.queries;
    if (!result.binary.empty()) {
      executable += isa::execute(result.binary).status ==
                    isa::VmStatus::kHalted;
    }
    math::Rng analyze_rng = rng.child(2 * i + 1);
    const auto verdict = system.analyze(result.cfg, analyze_rng);
    detected += verdict.adversarial;
    flipped += verdict.predicted != victim.family;
  }
  std::printf("%s attacks mounted (params \"%s\"): %zu\n",
              std::string(attacker->name()).c_str(),
              attacker->params().c_str(), attacks);
  std::printf("  executable (practical AEs):     %zu\n", executable);
  std::printf("  caught by the detector:         %zu (%.1f%%)\n", detected,
              attacks ? 100.0 * static_cast<double>(detected) /
                            static_cast<double>(attacks)
                      : 0.0);
  std::printf("  family flipped:                 %zu\n", flipped);
  std::printf("  oracle queries spent:           %zu\n", queries);
  return 0;
}

int cmd_eval_matrix(const char* path, std::uint64_t seed,
                    double data_scale, std::uint64_t data_seed,
                    std::size_t threads, std::size_t victims,
                    const std::string& out_path) {
  const auto system = core::SoteriaSystem::load_file(path);
  // Same-distribution victims/corpus as `train` (see cmd_attack).
  const auto data = make_corpus(data_scale, data_seed);

  // The default grid: the plain-GEA baselines against the guided
  // strategies, at the calibrated operating point and a looser one.
  const std::vector<eval::AttackSpec> attacks = {
      {"gea-small", "gea", "target=benign,size=small"},
      {"gea-large", "gea", "target=benign,size=large"},
      {"gea-multi", "gea", "target=benign,injections=2"},
      {"score", "score", "target=benign,candidates=4"},
      {"adaptive", "adaptive", "target=benign,candidates=4"},
  };
  const double alpha = system.detector().alpha();
  const auto alpha_label = [](double a) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "alpha=%.2f", a);
    return std::string(buffer);
  };
  const std::vector<eval::DefenseSpec> defenses = {
      {alpha_label(alpha), alpha},
      {alpha_label(alpha * 2.0), alpha * 2.0},
  };

  eval::MatrixOptions options;
  options.seed = seed;
  options.num_threads = threads;
  options.victims_per_cell = victims == 0 ? 6 : victims;
  const auto report = eval::run_matrix(system, data.test, data.train,
                                       attacks, defenses, options);

  std::fputs(report.to_text().c_str(), stdout);
  const std::string json = report.to_json();
  if (out_path.empty()) {
    std::printf("%s\n", json.c_str());
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      throw core::Error(core::ErrorCode::kIoError,
                        "eval-matrix: cannot open " + out_path);
    }
    out << json << '\n';
    std::fprintf(stderr, "matrix JSON written to %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_corpus(const char* dir, double scale, std::uint64_t seed,
               const std::string& format) {
  namespace fs = std::filesystem;
  const bool elf = format == "elf";
  if (!elf && !format.empty() && format != "toy") {
    std::fprintf(stderr, "corpus: --format must be toy or elf (got %s)\n",
                 format.c_str());
    return 2;
  }
  fs::create_directories(dir);
  const auto data = make_corpus(scale, seed);
  std::size_t written = 0;
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    const auto& sample = data.test[i];
    if (sample.binary.empty()) continue;
    const auto path =
        fs::path(dir) / ("sample_" + std::to_string(i) + "_" +
                         std::string(dataset::family_name(sample.family)) +
                         (elf ? ".elf" : ".bin"));
    const std::vector<std::uint8_t> bytes =
        elf ? loader::write_elf(sample.binary) : sample.binary;
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      throw core::Error(core::ErrorCode::kIoError,
                        "corpus: cannot open " + path.string());
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    std::printf("%s\n", path.string().c_str());
    ++written;
  }
  std::fprintf(stderr, "wrote %zu sample binaries to %s%s\n", written, dir,
               elf ? " (ELF64 containers)" : "");
  return 0;
}

void print_store_stats(const store::FeatureStore& fstore) {
  const auto stats = fstore.stats();
  std::printf("entries:         %zu\n", stats.entries);
  std::printf("resident bytes:  %llu\n",
              static_cast<unsigned long long>(stats.bytes));
  std::printf("hits:            %llu\n",
              static_cast<unsigned long long>(stats.hits));
  std::printf("misses:          %llu\n",
              static_cast<unsigned long long>(stats.misses));
  std::printf("writes:          %llu\n",
              static_cast<unsigned long long>(stats.writes));
  std::printf("evictions:       %llu\n",
              static_cast<unsigned long long>(stats.evictions));
  std::printf("corrupt entries: %llu\n",
              static_cast<unsigned long long>(stats.corrupt_entries));
  std::printf("write failures:  %llu\n",
              static_cast<unsigned long long>(stats.write_failures));
}

int cmd_store(const char* action, const char* dir, std::size_t capacity) {
  // Maintenance opens default to unbounded capacity so `stats`/`verify`
  // never evict; `compact <dir> <capacity>` bounds explicitly.
  store::StoreConfig config;
  config.directory = dir;
  config.capacity = capacity;
  store::FeatureStore fstore(config);

  if (std::strcmp(action, "stats") == 0) {
    print_store_stats(fstore);
    return 0;
  }
  if (std::strcmp(action, "compact") == 0) {
    // Opening with a bound already evicts down to it; count that
    // open-time work together with anything compact() still finds.
    const std::size_t evicted =
        fstore.stats().evictions + fstore.compact();
    std::printf("evicted %zu entries\n", evicted);
    print_store_stats(fstore);
    return 0;
  }
  if (std::strcmp(action, "verify") == 0) {
    const auto report = fstore.verify();
    std::printf("checked %zu entries, quarantined %zu\n", report.checked,
                report.quarantined);
    print_store_stats(fstore);
    return 0;
  }
  if (std::strcmp(action, "clear") == 0) {
    const std::size_t entries = fstore.stats().entries;
    fstore.clear();
    std::printf("cleared %zu entries\n", entries);
    return 0;
  }
  std::fprintf(stderr, "store: unknown action %s\n", action);
  return 2;
}

#ifdef SOTERIA_HAVE_SERVE

volatile std::sig_atomic_t g_sighup = 0;

void handle_sighup(int) { g_sighup = 1; }

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

std::vector<std::uint8_t> read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw core::Error(core::ErrorCode::kIoError,
                      "serve: cannot open " + path);
  }
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

struct PendingRequest {
  std::uint64_t id = 0;
  std::string path;
  std::future<core::Verdict> verdict;
};

/// One JSON verdict (or failure) line on stdout, flushed so a piped
/// consumer sees it immediately.
void print_outcome(PendingRequest& pending) {
  const auto id = static_cast<unsigned long long>(pending.id);
  const std::string path = json_escape(pending.path);
  try {
    const auto verdict = pending.verdict.get();
    std::printf("{\"id\":%llu,\"path\":\"%s\",\"adversarial\":%s,"
                "\"family\":\"%s\",\"reconstruction_error\":%.17g}\n",
                id, path.c_str(), verdict.adversarial ? "true" : "false",
                std::string(dataset::family_name(verdict.predicted)).c_str(),
                verdict.reconstruction_error);
  } catch (const core::Error& e) {
    std::printf("{\"id\":%llu,\"path\":\"%s\",\"error\":\"%s\","
                "\"message\":\"%s\"}\n",
                id, path.c_str(),
                std::string(core::error_code_name(e.code())).c_str(),
                json_escape(e.what()).c_str());
  } catch (const std::exception& e) {
    std::printf("{\"id\":%llu,\"path\":\"%s\",\"error\":\"Internal\","
                "\"message\":\"%s\"}\n",
                id, path.c_str(), json_escape(e.what()).c_str());
  }
  std::fflush(stdout);
}

int cmd_serve(const char* model_path, int argc, char** argv) {
  serve::ShardedServiceConfig config;
  config.num_shards = 1;
  std::string swap_path;
  std::string format = "auto";
  std::string arch;
  for (int i = 0; i < argc; ++i) {
    const auto flag_value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "serve: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (const char* v = flag_value("--queue-depth")) {
      config.shard.queue_depth = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value("--threads")) {
      config.shard.num_threads = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value("--shards")) {
      config.num_shards = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value("--batch")) {
      config.shard.max_batch = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value("--seed")) {
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value("--swap-model")) {
      swap_path = v;
    } else if (const char* v = flag_value("--store")) {
      config.shard.feature_store = std::make_shared<store::FeatureStore>(
          store::StoreConfig{std::string(v)});
    } else if (const char* v = flag_value("--format")) {
      format = v;
    } else if (const char* v = flag_value("--arch")) {
      arch = v;
    } else {
      std::fprintf(stderr, "serve: unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  auto model = std::make_shared<const core::SoteriaSystem>(
      core::SoteriaSystem::load_file(model_path));
  serve::ShardedService service(std::move(model), config);
  std::fprintf(stderr,
               "serving %s: %zu shard(s) x %zu workers, queue depth %zu, "
               "micro-batch %zu (paths on stdin, `!swap <path>` to "
               "hot-swap)\n",
               model_path, service.shard_count(),
               service.shard(0).worker_count(), config.shard.queue_depth,
               config.shard.max_batch);
  if (!swap_path.empty()) std::signal(SIGHUP, handle_sighup);

  std::deque<PendingRequest> pending;
  // Print any finished requests at the head of the line; completion is
  // in-order by construction only at one worker, so the deque holds
  // results back until their turn.
  const auto drain_ready = [&] {
    while (!pending.empty() &&
           pending.front().verdict.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready) {
      print_outcome(pending.front());
      pending.pop_front();
    }
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    if (g_sighup != 0) {
      g_sighup = 0;
      try {
        (void)service.swap_model_file(swap_path);
        std::fprintf(stderr, "SIGHUP: model swapped from %s\n",
                     swap_path.c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "SIGHUP: swap failed: %s\n", e.what());
      }
    }
    if (line.empty()) continue;
    if (line.rfind("!swap ", 0) == 0) {
      const std::string path = line.substr(6);
      try {
        (void)service.swap_model_file(path);
        std::fprintf(stderr, "model swapped from %s\n", path.c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "swap failed: %s\n", e.what());
      }
      continue;
    }

    cfg::Cfg cfg;
    try {
      // Container + decoder resolution per file: a sharded directory
      // of raw toy binaries and ELF-wrapped ones serves uniformly
      // under --format auto.
      const auto bytes = read_binary_file(line);
      cfg = decode_binary(bytes, format, arch);
    } catch (const core::Error& e) {
      std::printf("{\"path\":\"%s\",\"error\":\"%s\",\"message\":"
                  "\"%s\"}\n",
                  json_escape(line).c_str(),
                  std::string(core::error_code_name(e.code())).c_str(),
                  json_escape(e.what()).c_str());
      std::fflush(stdout);
      continue;
    } catch (const std::exception& e) {
      std::printf("{\"path\":\"%s\",\"error\":\"IoError\",\"message\":"
                  "\"%s\"}\n",
                  json_escape(line).c_str(), json_escape(e.what()).c_str());
      std::fflush(stdout);
      continue;
    }

    for (;;) {
      auto ticket = service.submit(cfg);
      if (ticket.accepted()) {
        pending.push_back(
            {ticket.id, line, std::move(ticket.verdict)});
        break;
      }
      if (ticket.status == core::ErrorCode::kQueueFull &&
          !pending.empty()) {
        // Backpressure: block on the oldest in-flight request (its
        // completion means the queue has drained at least one slot),
        // then retry.
        print_outcome(pending.front());
        pending.pop_front();
        continue;
      }
      std::fprintf(stderr, "submit rejected: %s\n",
                   std::string(core::error_code_name(ticket.status)).c_str());
      break;
    }
    drain_ready();
  }

  while (!pending.empty()) {
    print_outcome(pending.front());
    pending.pop_front();
  }
  service.shutdown(serve::ShutdownPolicy::kDrain);
  const auto stats = service.stats().total;
  std::fprintf(stderr,
               "served: %llu accepted, %llu completed, %llu rejected, "
               "%llu expired, %llu failed, %llu swaps\n",
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.rejected),
               static_cast<unsigned long long>(stats.expired),
               static_cast<unsigned long long>(stats.failed),
               static_cast<unsigned long long>(stats.swaps));
  return 0;
}

#endif  // SOTERIA_HAVE_SERVE

int dispatch(int argc, char** argv) {
  if (argc < 3) return usage();
  const char* command = argv[1];
  const char* path = argv[2];
  try {
    if (std::strcmp(command, "train") == 0 ||
        std::strcmp(command, "corpus") == 0) {
      const bool is_corpus = std::strcmp(command, "corpus") == 0;
      double scale = 0.02;
      std::uint64_t seed = 42;
      std::string format;
      int positional = 0;
      for (int i = 3; i < argc; ++i) {
        if (is_corpus && std::strcmp(argv[i], "--format") == 0) {
          if (i + 1 >= argc) return usage();
          format = argv[++i];
        } else if (positional == 0) {
          scale = std::strtod(argv[i], nullptr);
          ++positional;
        } else if (positional == 1) {
          seed = std::strtoull(argv[i], nullptr, 10);
          ++positional;
        } else {
          return usage();
        }
      }
      return is_corpus ? cmd_corpus(path, scale, seed, format)
                       : cmd_train(path, scale, seed);
    }
#ifdef SOTERIA_HAVE_SERVE
    if (std::strcmp(command, "serve") == 0) {
      return cmd_serve(path, argc - 3, argv + 3);
    }
#endif
    if (std::strcmp(command, "store") == 0) {
      if (argc < 4) return usage();
      const std::size_t capacity =
          argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 0;
      return cmd_store(argv[2], argv[3], capacity);
    }
    // Positional [seed] optionally followed by flags (--store/--format/
    // --arch for analyze, --attack/--params for attack, --threads/
    // --victims/--out for eval-matrix).
    std::uint64_t seed = 42;
    std::string store_dir;
    std::string format;
    std::string arch;
    std::string attack_name = "gea";
    std::string attack_params;
    std::string out_path;
    std::size_t threads = 1;
    std::size_t victims = 0;
    double data_scale = 0.02;
    std::uint64_t data_seed = 42;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--store") == 0) {
        if (i + 1 >= argc) return usage();
        store_dir = argv[++i];
      } else if (std::strcmp(argv[i], "--format") == 0) {
        if (i + 1 >= argc) return usage();
        format = argv[++i];
      } else if (std::strcmp(argv[i], "--arch") == 0) {
        if (i + 1 >= argc) return usage();
        arch = argv[++i];
      } else if (std::strcmp(argv[i], "--attack") == 0) {
        if (i + 1 >= argc) return usage();
        attack_name = argv[++i];
      } else if (std::strcmp(argv[i], "--params") == 0) {
        if (i + 1 >= argc) return usage();
        attack_params = argv[++i];
      } else if (std::strcmp(argv[i], "--out") == 0) {
        if (i + 1 >= argc) return usage();
        out_path = argv[++i];
      } else if (std::strcmp(argv[i], "--threads") == 0) {
        if (i + 1 >= argc) return usage();
        threads = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--victims") == 0) {
        if (i + 1 >= argc) return usage();
        victims = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--data-scale") == 0) {
        if (i + 1 >= argc) return usage();
        data_scale = std::strtod(argv[++i], nullptr);
      } else if (std::strcmp(argv[i], "--data-seed") == 0) {
        if (i + 1 >= argc) return usage();
        data_seed = std::strtoull(argv[++i], nullptr, 10);
      } else {
        seed = std::strtoull(argv[i], nullptr, 10);
      }
    }
    if (std::strcmp(command, "analyze") == 0) {
      return cmd_analyze(path, seed, store_dir, format, arch);
    }
    if (std::strcmp(command, "attack") == 0) {
      return cmd_attack(path, seed, data_scale, data_seed, attack_name,
                        attack_params);
    }
    if (std::strcmp(command, "eval-matrix") == 0) {
      return cmd_eval_matrix(path, seed, data_scale, data_seed, threads,
                             victims, out_path);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  bool metrics_text = false;
  bool metrics_json = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_text = true;
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      metrics_json = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  if (metrics_text || metrics_json) soteria::obs::set_enabled(true);

  const int rc = dispatch(kept, argv);

  if (metrics_text || metrics_json) {
    const auto snapshot = soteria::obs::registry().snapshot();
    if (metrics_text) {
      std::fputs(soteria::obs::export_text(snapshot).c_str(), stdout);
    }
    if (metrics_json) {
      std::fputs(soteria::obs::export_json(snapshot).c_str(), stdout);
      std::fputc('\n', stdout);
    }
  }
  return rc;
}
