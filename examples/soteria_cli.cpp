// soteria_cli — command-line front end over the library, the interface
// a downstream user would script against.
//
//   soteria_cli train <model-path> [scale] [seed]
//       Generate a corpus, train the full system, save it.
//   soteria_cli analyze <model-path> [seed]
//       Load a model, draw a fresh test corpus, analyze every sample
//       and print the verdict summary.
//   soteria_cli attack <model-path> [seed]
//       Load a model, mount binary-level GEA attacks, verify the AEs
//       execute (VM), and report how many the detector catches.
//
// Any command accepts --metrics (human-readable per-stage breakdown on
// stdout after the run) and/or --metrics-json (same data as one JSON
// document).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "attack/binary_gea.h"
#include "cfg/extractor.h"
#include "dataset/adversarial.h"
#include "dataset/generator.h"
#include "eval/metrics.h"
#include "isa/vm.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "soteria/presets.h"
#include "soteria/system.h"

namespace {

using namespace soteria;

int usage() {
  std::fprintf(stderr,
               "usage: soteria_cli train   <model-path> [scale] [seed]\n"
               "       soteria_cli analyze <model-path> [seed]\n"
               "       soteria_cli attack  <model-path> [seed]\n"
               "options: --metrics        print per-stage metrics report\n"
               "         --metrics-json   print metrics as JSON\n");
  return 2;
}

dataset::Dataset make_corpus(double scale, std::uint64_t seed) {
  dataset::DatasetConfig config;
  config.scale = scale;
  math::Rng rng(seed);
  return dataset::generate_dataset(config, rng);
}

int cmd_train(const char* path, double scale, std::uint64_t seed) {
  const auto data = make_corpus(scale, seed);
  std::printf("corpus: %zu train / %zu test samples (scale %.3f)\n",
              data.train.size(), data.test.size(), scale);
  core::SoteriaConfig config = core::cpu_scaled_config();
  config.seed = seed;
  std::printf("training...\n");
  auto system = core::SoteriaSystem::train(data.train, config);
  system.save_file(path);
  std::printf("model saved to %s (threshold %.4f)\n", path,
              system.detector().threshold());
  return 0;
}

int cmd_analyze(const char* path, std::uint64_t seed) {
  auto system = core::SoteriaSystem::load_file(path);
  const auto data = make_corpus(0.01, seed + 1);
  math::Rng rng(seed ^ 0xa11ce);
  eval::ConfusionMatrix confusion(dataset::kFamilyCount);
  std::size_t flagged = 0;
  for (const auto& sample : data.test) {
    const auto verdict = system.analyze(sample.cfg, rng);
    if (verdict.adversarial) {
      ++flagged;
      continue;
    }
    confusion.record(dataset::family_index(sample.family),
                     dataset::family_index(verdict.predicted));
  }
  std::printf("analyzed %zu fresh samples: %zu flagged as adversarial\n",
              data.test.size(), flagged);
  std::printf("classification accuracy over passed samples: %.2f%%\n",
              100.0 * confusion.overall_accuracy());
  for (auto family : dataset::all_families()) {
    const auto i = dataset::family_index(family);
    if (confusion.class_total(i) == 0) continue;
    std::printf("  %-8s %zu samples, %.2f%% correct\n",
                dataset::family_name(family), confusion.class_total(i),
                100.0 * confusion.class_accuracy(i));
  }
  return 0;
}

int cmd_attack(const char* path, std::uint64_t seed) {
  auto system = core::SoteriaSystem::load_file(path);
  const auto data = make_corpus(0.01, seed + 2);
  math::Rng rng(seed ^ 0x47ac);

  const auto targets = dataset::select_all_targets(data.train);
  std::size_t attacks = 0;
  std::size_t executable = 0;
  std::size_t detected = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(data.test.size(), 24);
       ++i) {
    const auto& victim = data.test[i];
    for (const auto& target_size :
         {dataset::TargetSize::kSmall, dataset::TargetSize::kLarge}) {
      const auto target_family =
          victim.family == dataset::Family::kBenign
              ? dataset::Family::kGafgyt
              : dataset::Family::kBenign;
      const auto& target =
          targets[dataset::family_index(target_family) *
                      dataset::kTargetSizeCount +
                  static_cast<std::size_t>(target_size)];

      // Binary-level GEA: the AE is an actual runnable image.
      const auto target_sample = [&]() -> const dataset::Sample* {
        for (const auto& s : data.train) {
          if (s.family == target_family &&
              s.cfg.node_count() == target.node_count) {
            return &s;
          }
        }
        return nullptr;
      }();
      if (target_sample == nullptr) continue;
      const auto combined =
          attack::binary_gea(victim.binary, target_sample->binary);
      ++attacks;
      executable +=
          isa::execute(combined.image).status == isa::VmStatus::kHalted;
      const auto verdict =
          system.analyze(cfg::extract(combined.image), rng);
      detected += verdict.adversarial;
    }
  }
  std::printf("binary-level GEA attacks mounted: %zu\n", attacks);
  std::printf("  executable (practical AEs):     %zu\n", executable);
  std::printf("  caught by the detector:         %zu (%.1f%%)\n", detected,
              attacks ? 100.0 * static_cast<double>(detected) /
                            static_cast<double>(attacks)
                      : 0.0);
  return 0;
}

int dispatch(int argc, char** argv) {
  if (argc < 3) return usage();
  const char* command = argv[1];
  const char* path = argv[2];
  try {
    if (std::strcmp(command, "train") == 0) {
      const double scale =
          argc > 3 ? std::strtod(argv[3], nullptr) : 0.02;
      const std::uint64_t seed =
          argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42;
      return cmd_train(path, scale, seed);
    }
    const std::uint64_t seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;
    if (std::strcmp(command, "analyze") == 0) return cmd_analyze(path, seed);
    if (std::strcmp(command, "attack") == 0) return cmd_attack(path, seed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  bool metrics_text = false;
  bool metrics_json = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_text = true;
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      metrics_json = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  if (metrics_text || metrics_json) soteria::obs::set_enabled(true);

  const int rc = dispatch(kept, argv);

  if (metrics_text || metrics_json) {
    const auto snapshot = soteria::obs::registry().snapshot();
    if (metrics_text) {
      std::fputs(soteria::obs::export_text(snapshot).c_str(), stdout);
    }
    if (metrics_json) {
      std::fputs(soteria::obs::export_json(snapshot).c_str(), stdout);
      std::fputc('\n', stdout);
    }
  }
  return rc;
}
