#include "graph/digraph.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace soteria::graph {

void DiGraph::check_node(NodeId v, const char* what) const {
  if (v >= out_.size()) {
    throw std::out_of_range(std::string(what) + ": node " +
                            std::to_string(v) + " >= node count " +
                            std::to_string(out_.size()));
  }
}

NodeId DiGraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return out_.size() - 1;
}

bool DiGraph::add_edge(NodeId u, NodeId v) {
  check_node(u, "DiGraph::add_edge (source)");
  check_node(v, "DiGraph::add_edge (target)");
  auto& succ = out_[u];
  if (std::find(succ.begin(), succ.end(), v) != succ.end()) return false;
  succ.push_back(v);
  in_[v].push_back(u);
  ++edge_count_;
  return true;
}

bool DiGraph::has_edge(NodeId u, NodeId v) const {
  check_node(u, "DiGraph::has_edge (source)");
  check_node(v, "DiGraph::has_edge (target)");
  const auto& succ = out_[u];
  return std::find(succ.begin(), succ.end(), v) != succ.end();
}

std::span<const NodeId> DiGraph::successors(NodeId v) const {
  check_node(v, "DiGraph::successors");
  return out_[v];
}

std::span<const NodeId> DiGraph::predecessors(NodeId v) const {
  check_node(v, "DiGraph::predecessors");
  return in_[v];
}

std::size_t DiGraph::out_degree(NodeId v) const {
  check_node(v, "DiGraph::out_degree");
  return out_[v].size();
}

std::size_t DiGraph::in_degree(NodeId v) const {
  check_node(v, "DiGraph::in_degree");
  return in_[v].size();
}

std::size_t DiGraph::total_degree(NodeId v) const {
  return in_degree(v) + out_degree(v);
}

std::vector<NodeId> DiGraph::undirected_neighbors(NodeId v) const {
  check_node(v, "DiGraph::undirected_neighbors");
  std::vector<NodeId> nbrs(out_[v]);
  nbrs.insert(nbrs.end(), in_[v].begin(), in_[v].end());
  std::sort(nbrs.begin(), nbrs.end());
  nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  return nbrs;
}

std::vector<std::pair<NodeId, NodeId>> DiGraph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> all;
  all.reserve(edge_count_);
  for (NodeId u = 0; u < out_.size(); ++u)
    for (NodeId v : out_[u]) all.emplace_back(u, v);
  return all;
}

NodeId DiGraph::merge_disjoint(const DiGraph& other) {
  const NodeId offset = out_.size();
  out_.reserve(offset + other.node_count());
  in_.reserve(offset + other.node_count());
  for (NodeId v = 0; v < other.node_count(); ++v) {
    out_.emplace_back();
    in_.emplace_back();
    out_.back().reserve(other.out_[v].size());
    for (NodeId w : other.out_[v]) out_.back().push_back(w + offset);
    in_.back().reserve(other.in_[v].size());
    for (NodeId w : other.in_[v]) in_.back().push_back(w + offset);
  }
  edge_count_ += other.edge_count_;
  return offset;
}

}  // namespace soteria::graph
