#include "graph/properties.h"

#include <algorithm>
#include <cmath>

#include "graph/centrality.h"
#include "graph/traversal.h"
#include "math/stats.h"

namespace soteria::graph {

GraphProperties graph_properties(const DiGraph& g) {
  GraphProperties p;
  p.node_count = g.node_count();
  p.edge_count = g.edge_count();
  const auto n = static_cast<double>(p.node_count);
  if (p.node_count > 1) {
    p.density = static_cast<double>(p.edge_count) / (n * (n - 1.0));
  }

  std::vector<double> degrees(p.node_count);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    degrees[v] = static_cast<double>(g.total_degree(v));
    if (g.out_degree(v) == 0) ++p.leaf_count;
    if (g.out_degree(v) >= 2) ++p.branch_count;
  }
  if (!degrees.empty()) {
    p.mean_degree = math::mean(degrees);
    p.max_degree = *std::max_element(degrees.begin(), degrees.end());
    p.degree_stddev = math::stddev(degrees);
  }

  const auto centrality = centrality_scores(g);
  const auto& betweenness = centrality.betweenness;
  const auto& closeness = centrality.closeness;
  if (!betweenness.empty()) {
    p.mean_betweenness = math::mean(betweenness);
    p.max_betweenness =
        *std::max_element(betweenness.begin(), betweenness.end());
    p.mean_closeness = math::mean(closeness);
    p.max_closeness = *std::max_element(closeness.begin(), closeness.end());
  }

  // Directed shortest-path statistics and back-edge census.
  double path_sum = 0.0;
  std::size_t path_count = 0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto dist = bfs_distances(g, s);
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (t == s || dist[t] == kUnreachable) continue;
      path_sum += static_cast<double>(dist[t]);
      ++path_count;
      p.diameter = std::max(p.diameter, dist[t]);
    }
    // An edge s->t with dist-from-t reaching s closes a cycle. Cheaper
    // equivalent: count edges whose target can reach their source.
  }
  if (path_count > 0) {
    p.mean_shortest_path = path_sum / static_cast<double>(path_count);
  }

  for (const auto& [u, v] : g.edges()) {
    if (u == v) {
      ++p.loop_edge_count;
      continue;
    }
    const auto back = bfs_distances(g, v);
    if (back[u] != kUnreachable) ++p.loop_edge_count;
  }

  return p;
}

std::vector<float> to_feature_vector(const GraphProperties& p) {
  return {
      static_cast<float>(p.node_count),
      static_cast<float>(p.edge_count),
      static_cast<float>(p.density),
      static_cast<float>(p.mean_degree),
      static_cast<float>(p.max_degree),
      static_cast<float>(p.degree_stddev),
      static_cast<float>(p.mean_betweenness),
      static_cast<float>(p.max_betweenness),
      static_cast<float>(p.mean_closeness),
      static_cast<float>(p.max_closeness),
      static_cast<float>(p.mean_shortest_path),
      static_cast<float>(p.diameter),
      static_cast<float>(p.leaf_count),
      static_cast<float>(p.branch_count),
      static_cast<float>(p.loop_edge_count),
  };
}

}  // namespace soteria::graph
