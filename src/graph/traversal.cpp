#include "graph/traversal.h"

#include <deque>
#include <stdexcept>

namespace soteria::graph {

namespace {

template <typename NeighborFn>
std::vector<std::size_t> bfs_impl(const DiGraph& g, NodeId source,
                                  NeighborFn&& neighbors) {
  if (source >= g.node_count())
    throw std::out_of_range("bfs: source out of range");
  std::vector<std::size_t> dist(g.node_count(), kUnreachable);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<std::size_t> bfs_distances(const DiGraph& g, NodeId source) {
  return bfs_impl(g, source, [&g](NodeId u) {
    return std::vector<NodeId>(g.successors(u).begin(),
                               g.successors(u).end());
  });
}

std::vector<std::size_t> undirected_bfs_distances(const DiGraph& g,
                                                  NodeId source) {
  return bfs_impl(g, source,
                  [&g](NodeId u) { return g.undirected_neighbors(u); });
}

std::vector<std::size_t> node_levels(const DiGraph& g, NodeId entry) {
  auto dist = bfs_distances(g, entry);
  for (std::size_t& d : dist) {
    if (d != kUnreachable) d += 1;  // the paper's levels start at 1
  }
  return dist;
}

std::vector<bool> reachable_from(const DiGraph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  std::vector<bool> reach(dist.size(), false);
  for (std::size_t i = 0; i < dist.size(); ++i)
    reach[i] = dist[i] != kUnreachable;
  return reach;
}

bool is_weakly_connected(const DiGraph& g) {
  if (g.node_count() <= 1) return true;
  const auto dist = undirected_bfs_distances(g, 0);
  for (std::size_t d : dist)
    if (d == kUnreachable) return false;
  return true;
}

std::size_t directed_diameter(const DiGraph& g) {
  std::size_t diameter = 0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto dist = bfs_distances(g, s);
    for (std::size_t d : dist)
      if (d != kUnreachable && d > diameter) diameter = d;
  }
  return diameter;
}

}  // namespace soteria::graph
