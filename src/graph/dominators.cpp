#include "graph/dominators.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace soteria::graph {

namespace {

/// Reverse-postorder of the nodes reachable from `entry`.
std::vector<NodeId> reverse_postorder(const DiGraph& g, NodeId entry) {
  std::vector<NodeId> order;
  std::vector<std::uint8_t> state(g.node_count(), 0);  // 0/1/2
  // Iterative DFS with an explicit stack of (node, next-child) frames.
  std::vector<std::pair<NodeId, std::size_t>> stack;
  stack.emplace_back(entry, 0);
  state[entry] = 1;
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    const auto succ = g.successors(node);
    if (next < succ.size()) {
      const NodeId child = succ[next++];
      if (state[child] == 0) {
        state[child] = 1;
        stack.emplace_back(child, 0);
      }
    } else {
      state[node] = 2;
      order.push_back(node);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace

std::vector<NodeId> immediate_dominators(const DiGraph& g, NodeId entry) {
  if (g.empty()) {
    throw std::invalid_argument("immediate_dominators: empty graph");
  }
  if (entry >= g.node_count()) {
    throw std::out_of_range("immediate_dominators: entry out of range");
  }

  const auto order = reverse_postorder(g, entry);
  std::vector<std::size_t> position(g.node_count(),
                                    static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;

  std::vector<NodeId> idom(g.node_count(), kNoDominator);
  idom[entry] = entry;

  // Cooper-Harvey-Kennedy: intersect along the idom chains using
  // reverse-postorder positions until a fixed point.
  const auto intersect = [&](NodeId a, NodeId b) {
    while (a != b) {
      while (position[a] > position[b]) a = idom[a];
      while (position[b] > position[a]) b = idom[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId node : order) {
      if (node == entry) continue;
      NodeId new_idom = kNoDominator;
      for (NodeId pred : g.predecessors(node)) {
        if (idom[pred] == kNoDominator) continue;  // not processed yet
        new_idom = new_idom == kNoDominator ? pred
                                            : intersect(pred, new_idom);
      }
      if (new_idom != kNoDominator && idom[node] != new_idom) {
        idom[node] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

bool dominates(const std::vector<NodeId>& idom, NodeId a, NodeId b) {
  if (b >= idom.size() || a >= idom.size()) {
    throw std::out_of_range("dominates: node out of range");
  }
  if (idom[b] == kNoDominator) return false;  // unreachable
  NodeId walk = b;
  while (true) {
    if (walk == a) return true;
    if (idom[walk] == walk) return false;  // reached the entry
    walk = idom[walk];
  }
}

std::vector<NaturalLoop> natural_loops(const DiGraph& g, NodeId entry) {
  const auto idom = immediate_dominators(g, entry);
  std::vector<NaturalLoop> loops;
  for (const auto& [u, h] : g.edges()) {
    if (idom[u] == kNoDominator || idom[h] == kNoDominator) continue;
    if (!dominates(idom, h, u)) continue;  // not a back edge

    NaturalLoop loop;
    loop.header = h;
    // Body: h, u, and everything that reaches u without passing h.
    std::vector<bool> in_body(g.node_count(), false);
    in_body[h] = true;
    std::deque<NodeId> work;
    if (!in_body[u]) {
      in_body[u] = true;
      work.push_back(u);
    }
    while (!work.empty()) {
      const NodeId node = work.front();
      work.pop_front();
      for (NodeId pred : g.predecessors(node)) {
        if (!in_body[pred] && idom[pred] != kNoDominator) {
          in_body[pred] = true;
          work.push_back(pred);
        }
      }
    }
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (in_body[v]) loop.body.push_back(v);
    }
    loops.push_back(std::move(loop));
  }
  std::sort(loops.begin(), loops.end(),
            [](const NaturalLoop& a, const NaturalLoop& b) {
              if (a.header != b.header) return a.header < b.header;
              return a.body < b.body;
            });
  return loops;
}

}  // namespace soteria::graph
