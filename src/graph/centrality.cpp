#include "graph/centrality.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "math/rng.h"
#include "runtime/thread_pool.h"

namespace soteria::graph {

namespace {

// Dynamic work unit: runners claim chunks of this many sources through
// the region's atomic cursor, so a runner that drew cheap sources goes
// back for more instead of idling behind a fixed partition. Small
// enough to balance skewed graphs, large enough that the claim counter
// is touched once per ~chunk of BFS work.
constexpr std::size_t kSourceChunk = 16;

// Rounds of signature refinement feeding the pivot draw. Three rounds
// separate nodes by their distance<=3 neighborhood structure, which is
// plenty for CFG-shaped graphs while keeping the prepass linear.
constexpr int kSignatureRounds = 3;

// CSR snapshot of the undirected view: one flat neighbor array plus
// per-node offsets, with each row sorted and deduplicated exactly like
// DiGraph::undirected_neighbors. One allocation pair instead of a
// vector-of-vectors, and each BFS avoids re-deduplicating.
struct UndirectedCsr {
  std::vector<std::size_t> offsets;  // node_count + 1
  std::vector<NodeId> neighbors;

  explicit UndirectedCsr(const DiGraph& g) {
    const std::size_t n = g.node_count();
    offsets.assign(n + 1, 0);
    neighbors.reserve(2 * g.edge_count());
    std::vector<NodeId> row;
    for (NodeId v = 0; v < n; ++v) {
      const auto succ = g.successors(v);
      const auto pred = g.predecessors(v);
      row.assign(succ.begin(), succ.end());
      row.insert(row.end(), pred.begin(), pred.end());
      std::sort(row.begin(), row.end());
      row.erase(std::unique(row.begin(), row.end()), row.end());
      neighbors.insert(neighbors.end(), row.begin(), row.end());
      offsets[v + 1] = neighbors.size();
    }
  }

  [[nodiscard]] std::span<const NodeId> row(NodeId v) const noexcept {
    return {neighbors.data() + offsets[v], offsets[v + 1] - offsets[v]};
  }
};

// Flat per-source scratch, reused across sources (one instance per
// slot in the parallel variant). `order` doubles as the BFS FIFO: a
// head cursor walks it while discovery appends, so dequeue order equals
// append order and no separate queue is needed.
struct FusedScratch {
  std::vector<double> sigma;       // # shortest paths from the source
  std::vector<double> delta;       // continuation counts (integers)
  std::vector<std::int64_t> dist;  // BFS distance, -1 = unseen
  std::vector<NodeId> order;       // nodes in non-decreasing distance

  explicit FusedScratch(std::size_t n)
      : sigma(n), delta(n), dist(n) {
    order.reserve(n);
  }
};

// One Brandes sweep from source `s`: BFS over the CSR fills sigma /
// dist / order; the reverse sweep accumulates dependencies into
// `betweenness` and the pair-path normalizer into `total_pair_paths`.
// Predecessors of w are the CSR neighbors u with dist[u] + 1 == dist[w]
// — no predecessor lists. scratch.dist / scratch.order stay valid after
// return, so callers derive their closeness contributions from them
// (the source's own closeness on the exact path, one distance
// observation per reached node on the sampled path).
void brandes_sweep(const UndirectedCsr& csr, NodeId s, FusedScratch& scratch,
                   std::vector<double>& betweenness,
                   double& total_pair_paths) {
  auto& sigma = scratch.sigma;
  auto& delta = scratch.delta;
  auto& dist = scratch.dist;
  auto& order = scratch.order;
  std::fill(sigma.begin(), sigma.end(), 0.0);
  std::fill(delta.begin(), delta.end(), 0.0);
  std::fill(dist.begin(), dist.end(), -1);
  order.clear();

  sigma[s] = 1.0;
  dist[s] = 0;
  order.push_back(s);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const NodeId u = order[head];
    for (NodeId w : csr.row(u)) {
      if (dist[w] < 0) {
        dist[w] = dist[u] + 1;
        order.push_back(w);
      }
      if (dist[w] == dist[u] + 1) sigma[w] += sigma[u];
    }
  }

  for (NodeId t : order) {
    if (t != s) total_pair_paths += sigma[t];
  }

  // delta[v] accumulates c(v) = number of shortest-path continuations
  // from v to any strictly-downstream target in the BFS DAG; the number
  // of shortest s-t paths through v (summed over t) is sigma[v] * c(v).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId w = *it;
    const double contribution = 1.0 + delta[w];
    for (NodeId u : csr.row(w)) {
      if (dist[u] + 1 == dist[w]) delta[u] += contribution;
    }
    if (w != s) betweenness[w] += delta[w] * sigma[w];
  }
}

// The source's own closeness from the distances the sweep just filled,
// accumulated in node-id order (the naive reference's order).
[[nodiscard]] double closeness_of_source(const FusedScratch& scratch,
                                         std::size_t n) {
  double distance_sum = 0.0;
  std::size_t reachable = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (scratch.dist[v] > 0) {
      distance_sum += static_cast<double>(scratch.dist[v]);
      ++reachable;
    }
  }
  return distance_sum > 0.0 ? static_cast<double>(reachable) / distance_sum
                            : 0.0;
}

// Sampled-path closeness: every node reached by this pivot collects one
// (reachable, distance) observation — valid because undirected BFS
// distances are symmetric. Integer accumulators keep the merge exact.
void scatter_pivot_distances(const FusedScratch& scratch, std::size_t n,
                             std::vector<std::int64_t>& distance_sum,
                             std::vector<std::int64_t>& reach_count) {
  for (NodeId v = 0; v < n; ++v) {
    if (scratch.dist[v] > 0) {
      distance_sum[v] += scratch.dist[v];
      ++reach_count[v];
    }
  }
}

// Exact fused pass over all sources. Parallel variant: runners claim
// dynamic chunks of sources and accumulate into per-slot partials
// (claimed once per region via parallel_for_slots), merged exactly once
// after the region — no per-chunk allocation, no merge contention.
// Every accumulator is integer-valued until the final division, so the
// merge is bit-identical to the serial sweep at any thread count.
void exact_scores(const UndirectedCsr& csr, std::size_t n,
                  std::size_t threads, CentralityScores& scores) {
  double total_pair_paths = 0.0;  // Delta(m): total shortest paths
                                  // between distinct unordered pairs

  if (threads == 1 || n <= kSourceChunk) {
    FusedScratch scratch(n);
    for (NodeId s = 0; s < n; ++s) {
      brandes_sweep(csr, s, scratch, scores.betweenness, total_pair_paths);
      scores.closeness[s] = closeness_of_source(scratch, n);
    }
  } else {
    struct SlotPartial {
      std::vector<double> betweenness;
      double pair_paths = 0.0;
      std::unique_ptr<FusedScratch> scratch;  // null until slot first runs
    };
    std::vector<SlotPartial> partials(threads);
    const std::size_t chunks = (n + kSourceChunk - 1) / kSourceChunk;
    runtime::parallel_for_slots(
        threads, chunks, [&](std::size_t slot, std::size_t c) {
          auto& partial = partials[slot];
          if (!partial.scratch) {
            partial.scratch = std::make_unique<FusedScratch>(n);
            partial.betweenness.assign(n, 0.0);
          }
          const NodeId begin = c * kSourceChunk;
          const NodeId end = std::min(n, begin + kSourceChunk);
          for (NodeId s = begin; s < end; ++s) {
            brandes_sweep(csr, s, *partial.scratch, partial.betweenness,
                          partial.pair_paths);
            scores.closeness[s] = closeness_of_source(*partial.scratch, n);
          }
        });
    for (const auto& partial : partials) {
      if (!partial.scratch) continue;  // slot never ran (fewer runners)
      for (std::size_t v = 0; v < n; ++v) {
        scores.betweenness[v] += partial.betweenness[v];
      }
      total_pair_paths += partial.pair_paths;
    }
  }

  // Each unordered pair was visited from both endpoints; halve both the
  // accumulated path counts and the normalizer, which cancels.
  if (total_pair_paths > 0.0) {
    for (double& b : scores.betweenness) b /= total_pair_paths;
  }
}

// Structural node signatures for the pivot draw: seed-folded degree,
// refined kSignatureRounds times by hashing each node's sorted
// multiset of neighbor signatures. A pure function of (graph content,
// seed), so the draw is reproducible across runs and thread counts and
// equivariant under node-id permutation whenever the signatures
// separate the nodes (sorted neighbor values are permutation-stable).
[[nodiscard]] std::vector<std::uint64_t> signature_priorities(
    const UndirectedCsr& csr, std::size_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> sig(n);
  std::vector<std::uint64_t> next(n);
  for (NodeId v = 0; v < n; ++v) {
    sig[v] = math::split_mix64(
        seed ^ math::split_mix64(static_cast<std::uint64_t>(csr.row(v).size())));
  }
  std::vector<std::uint64_t> row_sigs;
  for (int round = 0; round < kSignatureRounds; ++round) {
    const std::uint64_t round_salt =
        math::split_mix64(seed + static_cast<std::uint64_t>(round) + 1);
    for (NodeId v = 0; v < n; ++v) {
      row_sigs.clear();
      for (NodeId u : csr.row(v)) row_sigs.push_back(sig[u]);
      std::sort(row_sigs.begin(), row_sigs.end());
      std::uint64_t h = math::split_mix64(sig[v] ^ round_salt);
      for (std::uint64_t s : row_sigs) h = math::split_mix64(h ^ s);
      next[v] = h;
    }
    sig.swap(next);
  }
  return sig;
}

// The r nodes with the smallest (priority, id), returned in ascending
// node-id order (pivot identity is what matters; id order gives the
// serial fallback cache-friendly source locality).
[[nodiscard]] std::vector<NodeId> select_pivots(
    const std::vector<std::uint64_t>& priorities, std::size_t r) {
  const std::size_t n = priorities.size();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::partial_sort(order.begin(), order.begin() + r, order.end(),
                    [&](NodeId a, NodeId b) {
                      if (priorities[a] != priorities[b]) {
                        return priorities[a] < priorities[b];
                      }
                      return a < b;
                    });
  order.resize(r);
  std::sort(order.begin(), order.end());
  return order;
}

// Sampled-pivot estimate: Brandes sweeps from the pivots only.
// Betweenness is the ratio of pivot-accumulated through-paths to
// pivot-accumulated pair paths (the per-pivot scale factors cancel,
// matching the paper's Delta(v)/Delta(m) normalization restricted to
// the sample); closeness per node is estimated from the pivot
// distances the same sweeps produce. With the pivot set equal to all
// nodes both estimators reduce to the exact formulas bit for bit —
// that case is routed to exact_scores by the caller.
void approx_scores(const UndirectedCsr& csr, std::size_t n,
                   std::size_t threads, const std::vector<NodeId>& pivots,
                   CentralityScores& scores) {
  double total_pair_paths = 0.0;
  std::vector<std::int64_t> distance_sum(n, 0);
  std::vector<std::int64_t> reach_count(n, 0);

  if (threads == 1 || pivots.size() <= kSourceChunk) {
    FusedScratch scratch(n);
    for (NodeId s : pivots) {
      brandes_sweep(csr, s, scratch, scores.betweenness, total_pair_paths);
      scatter_pivot_distances(scratch, n, distance_sum, reach_count);
    }
  } else {
    struct SlotPartial {
      std::vector<double> betweenness;
      std::vector<std::int64_t> distance_sum;
      std::vector<std::int64_t> reach_count;
      double pair_paths = 0.0;
      std::unique_ptr<FusedScratch> scratch;  // null until slot first runs
    };
    std::vector<SlotPartial> partials(threads);
    const std::size_t chunks =
        (pivots.size() + kSourceChunk - 1) / kSourceChunk;
    runtime::parallel_for_slots(
        threads, chunks, [&](std::size_t slot, std::size_t c) {
          auto& partial = partials[slot];
          if (!partial.scratch) {
            partial.scratch = std::make_unique<FusedScratch>(n);
            partial.betweenness.assign(n, 0.0);
            partial.distance_sum.assign(n, 0);
            partial.reach_count.assign(n, 0);
          }
          const std::size_t begin = c * kSourceChunk;
          const std::size_t end =
              std::min(pivots.size(), begin + kSourceChunk);
          for (std::size_t i = begin; i < end; ++i) {
            brandes_sweep(csr, pivots[i], *partial.scratch,
                          partial.betweenness, partial.pair_paths);
            scatter_pivot_distances(*partial.scratch, n,
                                    partial.distance_sum,
                                    partial.reach_count);
          }
        });
    for (const auto& partial : partials) {
      if (!partial.scratch) continue;  // slot never ran (fewer runners)
      for (std::size_t v = 0; v < n; ++v) {
        scores.betweenness[v] += partial.betweenness[v];
        distance_sum[v] += partial.distance_sum[v];
        reach_count[v] += partial.reach_count[v];
      }
      total_pair_paths += partial.pair_paths;
    }
  }

  if (total_pair_paths > 0.0) {
    for (double& b : scores.betweenness) b /= total_pair_paths;
  }
  for (NodeId v = 0; v < n; ++v) {
    scores.closeness[v] =
        distance_sum[v] > 0 ? static_cast<double>(reach_count[v]) /
                                  static_cast<double>(distance_sum[v])
                            : 0.0;
  }
}

void check_unit_interval(double value, const char* name) {
  if (!(value > 0.0) || !(value < 1.0)) {
    throw std::invalid_argument(std::string("ApproxCentralityOptions: ") +
                                name + " must be in (0, 1)");
  }
}

}  // namespace

void validate(const ApproxCentralityOptions& options) {
  check_unit_interval(options.epsilon, "epsilon");
  check_unit_interval(options.delta, "delta");
}

std::size_t riondato_pivot_count(std::size_t nodes, double epsilon,
                                 double delta) {
  check_unit_interval(epsilon, "epsilon");
  check_unit_interval(delta, "delta");
  if (nodes < 2) return 1;
  const double count =
      std::ceil(std::log(2.0 * static_cast<double>(nodes) / delta) /
                (2.0 * epsilon * epsilon));
  return count > 1.0 ? static_cast<std::size_t>(count) : 1;
}

double approx_error_bound(std::size_t nodes, std::size_t pivots,
                          double delta) {
  check_unit_interval(delta, "delta");
  if (pivots == 0) {
    throw std::invalid_argument("approx_error_bound: pivots must be > 0");
  }
  if (nodes < 2) return 0.0;
  return std::sqrt(std::log(2.0 * static_cast<double>(nodes) / delta) /
                   (2.0 * static_cast<double>(pivots)));
}

std::size_t resolved_pivot_count(std::size_t nodes,
                                 const ApproxCentralityOptions& options) {
  const std::size_t requested =
      options.pivot_count != 0
          ? options.pivot_count
          : riondato_pivot_count(nodes, options.epsilon, options.delta);
  return std::min(requested, nodes);
}

CentralityScores centrality_scores(const DiGraph& g,
                                   const CentralityOptions& options) {
  if (options.approximate) validate(options.approx);
  const std::size_t n = g.node_count();
  CentralityScores scores{std::vector<double>(n, 0.0),
                          std::vector<double>(n, 0.0)};
  if (n < 2) return scores;

  const UndirectedCsr csr(g);
  const std::size_t threads = runtime::resolve_threads(options.num_threads);
  const std::size_t pivot_count =
      options.approximate ? resolved_pivot_count(n, options.approx) : n;
  if (pivot_count >= n) {
    exact_scores(csr, n, threads, scores);
  } else {
    const auto priorities = signature_priorities(csr, n, options.approx.seed);
    approx_scores(csr, n, threads, select_pivots(priorities, pivot_count),
                  scores);
  }
  return scores;
}

CentralityScores centrality_scores(const DiGraph& g,
                                   std::size_t num_threads) {
  CentralityOptions options;
  options.num_threads = num_threads;
  return centrality_scores(g, options);
}

std::vector<double> betweenness_centrality(const DiGraph& g) {
  return std::move(centrality_scores(g).betweenness);
}

std::vector<double> closeness_centrality(const DiGraph& g) {
  return std::move(centrality_scores(g).closeness);
}

std::vector<double> centrality_factor(const DiGraph& g,
                                      std::size_t num_threads) {
  auto scores = centrality_scores(g, num_threads);
  auto cf = std::move(scores.betweenness);
  for (std::size_t i = 0; i < cf.size(); ++i) cf[i] += scores.closeness[i];
  return cf;
}

std::vector<double> centrality_factor(const DiGraph& g,
                                      const CentralityOptions& options) {
  auto scores = centrality_scores(g, options);
  auto cf = std::move(scores.betweenness);
  for (std::size_t i = 0; i < cf.size(); ++i) cf[i] += scores.closeness[i];
  return cf;
}

std::vector<std::uint64_t> pivot_priorities(const DiGraph& g,
                                            std::uint64_t seed) {
  const UndirectedCsr csr(g);
  return signature_priorities(csr, g.node_count(), seed);
}

std::vector<NodeId> pivot_nodes(const DiGraph& g,
                                const ApproxCentralityOptions& options) {
  validate(options);
  const std::size_t n = g.node_count();
  const std::size_t pivot_count = resolved_pivot_count(n, options);
  if (pivot_count >= n) {
    std::vector<NodeId> all(n);
    std::iota(all.begin(), all.end(), NodeId{0});
    return all;
  }
  const UndirectedCsr csr(g);
  return select_pivots(signature_priorities(csr, n, options.seed),
                       pivot_count);
}

}  // namespace soteria::graph
