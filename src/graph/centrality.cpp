#include "graph/centrality.h"

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "runtime/thread_pool.h"

namespace soteria::graph {

namespace {

// Sources are processed in fixed-size chunks regardless of thread
// count; each chunk owns a partial betweenness accumulator and the
// partials merge in chunk order, which keeps the parallel variant's
// result independent of scheduling (see the header's determinism note).
constexpr std::size_t kSourceChunk = 64;

// CSR snapshot of the undirected view: one flat neighbor array plus
// per-node offsets, with each row sorted and deduplicated exactly like
// DiGraph::undirected_neighbors. One allocation pair instead of a
// vector-of-vectors, and each BFS avoids re-deduplicating.
struct UndirectedCsr {
  std::vector<std::size_t> offsets;  // node_count + 1
  std::vector<NodeId> neighbors;

  explicit UndirectedCsr(const DiGraph& g) {
    const std::size_t n = g.node_count();
    offsets.assign(n + 1, 0);
    neighbors.reserve(2 * g.edge_count());
    std::vector<NodeId> row;
    for (NodeId v = 0; v < n; ++v) {
      const auto succ = g.successors(v);
      const auto pred = g.predecessors(v);
      row.assign(succ.begin(), succ.end());
      row.insert(row.end(), pred.begin(), pred.end());
      std::sort(row.begin(), row.end());
      row.erase(std::unique(row.begin(), row.end()), row.end());
      neighbors.insert(neighbors.end(), row.begin(), row.end());
      offsets[v + 1] = neighbors.size();
    }
  }

  [[nodiscard]] std::span<const NodeId> row(NodeId v) const noexcept {
    return {neighbors.data() + offsets[v], offsets[v + 1] - offsets[v]};
  }
};

// Flat per-source scratch, reused across sources (one instance per
// worker in the parallel variant). `order` doubles as the BFS FIFO: a
// head cursor walks it while discovery appends, so dequeue order equals
// append order and no separate queue is needed.
struct FusedScratch {
  std::vector<double> sigma;       // # shortest paths from the source
  std::vector<double> delta;       // continuation counts (integers)
  std::vector<std::int64_t> dist;  // BFS distance, -1 = unseen
  std::vector<NodeId> order;       // nodes in non-decreasing distance

  explicit FusedScratch(std::size_t n)
      : sigma(n), delta(n), dist(n) {
    order.reserve(n);
  }
};

// One fused sweep from source `s`: BFS over the CSR fills sigma / dist /
// order; the distances directly yield s's closeness; the reverse sweep
// accumulates Brandes dependencies into `betweenness` and the pair-path
// normalizer into `total_pair_paths`. Predecessors of w are the CSR
// neighbors u with dist[u] + 1 == dist[w] — no predecessor lists.
void fused_source_sweep(const UndirectedCsr& csr, std::size_t n, NodeId s,
                        FusedScratch& scratch,
                        std::vector<double>& betweenness,
                        double& total_pair_paths, double& closeness_out) {
  auto& sigma = scratch.sigma;
  auto& delta = scratch.delta;
  auto& dist = scratch.dist;
  auto& order = scratch.order;
  std::fill(sigma.begin(), sigma.end(), 0.0);
  std::fill(delta.begin(), delta.end(), 0.0);
  std::fill(dist.begin(), dist.end(), -1);
  order.clear();

  sigma[s] = 1.0;
  dist[s] = 0;
  order.push_back(s);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const NodeId u = order[head];
    for (NodeId w : csr.row(u)) {
      if (dist[w] < 0) {
        dist[w] = dist[u] + 1;
        order.push_back(w);
      }
      if (dist[w] == dist[u] + 1) sigma[w] += sigma[u];
    }
  }

  // Closeness falls out of the BFS distances Brandes just computed;
  // accumulate in node-id order (the naive reference's order).
  double distance_sum = 0.0;
  std::size_t reachable = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (dist[v] > 0) {
      distance_sum += static_cast<double>(dist[v]);
      ++reachable;
    }
  }
  closeness_out = distance_sum > 0.0
                      ? static_cast<double>(reachable) / distance_sum
                      : 0.0;

  for (NodeId t : order) {
    if (t != s) total_pair_paths += sigma[t];
  }

  // delta[v] accumulates c(v) = number of shortest-path continuations
  // from v to any strictly-downstream target in the BFS DAG; the number
  // of shortest s-t paths through v (summed over t) is sigma[v] * c(v).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId w = *it;
    const double contribution = 1.0 + delta[w];
    for (NodeId u : csr.row(w)) {
      if (dist[u] + 1 == dist[w]) delta[u] += contribution;
    }
    if (w != s) betweenness[w] += delta[w] * sigma[w];
  }
}

}  // namespace

CentralityScores centrality_scores(const DiGraph& g,
                                   std::size_t num_threads) {
  const std::size_t n = g.node_count();
  CentralityScores scores{std::vector<double>(n, 0.0),
                          std::vector<double>(n, 0.0)};
  if (n < 2) return scores;

  const UndirectedCsr csr(g);
  const std::size_t threads = runtime::resolve_threads(num_threads);
  double total_pair_paths = 0.0;  // Delta(m): total shortest paths
                                  // between distinct unordered pairs

  if (threads == 1 || n <= kSourceChunk) {
    FusedScratch scratch(n);
    for (NodeId s = 0; s < n; ++s) {
      fused_source_sweep(csr, n, s, scratch, scores.betweenness,
                         total_pair_paths, scores.closeness[s]);
    }
  } else {
    // Parallel over fixed-size source chunks. Closeness entries are
    // per-source (disjoint writes); betweenness and the pair-path
    // total accumulate into per-chunk partials merged in chunk order
    // below. All accumulators are integer-valued until the final
    // divisions, so this matches the serial sweep bit-for-bit.
    struct ChunkPartial {
      std::vector<double> betweenness;
      double pair_paths = 0.0;
    };
    const std::size_t chunks = (n + kSourceChunk - 1) / kSourceChunk;
    auto partials = runtime::parallel_map(
        threads, chunks, [&](std::size_t c) {
          ChunkPartial partial;
          partial.betweenness.assign(n, 0.0);
          FusedScratch scratch(n);
          const NodeId begin = c * kSourceChunk;
          const NodeId end = std::min(n, begin + kSourceChunk);
          for (NodeId s = begin; s < end; ++s) {
            fused_source_sweep(csr, n, s, scratch, partial.betweenness,
                               partial.pair_paths, scores.closeness[s]);
          }
          return partial;
        });
    for (const auto& partial : partials) {
      for (std::size_t v = 0; v < n; ++v) {
        scores.betweenness[v] += partial.betweenness[v];
      }
      total_pair_paths += partial.pair_paths;
    }
  }

  // Each unordered pair was visited from both endpoints; halve both the
  // accumulated path counts and the normalizer, which cancels.
  if (total_pair_paths > 0.0) {
    for (double& b : scores.betweenness) b /= total_pair_paths;
  }
  return scores;
}

std::vector<double> betweenness_centrality(const DiGraph& g) {
  return std::move(centrality_scores(g).betweenness);
}

std::vector<double> closeness_centrality(const DiGraph& g) {
  return std::move(centrality_scores(g).closeness);
}

std::vector<double> centrality_factor(const DiGraph& g,
                                      std::size_t num_threads) {
  auto scores = centrality_scores(g, num_threads);
  auto cf = std::move(scores.betweenness);
  for (std::size_t i = 0; i < cf.size(); ++i) cf[i] += scores.closeness[i];
  return cf;
}

}  // namespace soteria::graph
