// Dominator analysis and natural-loop detection on CFGs.
//
// Classic compiler-style analyses a CFG library is expected to ship:
// immediate dominators (Cooper-Harvey-Kennedy iterative algorithm) and
// natural loops (back edges u -> h where h dominates u, plus the loop
// body reachable backwards from u without passing h). Used by tests to
// characterize generated firmware and available to downstream users for
// richer structural features.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.h"

namespace soteria::graph {

/// Sentinel for "no immediate dominator" (unreachable nodes) in idom
/// arrays; the entry node's idom is itself.
inline constexpr NodeId kNoDominator = static_cast<NodeId>(-1);

/// Immediate dominators of every node w.r.t. `entry`. idom[entry] ==
/// entry; unreachable nodes get kNoDominator. Throws std::out_of_range
/// for an invalid entry, std::invalid_argument for an empty graph.
[[nodiscard]] std::vector<NodeId> immediate_dominators(const DiGraph& g,
                                                       NodeId entry);

/// True if `a` dominates `b` under the given idom array (reflexive).
[[nodiscard]] bool dominates(const std::vector<NodeId>& idom, NodeId a,
                             NodeId b);

/// One natural loop: its header and its body (header included).
struct NaturalLoop {
  NodeId header = 0;
  std::vector<NodeId> body;  ///< sorted, includes the header
};

/// All natural loops of `g` w.r.t. `entry`, one per back edge, ordered
/// by (header, back-edge source). Irreducible cycles (no dominating
/// header) are not reported — exactly the compiler-textbook definition.
[[nodiscard]] std::vector<NaturalLoop> natural_loops(const DiGraph& g,
                                                     NodeId entry);

}  // namespace soteria::graph
