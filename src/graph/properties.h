// Whole-graph structural summaries.
//
// These power (a) dataset reports, and (b) the Alasmary et al. [3]
// graph-theoretic baseline, which classifies malware from the "general
// structure of the CFG": node/edge counts, degree statistics, density,
// centrality statistics, shortest-path statistics, and component counts.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.h"

namespace soteria::graph {

/// Structural profile of a directed graph.
struct GraphProperties {
  std::size_t node_count = 0;
  std::size_t edge_count = 0;
  double density = 0.0;  ///< |E| / (|V| * (|V|-1)) for directed graphs
  double mean_degree = 0.0;
  double max_degree = 0.0;
  double degree_stddev = 0.0;
  double mean_betweenness = 0.0;
  double max_betweenness = 0.0;
  double mean_closeness = 0.0;
  double max_closeness = 0.0;
  double mean_shortest_path = 0.0;  ///< over reachable directed pairs
  std::size_t diameter = 0;         ///< directed, over reachable pairs
  std::size_t leaf_count = 0;       ///< nodes with out-degree 0
  std::size_t branch_count = 0;     ///< nodes with out-degree >= 2
  std::size_t loop_edge_count = 0;  ///< edges closing a cycle (back or self)
};

/// Computes the full profile. O(V*E) dominated by the centrality and
/// all-pairs-BFS terms; fine for CFG-sized graphs.
[[nodiscard]] GraphProperties graph_properties(const DiGraph& g);

/// Flattens the profile into a fixed-order feature vector for the
/// baseline classifier. Order matches the struct declaration.
[[nodiscard]] std::vector<float> to_feature_vector(const GraphProperties& p);

/// Number of features produced by to_feature_vector().
inline constexpr std::size_t kGraphFeatureCount = 15;

}  // namespace soteria::graph
