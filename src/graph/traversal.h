// Breadth-first traversal utilities: levels, reachability, shortest-path
// distances. These drive level-based labeling (LBL) and the extractor's
// unreachable-code pruning.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "graph/digraph.h"

namespace soteria::graph {

/// Sentinel for "not reachable" in distance/level arrays.
inline constexpr std::size_t kUnreachable =
    std::numeric_limits<std::size_t>::max();

/// Directed BFS distance (#edges) from `source` to every node;
/// kUnreachable where no path exists. Throws on invalid source.
[[nodiscard]] std::vector<std::size_t> bfs_distances(const DiGraph& g,
                                                     NodeId source);

/// BFS distances over the *undirected* view of the graph.
[[nodiscard]] std::vector<std::size_t> undirected_bfs_distances(
    const DiGraph& g, NodeId source);

/// Paper's node level: 1 + (smallest number of steps from the entry),
/// i.e. the entry node has level 1. Unreachable nodes get kUnreachable.
[[nodiscard]] std::vector<std::size_t> node_levels(const DiGraph& g,
                                                   NodeId entry);

/// Nodes reachable from `source` by directed edges (including source).
[[nodiscard]] std::vector<bool> reachable_from(const DiGraph& g,
                                               NodeId source);

/// True if the undirected view of the graph is connected (empty graphs
/// count as connected).
[[nodiscard]] bool is_weakly_connected(const DiGraph& g);

/// Length of the longest shortest path between any reachable ordered
/// pair (directed diameter over the reachable relation). 0 for graphs
/// with < 2 nodes.
[[nodiscard]] std::size_t directed_diameter(const DiGraph& g);

}  // namespace soteria::graph
