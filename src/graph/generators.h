// Random graph generators for tests and micro-benchmarks.
//
// These produce structured directed graphs with known invariants
// (connectivity from node 0, bounded degree) so property tests can
// exercise labeling/walk code on shapes beyond what the ISA code
// generator emits.
#pragma once

#include <cstddef>

#include "graph/digraph.h"
#include "math/rng.h"

namespace soteria::graph {

/// Erdos-Renyi-style G(n, p) digraph (no self loops). Node 0 is wired to
/// be an entry: every node is made reachable from 0 by adding a spanning
/// arborescence first.
[[nodiscard]] DiGraph random_connected_dag_plus(std::size_t n, double p,
                                                math::Rng& rng);

/// A chain 0 -> 1 -> ... -> n-1 with optional extra back edges, useful
/// for level-labeling tests.
[[nodiscard]] DiGraph chain_graph(std::size_t n, std::size_t back_edges,
                                  math::Rng& rng);

/// Balanced binary in-tree rooted at node 0 (edges parent -> children),
/// i.e. a CFG-like branching structure of the given depth.
[[nodiscard]] DiGraph binary_tree(std::size_t depth);

/// Complete directed graph on n nodes (every ordered pair, no self
/// loops).
[[nodiscard]] DiGraph complete_digraph(std::size_t n);

/// Barabasi-Albert-style scale-free digraph: nodes arrive one at a
/// time and wire up to `edges_per_node` out-edges to earlier nodes
/// drawn proportionally to current degree (preferential attachment),
/// so a few early hubs collect most of the edges — the heavy-tailed
/// degree profile of call-heavy CFG regions. Connected in the
/// undirected view by construction.
[[nodiscard]] DiGraph scale_free_digraph(std::size_t n,
                                         std::size_t edges_per_node,
                                         math::Rng& rng);

/// Firmware-shaped CFG: many small chain-with-branches "function
/// bodies" stitched together by call edges biased toward a handful of
/// hub bodies (memcpy-style helpers), plus occasional intra-body back
/// edges — the sparse-but-hubby shape of stripped firmware CFGs. Every
/// node is reachable from node 0 (the first body's entry).
[[nodiscard]] DiGraph firmware_like_cfg(std::size_t n, math::Rng& rng);

}  // namespace soteria::graph
