// Random graph generators for tests and micro-benchmarks.
//
// These produce structured directed graphs with known invariants
// (connectivity from node 0, bounded degree) so property tests can
// exercise labeling/walk code on shapes beyond what the ISA code
// generator emits.
#pragma once

#include <cstddef>

#include "graph/digraph.h"
#include "math/rng.h"

namespace soteria::graph {

/// Erdos-Renyi-style G(n, p) digraph (no self loops). Node 0 is wired to
/// be an entry: every node is made reachable from 0 by adding a spanning
/// arborescence first.
[[nodiscard]] DiGraph random_connected_dag_plus(std::size_t n, double p,
                                                math::Rng& rng);

/// A chain 0 -> 1 -> ... -> n-1 with optional extra back edges, useful
/// for level-labeling tests.
[[nodiscard]] DiGraph chain_graph(std::size_t n, std::size_t back_edges,
                                  math::Rng& rng);

/// Balanced binary in-tree rooted at node 0 (edges parent -> children),
/// i.e. a CFG-like branching structure of the given depth.
[[nodiscard]] DiGraph binary_tree(std::size_t depth);

/// Complete directed graph on n nodes (every ordered pair, no self
/// loops).
[[nodiscard]] DiGraph complete_digraph(std::size_t n);

}  // namespace soteria::graph
