// Betweenness and closeness centrality, fused into one Brandes pass.
//
// Soteria's labeling breaks density ties with the *centrality factor*
// CF(v) = betweenness(v) + closeness(v) (paper, Section III-B.1). We
// compute both over the undirected view of the CFG: a CFG is weakly
// connected from its entry, so the undirected view gives every node a
// finite closeness and makes the tie-break total.
//
// Implementation: the graph is snapshotted once into a CSR (flat
// offsets + neighbor array) of the undirected view, and a single
// Brandes sweep per source yields *both* metrics — the BFS distances
// Brandes already computes are exactly what closeness needs, so the
// second all-sources sweep of the naive formulation disappears. All
// per-source scratch (sigma, dependency, distance, visit order) lives
// in flat reusable buffers; there are no per-node predecessor lists
// (predecessors are recovered from the CSR row by the distance
// condition during the reverse sweep).
//
// Determinism: every accumulator (path counts, dependency counts, pair
// totals) holds nonnegative integers exactly representable in doubles
// until the two final normalizing divisions, so the parallel
// over-sources variant — fixed-size source chunks with per-chunk
// partial accumulators merged in chunk order — produces bit-identical
// results at any thread count, and identical to the serial sweep. The
// naive two-sweep reference lives on as `tests/graph/naive_centrality.h`
// with a property test pinning exact agreement.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.h"

namespace soteria::graph {

/// Both centrality vectors from one fused pass.
struct CentralityScores {
  std::vector<double> betweenness;
  std::vector<double> closeness;
};

/// Fused single-pass computation of betweenness and closeness over the
/// undirected view. `num_threads` follows the runtime convention
/// (0 = all hardware threads, 1 = serial); sources are processed in
/// fixed-size chunks whose partial sums merge in chunk order, so the
/// result is bit-identical at any thread count.
[[nodiscard]] CentralityScores centrality_scores(const DiGraph& g,
                                                 std::size_t num_threads = 1);

/// Normalized betweenness centrality over the undirected view:
/// B(v) = (# shortest paths through v) / (total # shortest paths between
/// distinct pairs), matching the paper's Delta(v)/Delta(m) definition.
/// Returns one value per node; all zeros for graphs with < 3 nodes.
[[nodiscard]] std::vector<double> betweenness_centrality(const DiGraph& g);

/// Closeness centrality over the undirected view:
/// C(v) = (reachable_count) / (sum of distances to reachable nodes),
/// 0 for isolated nodes. Higher = more central (the reciprocal of the
/// paper's "average shortest path" phrasing, oriented so that larger CF
/// means more central, as the paper's labeling examples require).
[[nodiscard]] std::vector<double> closeness_centrality(const DiGraph& g);

/// CF(v) = betweenness(v) + closeness(v), from one fused pass.
[[nodiscard]] std::vector<double> centrality_factor(
    const DiGraph& g, std::size_t num_threads = 1);

}  // namespace soteria::graph
