// Betweenness and closeness centrality (Brandes' algorithm + BFS).
//
// Soteria's labeling breaks density ties with the *centrality factor*
// CF(v) = betweenness(v) + closeness(v) (paper, Section III-B.1). We
// compute both over the undirected view of the CFG: a CFG is weakly
// connected from its entry, so the undirected view gives every node a
// finite closeness and makes the tie-break total.
#pragma once

#include <vector>

#include "graph/digraph.h"

namespace soteria::graph {

/// Normalized betweenness centrality over the undirected view:
/// B(v) = (# shortest paths through v) / (total # shortest paths between
/// distinct pairs), matching the paper's Delta(v)/Delta(m) definition.
/// Returns one value per node; all zeros for graphs with < 3 nodes.
[[nodiscard]] std::vector<double> betweenness_centrality(const DiGraph& g);

/// Closeness centrality over the undirected view:
/// C(v) = (reachable_count - 1) / sum of distances to reachable nodes,
/// 0 for isolated nodes. Higher = more central (the reciprocal of the
/// paper's "average shortest path" phrasing, oriented so that larger CF
/// means more central, as the paper's labeling examples require).
[[nodiscard]] std::vector<double> closeness_centrality(const DiGraph& g);

/// CF(v) = betweenness(v) + closeness(v).
[[nodiscard]] std::vector<double> centrality_factor(const DiGraph& g);

}  // namespace soteria::graph
