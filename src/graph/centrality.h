// Betweenness and closeness centrality, fused into one Brandes pass —
// exact or sampled-pivot approximate.
//
// Soteria's labeling breaks density ties with the *centrality factor*
// CF(v) = betweenness(v) + closeness(v) (paper, Section III-B.1). We
// compute both over the undirected view of the CFG: a CFG is weakly
// connected from its entry, so the undirected view gives every node a
// finite closeness and makes the tie-break total.
//
// Exact path: the graph is snapshotted once into a CSR (flat offsets +
// neighbor array) of the undirected view, and a single Brandes sweep
// per source yields *both* metrics — the BFS distances Brandes already
// computes are exactly what closeness needs, so the second all-sources
// sweep of the naive formulation disappears. All per-source scratch
// (sigma, dependency, distance, visit order) lives in flat reusable
// buffers; there are no per-node predecessor lists (predecessors are
// recovered from the CSR row by the distance condition during the
// reverse sweep). The parallel variant distributes *dynamic chunks* of
// sources over `runtime::ThreadPool` runners; each runner accumulates
// into its own per-thread partial buffers (claimed once per region via
// `parallel_for_slots`) which merge exactly once at the end — no
// per-chunk allocation, no merge contention.
//
// Approximate path (opt-in, for real-firmware-scale graphs): Brandes
// sweeps run only from a sample of r pivot sources, and both metrics
// are estimated from those sweeps — betweenness as the ratio of
// pivot-accumulated through-paths to pivot-accumulated pair paths
// (the n/r scale factors cancel), closeness per node from the pivot
// distances the sweeps produce anyway (undirected BFS distances are
// symmetric). The pivot count follows the Hoeffding/union-bound form
// of the Riondato-style additive-error guarantee: r >= ln(2n/delta) /
// (2 epsilon^2) pivots bound the normalized-betweenness error by
// epsilon for every node simultaneously with probability 1 - delta.
// Pivots are drawn from a fixed-seed generator hashed through
// *structural node signatures* (Weisfeiler-Leman-style refinement of
// degrees over the undirected view), so the sample is a deterministic
// pure function of (graph content, seed): reproducible across runs and
// thread counts, and equivariant under node-id permutation whenever
// the signatures separate the nodes — the property the labeling
// permutation suite relies on.
//
// Determinism: every accumulator (path counts, dependency counts, pair
// totals, distance sums) holds nonnegative integers exactly
// representable in doubles until the final normalizing divisions, so
// sums are associative-exact: any scheduling of sources or pivots onto
// threads merges to bit-identical results at every thread count, and
// identical to the serial sweep. The naive two-sweep reference lives on
// as `tests/graph/naive_centrality.h` with a property test pinning
// exact agreement; `tests/graph/rank_stability_test.cpp` pins the
// approximate path's rank-level agreement.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace soteria::graph {

/// Both centrality vectors from one fused pass.
struct CentralityScores {
  std::vector<double> betweenness;
  std::vector<double> closeness;
};

/// Parameters of the sampled-pivot approximation.
struct ApproxCentralityOptions {
  /// Explicit number of pivot sources; 0 (default) derives the count
  /// from (epsilon, delta) via riondato_pivot_count. Counts >= the
  /// node count run the exact path (which the estimator then equals
  /// bit for bit).
  std::size_t pivot_count = 0;

  /// Additive error target on the normalized betweenness scores.
  double epsilon = 0.1;

  /// Failure probability of the epsilon bound (union over all nodes).
  double delta = 0.01;

  /// Seed of the pivot draw. Same (graph, seed) => same pivots, same
  /// scores, at any thread count; different seeds draw independent
  /// samples.
  std::uint64_t seed = 0x536f7465;  // "Sote"

  [[nodiscard]] bool operator==(const ApproxCentralityOptions&) const =
      default;
};

/// Throws std::invalid_argument for epsilon/delta outside (0, 1).
void validate(const ApproxCentralityOptions& options);

/// Pivot count guaranteeing additive error <= epsilon on every node's
/// normalized betweenness with probability >= 1 - delta (Hoeffding +
/// union bound): ceil(ln(2 * nodes / delta) / (2 * epsilon^2)).
[[nodiscard]] std::size_t riondato_pivot_count(std::size_t nodes,
                                               double epsilon,
                                               double delta);

/// Inverse of riondato_pivot_count: the additive error bound that
/// `pivots` samples buy on an n-node graph at failure probability
/// delta — sqrt(ln(2 * nodes / delta) / (2 * pivots)).
[[nodiscard]] double approx_error_bound(std::size_t nodes,
                                        std::size_t pivots, double delta);

/// The number of pivot sweeps an approximate run on an n-node graph
/// will perform: pivot_count when set, else
/// riondato_pivot_count(nodes, epsilon, delta), capped at nodes.
/// When this returns `nodes`, the approximate path IS the exact path.
[[nodiscard]] std::size_t resolved_pivot_count(
    std::size_t nodes, const ApproxCentralityOptions& options);

/// Per-call knobs of centrality_scores / centrality_factor.
struct CentralityOptions {
  /// Worker threads, runtime convention (0 = all hardware threads,
  /// 1 = serial). Results are bit-identical at any setting.
  std::size_t num_threads = 1;

  /// Run the sampled-pivot approximation instead of the exact sweep.
  bool approximate = false;

  /// Approximation parameters (ignored unless `approximate`).
  ApproxCentralityOptions approx;
};

/// Fused computation of betweenness and closeness over the undirected
/// view — exact all-sources Brandes, or the sampled-pivot estimate when
/// `options.approximate` (see the header comment for both designs).
[[nodiscard]] CentralityScores centrality_scores(
    const DiGraph& g, const CentralityOptions& options);

/// Exact fused pass at a given thread count (historical signature).
[[nodiscard]] CentralityScores centrality_scores(const DiGraph& g,
                                                 std::size_t num_threads = 1);

/// Normalized betweenness centrality over the undirected view:
/// B(v) = (# shortest paths through v) / (total # shortest paths between
/// distinct pairs), matching the paper's Delta(v)/Delta(m) definition.
/// Returns one value per node; all zeros for graphs with < 3 nodes.
[[nodiscard]] std::vector<double> betweenness_centrality(const DiGraph& g);

/// Closeness centrality over the undirected view:
/// C(v) = (reachable_count) / (sum of distances to reachable nodes),
/// 0 for isolated nodes. Higher = more central (the reciprocal of the
/// paper's "average shortest path" phrasing, oriented so that larger CF
/// means more central, as the paper's labeling examples require).
[[nodiscard]] std::vector<double> closeness_centrality(const DiGraph& g);

/// CF(v) = betweenness(v) + closeness(v), from one fused pass.
[[nodiscard]] std::vector<double> centrality_factor(
    const DiGraph& g, std::size_t num_threads = 1);

/// CF(v) under the full option set (exact or approximate).
[[nodiscard]] std::vector<double> centrality_factor(
    const DiGraph& g, const CentralityOptions& options);

/// The structural signature each node carries into the pivot draw:
/// a fixed number of Weisfeiler-Leman refinement rounds over the
/// undirected view, folded with `seed`. Exposed for tests and
/// diagnostics — when all values are distinct, the pivot sample (and
/// therefore every approximate score) is exactly equivariant under
/// node-id permutation.
[[nodiscard]] std::vector<std::uint64_t> pivot_priorities(
    const DiGraph& g, std::uint64_t seed);

/// The pivot sources an approximate run would sweep from (the
/// resolved_pivot_count nodes with the smallest priorities, ties by
/// node id), in ascending node-id order. Exposed for tests.
[[nodiscard]] std::vector<NodeId> pivot_nodes(
    const DiGraph& g, const ApproxCentralityOptions& options);

}  // namespace soteria::graph
