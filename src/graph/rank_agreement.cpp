#include "graph/rank_agreement.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <numeric>
#include <stdexcept>
#include <string>

namespace soteria::graph {

namespace {

// Indices of `values` sorted by descending value, ties toward the
// smaller index.
[[nodiscard]] std::vector<std::size_t> descending_order(
    std::span<const double> values) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (values[a] != values[b]) return values[a] > values[b];
    return a < b;
  });
  return order;
}

void check_same_length(std::span<const double> a, std::span<const double> b,
                       const char* what) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string(what) + ": length mismatch");
  }
}

}  // namespace

std::vector<double> fractional_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  const auto order = descending_order(values);
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Positions i..j (0-based) share the mean 1-based rank.
    const double shared = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = shared;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> a, std::span<const double> b) {
  check_same_length(a, b, "spearman");
  const std::size_t n = a.size();
  if (n < 2) return 1.0;
  const auto ra = fractional_ranks(a);
  const auto rb = fractional_ranks(b);
  // Both rank vectors share the mean (n + 1) / 2 by construction.
  const double mean = 0.5 * static_cast<double>(n + 1);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = ra[i] - mean;
    const double db = rb[i] - mean;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 && var_b == 0.0) return 1.0;
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

double top_k_overlap(std::span<const double> a, std::span<const double> b,
                     std::size_t k) {
  check_same_length(a, b, "top_k_overlap");
  k = std::min(k, a.size());
  if (k == 0) return 1.0;
  auto order_a = descending_order(a);
  auto order_b = descending_order(b);
  order_a.resize(k);
  order_b.resize(k);
  std::sort(order_a.begin(), order_a.end());
  std::sort(order_b.begin(), order_b.end());
  std::vector<std::size_t> common;
  std::set_intersection(order_a.begin(), order_a.end(), order_b.begin(),
                        order_b.end(), std::back_inserter(common));
  return static_cast<double>(common.size()) / static_cast<double>(k);
}

}  // namespace soteria::graph
