#include "graph/generators.h"

#include <stdexcept>

namespace soteria::graph {

DiGraph random_connected_dag_plus(std::size_t n, double p, math::Rng& rng) {
  if (n == 0) throw std::invalid_argument("random graph: n must be > 0");
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("random graph: p outside [0,1]");
  DiGraph g(n);
  // Spanning structure: each node v > 0 gets one parent among [0, v).
  for (NodeId v = 1; v < n; ++v) {
    const NodeId parent = rng.index(v);
    g.add_edge(parent, v);
  }
  // Extra random edges.
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      if (rng.bernoulli(p)) g.add_edge(u, v);
    }
  }
  return g;
}

DiGraph chain_graph(std::size_t n, std::size_t back_edges, math::Rng& rng) {
  if (n == 0) throw std::invalid_argument("chain graph: n must be > 0");
  DiGraph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  for (std::size_t i = 0; i < back_edges && n > 1; ++i) {
    const NodeId from = 1 + rng.index(n - 1);
    const NodeId to = rng.index(from);
    g.add_edge(from, to);
  }
  return g;
}

DiGraph binary_tree(std::size_t depth) {
  const std::size_t n = (std::size_t{1} << (depth + 1)) - 1;
  DiGraph g(n);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId left = 2 * v + 1;
    const NodeId right = 2 * v + 2;
    if (left < n) g.add_edge(v, left);
    if (right < n) g.add_edge(v, right);
  }
  return g;
}

DiGraph complete_digraph(std::size_t n) {
  DiGraph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = 0; v < n; ++v)
      if (u != v) g.add_edge(u, v);
  return g;
}

}  // namespace soteria::graph
