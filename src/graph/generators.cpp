#include "graph/generators.h"

#include <stdexcept>

namespace soteria::graph {

DiGraph random_connected_dag_plus(std::size_t n, double p, math::Rng& rng) {
  if (n == 0) throw std::invalid_argument("random graph: n must be > 0");
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("random graph: p outside [0,1]");
  DiGraph g(n);
  // Spanning structure: each node v > 0 gets one parent among [0, v).
  for (NodeId v = 1; v < n; ++v) {
    const NodeId parent = rng.index(v);
    g.add_edge(parent, v);
  }
  // Extra random edges.
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      if (rng.bernoulli(p)) g.add_edge(u, v);
    }
  }
  return g;
}

DiGraph chain_graph(std::size_t n, std::size_t back_edges, math::Rng& rng) {
  if (n == 0) throw std::invalid_argument("chain graph: n must be > 0");
  DiGraph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  for (std::size_t i = 0; i < back_edges && n > 1; ++i) {
    const NodeId from = 1 + rng.index(n - 1);
    const NodeId to = rng.index(from);
    g.add_edge(from, to);
  }
  return g;
}

DiGraph binary_tree(std::size_t depth) {
  const std::size_t n = (std::size_t{1} << (depth + 1)) - 1;
  DiGraph g(n);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId left = 2 * v + 1;
    const NodeId right = 2 * v + 2;
    if (left < n) g.add_edge(v, left);
    if (right < n) g.add_edge(v, right);
  }
  return g;
}

DiGraph complete_digraph(std::size_t n) {
  DiGraph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = 0; v < n; ++v)
      if (u != v) g.add_edge(u, v);
  return g;
}

DiGraph scale_free_digraph(std::size_t n, std::size_t edges_per_node,
                           math::Rng& rng) {
  if (n == 0) throw std::invalid_argument("scale-free graph: n must be > 0");
  if (edges_per_node == 0)
    throw std::invalid_argument("scale-free graph: edges_per_node must be > 0");
  DiGraph g(n);
  // Degree-proportional urn: every edge endpoint is appended, so a
  // uniform draw from the urn is a preferential-attachment draw.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * n * edges_per_node);
  endpoints.push_back(0);
  for (NodeId v = 1; v < n; ++v) {
    const std::size_t wanted = std::min<std::size_t>(edges_per_node, v);
    for (std::size_t e = 0; e < wanted; ++e) {
      const NodeId target = endpoints[rng.index(endpoints.size())];
      if (g.add_edge(v, target)) endpoints.push_back(target);
    }
    endpoints.push_back(v);
  }
  return g;
}

DiGraph firmware_like_cfg(std::size_t n, math::Rng& rng) {
  if (n == 0) throw std::invalid_argument("firmware cfg: n must be > 0");
  DiGraph g(n);
  // Partition the id range into consecutive function bodies of
  // geometric size; record each body's entry block.
  std::vector<NodeId> entries;
  NodeId v = 0;
  while (v < n) {
    const std::size_t body = std::min<std::size_t>(
        n - v, 3 + static_cast<std::size_t>(rng.positive_geometric(0.2)));
    entries.push_back(v);
    for (NodeId u = v; u + 1 < v + body; ++u) {
      g.add_edge(u, u + 1);  // fallthrough chain
      if (u + 2 < v + body && rng.bernoulli(0.3)) {
        g.add_edge(u, u + 2);  // if/else diamond
      }
      if (u > v && rng.bernoulli(0.05)) {
        g.add_edge(u, v + rng.index(u - v + 1));  // loop back edge
      }
    }
    v += body;
  }
  // Call edges: each body is entered from some earlier body (keeps
  // everything reachable from node 0) and, often, calls into one of a
  // few hub bodies — the library-helper shape of real firmware.
  const std::size_t hubs = std::max<std::size_t>(1, entries.size() / 16);
  for (std::size_t b = 1; b < entries.size(); ++b) {
    g.add_edge(entries[rng.index(b)], entries[b]);
    if (rng.bernoulli(0.6)) {
      const NodeId hub = entries[rng.index(hubs)];
      if (hub != entries[b]) g.add_edge(entries[b], hub);
    }
  }
  return g;
}

}  // namespace soteria::graph
