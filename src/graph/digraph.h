// Directed graph with adjacency lists; the backbone of every CFG.
//
// Nodes are dense indices [0, node_count). Parallel edges are rejected
// (a CFG has at most one edge between two blocks); self-loops are
// allowed (tight single-block loops exist in real firmware).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace soteria::graph {

/// Node identifier: dense index into the graph's node array.
using NodeId = std::size_t;

/// Directed graph over dense node ids with O(1) amortized edge insert
/// and O(deg) adjacency iteration.
class DiGraph {
 public:
  DiGraph() = default;

  /// Graph with `n` isolated nodes.
  explicit DiGraph(std::size_t n) : out_(n), in_(n) {}

  [[nodiscard]] std::size_t node_count() const noexcept {
    return out_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edge_count_;
  }
  [[nodiscard]] bool empty() const noexcept { return out_.empty(); }

  /// Appends a new isolated node and returns its id.
  NodeId add_node();

  /// Adds edge u -> v. Throws std::out_of_range for invalid endpoints.
  /// Returns false (and changes nothing) if the edge already exists.
  bool add_edge(NodeId u, NodeId v);

  /// True if edge u -> v exists. Throws on invalid endpoints.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Successors / predecessors of `v`. Throw on invalid node.
  [[nodiscard]] std::span<const NodeId> successors(NodeId v) const;
  [[nodiscard]] std::span<const NodeId> predecessors(NodeId v) const;

  [[nodiscard]] std::size_t out_degree(NodeId v) const;
  [[nodiscard]] std::size_t in_degree(NodeId v) const;

  /// in_degree + out_degree (self-loops count twice, once per direction).
  [[nodiscard]] std::size_t total_degree(NodeId v) const;

  /// Neighbours in the undirected view of the graph, deduplicated and
  /// sorted. A node u appears once even if both u->v and v->u exist.
  [[nodiscard]] std::vector<NodeId> undirected_neighbors(NodeId v) const;

  /// All edges as (u, v) pairs, ordered by source then insertion.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Disjoint union: appends `other`, returning the id offset its nodes
  /// received (other's node k becomes offset + k).
  NodeId merge_disjoint(const DiGraph& other);

 private:
  void check_node(NodeId v, const char* what) const;

  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::size_t edge_count_ = 0;
};

}  // namespace soteria::graph
