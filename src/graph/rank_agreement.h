// Rank-level agreement metrics between score vectors.
//
// Soteria's DBL labeling consumes centrality *rankings*, not raw
// scores, so the right question for the sampled-pivot approximation is
// "does it rank nodes the way the exact sweep does?" — answered here
// with Spearman correlation over fractional ranks and top-k set
// overlap. The rank-stability property suite and bench/perf_graph both
// build on these; they live in src so the bench binary and any future
// calibration code share one definition.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace soteria::graph {

/// Fractional (average) ranks of `values`, descending: the largest
/// value gets rank 1, and tied values all receive the mean of the rank
/// positions they span — so the ranks of a permuted vector are the
/// same permutation of the original ranks regardless of ties.
[[nodiscard]] std::vector<double> fractional_ranks(
    std::span<const double> values);

/// Spearman rank correlation: Pearson correlation of the two vectors'
/// fractional ranks, in [-1, 1]. Degenerate cases: vectors shorter
/// than 2 or two constant vectors correlate 1.0 (no disagreement is
/// expressible); exactly one constant vector correlates 0.0. Throws
/// std::invalid_argument on length mismatch.
[[nodiscard]] double spearman(std::span<const double> a,
                              std::span<const double> b);

/// Top-k agreement: |topk(a) ∩ topk(b)| / k, where topk takes the k
/// largest values (ties broken toward smaller index, so the set is
/// deterministic). k is clamped to the vector length; k == 0 (or empty
/// vectors) returns 1.0. Throws std::invalid_argument on length
/// mismatch.
[[nodiscard]] double top_k_overlap(std::span<const double> a,
                                   std::span<const double> b, std::size_t k);

}  // namespace soteria::graph
