// x86-64 linear-sweep frontend (subset decoder).
//
// Decodes enough of the x86-64 instruction space to build honest basic
// blocks from real `.text` sections: legacy + REX prefixes, the full
// branch/call/ret family (jcc rel8/rel32, jmp rel8/rel32, call rel32,
// indirect jmp/call through the 0xFF group, ret/ret-imm16, hlt, int3,
// ud2), and the common ALU/mov/lea/test/push/pop/shift/imm groups with
// exact ModRM/SIB/displacement/immediate lengths so the sweep stays in
// phase across them. Anything outside the subset decodes conservatively
// as a one-byte fall-through instruction — the sweep never desyncs into
// UB, and unknown bytes can only *add* spurious fall-through, never
// invent control flow.
//
// Branch displacements resolve to instruction *starts*; a displacement
// that lands mid-instruction or outside `.text` yields no edge (the
// same policy as the toy ISA's out-of-range targets). This is a linear
// sweep like radare2's default analysis in the paper — recursive
// descent and ARM are future frontends (see ROADMAP).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "frontend/frontend.h"
#include "frontend/sweep.h"

namespace soteria::frontend {

/// One decoded (or conservatively skipped) x86-64 instruction.
struct X86Instruction {
  std::size_t length = 1;  ///< bytes consumed (>= 1)
  FlowKind kind = FlowKind::kFallthrough;
  /// Branch displacement relative to the next instruction; only
  /// meaningful when `has_target`.
  std::int64_t rel = 0;
  bool has_target = false;
  /// False when the opcode fell outside the decoded subset and the
  /// byte was skipped as a one-byte unknown.
  bool recognized = true;
};

/// Decodes the instruction at `code[offset..]`. Returns nullopt only
/// when `offset` is at or past the end. Never reads past `code`.
/// Exposed for the decoder unit tests.
[[nodiscard]] std::optional<X86Instruction> decode_x86_64(
    std::span<const std::uint8_t> code, std::size_t offset);

class X8664Frontend final : public Frontend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "x86_64";
  }

  /// ELF images with e_machine == EM_X86_64.
  [[nodiscard]] bool can_decode(
      const loader::Image& image) const noexcept override;

  /// Linear sweep over `.text`. Throws core::Error{kInvalidArgument}
  /// for an empty code region or one over `options.max_image_bytes`.
  [[nodiscard]] cfg::Cfg extract(
      const loader::Image& image,
      const FrontendOptions& options = {}) const override;
};

}  // namespace soteria::frontend
