// ISA-agnostic half of linear-sweep CFG extraction.
//
// Every front end reduces its instruction stream to a vector of
// `SweptInstruction` — just control-flow kind plus an optional absolute
// target index — and `build_cfg_from_sweep` turns that into a `cfg::Cfg`
// with exactly the leader/block/edge/pruning discipline the original
// toy-ISA extractor used:
//
//   * leaders: instruction 0, every in-range branch/call target, and
//     every instruction following a block terminator;
//   * edges, per block terminator:
//       kJump        -> target
//       kCondBranch  -> target + fall-through
//       kCall        -> callee entry + fall-through (return path)
//       kReturn/kHalt-> no successors
//       kFallthrough -> fall-through (block ended at the next leader)
//     added in that order, so the resulting DiGraph edge list — and
//     therefore every content hash downstream — is bit-identical to the
//     pre-seam `cfg::extract` for toy images (tests/frontend/ pins
//     this);
//   * optional pruning to the entry-reachable subgraph with compact ids.
#pragma once

#include <cstdint>
#include <span>

#include "cfg/cfg.h"
#include "frontend/options.h"

namespace soteria::frontend {

/// How one decoded instruction affects control flow.
enum class FlowKind : std::uint8_t {
  kFallthrough = 0,  ///< ordinary instruction: next instruction follows
  kJump,             ///< unconditional transfer to `target`
  kCondBranch,       ///< `target` or fall-through
  kCall,             ///< `target` plus the return fall-through path
  kReturn,           ///< no static successors
  kHalt,             ///< no successors (hlt / int3 / terminating trap)
};

/// One instruction of a linear sweep, reduced to what CFG construction
/// needs. `target` is an absolute instruction *index* (not a byte
/// offset); -1 means no in-range target — branches whose displacement
/// leaves the image, or lands mid-instruction, get no edge, exactly
/// like the toy extractor's out-of-range handling.
struct SweptInstruction {
  FlowKind kind = FlowKind::kFallthrough;
  std::int64_t target = -1;
};

/// Builds the CFG of a swept instruction stream. `entry_index` is the
/// instruction the program enters at (0 for raw images). Throws
/// core::Error{kInvalidArgument} for an empty sweep or an out-of-range
/// entry.
[[nodiscard]] cfg::Cfg build_cfg_from_sweep(
    std::span<const SweptInstruction> instructions, std::size_t entry_index,
    const FrontendOptions& options);

}  // namespace soteria::frontend
