#include "frontend/toy_isa_frontend.h"

#include <string>
#include <vector>

#include "frontend/sweep.h"
#include "isa/isa.h"
#include "obs/trace.h"
#include "soteria/error.h"

namespace soteria::frontend {

namespace {

using isa::Instruction;
using isa::Opcode;

/// Absolute instruction index a control-flow instruction at `index`
/// targets, or -1 if the target lands outside the image. (Verbatim the
/// pre-seam extractor's arithmetic — targets are relative to the
/// *following* instruction.)
std::int64_t branch_target(const Instruction& insn, std::size_t index,
                           std::size_t instruction_count) {
  const auto target =
      static_cast<std::int64_t>(index) + 1 + static_cast<std::int64_t>(insn.imm);
  if (target < 0 || target >= static_cast<std::int64_t>(instruction_count)) {
    return -1;
  }
  return target;
}

FlowKind flow_kind(Opcode op) noexcept {
  switch (op) {
    case Opcode::kJmp:
      return FlowKind::kJump;
    case Opcode::kJz:
    case Opcode::kJnz:
    case Opcode::kJlt:
    case Opcode::kJge:
      return FlowKind::kCondBranch;
    case Opcode::kCall:
      return FlowKind::kCall;
    case Opcode::kRet:
      return FlowKind::kReturn;
    case Opcode::kHalt:
      return FlowKind::kHalt;
    default:
      return FlowKind::kFallthrough;
  }
}

}  // namespace

bool ToyIsaFrontend::can_decode(const loader::Image& image) const noexcept {
  if (image.format == loader::Format::kRaw) return true;
  return image.machine == loader::kElfMachineToyIsa;
}

cfg::Cfg ToyIsaFrontend::extract(const loader::Image& image,
                                 const FrontendOptions& options) const {
  const auto code = image.text;
  if (code.empty()) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "ToyIsaFrontend: empty image");
  }
  if (options.max_image_bytes != 0 && code.size() > options.max_image_bytes) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "ToyIsaFrontend: image of " +
                          std::to_string(code.size()) +
                          " bytes exceeds max_image_bytes " +
                          std::to_string(options.max_image_bytes));
  }
  if (code.size() % isa::kInstructionSize != 0) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "ToyIsaFrontend: image size " +
                          std::to_string(code.size()) +
                          " is not a multiple of the instruction width");
  }
  const std::uint64_t entry_offset = image.entry_text_offset();
  if (entry_offset % isa::kInstructionSize != 0) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "ToyIsaFrontend: entry point not instruction-aligned");
  }

  const obs::Span span("cfg.extract");
  const auto instructions = isa::disassemble(code);
  const std::size_t n = instructions.size();
  obs::registry().counter_add("soteria.cfg.images");
  obs::registry().counter_add("soteria.cfg.instructions", n);

  std::vector<SweptInstruction> swept(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Instruction& insn = instructions[i];
    swept[i].kind = flow_kind(insn.opcode);
    if (isa::is_control_flow(insn.opcode)) {
      swept[i].target = branch_target(insn, i, n);
    }
  }
  return build_cfg_from_sweep(
      swept, static_cast<std::size_t>(entry_offset / isa::kInstructionSize),
      options);
}

}  // namespace soteria::frontend
