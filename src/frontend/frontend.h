// The Frontend seam: one interface per instruction set, turning a
// loaded binary image into a `cfg::Cfg`.
//
// Borrowed from Boomerang's loader/ + frontend/ + db/ architecture:
// loader/ (loader/elf.h) understands container formats, a `Frontend`
// understands one ISA's decode + sweep, and everything downstream of
// `cfg::Cfg` — labeling, walks, grams, detector, classifier, store,
// serve — is already CFG-shape-only, so a new ISA plugs in here and
// the whole production stack opens up to it.
//
// `FrontendRegistry` holds the available decoders and auto-detects the
// right one from an image's format metadata (ELF e_machine, raw =>
// toy). The built-in registry ships `ToyIsaFrontend` ("toy") and
// `X8664Frontend` ("x86_64").
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cfg/cfg.h"
#include "frontend/options.h"
#include "loader/image.h"

namespace soteria::frontend {

/// One per-ISA decoder. Implementations are stateless and safe to
/// share across threads.
class Frontend {
 public:
  virtual ~Frontend() = default;

  /// Stable identifier ("toy", "x86_64"). Part of the pipeline
  /// fingerprint via `features::PipelineConfig::frontend`, so it must
  /// never be renamed once models are persisted with it.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// True if this frontend understands `image` (format + machine
  /// sniff; no decoding work).
  [[nodiscard]] virtual bool can_decode(
      const loader::Image& image) const noexcept = 0;

  /// Extracts the CFG of `image`'s code region. Throws
  /// core::Error{kInvalidArgument} for images this frontend cannot
  /// decode or that violate `options` guards; never UB on arbitrary
  /// bytes.
  [[nodiscard]] virtual cfg::Cfg extract(
      const loader::Image& image,
      const FrontendOptions& options = {}) const = 0;
};

/// An ordered collection of decoders with by-name lookup and
/// magic-byte auto-detection.
class FrontendRegistry {
 public:
  /// Registers a decoder (detection considers them in registration
  /// order). Throws core::Error{kInvalidArgument} for null or a
  /// duplicate name.
  void add(std::shared_ptr<const Frontend> frontend);

  /// The frontend named `name`, or nullptr.
  [[nodiscard]] const Frontend* find(std::string_view name) const noexcept;

  /// The frontend named `name`; throws core::Error{kInvalidArgument}
  /// listing the registered names when it does not exist.
  [[nodiscard]] const Frontend& by_name(std::string_view name) const;

  /// The first registered frontend whose can_decode accepts `image`,
  /// or nullptr.
  [[nodiscard]] const Frontend* detect(
      const loader::Image& image) const noexcept;

  /// As above; throws core::Error{kInvalidArgument} when no decoder
  /// claims the image.
  [[nodiscard]] const Frontend& detect_or_throw(
      const loader::Image& image) const;

  /// Registered names, in registration order.
  [[nodiscard]] std::vector<std::string_view> names() const;

  [[nodiscard]] std::size_t size() const noexcept {
    return frontends_.size();
  }

  /// The process-wide registry with the built-in decoders (toy ISA,
  /// x86-64). Immutable after construction; safe to share.
  [[nodiscard]] static const FrontendRegistry& builtin();

 private:
  std::vector<std::shared_ptr<const Frontend>> frontends_;
};

/// Resolves the frontend for `image`: by `name` when non-empty (the
/// special name "auto" also auto-detects), else by detection. Throws
/// core::Error{kInvalidArgument} for an unknown name, a named frontend
/// that cannot decode the image, or a failed detection.
[[nodiscard]] const Frontend& resolve_frontend(const FrontendRegistry& registry,
                                               const loader::Image& image,
                                               std::string_view name = {});

}  // namespace soteria::frontend
