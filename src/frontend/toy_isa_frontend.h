// The toy-ISA (SIR-32) decoder, re-homed behind the Frontend seam.
//
// This is the original `cfg::extract` linear sweep — fixed 4-byte
// instructions, exact leader detection — now one of N registered
// decoders. It accepts raw images (the historical corpus format) and
// ELF containers whose e_machine carries the toy tag
// (loader::kElfMachineToyIsa), sweeping `.text` in the latter case.
// For raw images the produced CFG is bit-identical to the pre-seam
// `cfg::extract`, which now delegates here (pinned by
// tests/frontend/toy_identity_test.cpp).
#pragma once

#include "frontend/frontend.h"

namespace soteria::frontend {

class ToyIsaFrontend final : public Frontend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "toy";
  }

  /// Raw images, or ELF tagged with the toy machine value.
  [[nodiscard]] bool can_decode(
      const loader::Image& image) const noexcept override;

  /// Linear sweep over the code region. Throws
  /// core::Error{kInvalidArgument} for an empty region, a size that is
  /// not a multiple of the 4-byte instruction width, an entry point
  /// that is not instruction-aligned, or a region over
  /// `options.max_image_bytes`.
  [[nodiscard]] cfg::Cfg extract(
      const loader::Image& image,
      const FrontendOptions& options = {}) const override;
};

}  // namespace soteria::frontend
