// Shared extraction options for every binary front end.
//
// This is the type `cfg::ExtractOptions` collapsed into once extraction
// grew multiple decoders: the toy-ISA sweep, the x86-64 sweep, and any
// future frontend all honor the same knobs, and `cfg::extract` keeps
// accepting it unchanged via the `cfg::ExtractOptions` alias.
#pragma once

#include <cstddef>

namespace soteria::frontend {

/// Extraction options, honored by every `Frontend`.
struct FrontendOptions {
  /// Keep only blocks reachable from the entry block. Disabling this
  /// exposes unreachable code in the CFG; tests use it to demonstrate
  /// the append-immunity property.
  bool prune_unreachable = true;

  /// Upper bound on the size of the *code region* a frontend will
  /// sweep (bytes); 0 = unlimited. A guard for serving paths that
  /// accept untrusted files: images over the bound are rejected with
  /// core::Error{kInvalidArgument} before any decoding work.
  std::size_t max_image_bytes = 0;
};

}  // namespace soteria::frontend
