#include "frontend/sweep.h"

#include <utility>
#include <vector>

#include "graph/traversal.h"
#include "soteria/error.h"

namespace soteria::frontend {

cfg::Cfg build_cfg_from_sweep(std::span<const SweptInstruction> instructions,
                              std::size_t entry_index,
                              const FrontendOptions& options) {
  const std::size_t n = instructions.size();
  if (n == 0) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "build_cfg_from_sweep: empty instruction stream");
  }
  if (entry_index >= n) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "build_cfg_from_sweep: entry index out of range");
  }

  const auto in_range = [n](std::int64_t target) {
    return target >= 0 && target < static_cast<std::int64_t>(n);
  };

  // Pass 1: leaders. Instruction 0, the entry, every in-range target,
  // and every instruction following a block terminator.
  std::vector<bool> leader(n, false);
  leader[0] = true;
  leader[entry_index] = true;
  for (std::size_t i = 0; i < n; ++i) {
    const SweptInstruction& insn = instructions[i];
    if (in_range(insn.target)) {
      leader[static_cast<std::size_t>(insn.target)] = true;
    }
    if (insn.kind != FlowKind::kFallthrough && i + 1 < n) {
      leader[i + 1] = true;
    }
  }

  // Pass 2: blocks. block_of[i] = block index containing instruction i.
  std::vector<std::size_t> block_of(n, 0);
  std::vector<cfg::BasicBlock> blocks;
  for (std::size_t i = 0; i < n; ++i) {
    if (leader[i]) {
      blocks.push_back(cfg::BasicBlock{i, 0});
    }
    block_of[i] = blocks.size() - 1;
    ++blocks.back().instruction_count;
  }

  // Pass 3: edges, in the fixed order documented in the header.
  graph::DiGraph g(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const std::size_t last =
        blocks[b].first_instruction + blocks[b].instruction_count - 1;
    const SweptInstruction& insn = instructions[last];
    const bool has_fallthrough = last + 1 < n;
    switch (insn.kind) {
      case FlowKind::kJump:
        if (in_range(insn.target)) {
          g.add_edge(b, block_of[static_cast<std::size_t>(insn.target)]);
        }
        break;
      case FlowKind::kCondBranch:
      case FlowKind::kCall:
        if (in_range(insn.target)) {
          g.add_edge(b, block_of[static_cast<std::size_t>(insn.target)]);
        }
        if (has_fallthrough) g.add_edge(b, block_of[last + 1]);
        break;
      case FlowKind::kReturn:
      case FlowKind::kHalt:
        break;  // no successors
      case FlowKind::kFallthrough:
        // Block ended because the next instruction is a leader.
        if (has_fallthrough) g.add_edge(b, block_of[last + 1]);
        break;
    }
  }

  const graph::NodeId entry = block_of[entry_index];
  if (!options.prune_unreachable) {
    return cfg::Cfg(std::move(g), entry, std::move(blocks));
  }

  // Pass 4: prune to the entry-reachable subgraph with compact ids.
  const auto reachable = graph::reachable_from(g, entry);
  std::vector<graph::NodeId> remap(blocks.size(), graph::NodeId{0});
  graph::DiGraph pruned;
  std::vector<cfg::BasicBlock> pruned_blocks;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (reachable[b]) {
      remap[b] = pruned.add_node();
      pruned_blocks.push_back(blocks[b]);
    }
  }
  for (const auto& [u, v] : g.edges()) {
    if (reachable[u] && reachable[v]) pruned.add_edge(remap[u], remap[v]);
  }
  return cfg::Cfg(std::move(pruned), remap[entry], std::move(pruned_blocks));
}

}  // namespace soteria::frontend
