#include "frontend/x86_64_frontend.h"

#include <algorithm>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "soteria/error.h"

namespace soteria::frontend {

namespace {

bool is_legacy_prefix(std::uint8_t byte) noexcept {
  switch (byte) {
    case 0x26:  // es
    case 0x2e:  // cs
    case 0x36:  // ss
    case 0x3e:  // ds
    case 0x64:  // fs
    case 0x65:  // gs
    case 0x66:  // operand size
    case 0x67:  // address size
    case 0xf0:  // lock
    case 0xf2:  // repne
    case 0xf3:  // rep
      return true;
    default:
      return false;
  }
}

/// Reads a little-endian signed immediate of `width` bytes.
std::int64_t read_signed(std::span<const std::uint8_t> code, std::size_t i,
                         unsigned width) noexcept {
  std::uint64_t value = 0;
  for (unsigned b = 0; b < width; ++b) {
    value |= static_cast<std::uint64_t>(code[i + b]) << (8 * b);
  }
  const unsigned shift = 64 - 8 * width;
  return static_cast<std::int64_t>(value << shift) >> shift;
}

/// Bytes occupied by a ModRM byte plus its SIB and displacement, or 0
/// if the encoding runs past `avail` (callers then fall back to the
/// one-byte unknown path).
std::size_t modrm_span(std::span<const std::uint8_t> code, std::size_t i,
                       std::size_t end) noexcept {
  if (i >= end) return 0;
  const std::uint8_t modrm = code[i];
  const std::uint8_t mod = modrm >> 6;
  const std::uint8_t rm = modrm & 7;
  std::size_t len = 1;
  if (mod != 3) {
    if (rm == 4) {  // SIB byte
      if (i + len >= end) return 0;
      const std::uint8_t sib = code[i + len];
      ++len;
      if (mod == 0 && (sib & 7) == 5) len += 4;  // disp32 with no base
    }
    if (mod == 1) {
      len += 1;
    } else if (mod == 2) {
      len += 4;
    } else if (mod == 0 && rm == 5) {
      len += 4;  // RIP-relative disp32
    }
  }
  return i + len <= end ? len : 0;
}

}  // namespace

std::optional<X86Instruction> decode_x86_64(
    std::span<const std::uint8_t> code, std::size_t offset) {
  if (offset >= code.size()) return std::nullopt;
  const std::size_t end = code.size();

  // The conservative escape hatch: consume one byte as an unknown
  // fall-through instruction. Everything below that cannot establish
  // its exact length lands here, so the sweep always advances and
  // never reads out of bounds.
  const auto unknown = [] {
    X86Instruction insn;
    insn.length = 1;
    insn.kind = FlowKind::kFallthrough;
    insn.recognized = false;
    return insn;
  };

  std::size_t i = offset;
  bool opsize16 = false;
  bool rex_w = false;
  // Legacy prefixes (x86 caps the whole instruction at 15 bytes; more
  // than 4 prefixes is already degenerate — treat as unknown).
  while (i < end && is_legacy_prefix(code[i])) {
    if (code[i] == 0x66) opsize16 = true;
    ++i;
    if (i - offset > 4) return unknown();
  }
  if (i < end && (code[i] & 0xf0) == 0x40) {  // REX
    rex_w = (code[i] & 0x08) != 0;
    ++i;
  }
  if (i >= end) return unknown();

  const std::uint8_t op = code[i++];
  const std::size_t imm32 = opsize16 ? 2 : 4;  // z-sized immediate

  X86Instruction insn;
  const auto done = [&](std::size_t extra, FlowKind kind) {
    if (i + extra > end) return unknown();
    insn.length = i + extra - offset;
    insn.kind = kind;
    return insn;
  };
  const auto with_modrm = [&](std::size_t imm_extra, FlowKind kind) {
    const std::size_t span = modrm_span(code, i, end);
    if (span == 0) return unknown();
    return done(span + imm_extra, kind);
  };
  const auto branch = [&](unsigned rel_width, FlowKind kind) {
    if (i + rel_width > end) return unknown();
    insn.rel = read_signed(code, i, rel_width);
    insn.has_target = true;
    return done(rel_width, kind);
  };

  // Branch / call / ret space first — the part that defines blocks.
  if (op >= 0x70 && op <= 0x7f) return branch(1, FlowKind::kCondBranch);
  if (op == 0xeb) return branch(1, FlowKind::kJump);
  if (op == 0xe9) return branch(4, FlowKind::kJump);
  if (op == 0xe8) return branch(4, FlowKind::kCall);
  if (op == 0xc3) return done(0, FlowKind::kReturn);
  if (op == 0xc2) return done(2, FlowKind::kReturn);
  if (op == 0xf4) return done(0, FlowKind::kHalt);   // hlt
  if (op == 0xcc) return done(0, FlowKind::kHalt);   // int3
  if (op == 0x0f) {
    if (i >= end) return unknown();
    const std::uint8_t op2 = code[i++];
    if (op2 >= 0x80 && op2 <= 0x8f) return branch(4, FlowKind::kCondBranch);
    if (op2 == 0x0b) return done(0, FlowKind::kHalt);  // ud2
    if (op2 == 0x1f) return with_modrm(0, FlowKind::kFallthrough);  // nopw
    if (op2 == 0x05) return done(0, FlowKind::kFallthrough);  // syscall
    if (op2 == 0xaf || (op2 >= 0xb6 && op2 <= 0xbf) ||
        (op2 >= 0x90 && op2 <= 0x9f) || (op2 >= 0x40 && op2 <= 0x4f)) {
      // imul / movzx / movsx / setcc / cmovcc.
      return with_modrm(0, FlowKind::kFallthrough);
    }
    return unknown();
  }

  // Common fall-through space, decoded for exact lengths so the sweep
  // stays in phase across real compiler output.
  if (op < 0x40 && (op & 0x07) <= 5 && op != 0x0f) {
    // Two-operand ALU block (add/or/adc/sbb/and/sub/xor/cmp).
    const std::uint8_t form = op & 0x07;
    if (form <= 3) return with_modrm(0, FlowKind::kFallthrough);
    if (form == 4) return done(1, FlowKind::kFallthrough);      // AL, imm8
    return done(imm32, FlowKind::kFallthrough);                 // eAX, immz
  }
  if (op >= 0x50 && op <= 0x5f) return done(0, FlowKind::kFallthrough);
  if (op == 0x63) return with_modrm(0, FlowKind::kFallthrough);  // movsxd
  if (op == 0x68) return done(imm32, FlowKind::kFallthrough);    // push immz
  if (op == 0x6a) return done(1, FlowKind::kFallthrough);        // push imm8
  if (op == 0x69) return with_modrm(imm32, FlowKind::kFallthrough);
  if (op == 0x6b) return with_modrm(1, FlowKind::kFallthrough);
  if (op == 0x80 || op == 0x83) return with_modrm(1, FlowKind::kFallthrough);
  if (op == 0x81) return with_modrm(imm32, FlowKind::kFallthrough);
  if (op >= 0x84 && op <= 0x8b) {
    return with_modrm(0, FlowKind::kFallthrough);  // test/xchg/mov
  }
  if (op == 0x8d) return with_modrm(0, FlowKind::kFallthrough);  // lea
  if (op == 0x90 || op == 0x98 || op == 0x99 || op == 0xc9) {
    return done(0, FlowKind::kFallthrough);  // nop / cwde / cdq / leave
  }
  if (op == 0xa8) return done(1, FlowKind::kFallthrough);
  if (op == 0xa9) return done(imm32, FlowKind::kFallthrough);
  if (op >= 0xb0 && op <= 0xb7) return done(1, FlowKind::kFallthrough);
  if (op >= 0xb8 && op <= 0xbf) {
    return done(rex_w ? 8 : imm32, FlowKind::kFallthrough);  // mov r, imm
  }
  if (op == 0xc0 || op == 0xc1) return with_modrm(1, FlowKind::kFallthrough);
  if (op >= 0xd0 && op <= 0xd3) return with_modrm(0, FlowKind::kFallthrough);
  if (op == 0xc6) return with_modrm(1, FlowKind::kFallthrough);
  if (op == 0xc7) return with_modrm(imm32, FlowKind::kFallthrough);
  if (op == 0xf6 || op == 0xf7) {
    // Group 3: only the test forms carry an immediate.
    if (i >= end) return unknown();
    const std::uint8_t reg = (code[i] >> 3) & 7;
    const std::size_t imm = reg <= 1 ? (op == 0xf6 ? 1 : imm32) : 0;
    return with_modrm(imm, FlowKind::kFallthrough);
  }
  if (op == 0xfe) return with_modrm(0, FlowKind::kFallthrough);
  if (op == 0xff) {
    // Group 5: inc/dec/push fall through; indirect call keeps its
    // return path; indirect jmp ends the block with no static target.
    if (i >= end) return unknown();
    const std::uint8_t reg = (code[i] >> 3) & 7;
    if (reg == 2 || reg == 3) return with_modrm(0, FlowKind::kCall);
    if (reg == 4 || reg == 5) return with_modrm(0, FlowKind::kJump);
    return with_modrm(0, FlowKind::kFallthrough);
  }

  return unknown();
}

bool X8664Frontend::can_decode(const loader::Image& image) const noexcept {
  return image.format == loader::Format::kElf &&
         image.machine == loader::kElfMachineX8664;
}

cfg::Cfg X8664Frontend::extract(const loader::Image& image,
                                const FrontendOptions& options) const {
  const auto code = image.text;
  if (code.empty()) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "X8664Frontend: empty code region");
  }
  if (options.max_image_bytes != 0 && code.size() > options.max_image_bytes) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "X8664Frontend: code region of " +
                          std::to_string(code.size()) +
                          " bytes exceeds max_image_bytes " +
                          std::to_string(options.max_image_bytes));
  }

  const obs::Span span("cfg.extract");

  // Pass 0: sweep the byte stream into instructions, recording each
  // start offset so branch displacements can resolve to indices.
  std::vector<std::size_t> starts;
  std::vector<SweptInstruction> swept;
  std::vector<std::int64_t> target_bytes;  // -1 = no target
  std::size_t offset = 0;
  while (offset < code.size()) {
    const auto insn = *decode_x86_64(code, offset);
    starts.push_back(offset);
    SweptInstruction s;
    s.kind = insn.kind;
    swept.push_back(s);
    target_bytes.push_back(
        insn.has_target
            ? static_cast<std::int64_t>(offset + insn.length) + insn.rel
            : -1);
    offset += insn.length;
  }
  obs::registry().counter_add("soteria.cfg.images");
  obs::registry().counter_add("soteria.cfg.instructions", swept.size());

  // Resolve byte targets to instruction indices; displacements landing
  // mid-instruction or outside the region get no edge.
  for (std::size_t i = 0; i < swept.size(); ++i) {
    const std::int64_t byte = target_bytes[i];
    if (byte < 0) continue;
    const auto it = std::lower_bound(starts.begin(), starts.end(),
                                     static_cast<std::size_t>(byte));
    if (it != starts.end() &&
        *it == static_cast<std::size_t>(byte)) {
      swept[i].target = it - starts.begin();
    }
  }

  // The ELF entry point starts the reachability sweep when it lands on
  // an instruction boundary inside .text; otherwise offset 0 (the raw
  // convention) is used.
  std::size_t entry_index = 0;
  const std::uint64_t entry_offset = image.entry_text_offset();
  const auto entry_it = std::lower_bound(starts.begin(), starts.end(),
                                         static_cast<std::size_t>(entry_offset));
  if (entry_it != starts.end() && *entry_it == entry_offset) {
    entry_index = static_cast<std::size_t>(entry_it - starts.begin());
  }
  return build_cfg_from_sweep(swept, entry_index, options);
}

}  // namespace soteria::frontend
