#include "frontend/frontend.h"

#include <string>
#include <utility>

#include "frontend/toy_isa_frontend.h"
#include "frontend/x86_64_frontend.h"
#include "soteria/error.h"

namespace soteria::frontend {

void FrontendRegistry::add(std::shared_ptr<const Frontend> frontend) {
  if (frontend == nullptr) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "FrontendRegistry::add: null frontend");
  }
  if (find(frontend->name()) != nullptr) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "FrontendRegistry::add: duplicate frontend name " +
                          std::string(frontend->name()));
  }
  frontends_.push_back(std::move(frontend));
}

const Frontend* FrontendRegistry::find(std::string_view name) const noexcept {
  for (const auto& frontend : frontends_) {
    if (frontend->name() == name) return frontend.get();
  }
  return nullptr;
}

const Frontend& FrontendRegistry::by_name(std::string_view name) const {
  if (const Frontend* frontend = find(name)) return *frontend;
  std::string known;
  for (const auto& frontend : frontends_) {
    if (!known.empty()) known += ", ";
    known += frontend->name();
  }
  throw core::Error(core::ErrorCode::kInvalidArgument,
                    "FrontendRegistry: unknown frontend \"" +
                        std::string(name) + "\" (registered: " + known + ")");
}

const Frontend* FrontendRegistry::detect(
    const loader::Image& image) const noexcept {
  for (const auto& frontend : frontends_) {
    if (frontend->can_decode(image)) return frontend.get();
  }
  return nullptr;
}

const Frontend& FrontendRegistry::detect_or_throw(
    const loader::Image& image) const {
  if (const Frontend* frontend = detect(image)) return *frontend;
  throw core::Error(core::ErrorCode::kInvalidArgument,
                    "FrontendRegistry: no registered frontend can decode "
                    "this image (machine " +
                        std::to_string(image.machine) + ")");
}

std::vector<std::string_view> FrontendRegistry::names() const {
  std::vector<std::string_view> names;
  names.reserve(frontends_.size());
  for (const auto& frontend : frontends_) names.push_back(frontend->name());
  return names;
}

const FrontendRegistry& FrontendRegistry::builtin() {
  static const FrontendRegistry* const registry = [] {
    auto* r = new FrontendRegistry();
    r->add(std::make_shared<const ToyIsaFrontend>());
    r->add(std::make_shared<const X8664Frontend>());
    return r;
  }();
  return *registry;
}

const Frontend& resolve_frontend(const FrontendRegistry& registry,
                                 const loader::Image& image,
                                 std::string_view name) {
  if (name.empty() || name == "auto") {
    return registry.detect_or_throw(image);
  }
  const Frontend& frontend = registry.by_name(name);
  if (!frontend.can_decode(image)) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "resolve_frontend: frontend \"" + std::string(name) +
                          "\" cannot decode this image (machine " +
                          std::to_string(image.machine) + ")");
  }
  return frontend;
}

}  // namespace soteria::frontend
