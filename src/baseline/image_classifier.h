// Baseline 2: image-based malware classifier (Cui et al. [5]).
//
// The sample binary is rendered as a fixed-size grayscale image
// (nearest-neighbour resampling of the raw bytes) and classified by a
// neural network — no CFG, no reachability analysis. This baseline
// inherits the weakness the paper calls out: bytes appended to the end
// of a file *do* change its image, while they are invisible to
// Soteria's CFG features. The original work evaluated several image
// sizes (24x24 up to 192x192); we default to 32x32 which preserves the
// behaviour at single-core cost.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dataset/sample.h"
#include "math/rng.h"
#include "nn/sequential.h"
#include "nn/trainer.h"

namespace soteria::baseline {

/// Image baseline hyper-parameters.
struct ImageBaselineConfig {
  std::size_t image_side = 32;    ///< image is side x side pixels
  std::size_t hidden_units = 128;
  double learning_rate = 1e-3;
  nn::TrainConfig training = nn::make_train_config(60, 64);
  std::uint64_t seed = 11;
};

class ImageBaseline {
 public:
  /// Renders `binary` as a side*side grayscale vector in [0, 1] using
  /// nearest-neighbour resampling. Throws std::invalid_argument for an
  /// empty binary or zero side.
  [[nodiscard]] static std::vector<float> to_image(
      std::span<const std::uint8_t> binary, std::size_t side);

  /// Trains on the given samples (uses each sample's raw binary).
  /// Throws std::invalid_argument on an empty training set or samples
  /// without binaries.
  static ImageBaseline train(std::span<const dataset::Sample> training,
                             const ImageBaselineConfig& config);

  /// Predicted family for one binary.
  [[nodiscard]] dataset::Family predict(
      std::span<const std::uint8_t> binary);

  [[nodiscard]] const nn::TrainReport& train_report() const noexcept {
    return report_;
  }
  [[nodiscard]] std::size_t image_side() const noexcept {
    return config_.image_side;
  }

  /// Default-constructed untrained baseline; placeholder until assigned
  /// from train().
  ImageBaseline() = default;

 private:
  ImageBaselineConfig config_;
  nn::Sequential model_;
  nn::TrainReport report_;
};

}  // namespace soteria::baseline
