// Baseline 1: graph-theoretic feature classifier (Alasmary et al. [3]).
//
// Classifies a sample from the *general structure* of its CFG — node and
// edge counts, density, degree statistics, centrality statistics,
// shortest-path statistics — rather than Soteria's randomized walk
// features. The paper uses this baseline both for the Fig. 8 PCA
// comparison and the Table VII accuracy comparison; its key weakness is
// that GEA shifts all of these aggregates predictably.
//
// Features are z-score standardized with statistics from the training
// set and fed to a small dense network (the original work used standard
// shallow classifiers; a 2-hidden-layer MLP is an equivalent stand-in).
#pragma once

#include <span>
#include <vector>

#include "dataset/sample.h"
#include "graph/properties.h"
#include "math/rng.h"
#include "nn/sequential.h"
#include "nn/trainer.h"

namespace soteria::baseline {

/// Baseline hyper-parameters.
struct GraphBaselineConfig {
  std::size_t hidden_units = 64;
  double learning_rate = 1e-3;
  nn::TrainConfig training = nn::make_train_config(60, 64);
  std::uint64_t seed = 7;
};

class GraphFeatureBaseline {
 public:
  /// Raw (unstandardized) structural feature vector of a CFG.
  [[nodiscard]] static std::vector<float> raw_features(const cfg::Cfg& cfg);

  /// Trains on the given samples. Throws std::invalid_argument on an
  /// empty training set.
  static GraphFeatureBaseline train(
      std::span<const dataset::Sample> training,
      const GraphBaselineConfig& config);

  /// Standardized features under the fitted statistics.
  [[nodiscard]] std::vector<float> features_for(const cfg::Cfg& cfg) const;

  /// Predicted family for one CFG.
  [[nodiscard]] dataset::Family predict(const cfg::Cfg& cfg);

  [[nodiscard]] const nn::TrainReport& train_report() const noexcept {
    return report_;
  }

  /// Default-constructed untrained baseline; placeholder until assigned
  /// from train().
  GraphFeatureBaseline() = default;

 private:
  std::vector<float> feature_means_;
  std::vector<float> feature_stddevs_;
  nn::Sequential model_;
  nn::TrainReport report_;
};

}  // namespace soteria::baseline
