#include "baseline/image_classifier.h"

#include <stdexcept>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/optimizer.h"

namespace soteria::baseline {

std::vector<float> ImageBaseline::to_image(
    std::span<const std::uint8_t> binary, std::size_t side) {
  if (binary.empty()) {
    throw std::invalid_argument("ImageBaseline::to_image: empty binary");
  }
  if (side == 0) {
    throw std::invalid_argument("ImageBaseline::to_image: zero side");
  }
  const std::size_t pixels = side * side;
  std::vector<float> image(pixels);
  for (std::size_t p = 0; p < pixels; ++p) {
    // Nearest-neighbour resample of the byte stream onto the image.
    const std::size_t byte_index = p * binary.size() / pixels;
    image[p] = static_cast<float>(binary[byte_index]) / 255.0F;
  }
  return image;
}

ImageBaseline ImageBaseline::train(
    std::span<const dataset::Sample> training,
    const ImageBaselineConfig& config) {
  if (training.empty()) {
    throw std::invalid_argument("ImageBaseline::train: empty training set");
  }
  nn::validate(config.training);
  if (config.image_side == 0 || config.hidden_units == 0) {
    throw std::invalid_argument("ImageBaselineConfig: zero dimension");
  }

  const std::size_t dim = config.image_side * config.image_side;
  math::Matrix features(training.size(), dim);
  std::vector<std::size_t> labels(training.size());
  for (std::size_t i = 0; i < training.size(); ++i) {
    if (training[i].binary.empty()) {
      throw std::invalid_argument(
          "ImageBaseline::train: sample without a binary");
    }
    const auto image = to_image(training[i].binary, config.image_side);
    std::copy(image.begin(), image.end(), features.row(i).begin());
    labels[i] = dataset::family_index(training[i].family);
  }

  ImageBaseline baseline;
  baseline.config_ = config;
  math::Rng rng(config.seed);
  baseline.model_.emplace<nn::Dense>(dim, config.hidden_units, rng);
  baseline.model_.emplace<nn::Relu>();
  baseline.model_.emplace<nn::Dropout>(0.25, rng);
  baseline.model_.emplace<nn::Dense>(config.hidden_units,
                                     dataset::kFamilyCount, rng);

  nn::Adam optimizer(config.learning_rate);
  baseline.report_ = nn::train_classifier(
      baseline.model_, features, labels, optimizer, config.training, rng);
  return baseline;
}

dataset::Family ImageBaseline::predict(
    std::span<const std::uint8_t> binary) {
  if (config_.image_side == 0) {
    throw std::logic_error("ImageBaseline: not trained");
  }
  const auto image = to_image(binary, config_.image_side);
  math::Matrix input(1, image.size());
  std::copy(image.begin(), image.end(), input.row(0).begin());
  const auto prediction = nn::argmax_rows(model_.predict(input));
  return dataset::family_from_index(prediction.front());
}

}  // namespace soteria::baseline
