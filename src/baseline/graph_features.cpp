#include "baseline/graph_features.h"

#include <cmath>
#include <stdexcept>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace soteria::baseline {

std::vector<float> GraphFeatureBaseline::raw_features(const cfg::Cfg& cfg) {
  return graph::to_feature_vector(graph::graph_properties(cfg.graph()));
}

GraphFeatureBaseline GraphFeatureBaseline::train(
    std::span<const dataset::Sample> training,
    const GraphBaselineConfig& config) {
  if (training.empty()) {
    throw std::invalid_argument(
        "GraphFeatureBaseline::train: empty training set");
  }
  nn::validate(config.training);

  const std::size_t dim = graph::kGraphFeatureCount;
  math::Matrix features(training.size(), dim);
  std::vector<std::size_t> labels(training.size());
  for (std::size_t i = 0; i < training.size(); ++i) {
    const auto raw = raw_features(training[i].cfg);
    std::copy(raw.begin(), raw.end(), features.row(i).begin());
    labels[i] = dataset::family_index(training[i].family);
  }

  GraphFeatureBaseline baseline;
  baseline.feature_means_.assign(dim, 0.0F);
  baseline.feature_stddevs_.assign(dim, 1.0F);
  const auto n = static_cast<double>(training.size());
  for (std::size_t c = 0; c < dim; ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < features.rows(); ++r) {
      mean += features(r, c);
    }
    mean /= n;
    double var = 0.0;
    for (std::size_t r = 0; r < features.rows(); ++r) {
      const double d = features(r, c) - mean;
      var += d * d;
    }
    var /= n;
    baseline.feature_means_[c] = static_cast<float>(mean);
    baseline.feature_stddevs_[c] =
        static_cast<float>(var > 0.0 ? std::sqrt(var) : 1.0);
    for (std::size_t r = 0; r < features.rows(); ++r) {
      features(r, c) = (features(r, c) - baseline.feature_means_[c]) /
                       baseline.feature_stddevs_[c];
    }
  }

  math::Rng rng(config.seed);
  baseline.model_.emplace<nn::Dense>(dim, config.hidden_units, rng);
  baseline.model_.emplace<nn::Relu>();
  baseline.model_.emplace<nn::Dense>(config.hidden_units,
                                     config.hidden_units, rng);
  baseline.model_.emplace<nn::Relu>();
  baseline.model_.emplace<nn::Dense>(config.hidden_units,
                                     dataset::kFamilyCount, rng);

  nn::Adam optimizer(config.learning_rate);
  baseline.report_ = nn::train_classifier(
      baseline.model_, features, labels, optimizer, config.training, rng);
  return baseline;
}

std::vector<float> GraphFeatureBaseline::features_for(
    const cfg::Cfg& cfg) const {
  if (feature_means_.empty()) {
    throw std::logic_error("GraphFeatureBaseline: not trained");
  }
  auto raw = raw_features(cfg);
  for (std::size_t c = 0; c < raw.size(); ++c) {
    raw[c] = (raw[c] - feature_means_[c]) / feature_stddevs_[c];
  }
  return raw;
}

dataset::Family GraphFeatureBaseline::predict(const cfg::Cfg& cfg) {
  const auto standardized = features_for(cfg);
  math::Matrix input(1, standardized.size());
  std::copy(standardized.begin(), standardized.end(),
            input.row(0).begin());
  const auto prediction = nn::argmax_rows(model_.predict(input));
  return dataset::family_from_index(prediction.front());
}

}  // namespace soteria::baseline
