// Losses: mean-squared error (autoencoder reconstruction) and softmax
// cross-entropy (family classification). Both return the scalar loss
// and the gradient w.r.t. the network output in one pass.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "math/matrix.h"

namespace soteria::nn {

/// Loss value + gradient w.r.t. predictions.
struct LossResult {
  double loss = 0.0;
  math::Matrix gradient;
};

/// MSE over all elements: mean((pred - target)^2). Gradient is
/// 2 (pred - target) / element_count. Throws on shape mismatch.
[[nodiscard]] LossResult mse_loss(const math::Matrix& predictions,
                                  const math::Matrix& targets);

/// Row-wise softmax of logits (stable; subtracts the row max).
[[nodiscard]] math::Matrix softmax(const math::Matrix& logits);

/// Softmax + categorical cross-entropy against integer class labels.
/// Gradient is (softmax - onehot) / batch. Throws if label count !=
/// batch size or any label >= class count.
[[nodiscard]] LossResult softmax_cross_entropy(
    const math::Matrix& logits, std::span<const std::size_t> labels);

/// Per-row root-mean-square reconstruction error — the detector's RE.
[[nodiscard]] std::vector<double> row_rmse(const math::Matrix& predictions,
                                           const math::Matrix& targets);

}  // namespace soteria::nn
