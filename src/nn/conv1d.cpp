#include "nn/conv1d.h"

#include <cmath>
#include <stdexcept>

namespace soteria::nn {

Conv1d::Conv1d(std::size_t in_channels, std::size_t in_length,
               std::size_t out_channels, std::size_t kernel, math::Rng& rng)
    : in_channels_(in_channels),
      in_length_(in_length),
      out_channels_(out_channels),
      kernel_(kernel),
      weights_(out_channels, in_channels * kernel),
      bias_(1, out_channels, 0.0F),
      weight_grad_(out_channels, in_channels * kernel, 0.0F),
      bias_grad_(1, out_channels, 0.0F) {
  if (in_channels == 0 || in_length == 0 || out_channels == 0 ||
      kernel == 0) {
    throw std::invalid_argument("Conv1d: zero dimension");
  }
  if (kernel > in_length) {
    throw std::invalid_argument("Conv1d: kernel " + std::to_string(kernel) +
                                " exceeds input length " +
                                std::to_string(in_length));
  }
  const float limit =
      std::sqrt(6.0F / static_cast<float>(in_channels * kernel));
  weights_.fill_uniform(rng, -limit, limit);
}

math::Matrix Conv1d::forward(const math::Matrix& input, bool /*training*/) {
  cached_input_ = input;
  return infer(input);
}

void conv1d_infer_into(const float* in, float* out, const float* weights,
                       const float* bias, std::size_t rows,
                       std::size_t in_channels, std::size_t in_length,
                       std::size_t out_channels, std::size_t kernel) noexcept {
  const std::size_t out_len = in_length - kernel + 1;
  const std::size_t w_cols = in_channels * kernel;
  const std::size_t in_cols = in_channels * in_length;
  const std::size_t out_cols = out_channels * out_len;
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in_row = in + r * in_cols;
    float* out_row = out + r * out_cols;
    std::size_t o = 0;
    // Output channels in pairs: each shifted input-channel load feeds
    // two accumulator streams. Per output element the accumulation
    // order (bias first, then ascending channel/tap) and the zero-tap
    // skip are exactly the reference's, so results are bit-identical.
    for (; o + 2 <= out_channels; o += 2) {
      const float* wa = weights + (o + 0) * w_cols;
      const float* wb = weights + (o + 1) * w_cols;
      float* out_a = out_row + (o + 0) * out_len;
      float* out_b = out_row + (o + 1) * out_len;
      const float ba = bias[o + 0];
      const float bb = bias[o + 1];
      for (std::size_t t = 0; t < out_len; ++t) {
        out_a[t] = ba;
        out_b[t] = bb;
      }
      for (std::size_t c = 0; c < in_channels; ++c) {
        const float* in_chan = in_row + c * in_length;
        const float* wac = wa + c * kernel;
        const float* wbc = wb + c * kernel;
        for (std::size_t k = 0; k < kernel; ++k) {
          const float wka = wac[k];
          const float wkb = wbc[k];
          const float* shifted = in_chan + k;
          if (wka != 0.0F && wkb != 0.0F) {
            for (std::size_t t = 0; t < out_len; ++t) {
              out_a[t] += wka * shifted[t];
              out_b[t] += wkb * shifted[t];
            }
          } else if (wka != 0.0F) {
            for (std::size_t t = 0; t < out_len; ++t) {
              out_a[t] += wka * shifted[t];
            }
          } else if (wkb != 0.0F) {
            for (std::size_t t = 0; t < out_len; ++t) {
              out_b[t] += wkb * shifted[t];
            }
          }
        }
      }
    }
    for (; o < out_channels; ++o) {
      const float* w = weights + o * w_cols;
      const float b = bias[o];
      float* out_chan = out_row + o * out_len;
      for (std::size_t t = 0; t < out_len; ++t) out_chan[t] = b;
      for (std::size_t c = 0; c < in_channels; ++c) {
        const float* in_chan = in_row + c * in_length;
        const float* wc = w + c * kernel;
        for (std::size_t k = 0; k < kernel; ++k) {
          const float wk = wc[k];
          if (wk == 0.0F) continue;
          const float* shifted = in_chan + k;
          for (std::size_t t = 0; t < out_len; ++t) {
            out_chan[t] += wk * shifted[t];
          }
        }
      }
    }
  }
}

void conv1d_infer_reference_into(const float* in, float* out,
                                 const float* weights, const float* bias,
                                 std::size_t rows, std::size_t in_channels,
                                 std::size_t in_length,
                                 std::size_t out_channels,
                                 std::size_t kernel) noexcept {
  const std::size_t out_len = in_length - kernel + 1;
  const std::size_t w_cols = in_channels * kernel;
  const std::size_t in_cols = in_channels * in_length;
  const std::size_t out_cols = out_channels * out_len;
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in_row = in + r * in_cols;
    float* out_row = out + r * out_cols;
    for (std::size_t o = 0; o < out_channels; ++o) {
      const float* w = weights + o * w_cols;
      const float b = bias[o];
      float* out_chan = out_row + o * out_len;
      for (std::size_t t = 0; t < out_len; ++t) out_chan[t] = b;
      for (std::size_t c = 0; c < in_channels; ++c) {
        const float* in_chan = in_row + c * in_length;
        const float* wc = w + c * kernel;
        for (std::size_t k = 0; k < kernel; ++k) {
          const float wk = wc[k];
          if (wk == 0.0F) continue;
          const float* shifted = in_chan + k;
          for (std::size_t t = 0; t < out_len; ++t) {
            out_chan[t] += wk * shifted[t];
          }
        }
      }
    }
  }
}

math::Matrix Conv1d::infer(const math::Matrix& input) const {
  const std::size_t expected = in_channels_ * in_length_;
  if (input.cols() != expected) {
    throw std::invalid_argument("Conv1d::forward: input width " +
                                std::to_string(input.cols()) + " != " +
                                std::to_string(expected));
  }
  math::Matrix out(input.rows(), out_channels_ * out_length(), 0.0F);
  conv1d_infer_into(input.data().data(), out.data().data(),
                    weights_.data().data(), bias_.data().data(), input.rows(),
                    in_channels_, in_length_, out_channels_, kernel_);
  return out;
}

math::Matrix Conv1d::backward(const math::Matrix& grad_output) {
  const std::size_t out_len = out_length();
  if (grad_output.rows() != cached_input_.rows() ||
      grad_output.cols() != out_channels_ * out_len) {
    throw std::invalid_argument("Conv1d::backward: gradient shape " +
                                grad_output.shape_string() +
                                " incompatible with cached batch");
  }
  math::Matrix grad_input(cached_input_.rows(), cached_input_.cols(), 0.0F);
  for (std::size_t r = 0; r < grad_output.rows(); ++r) {
    const float* in_row =
        cached_input_.data().data() + r * cached_input_.cols();
    const float* go_row = grad_output.data().data() + r * grad_output.cols();
    float* gi_row = grad_input.data().data() + r * grad_input.cols();
    for (std::size_t o = 0; o < out_channels_; ++o) {
      const float* go_chan = go_row + o * out_len;
      float* wg = weight_grad_.data().data() + o * weight_grad_.cols();
      const float* w = weights_.data().data() + o * weights_.cols();
      float bias_acc = 0.0F;
      for (std::size_t t = 0; t < out_len; ++t) bias_acc += go_chan[t];
      bias_grad_(0, o) += bias_acc;
      for (std::size_t c = 0; c < in_channels_; ++c) {
        const float* in_chan = in_row + c * in_length_;
        float* gi_chan = gi_row + c * in_length_;
        float* wgc = wg + c * kernel_;
        const float* wc = w + c * kernel_;
        for (std::size_t k = 0; k < kernel_; ++k) {
          const float* shifted_in = in_chan + k;
          float* shifted_gi = gi_chan + k;
          const float wk = wc[k];
          float wgrad_acc = 0.0F;
          for (std::size_t t = 0; t < out_len; ++t) {
            const float g = go_chan[t];
            wgrad_acc += g * shifted_in[t];
            shifted_gi[t] += g * wk;
          }
          wgc[k] += wgrad_acc;
        }
      }
    }
  }
  return grad_input;
}

void Conv1d::collect_parameters(std::vector<ParamRef>& out) {
  out.push_back(ParamRef{&weights_, &weight_grad_});
  out.push_back(ParamRef{&bias_, &bias_grad_});
}

void Conv1d::zero_gradients() {
  weight_grad_.fill(0.0F);
  bias_grad_.fill(0.0F);
}

std::size_t Conv1d::parameter_count() const {
  return weights_.size() + bias_.size();
}

std::string Conv1d::name() const {
  return "Conv1d(" + std::to_string(in_channels_) + "x" +
         std::to_string(in_length_) + "->" + std::to_string(out_channels_) +
         ", k=" + std::to_string(kernel_) + ")";
}

std::size_t Conv1d::output_dimension(std::size_t input_dim) const {
  if (input_dim != in_channels_ * in_length_) {
    throw std::invalid_argument("Conv1d: expected input width " +
                                std::to_string(in_channels_ * in_length_) +
                                ", got " + std::to_string(input_dim));
  }
  return out_channels_ * out_length();
}

}  // namespace soteria::nn
