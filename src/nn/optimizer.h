// Optimizers: SGD with momentum, and Adam.
//
// An optimizer is bound to a fixed parameter list on the first step()
// call (state slots are allocated per tensor); subsequent steps must
// pass the same tensors in the same order, which `Sequential` guarantees.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace soteria::nn {

/// Base optimizer interface.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the accumulated gradients, then leaves the
  /// gradients untouched (callers zero them per batch). Throws
  /// std::invalid_argument if the parameter list changes between calls.
  virtual void step(std::span<const ParamRef> parameters) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Stochastic gradient descent with classical momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0);

  void step(std::span<const ParamRef> parameters) override;
  [[nodiscard]] std::string name() const override { return "SGD"; }

  [[nodiscard]] double learning_rate() const noexcept { return lr_; }
  void set_learning_rate(double lr);

 private:
  double lr_;
  double momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(double learning_rate = 1e-3, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-8);

  void step(std::span<const ParamRef> parameters) override;
  [[nodiscard]] std::string name() const override { return "Adam"; }

  [[nodiscard]] double learning_rate() const noexcept { return lr_; }
  void set_learning_rate(double lr);

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double epsilon_;
  std::size_t timestep_ = 0;
  std::vector<std::vector<float>> first_moment_;
  std::vector<std::vector<float>> second_moment_;
};

}  // namespace soteria::nn
