// Fully connected layer: Y = X W + b.
#pragma once

#include <cstddef>

#include "math/rng.h"
#include "nn/layer.h"

namespace soteria::nn {

class Dense : public Layer {
 public:
  /// He-uniform initialization (appropriate for the ReLU stacks used
  /// everywhere in Soteria). Throws std::invalid_argument on zero dims.
  Dense(std::size_t in_dim, std::size_t out_dim, math::Rng& rng);

  math::Matrix forward(const math::Matrix& input, bool training) override;
  [[nodiscard]] math::Matrix infer(const math::Matrix& input) const override;
  math::Matrix backward(const math::Matrix& grad_output) override;
  void collect_parameters(std::vector<ParamRef>& out) override;
  void zero_gradients() override;
  [[nodiscard]] std::size_t parameter_count() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t output_dimension(
      std::size_t input_dim) const override;

  [[nodiscard]] std::size_t in_dim() const noexcept { return in_dim_; }
  [[nodiscard]] std::size_t out_dim() const noexcept { return out_dim_; }
  [[nodiscard]] const math::Matrix& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] math::Matrix& weights() noexcept { return weights_; }
  [[nodiscard]] const math::Matrix& bias() const noexcept { return bias_; }
  [[nodiscard]] math::Matrix& bias() noexcept { return bias_; }

 private:
  std::size_t in_dim_;
  std::size_t out_dim_;
  math::Matrix weights_;       // in_dim x out_dim
  math::Matrix bias_;          // 1 x out_dim
  math::Matrix weight_grad_;
  math::Matrix bias_grad_;
  math::Matrix cached_input_;
};

}  // namespace soteria::nn
