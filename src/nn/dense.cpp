#include "nn/dense.h"

#include <cmath>
#include <stdexcept>

namespace soteria::nn {

Dense::Dense(std::size_t in_dim, std::size_t out_dim, math::Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weights_(in_dim, out_dim),
      bias_(1, out_dim, 0.0F),
      weight_grad_(in_dim, out_dim, 0.0F),
      bias_grad_(1, out_dim, 0.0F) {
  if (in_dim == 0 || out_dim == 0) {
    throw std::invalid_argument("Dense: zero dimension");
  }
  const float limit =
      std::sqrt(6.0F / static_cast<float>(in_dim));  // He-uniform
  weights_.fill_uniform(rng, -limit, limit);
}

math::Matrix Dense::forward(const math::Matrix& input, bool /*training*/) {
  cached_input_ = input;
  return infer(input);
}

math::Matrix Dense::infer(const math::Matrix& input) const {
  if (input.cols() != in_dim_) {
    throw std::invalid_argument("Dense::forward: input width " +
                                std::to_string(input.cols()) + " != " +
                                std::to_string(in_dim_));
  }
  // Straight into the blocked GEMM kernel (shared with nn::FrozenNet),
  // then the bias broadcast — bias is added after the full k-sum, an
  // order the frozen path replicates exactly.
  math::Matrix out(input.rows(), out_dim_, 0.0F);
  math::matmul_into(input.data().data(), weights_.data().data(),
                    out.data().data(), input.rows(), in_dim_, out_dim_);
  out.add_row_vector(bias_.row(0));
  return out;
}

math::Matrix Dense::backward(const math::Matrix& grad_output) {
  if (grad_output.rows() != cached_input_.rows() ||
      grad_output.cols() != out_dim_) {
    throw std::invalid_argument("Dense::backward: gradient shape " +
                                grad_output.shape_string() +
                                " incompatible with cached batch");
  }
  weight_grad_ += math::matmul_at(cached_input_, grad_output);
  const auto col_sums = grad_output.column_sums();
  for (std::size_t c = 0; c < out_dim_; ++c) bias_grad_(0, c) += col_sums[c];
  return math::matmul_bt(grad_output, weights_);
}

void Dense::collect_parameters(std::vector<ParamRef>& out) {
  out.push_back(ParamRef{&weights_, &weight_grad_});
  out.push_back(ParamRef{&bias_, &bias_grad_});
}

void Dense::zero_gradients() {
  weight_grad_.fill(0.0F);
  bias_grad_.fill(0.0F);
}

std::size_t Dense::parameter_count() const {
  return weights_.size() + bias_.size();
}

std::string Dense::name() const {
  return "Dense(" + std::to_string(in_dim_) + "->" +
         std::to_string(out_dim_) + ")";
}

std::size_t Dense::output_dimension(std::size_t input_dim) const {
  if (input_dim != in_dim_) {
    throw std::invalid_argument("Dense: expected input width " +
                                std::to_string(in_dim_) + ", got " +
                                std::to_string(input_dim));
  }
  return out_dim_;
}

}  // namespace soteria::nn
