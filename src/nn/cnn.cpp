#include "nn/cnn.h"

#include <stdexcept>

#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/pooling.h"

namespace soteria::nn {

void validate(const CnnConfig& config) {
  if (config.input_length == 0 || config.classes == 0 ||
      config.filters == 0 || config.kernel == 0 ||
      config.dense_units == 0) {
    throw std::invalid_argument("CnnConfig: zero dimension");
  }
  if (config.conv_dropout < 0.0 || config.conv_dropout >= 1.0 ||
      config.dense_dropout < 0.0 || config.dense_dropout >= 1.0) {
    throw std::invalid_argument("CnnConfig: dropout outside [0, 1)");
  }
  // Two blocks of (2 convs + pool-2) must leave a non-empty map.
  std::size_t len = config.input_length;
  for (int block = 0; block < 2; ++block) {
    for (int conv = 0; conv < 2; ++conv) {
      if (len < config.kernel) {
        throw std::invalid_argument(
            "CnnConfig: input too short for the conv stack");
      }
      len = len - config.kernel + 1;
    }
    if (len < 2) {
      throw std::invalid_argument(
          "CnnConfig: input too short for the pooling stack");
    }
    len /= 2;
  }
}

Sequential build_cnn(const CnnConfig& config, math::Rng& rng) {
  validate(config);
  Sequential model;
  std::size_t channels = 1;
  std::size_t length = config.input_length;
  for (int block = 0; block < 2; ++block) {
    for (int conv = 0; conv < 2; ++conv) {
      model.emplace<Conv1d>(channels, length, config.filters, config.kernel,
                            rng);
      model.emplace<Relu>();
      channels = config.filters;
      length = length - config.kernel + 1;
    }
    model.emplace<MaxPool1d>(channels, length, 2);
    length /= 2;
    model.emplace<Dropout>(config.conv_dropout, rng);
  }
  model.emplace<Dense>(channels * length, config.dense_units, rng);
  model.emplace<Relu>();
  model.emplace<Dropout>(config.dense_dropout, rng);
  model.emplace<Dense>(config.dense_units, config.classes, rng);
  return model;
}

}  // namespace soteria::nn
