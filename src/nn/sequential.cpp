#include "nn/sequential.h"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace soteria::nn {

namespace {
constexpr std::uint32_t kMagic = 0x53544e4e;  // "STNN"
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  if (layer == nullptr) {
    throw std::invalid_argument("Sequential::add: null layer");
  }
  layers_.push_back(std::move(layer));
  return *this;
}

math::Matrix Sequential::forward(const math::Matrix& input, bool training) {
  if (layers_.empty()) {
    throw std::logic_error("Sequential::forward: no layers");
  }
  math::Matrix activation = input;
  for (auto& layer : layers_) {
    activation = layer->forward(activation, training);
  }
  return activation;
}

math::Matrix Sequential::infer(const math::Matrix& input) const {
  if (layers_.empty()) {
    throw std::logic_error("Sequential::infer: no layers");
  }
  math::Matrix activation = input;
  for (const auto& layer : layers_) {
    activation = layer->infer(activation);
  }
  return activation;
}

math::Matrix Sequential::backward(const math::Matrix& grad_output) {
  if (layers_.empty()) {
    throw std::logic_error("Sequential::backward: no layers");
  }
  math::Matrix grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
  return grad;
}

std::vector<ParamRef> Sequential::parameters() {
  std::vector<ParamRef> params;
  for (auto& layer : layers_) {
    layer->collect_parameters(params);
  }
  return params;
}

void Sequential::zero_gradients() {
  for (auto& layer : layers_) layer->zero_gradients();
}

std::size_t Sequential::parameter_count() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer->parameter_count();
  return total;
}

std::size_t Sequential::output_dimension(std::size_t input_dim) const {
  std::size_t dim = input_dim;
  for (const auto& layer : layers_) {
    dim = layer->output_dimension(dim);
  }
  return dim;
}

std::string Sequential::summary() const {
  std::string text;
  for (const auto& layer : layers_) {
    text += layer->name();
    text += '\n';
  }
  text += "total parameters: " + std::to_string(parameter_count()) + '\n';
  return text;
}

void Sequential::save_parameters(std::ostream& out) const {
  // parameters() is non-const (it hands out mutable ParamRefs for
  // optimizers); serialization only reads them.
  const auto params = const_cast<Sequential*>(this)->parameters();
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  const auto count = static_cast<std::uint64_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    const auto size = static_cast<std::uint64_t>(p.value->size());
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(reinterpret_cast<const char*>(p.value->data().data()),
              static_cast<std::streamsize>(size * sizeof(float)));
  }
  if (!out) {
    throw std::runtime_error("Sequential::save_parameters: write failed");
  }
}

void Sequential::load_parameters(std::istream& in) {
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kMagic) {
    throw std::runtime_error(
        "Sequential::load_parameters: bad magic or truncated stream");
  }
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  const auto params = parameters();
  if (!in || count != params.size()) {
    throw std::runtime_error(
        "Sequential::load_parameters: parameter count mismatch");
  }
  for (const auto& p : params) {
    std::uint64_t size = 0;
    in.read(reinterpret_cast<char*>(&size), sizeof(size));
    if (!in || size != p.value->size()) {
      throw std::runtime_error(
          "Sequential::load_parameters: tensor size mismatch");
    }
    in.read(reinterpret_cast<char*>(p.value->data().data()),
            static_cast<std::streamsize>(size * sizeof(float)));
    if (!in) {
      throw std::runtime_error(
          "Sequential::load_parameters: truncated tensor data");
    }
  }
}

}  // namespace soteria::nn
