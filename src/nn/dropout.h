// Inverted dropout: active only in training, identity at inference.
#pragma once

#include "math/rng.h"
#include "nn/layer.h"

namespace soteria::nn {

class Dropout : public Layer {
 public:
  /// `rate` is the drop probability in [0, 1). The layer keeps a
  /// reference-free fork of `rng`, so dropout masks are deterministic
  /// given the construction seed.
  Dropout(double rate, math::Rng& rng);

  math::Matrix forward(const math::Matrix& input, bool training) override;
  /// Identity: dropout is inactive at inference.
  [[nodiscard]] math::Matrix infer(const math::Matrix& input) const override {
    return input;
  }
  math::Matrix backward(const math::Matrix& grad_output) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t output_dimension(
      std::size_t input_dim) const override {
    return input_dim;
  }

  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
  math::Rng rng_;
  math::Matrix mask_;  // scaled keep mask from the last training forward
  bool mask_valid_ = false;
};

}  // namespace soteria::nn
