#include "nn/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace soteria::nn {

LossResult mse_loss(const math::Matrix& predictions,
                    const math::Matrix& targets) {
  if (predictions.rows() != targets.rows() ||
      predictions.cols() != targets.cols()) {
    throw std::invalid_argument("mse_loss: shape mismatch " +
                                predictions.shape_string() + " vs " +
                                targets.shape_string());
  }
  const auto n = static_cast<double>(predictions.size());
  LossResult result;
  result.gradient = math::Matrix(predictions.rows(), predictions.cols());
  double acc = 0.0;
  const auto p = predictions.data();
  const auto t = targets.data();
  auto g = result.gradient.data();
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double diff = static_cast<double>(p[i]) - t[i];
    acc += diff * diff;
    g[i] = static_cast<float>(2.0 * diff / n);
  }
  result.loss = acc / n;
  return result;
}

math::Matrix softmax(const math::Matrix& logits) {
  math::Matrix probs = logits;
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    auto row = probs.row(r);
    const float max = *std::max_element(row.begin(), row.end());
    double sum = 0.0;
    for (float& x : row) {
      x = std::exp(x - max);
      sum += x;
    }
    const auto inv = static_cast<float>(1.0 / sum);
    for (float& x : row) x *= inv;
  }
  return probs;
}

LossResult softmax_cross_entropy(const math::Matrix& logits,
                                 std::span<const std::size_t> labels) {
  if (labels.size() != logits.rows()) {
    throw std::invalid_argument("softmax_cross_entropy: " +
                                std::to_string(labels.size()) +
                                " labels for batch of " +
                                std::to_string(logits.rows()));
  }
  LossResult result;
  result.gradient = softmax(logits);
  const auto batch = static_cast<double>(logits.rows());
  double acc = 0.0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    if (labels[r] >= logits.cols()) {
      throw std::invalid_argument("softmax_cross_entropy: label " +
                                  std::to_string(labels[r]) +
                                  " >= class count " +
                                  std::to_string(logits.cols()));
    }
    const double p =
        std::max(static_cast<double>(result.gradient(r, labels[r])), 1e-12);
    acc -= std::log(p);
    result.gradient(r, labels[r]) -= 1.0F;
  }
  result.gradient *= static_cast<float>(1.0 / batch);
  result.loss = acc / batch;
  return result;
}

std::vector<double> row_rmse(const math::Matrix& predictions,
                             const math::Matrix& targets) {
  if (predictions.rows() != targets.rows() ||
      predictions.cols() != targets.cols()) {
    throw std::invalid_argument("row_rmse: shape mismatch " +
                                predictions.shape_string() + " vs " +
                                targets.shape_string());
  }
  std::vector<double> rmse(predictions.rows(), 0.0);
  for (std::size_t r = 0; r < predictions.rows(); ++r) {
    const auto p = predictions.row(r);
    const auto t = targets.row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < p.size(); ++c) {
      const double diff = static_cast<double>(p[c]) - t[c];
      acc += diff * diff;
    }
    rmse[r] = std::sqrt(acc / static_cast<double>(p.size()));
  }
  return rmse;
}

}  // namespace soteria::nn
