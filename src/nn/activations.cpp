#include "nn/activations.h"

#include <cmath>
#include <stdexcept>

namespace soteria::nn {

math::Matrix Relu::forward(const math::Matrix& input, bool /*training*/) {
  cached_input_ = input;
  return infer(input);
}

math::Matrix Relu::infer(const math::Matrix& input) const {
  math::Matrix out = input;
  for (float& x : out.data()) x = x > 0.0F ? x : 0.0F;
  return out;
}

math::Matrix Relu::backward(const math::Matrix& grad_output) {
  if (grad_output.rows() != cached_input_.rows() ||
      grad_output.cols() != cached_input_.cols()) {
    throw std::invalid_argument("Relu::backward: shape mismatch");
  }
  math::Matrix grad = grad_output;
  const auto in = cached_input_.data();
  auto g = grad.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (in[i] <= 0.0F) g[i] = 0.0F;
  }
  return grad;
}

math::Matrix Sigmoid::forward(const math::Matrix& input, bool /*training*/) {
  math::Matrix out = infer(input);
  cached_output_ = out;
  return out;
}

math::Matrix Sigmoid::infer(const math::Matrix& input) const {
  math::Matrix out = input;
  for (float& x : out.data()) x = 1.0F / (1.0F + std::exp(-x));
  return out;
}

math::Matrix Sigmoid::backward(const math::Matrix& grad_output) {
  if (grad_output.rows() != cached_output_.rows() ||
      grad_output.cols() != cached_output_.cols()) {
    throw std::invalid_argument("Sigmoid::backward: shape mismatch");
  }
  math::Matrix grad = grad_output;
  const auto y = cached_output_.data();
  auto g = grad.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] *= y[i] * (1.0F - y[i]);
  }
  return grad;
}

}  // namespace soteria::nn
