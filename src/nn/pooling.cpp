#include "nn/pooling.h"

#include <stdexcept>
#include <string>

namespace soteria::nn {

MaxPool1d::MaxPool1d(std::size_t channels, std::size_t in_length,
                     std::size_t window)
    : channels_(channels), in_length_(in_length), window_(window) {
  if (channels == 0 || in_length == 0 || window == 0) {
    throw std::invalid_argument("MaxPool1d: zero dimension");
  }
  if (window > in_length) {
    throw std::invalid_argument("MaxPool1d: window " +
                                std::to_string(window) +
                                " exceeds input length " +
                                std::to_string(in_length));
  }
}

math::Matrix MaxPool1d::forward(const math::Matrix& input,
                                bool /*training*/) {
  const std::size_t expected = channels_ * in_length_;
  if (input.cols() != expected) {
    throw std::invalid_argument("MaxPool1d::forward: input width " +
                                std::to_string(input.cols()) + " != " +
                                std::to_string(expected));
  }
  const std::size_t out_len = out_length();
  cached_rows_ = input.rows();
  argmax_.assign(input.rows() * channels_ * out_len, 0);
  math::Matrix out(input.rows(), channels_ * out_len, 0.0F);
  for (std::size_t r = 0; r < input.rows(); ++r) {
    const float* in_row = input.data().data() + r * input.cols();
    float* out_row = out.data().data() + r * out.cols();
    std::uint32_t* am_row = argmax_.data() + r * channels_ * out_len;
    for (std::size_t c = 0; c < channels_; ++c) {
      const float* in_chan = in_row + c * in_length_;
      float* out_chan = out_row + c * out_len;
      std::uint32_t* am_chan = am_row + c * out_len;
      for (std::size_t t = 0; t < out_len; ++t) {
        const std::size_t start = t * window_;
        float best = in_chan[start];
        std::size_t best_idx = start;
        for (std::size_t k = 1; k < window_; ++k) {
          if (in_chan[start + k] > best) {
            best = in_chan[start + k];
            best_idx = start + k;
          }
        }
        out_chan[t] = best;
        am_chan[t] = static_cast<std::uint32_t>(best_idx);
      }
    }
  }
  return out;
}

math::Matrix MaxPool1d::infer(const math::Matrix& input) const {
  const std::size_t expected = channels_ * in_length_;
  if (input.cols() != expected) {
    throw std::invalid_argument("MaxPool1d::forward: input width " +
                                std::to_string(input.cols()) + " != " +
                                std::to_string(expected));
  }
  const std::size_t out_len = out_length();
  math::Matrix out(input.rows(), channels_ * out_len, 0.0F);
  for (std::size_t r = 0; r < input.rows(); ++r) {
    const float* in_row = input.data().data() + r * input.cols();
    float* out_row = out.data().data() + r * out.cols();
    for (std::size_t c = 0; c < channels_; ++c) {
      const float* in_chan = in_row + c * in_length_;
      float* out_chan = out_row + c * out_len;
      for (std::size_t t = 0; t < out_len; ++t) {
        const std::size_t start = t * window_;
        float best = in_chan[start];
        for (std::size_t k = 1; k < window_; ++k) {
          if (in_chan[start + k] > best) best = in_chan[start + k];
        }
        out_chan[t] = best;
      }
    }
  }
  return out;
}

math::Matrix MaxPool1d::backward(const math::Matrix& grad_output) {
  const std::size_t out_len = out_length();
  if (grad_output.rows() != cached_rows_ ||
      grad_output.cols() != channels_ * out_len) {
    throw std::invalid_argument("MaxPool1d::backward: gradient shape " +
                                grad_output.shape_string() +
                                " incompatible with cached batch");
  }
  math::Matrix grad_input(cached_rows_, channels_ * in_length_, 0.0F);
  for (std::size_t r = 0; r < cached_rows_; ++r) {
    const float* go_row = grad_output.data().data() + r * grad_output.cols();
    float* gi_row = grad_input.data().data() + r * grad_input.cols();
    const std::uint32_t* am_row = argmax_.data() + r * channels_ * out_len;
    for (std::size_t c = 0; c < channels_; ++c) {
      const float* go_chan = go_row + c * out_len;
      float* gi_chan = gi_row + c * in_length_;
      const std::uint32_t* am_chan = am_row + c * out_len;
      for (std::size_t t = 0; t < out_len; ++t) {
        gi_chan[am_chan[t]] += go_chan[t];
      }
    }
  }
  return grad_input;
}

std::string MaxPool1d::name() const {
  return "MaxPool1d(" + std::to_string(channels_) + "x" +
         std::to_string(in_length_) + ", w=" + std::to_string(window_) + ")";
}

std::size_t MaxPool1d::output_dimension(std::size_t input_dim) const {
  if (input_dim != channels_ * in_length_) {
    throw std::invalid_argument("MaxPool1d: expected input width " +
                                std::to_string(channels_ * in_length_) +
                                ", got " + std::to_string(input_dim));
  }
  return channels_ * out_length();
}

}  // namespace soteria::nn
