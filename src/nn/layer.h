// Layer abstraction for the from-scratch neural-network substrate.
//
// Layers transform batches (math::Matrix, rows = samples) and implement
// manual backpropagation: `forward` caches whatever it needs, `backward`
// consumes the loss gradient w.r.t. the layer output and returns the
// gradient w.r.t. the layer input, accumulating parameter gradients
// internally. Parameters are exposed through `ParamRef`s so optimizers
// can update them without knowing layer internals.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "math/matrix.h"

namespace soteria::nn {

/// A parameter tensor paired with its gradient accumulator. References
/// remain valid for the lifetime of the owning layer.
struct ParamRef {
  math::Matrix* value = nullptr;
  math::Matrix* grad = nullptr;
};

/// Base class for all layers.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Batch forward pass. `training` enables train-only behaviour
  /// (dropout masks). Implementations cache activations for backward.
  virtual math::Matrix forward(const math::Matrix& input, bool training) = 0;

  /// Inference-only forward pass: identical arithmetic to
  /// forward(input, false) but touches no mutable state (no activation
  /// caches, no dropout masks), so concurrent infer() calls on a shared
  /// layer are safe. backward() must not follow an infer().
  [[nodiscard]] virtual math::Matrix infer(const math::Matrix& input)
      const = 0;

  /// Batch backward pass; must follow a forward with the same batch.
  /// Accumulates parameter gradients and returns d(loss)/d(input).
  virtual math::Matrix backward(const math::Matrix& grad_output) = 0;

  /// Parameter/gradient pairs (empty for stateless layers).
  virtual void collect_parameters(std::vector<ParamRef>& out) { (void)out; }

  /// Zeroes accumulated gradients.
  virtual void zero_gradients() {}

  /// Total number of scalar parameters.
  [[nodiscard]] virtual std::size_t parameter_count() const { return 0; }

  /// Diagnostic name, e.g. "Dense(500->512)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Output width for an input of width `input_dim`; lets containers
  /// validate architecture chains ahead of time. Throws
  /// std::invalid_argument if the input width is incompatible.
  [[nodiscard]] virtual std::size_t output_dimension(
      std::size_t input_dim) const = 0;
};

}  // namespace soteria::nn
