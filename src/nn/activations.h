// Stateless activation layers: ReLU and Sigmoid.
#pragma once

#include "nn/layer.h"

namespace soteria::nn {

/// Rectified linear unit, elementwise max(0, x).
class Relu : public Layer {
 public:
  math::Matrix forward(const math::Matrix& input, bool training) override;
  [[nodiscard]] math::Matrix infer(const math::Matrix& input) const override;
  math::Matrix backward(const math::Matrix& grad_output) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }
  [[nodiscard]] std::size_t output_dimension(
      std::size_t input_dim) const override {
    return input_dim;
  }

 private:
  math::Matrix cached_input_;
};

/// Logistic sigmoid, elementwise 1 / (1 + e^-x).
class Sigmoid : public Layer {
 public:
  math::Matrix forward(const math::Matrix& input, bool training) override;
  [[nodiscard]] math::Matrix infer(const math::Matrix& input) const override;
  math::Matrix backward(const math::Matrix& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Sigmoid"; }
  [[nodiscard]] std::size_t output_dimension(
      std::size_t input_dim) const override {
    return input_dim;
  }

 private:
  math::Matrix cached_output_;
};

}  // namespace soteria::nn
