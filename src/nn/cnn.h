// The classifier CNN (paper Fig. 7): two convolutional blocks followed
// by a classification block, over a 1x500 feature vector.
//
//   ConvB1: Conv1d(46, k=3) -> ReLU -> Conv1d(46, k=3) -> ReLU ->
//           MaxPool(2) -> Dropout(0.25)
//   ConvB2: same shape on ConvB1's output
//   CB:     Dense(512) -> ReLU -> Dropout(0.5) -> Dense(#classes)
//
// The final layer emits logits; pair with softmax_cross_entropy for
// training and nn::softmax for probabilities. `filters`/`dense_units`
// default to the paper values and can be scaled down for CPU-budget
// runs.
#pragma once

#include <cstddef>

#include "math/rng.h"
#include "nn/sequential.h"

namespace soteria::nn {

/// CNN architecture parameters.
struct CnnConfig {
  std::size_t input_length = 500;  ///< one labeling's feature width
  std::size_t classes = 4;         ///< Benign, Gafgyt, Mirai, Tsunami
  std::size_t filters = 46;        ///< per conv layer (paper: 46)
  std::size_t kernel = 3;          ///< conv kernel (paper: 1x3)
  std::size_t dense_units = 512;   ///< classification block width
  double conv_dropout = 0.25;
  double dense_dropout = 0.5;
};

/// Throws std::invalid_argument on zero sizes, kernel/pooling shapes
/// that collapse the feature map, or dropout rates outside [0, 1).
void validate(const CnnConfig& config);

/// Builds the CNN. Input batches are rows of width input_length (one
/// channel); output is `classes` logits per row.
[[nodiscard]] Sequential build_cnn(const CnnConfig& config, math::Rng& rng);

}  // namespace soteria::nn
