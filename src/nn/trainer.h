// Mini-batch training loops for regression (autoencoder) and
// classification (CNN) models.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "math/matrix.h"
#include "math/rng.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

namespace soteria::nn {

/// Training hyper-parameters (paper: 100 epochs, batch 128).
struct TrainConfig {
  std::size_t epochs = 100;
  std::size_t batch_size = 128;
  bool shuffle = true;
  /// Invoked after every epoch with (epoch, mean loss); may be empty.
  std::function<void(std::size_t, double)> on_epoch;
};

/// Throws std::invalid_argument on zero epochs/batch size.
void validate(const TrainConfig& config);

/// Convenience factory for the common (epochs, batch) case.
[[nodiscard]] TrainConfig make_train_config(std::size_t epochs,
                                            std::size_t batch_size);

/// Per-epoch mean losses.
struct TrainReport {
  std::vector<double> epoch_losses;

  [[nodiscard]] double final_loss() const noexcept {
    return epoch_losses.empty() ? 0.0 : epoch_losses.back();
  }
};

/// Trains `model` to map inputs to targets under MSE (targets == inputs
/// for an autoencoder). Throws std::invalid_argument if row counts
/// differ or the dataset is empty.
TrainReport train_regression(Sequential& model, const math::Matrix& inputs,
                             const math::Matrix& targets,
                             Optimizer& optimizer, const TrainConfig& config,
                             math::Rng& rng);

/// Trains `model` as a classifier under softmax cross-entropy against
/// integer labels.
TrainReport train_classifier(Sequential& model, const math::Matrix& inputs,
                             std::span<const std::size_t> labels,
                             Optimizer& optimizer, const TrainConfig& config,
                             math::Rng& rng);

/// Argmax class per row of (logit or probability) outputs.
[[nodiscard]] std::vector<std::size_t> argmax_rows(const math::Matrix& m);

/// Copies selected rows into a new matrix.
[[nodiscard]] math::Matrix gather_rows(const math::Matrix& m,
                                       std::span<const std::size_t> rows);

}  // namespace soteria::nn
