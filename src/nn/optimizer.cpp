#include "nn/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace soteria::nn {

namespace {

void check_binding(std::size_t bound, std::span<const ParamRef> params,
                   const char* what) {
  if (bound != 0 && bound != params.size()) {
    throw std::invalid_argument(std::string(what) +
                                ": parameter list size changed (" +
                                std::to_string(bound) + " -> " +
                                std::to_string(params.size()) + ")");
  }
  for (const auto& p : params) {
    if (p.value == nullptr || p.grad == nullptr) {
      throw std::invalid_argument(std::string(what) + ": null parameter");
    }
    if (p.value->size() != p.grad->size()) {
      throw std::invalid_argument(std::string(what) +
                                  ": parameter/gradient size mismatch");
    }
  }
}

}  // namespace

Sgd::Sgd(double learning_rate, double momentum)
    : lr_(learning_rate), momentum_(momentum) {
  if (learning_rate <= 0.0) {
    throw std::invalid_argument("Sgd: learning rate must be positive");
  }
  if (momentum < 0.0 || momentum >= 1.0) {
    throw std::invalid_argument("Sgd: momentum outside [0, 1)");
  }
}

void Sgd::set_learning_rate(double lr) {
  if (lr <= 0.0) {
    throw std::invalid_argument("Sgd: learning rate must be positive");
  }
  lr_ = lr;
}

void Sgd::step(std::span<const ParamRef> parameters) {
  check_binding(velocity_.size(), parameters, "Sgd::step");
  if (velocity_.empty()) {
    velocity_.reserve(parameters.size());
    for (const auto& p : parameters) {
      velocity_.emplace_back(p.value->size(), 0.0F);
    }
  }
  for (std::size_t i = 0; i < parameters.size(); ++i) {
    auto value = parameters[i].value->data();
    const auto grad = parameters[i].grad->data();
    auto& vel = velocity_[i];
    if (vel.size() != value.size()) {
      throw std::invalid_argument("Sgd::step: parameter shape changed");
    }
    const auto lr = static_cast<float>(lr_);
    const auto mu = static_cast<float>(momentum_);
    for (std::size_t j = 0; j < value.size(); ++j) {
      vel[j] = mu * vel[j] - lr * grad[j];
      value[j] += vel[j];
    }
  }
}

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  if (learning_rate <= 0.0) {
    throw std::invalid_argument("Adam: learning rate must be positive");
  }
  if (beta1 < 0.0 || beta1 >= 1.0 || beta2 < 0.0 || beta2 >= 1.0) {
    throw std::invalid_argument("Adam: betas outside [0, 1)");
  }
  if (epsilon <= 0.0) {
    throw std::invalid_argument("Adam: epsilon must be positive");
  }
}

void Adam::set_learning_rate(double lr) {
  if (lr <= 0.0) {
    throw std::invalid_argument("Adam: learning rate must be positive");
  }
  lr_ = lr;
}

void Adam::step(std::span<const ParamRef> parameters) {
  check_binding(first_moment_.size(), parameters, "Adam::step");
  if (first_moment_.empty()) {
    first_moment_.reserve(parameters.size());
    second_moment_.reserve(parameters.size());
    for (const auto& p : parameters) {
      first_moment_.emplace_back(p.value->size(), 0.0F);
      second_moment_.emplace_back(p.value->size(), 0.0F);
    }
  }
  ++timestep_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(timestep_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(timestep_));
  const auto step_size = static_cast<float>(lr_ * std::sqrt(bias2) / bias1);
  const auto b1 = static_cast<float>(beta1_);
  const auto b2 = static_cast<float>(beta2_);
  const auto eps = static_cast<float>(epsilon_);
  for (std::size_t i = 0; i < parameters.size(); ++i) {
    auto value = parameters[i].value->data();
    const auto grad = parameters[i].grad->data();
    auto& m = first_moment_[i];
    auto& v = second_moment_[i];
    if (m.size() != value.size()) {
      throw std::invalid_argument("Adam::step: parameter shape changed");
    }
    for (std::size_t j = 0; j < value.size(); ++j) {
      m[j] = b1 * m[j] + (1.0F - b1) * grad[j];
      v[j] = b2 * v[j] + (1.0F - b2) * grad[j] * grad[j];
      value[j] -= step_size * m[j] / (std::sqrt(v[j]) + eps);
    }
  }
}

}  // namespace soteria::nn
