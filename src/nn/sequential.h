// Sequential container: an ordered stack of layers trained end-to-end.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace soteria::nn {

class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Appends a layer (builder style). Throws std::invalid_argument on a
  /// null layer.
  Sequential& add(std::unique_ptr<Layer> layer);

  /// Convenience: constructs the layer in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  /// Forward through all layers. Throws std::logic_error if empty.
  [[nodiscard]] math::Matrix forward(const math::Matrix& input,
                                     bool training);

  /// Inference-mode forward (no dropout).
  [[nodiscard]] math::Matrix predict(const math::Matrix& input) {
    return forward(input, /*training=*/false);
  }

  /// Thread-safe inference: same arithmetic as predict() but touches no
  /// mutable layer state, so concurrent infer() calls on one model are
  /// safe (the parallel batch engine relies on this). Throws
  /// std::logic_error if empty.
  [[nodiscard]] math::Matrix infer(const math::Matrix& input) const;

  /// Backward pass through all layers; returns d(loss)/d(input).
  math::Matrix backward(const math::Matrix& grad_output);

  /// All parameter/gradient pairs, in stable layer order.
  [[nodiscard]] std::vector<ParamRef> parameters();

  /// Zeroes every layer's gradient accumulators.
  void zero_gradients();

  [[nodiscard]] std::size_t layer_count() const noexcept {
    return layers_.size();
  }
  [[nodiscard]] std::size_t parameter_count() const;

  /// Validates the layer chain for `input_dim`-wide inputs and returns
  /// the output width. Throws std::invalid_argument on any mismatch.
  [[nodiscard]] std::size_t output_dimension(std::size_t input_dim) const;

  /// One line per layer, for logs and model summaries.
  [[nodiscard]] std::string summary() const;

  /// Read-only layer access; FrozenNet::compile walks this to bake the
  /// stack into a flat op list.
  [[nodiscard]] const std::vector<std::unique_ptr<Layer>>& layers()
      const noexcept {
    return layers_;
  }

  /// Serializes all parameters (binary, with a magic header and per-
  /// tensor sizes). Architecture itself is not stored: load into a model
  /// constructed with the same topology. Throws std::runtime_error on
  /// I/O failure or size mismatch at load.
  void save_parameters(std::ostream& out) const;
  void load_parameters(std::istream& in);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace soteria::nn
