// Max pooling over channel-major 1D feature maps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/layer.h"

namespace soteria::nn {

/// Non-overlapping 1D max pooling (stride == window, the paper's s=m=2).
/// A trailing remainder shorter than the window is dropped, matching
/// Keras' MaxPooling1D.
class MaxPool1d : public Layer {
 public:
  /// Throws std::invalid_argument on zero sizes or window > in_length.
  MaxPool1d(std::size_t channels, std::size_t in_length, std::size_t window);

  math::Matrix forward(const math::Matrix& input, bool training) override;
  [[nodiscard]] math::Matrix infer(const math::Matrix& input) const override;
  math::Matrix backward(const math::Matrix& grad_output) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t output_dimension(
      std::size_t input_dim) const override;

  [[nodiscard]] std::size_t out_length() const noexcept {
    return in_length_ / window_;
  }
  [[nodiscard]] std::size_t channels() const noexcept { return channels_; }
  [[nodiscard]] std::size_t in_length() const noexcept { return in_length_; }
  [[nodiscard]] std::size_t window() const noexcept { return window_; }

 private:
  std::size_t channels_;
  std::size_t in_length_;
  std::size_t window_;
  std::size_t cached_rows_ = 0;
  std::vector<std::uint32_t> argmax_;  // flat per (row, channel, out_t)
};

}  // namespace soteria::nn
