// FrozenNet: a fitted Sequential compiled into a flat op list with
// preallocated ping-pong scratch — zero allocation per inference call.
//
// Compilation copies every layer's weights into contiguous op records
// and resolves all shapes once, so infer_into is a straight walk over
// the ops driving the same raw kernels Layer::infer uses
// (math::matmul_into, nn::conv1d_infer_into, and verbatim replicas of
// the ReLU/Sigmoid/MaxPool element loops). The result is bit-identical
// to Sequential::infer on the compiled model for finite inputs.
// Dropout layers are identity at inference and compile away entirely.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/sequential.h"

namespace soteria::nn {

class FrozenNet {
 public:
  /// Reusable per-thread ping-pong arena. One Scratch serves any
  /// number of infer_into calls; buffers grow on demand and never
  /// shrink.
  struct Scratch {
    std::vector<float> a;
    std::vector<float> b;
  };

  FrozenNet() = default;

  /// Compiles `model` for `input_dim`-wide rows. Validates the layer
  /// chain (same checks as Sequential::output_dimension) and copies
  /// all weights; the Sequential may be mutated or destroyed
  /// afterwards. Throws std::invalid_argument on an unsupported layer
  /// type or shape mismatch.
  [[nodiscard]] static FrozenNet compile(const Sequential& model,
                                         std::size_t input_dim);

  [[nodiscard]] std::size_t input_dim() const noexcept { return input_dim_; }
  [[nodiscard]] std::size_t output_dim() const noexcept {
    return output_dim_;
  }
  [[nodiscard]] bool compiled() const noexcept { return !ops_.empty(); }

  /// Sizes `scratch` for `rows`-row batches (idempotent; growing only).
  void reserve_scratch(Scratch& scratch, std::size_t rows) const;

  /// Runs the compiled stack over `rows` x input_dim() row-major
  /// `in`, writing rows x output_dim() to `out` (which must not alias
  /// scratch). Grows `scratch` if needed; no other allocation.
  void infer_into(const float* in, std::size_t rows, float* out,
                  Scratch& scratch) const;

 private:
  enum class OpKind { kDense, kRelu, kSigmoid, kConv1d, kMaxPool1d };

  struct Op {
    OpKind kind;
    std::size_t in_width = 0;
    std::size_t out_width = 0;
    // Conv/pool geometry (unused for dense/activations).
    std::size_t in_channels = 0;
    std::size_t in_length = 0;
    std::size_t out_channels = 0;
    std::size_t kernel = 0;
    std::size_t window = 0;
    std::vector<float> weights;  // dense: in_width x out_width row-major;
                                 // conv: out_channels x (in_channels*kernel)
    std::vector<float> bias;
  };

  std::vector<Op> ops_;
  std::size_t input_dim_ = 0;
  std::size_t output_dim_ = 0;
  std::size_t max_width_ = 0;  // widest intermediate, for scratch sizing
};

}  // namespace soteria::nn
