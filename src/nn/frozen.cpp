#include "nn/frozen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "math/matrix.h"
#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/pooling.h"

namespace soteria::nn {

FrozenNet FrozenNet::compile(const Sequential& model, std::size_t input_dim) {
  // Resolves all shapes up front with the same validation
  // Sequential::output_dimension applies layer by layer.
  FrozenNet net;
  net.input_dim_ = input_dim;
  net.max_width_ = input_dim;
  std::size_t width = input_dim;

  for (const auto& layer : model.layers()) {
    const std::size_t out_width = layer->output_dimension(width);
    Op op;
    op.in_width = width;
    op.out_width = out_width;
    if (const auto* dense = dynamic_cast<const Dense*>(layer.get())) {
      op.kind = OpKind::kDense;
      const auto w = dense->weights().data();
      op.weights.assign(w.begin(), w.end());
      const auto b = dense->bias().data();
      op.bias.assign(b.begin(), b.end());
    } else if (dynamic_cast<const Relu*>(layer.get()) != nullptr) {
      op.kind = OpKind::kRelu;
    } else if (dynamic_cast<const Sigmoid*>(layer.get()) != nullptr) {
      op.kind = OpKind::kSigmoid;
    } else if (const auto* conv = dynamic_cast<const Conv1d*>(layer.get())) {
      op.kind = OpKind::kConv1d;
      op.in_channels = conv->in_channels();
      op.in_length = conv->in_length();
      op.out_channels = conv->out_channels();
      op.kernel = conv->kernel();
      const auto w = conv->weights().data();
      op.weights.assign(w.begin(), w.end());
      const auto b = conv->bias().data();
      op.bias.assign(b.begin(), b.end());
    } else if (const auto* pool =
                   dynamic_cast<const MaxPool1d*>(layer.get())) {
      op.kind = OpKind::kMaxPool1d;
      op.in_channels = pool->channels();
      op.in_length = pool->in_length();
      op.window = pool->window();
    } else if (dynamic_cast<const Dropout*>(layer.get()) != nullptr) {
      // Identity at inference: compiles away.
      width = out_width;
      continue;
    } else {
      throw std::invalid_argument("FrozenNet: unsupported layer " +
                                  layer->name());
    }
    net.ops_.push_back(std::move(op));
    width = out_width;
    net.max_width_ = std::max(net.max_width_, width);
  }
  if (net.ops_.empty()) {
    throw std::invalid_argument("FrozenNet: no compilable layers");
  }
  net.output_dim_ = width;
  return net;
}

void FrozenNet::reserve_scratch(Scratch& scratch, std::size_t rows) const {
  const std::size_t need = rows * max_width_;
  if (scratch.a.size() < need) scratch.a.resize(need);
  if (scratch.b.size() < need) scratch.b.resize(need);
}

namespace {

/// Same elementwise loops as Relu::infer / Sigmoid::infer.
void relu_into(const float* in, float* out, std::size_t count) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    const float x = in[i];
    out[i] = x > 0.0F ? x : 0.0F;
  }
}

void sigmoid_into(const float* in, float* out, std::size_t count) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = 1.0F / (1.0F + std::exp(-in[i]));
  }
}

/// Same window loop as MaxPool1d::infer (first-element seed, strict >).
void maxpool_into(const float* in, float* out, std::size_t rows,
                  std::size_t channels, std::size_t in_length,
                  std::size_t window) noexcept {
  const std::size_t out_len = in_length / window;
  const std::size_t in_cols = channels * in_length;
  const std::size_t out_cols = channels * out_len;
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in_row = in + r * in_cols;
    float* out_row = out + r * out_cols;
    for (std::size_t c = 0; c < channels; ++c) {
      const float* in_chan = in_row + c * in_length;
      float* out_chan = out_row + c * out_len;
      for (std::size_t t = 0; t < out_len; ++t) {
        const std::size_t start = t * window;
        float best = in_chan[start];
        for (std::size_t k = 1; k < window; ++k) {
          if (in_chan[start + k] > best) best = in_chan[start + k];
        }
        out_chan[t] = best;
      }
    }
  }
}

}  // namespace

void FrozenNet::infer_into(const float* in, std::size_t rows, float* out,
                           Scratch& scratch) const {
  reserve_scratch(scratch, rows);
  const float* cur = in;
  float* ping = scratch.a.data();
  float* pong = scratch.b.data();
  for (std::size_t idx = 0; idx < ops_.size(); ++idx) {
    const Op& op = ops_[idx];
    float* dst = idx + 1 == ops_.size() ? out : ping;
    switch (op.kind) {
      case OpKind::kDense:
        math::matmul_into(cur, op.weights.data(), dst, rows, op.in_width,
                          op.out_width);
        // Bias broadcast after the full k-sum, exactly like
        // Dense::infer's add_row_vector.
        for (std::size_t r = 0; r < rows; ++r) {
          float* row = dst + r * op.out_width;
          for (std::size_t c = 0; c < op.out_width; ++c) {
            row[c] += op.bias[c];
          }
        }
        break;
      case OpKind::kRelu:
        relu_into(cur, dst, rows * op.out_width);
        break;
      case OpKind::kSigmoid:
        sigmoid_into(cur, dst, rows * op.out_width);
        break;
      case OpKind::kConv1d:
        conv1d_infer_into(cur, dst, op.weights.data(), op.bias.data(), rows,
                          op.in_channels, op.in_length, op.out_channels,
                          op.kernel);
        break;
      case OpKind::kMaxPool1d:
        maxpool_into(cur, dst, rows, op.in_channels, op.in_length, op.window);
        break;
    }
    cur = dst;
    std::swap(ping, pong);
  }
}

}  // namespace soteria::nn
