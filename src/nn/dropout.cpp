#include "nn/dropout.h"

#include <stdexcept>
#include <string>

namespace soteria::nn {

Dropout::Dropout(double rate, math::Rng& rng)
    : rate_(rate), rng_(rng.fork(0xd209u)) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("Dropout: rate outside [0, 1)");
  }
}

math::Matrix Dropout::forward(const math::Matrix& input, bool training) {
  if (!training || rate_ == 0.0) {
    mask_valid_ = false;
    return input;
  }
  const auto keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  mask_ = math::Matrix(input.rows(), input.cols());
  for (float& m : mask_.data()) {
    m = rng_.bernoulli(rate_) ? 0.0F : keep_scale;
  }
  mask_valid_ = true;
  return input.hadamard(mask_);
}

math::Matrix Dropout::backward(const math::Matrix& grad_output) {
  if (!mask_valid_) return grad_output;
  if (grad_output.rows() != mask_.rows() ||
      grad_output.cols() != mask_.cols()) {
    throw std::invalid_argument("Dropout::backward: gradient shape " +
                                grad_output.shape_string() +
                                " incompatible with cached mask");
  }
  return grad_output.hadamard(mask_);
}

std::string Dropout::name() const {
  return "Dropout(" + std::to_string(rate_) + ")";
}

}  // namespace soteria::nn
