#include "nn/autoencoder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/activations.h"
#include "nn/dense.h"

namespace soteria::nn {

void validate(const AutoencoderConfig& config) {
  if (config.input_dim == 0) {
    throw std::invalid_argument("AutoencoderConfig: zero input dimension");
  }
  if (config.hidden_dims.empty()) {
    throw std::invalid_argument("AutoencoderConfig: no hidden layers");
  }
  for (std::size_t h : config.hidden_dims) {
    if (h == 0) {
      throw std::invalid_argument("AutoencoderConfig: zero hidden width");
    }
  }
  if (!(config.width_scale > 0.0)) {
    throw std::invalid_argument(
        "AutoencoderConfig: width_scale must be positive");
  }
}

Sequential build_autoencoder(const AutoencoderConfig& config,
                             math::Rng& rng) {
  validate(config);
  Sequential model;
  std::size_t prev = config.input_dim;
  for (std::size_t hidden : config.hidden_dims) {
    const auto scaled = std::max<std::size_t>(
        8, static_cast<std::size_t>(std::llround(
               static_cast<double>(hidden) * config.width_scale)));
    model.emplace<Dense>(prev, scaled, rng);
    model.emplace<Relu>();
    prev = scaled;
  }
  model.emplace<Dense>(prev, config.input_dim, rng);
  return model;
}

}  // namespace soteria::nn
