// The detector's over-complete autoencoder (paper Fig. 5):
//   input 1x1000 -> dense 2000 -> dense 3000 -> dense 2000 -> output 1000
// with ReLU between hidden layers and a linear output. `width_scale`
// shrinks the hidden widths proportionally for CPU-budgeted runs (the
// paper trained on GPU); scale 1.0 is the paper architecture.
#pragma once

#include <cstddef>
#include <vector>

#include "math/rng.h"
#include "nn/sequential.h"

namespace soteria::nn {

/// Autoencoder architecture parameters.
struct AutoencoderConfig {
  std::size_t input_dim = 1000;
  /// Paper hidden widths, scaled by width_scale (minimum 8 each).
  std::vector<std::size_t> hidden_dims = {2000, 3000, 2000};
  double width_scale = 1.0;
};

/// Throws std::invalid_argument on zero input dim, empty hidden stack,
/// or non-positive scale.
void validate(const AutoencoderConfig& config);

/// Builds the dense autoencoder. The returned model maps input_dim ->
/// input_dim.
[[nodiscard]] Sequential build_autoencoder(const AutoencoderConfig& config,
                                           math::Rng& rng);

}  // namespace soteria::nn
