#include "nn/trainer.h"

#include <algorithm>
#include <stdexcept>

#include "nn/loss.h"
#include "obs/trace.h"

namespace soteria::nn {

void validate(const TrainConfig& config) {
  if (config.epochs == 0) {
    throw std::invalid_argument("TrainConfig: epochs must be > 0");
  }
  if (config.batch_size == 0) {
    throw std::invalid_argument("TrainConfig: batch size must be > 0");
  }
}

TrainConfig make_train_config(std::size_t epochs, std::size_t batch_size) {
  TrainConfig config;
  config.epochs = epochs;
  config.batch_size = batch_size;
  return config;
}

namespace {

// Shared epoch loop: `run_batch` maps a row-index batch to its loss.
template <typename BatchFn>
TrainReport epoch_loop(std::size_t sample_count, const TrainConfig& config,
                       math::Rng& rng, BatchFn&& run_batch) {
  validate(config);
  if (sample_count == 0) {
    throw std::invalid_argument("train: empty dataset");
  }
  std::vector<std::size_t> order(sample_count);
  for (std::size_t i = 0; i < sample_count; ++i) order[i] = i;

  TrainReport report;
  report.epoch_losses.reserve(config.epochs);
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const obs::Span epoch_span("nn.epoch");
    if (config.shuffle) rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < sample_count;
         start += config.batch_size) {
      const std::size_t end =
          std::min(start + config.batch_size, sample_count);
      const std::span<const std::size_t> batch(order.data() + start,
                                               end - start);
      loss_sum += run_batch(batch);
      ++batches;
    }
    const double epoch_loss = loss_sum / static_cast<double>(batches);
    report.epoch_losses.push_back(epoch_loss);
    obs::registry().counter_add("soteria.nn.epochs");
    obs::registry().gauge_set("soteria.nn.loss", epoch_loss);
    if (config.on_epoch) config.on_epoch(epoch, epoch_loss);
  }
  return report;
}

}  // namespace

TrainReport train_regression(Sequential& model, const math::Matrix& inputs,
                             const math::Matrix& targets,
                             Optimizer& optimizer, const TrainConfig& config,
                             math::Rng& rng) {
  if (inputs.rows() != targets.rows()) {
    throw std::invalid_argument("train_regression: row count mismatch");
  }
  const auto params = model.parameters();
  return epoch_loop(
      inputs.rows(), config, rng,
      [&](std::span<const std::size_t> batch) {
        const math::Matrix x = gather_rows(inputs, batch);
        const math::Matrix y = gather_rows(targets, batch);
        model.zero_gradients();
        const math::Matrix pred = model.forward(x, /*training=*/true);
        const LossResult loss = mse_loss(pred, y);
        model.backward(loss.gradient);
        optimizer.step(params);
        return loss.loss;
      });
}

TrainReport train_classifier(Sequential& model, const math::Matrix& inputs,
                             std::span<const std::size_t> labels,
                             Optimizer& optimizer, const TrainConfig& config,
                             math::Rng& rng) {
  if (inputs.rows() != labels.size()) {
    throw std::invalid_argument("train_classifier: label count mismatch");
  }
  const auto params = model.parameters();
  return epoch_loop(
      inputs.rows(), config, rng,
      [&](std::span<const std::size_t> batch) {
        const math::Matrix x = gather_rows(inputs, batch);
        std::vector<std::size_t> y(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
          y[i] = labels[batch[i]];
        }
        model.zero_gradients();
        const math::Matrix logits = model.forward(x, /*training=*/true);
        const LossResult loss = softmax_cross_entropy(logits, y);
        model.backward(loss.gradient);
        optimizer.step(params);
        return loss.loss;
      });
}

std::vector<std::size_t> argmax_rows(const math::Matrix& m) {
  std::vector<std::size_t> result(m.rows(), 0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    result[r] = static_cast<std::size_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return result;
}

math::Matrix gather_rows(const math::Matrix& m,
                         std::span<const std::size_t> rows) {
  math::Matrix out(rows.size(), m.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= m.rows()) {
      throw std::out_of_range("gather_rows: row index out of range");
    }
    const auto src = m.row(rows[i]);
    auto dst = out.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

}  // namespace soteria::nn
