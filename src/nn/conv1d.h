// 1D convolution over channel-major flattened rows.
//
// A batch row of `in_channels` channels and length `in_length` is laid
// out as [c0 t0..tL, c1 t0..tL, ...]. Convolution is "valid" (no
// padding), stride 1, matching the Keras defaults the paper's CNN
// blocks rely on (46 filters of size 1x3).
#pragma once

#include <cstddef>

#include "math/rng.h"
#include "nn/layer.h"

namespace soteria::nn {

/// Raw direct-convolution kernel shared by Conv1d::infer and
/// nn::FrozenNet. `in` is rows x (in_channels*in_length) channel-major,
/// `out` rows x (out_channels*(in_length-kernel+1)), `weights`
/// out_channels x (in_channels*kernel), `bias` out_channels. Each
/// output element accumulates bias first, then channel/tap products in
/// ascending (channel, tap) order. Processes output channels in pairs
/// so each input-channel load feeds two accumulator streams;
/// bit-identical to conv1d_infer_reference_into for finite inputs.
void conv1d_infer_into(const float* in, float* out, const float* weights,
                       const float* bias, std::size_t rows,
                       std::size_t in_channels, std::size_t in_length,
                       std::size_t out_channels, std::size_t kernel) noexcept;

/// The original one-channel-at-a-time loop, preserved verbatim as the
/// test oracle for the paired kernel (tests/infer).
void conv1d_infer_reference_into(const float* in, float* out,
                                 const float* weights, const float* bias,
                                 std::size_t rows, std::size_t in_channels,
                                 std::size_t in_length,
                                 std::size_t out_channels,
                                 std::size_t kernel) noexcept;

class Conv1d : public Layer {
 public:
  /// Throws std::invalid_argument on zero sizes or kernel > in_length.
  Conv1d(std::size_t in_channels, std::size_t in_length,
         std::size_t out_channels, std::size_t kernel, math::Rng& rng);

  math::Matrix forward(const math::Matrix& input, bool training) override;
  [[nodiscard]] math::Matrix infer(const math::Matrix& input) const override;
  math::Matrix backward(const math::Matrix& grad_output) override;
  void collect_parameters(std::vector<ParamRef>& out) override;
  void zero_gradients() override;
  [[nodiscard]] std::size_t parameter_count() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t output_dimension(
      std::size_t input_dim) const override;

  [[nodiscard]] std::size_t out_length() const noexcept {
    return in_length_ - kernel_ + 1;
  }
  [[nodiscard]] std::size_t out_channels() const noexcept {
    return out_channels_;
  }
  [[nodiscard]] std::size_t in_channels() const noexcept {
    return in_channels_;
  }
  [[nodiscard]] std::size_t in_length() const noexcept { return in_length_; }
  [[nodiscard]] std::size_t kernel() const noexcept { return kernel_; }
  [[nodiscard]] const math::Matrix& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] const math::Matrix& bias() const noexcept { return bias_; }

 private:
  std::size_t in_channels_;
  std::size_t in_length_;
  std::size_t out_channels_;
  std::size_t kernel_;
  math::Matrix weights_;  // out_channels x (in_channels * kernel)
  math::Matrix bias_;     // 1 x out_channels
  math::Matrix weight_grad_;
  math::Matrix bias_grad_;
  math::Matrix cached_input_;
};

}  // namespace soteria::nn
