#include "soteria/report.h"

#include "eval/table.h"

namespace soteria::core {

EvaluationReport evaluate_system(
    const SoteriaSystem& system, std::span<const dataset::Sample> clean,
    std::span<const dataset::AdversarialExample> adversarial,
    math::Rng& rng) {
  EvaluationReport report;

  for (const auto& sample : clean) {
    const auto verdict = system.analyze(sample.cfg, rng);
    const auto class_index = dataset::family_index(sample.family);
    ++report.clean_total[class_index];
    if (verdict.adversarial) {
      ++report.clean_flagged[class_index];
      ++report.detection.false_positives;
    } else {
      ++report.detection.true_negatives;
      report.confusion.record(class_index,
                              dataset::family_index(verdict.predicted));
    }
  }

  for (const auto& ae : adversarial) {
    const auto verdict = system.analyze(ae.cfg, rng);
    const auto size_index = static_cast<std::size_t>(ae.target_size);
    ++report.total_by_size[size_index];
    if (verdict.adversarial) {
      ++report.detection.true_positives;
    } else {
      ++report.detection.false_negatives;
      ++report.missed_by_size[size_index];
    }
  }
  return report;
}

std::string render_report(const EvaluationReport& report) {
  std::string text;
  text += "== Soteria evaluation ==\n";
  text += "AE detection rate:        " +
          eval::format_percent(report.detection_rate()) + "%\n";
  text += "Clean false-positive rate: " +
          eval::format_percent(report.detection.false_positive_rate()) +
          "%\n";
  text += "Classification accuracy:   " +
          eval::format_percent(report.classification_accuracy()) + "%\n\n";

  eval::Table per_class(
      {"Class", "# Clean", "# Flagged", "Accuracy (passed) %"});
  for (auto family : dataset::all_families()) {
    const auto i = dataset::family_index(family);
    per_class.add_row(
        {dataset::family_name(family),
         std::to_string(report.clean_total[i]),
         std::to_string(report.clean_flagged[i]),
         report.confusion.class_total(i) == 0
             ? "-"
             : eval::format_percent(report.confusion.class_accuracy(i))});
  }
  text += per_class.render("Per-class clean behaviour");

  eval::Table per_size({"Target size", "# AEs", "# Missed"});
  for (std::size_t s = 0; s < dataset::kTargetSizeCount; ++s) {
    per_size.add_row(
        {dataset::target_size_name(static_cast<dataset::TargetSize>(s)),
         std::to_string(report.total_by_size[s]),
         std::to_string(report.missed_by_size[s])});
  }
  text += "\n";
  text += per_size.render("Adversarial examples by target size");
  return text;
}

}  // namespace soteria::core
