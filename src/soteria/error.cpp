#include "soteria/error.h"

namespace soteria::core {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "Ok";
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kOutOfRange: return "OutOfRange";
    case ErrorCode::kInvalidConfig: return "InvalidConfig";
    case ErrorCode::kIoError: return "IoError";
    case ErrorCode::kCorruptModel: return "CorruptModel";
    case ErrorCode::kQueueFull: return "QueueFull";
    case ErrorCode::kDeadlineExceeded: return "DeadlineExceeded";
    case ErrorCode::kCancelled: return "Cancelled";
    case ErrorCode::kShuttingDown: return "ShuttingDown";
    case ErrorCode::kInternal: return "Internal";
  }
  return "Unknown";
}

namespace {

std::string format_what(ErrorCode code, const std::string& message) {
  const std::string_view name = error_code_name(code);
  std::string what;
  what.reserve(name.size() + message.size() + 3);
  what.push_back('[');
  what.append(name);
  what.append("] ");
  what.append(message);
  return what;
}

}  // namespace

Error::Error(ErrorCode code, const std::string& message)
    : std::runtime_error(format_what(code, message)), code_(code) {}

}  // namespace soteria::core
