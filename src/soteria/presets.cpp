#include "soteria/presets.h"

namespace soteria::core {

SoteriaConfig paper_config() {
  SoteriaConfig config;  // defaults are already the paper's values
  // (num_threads = 0, i.e. all hardware threads, is orthogonal to the
  // paper: results are thread-count invariant.)
  return config;
}

SoteriaConfig cpu_scaled_config() {
  SoteriaConfig config;
  config.pipeline.top_k = 500;
  config.pipeline.walk.walks_per_labeling = 10;
  // 1-grams (label visit distribution) on top of the paper's {2,3,4}:
  // they carry most of the GEA signature at our corpus scale (see
  // EXPERIMENTS.md) and stay within the paper's n-gram framework.
  config.pipeline.gram_sizes = {1, 2, 3, 4};
  config.autoencoder.width_scale = 0.1;  // 2000/3000/2000 -> 200/300/200
  config.cnn.filters = 16;
  config.cnn.dense_units = 128;
  config.detector_training = nn::make_train_config(100, 64);
  config.classifier_training = nn::make_train_config(12, 64);
  config.training_vectors_per_sample = 3;
  config.calibration_fraction = 0.30;
  // Two-sigma threshold. The paper uses alpha = 1 on raw RMSE; our
  // standardized-residual scores have a tighter clean distribution, so
  // the a-priori two-sigma rule (chosen blind to test data, like the
  // paper's rule) lands at the same operating regime. Fig. 13 sweeps
  // the whole range.
  config.detector_alpha = 2.0;
  config.num_threads = 0;  // saturate the machine; see README Performance
  return config;
}

SoteriaConfig tiny_config() {
  SoteriaConfig config;
  config.pipeline.top_k = 60;
  config.pipeline.walk.walks_per_labeling = 4;
  config.pipeline.gram_sizes = {1, 2, 3};
  config.autoencoder.hidden_dims = {48, 64, 48};
  config.autoencoder.width_scale = 1.0;
  config.cnn.filters = 6;
  config.cnn.dense_units = 24;
  config.detector_training = nn::make_train_config(10, 32);
  config.classifier_training = nn::make_train_config(6, 32);
  config.training_vectors_per_sample = 2;
  config.calibration_fraction = 0.25;  // tiny corpora need >= 4 rows
  // Tiny corpora are cheaper than thread handoff; tests that exercise
  // the parallel engine override this explicitly.
  config.num_threads = 1;
  return config;
}

}  // namespace soteria::core
