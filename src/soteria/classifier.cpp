#include "soteria/classifier.h"

#include <algorithm>
#include <stdexcept>

#include "io/binary_io.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/trace.h"

namespace soteria::core {

math::Matrix pack_rows(const std::vector<std::vector<float>>& vectors) {
  if (vectors.empty()) {
    throw std::invalid_argument("pack_rows: no vectors");
  }
  const std::size_t width = vectors.front().size();
  math::Matrix m(vectors.size(), width);
  for (std::size_t r = 0; r < vectors.size(); ++r) {
    if (vectors[r].size() != width) {
      throw std::invalid_argument("pack_rows: ragged vector widths");
    }
    std::copy(vectors[r].begin(), vectors[r].end(), m.row(r).begin());
  }
  return m;
}

namespace {

nn::Sequential train_one(const LabeledVectors& data,
                         const nn::CnnConfig& config,
                         const nn::TrainConfig& training,
                         double learning_rate, math::Rng& rng,
                         nn::TrainReport& report, nn::CnnConfig& arch_out) {
  if (data.features.rows() == 0) {
    throw std::invalid_argument("FamilyClassifier: empty training data");
  }
  if (data.features.rows() != data.labels.size()) {
    throw std::invalid_argument(
        "FamilyClassifier: feature/label count mismatch");
  }
  nn::CnnConfig arch = config;
  arch.input_length = data.features.cols();
  arch_out = arch;
  nn::Sequential model = nn::build_cnn(arch, rng);
  nn::Adam optimizer(learning_rate);
  report = nn::train_classifier(model, data.features, data.labels,
                                optimizer, training, rng);
  return model;
}

void save_cnn_arch(std::ostream& out, const nn::CnnConfig& arch) {
  io::write_scalar<std::uint64_t>(out, arch.input_length);
  io::write_scalar<std::uint64_t>(out, arch.classes);
  io::write_scalar<std::uint64_t>(out, arch.filters);
  io::write_scalar<std::uint64_t>(out, arch.kernel);
  io::write_scalar<std::uint64_t>(out, arch.dense_units);
  io::write_scalar(out, arch.conv_dropout);
  io::write_scalar(out, arch.dense_dropout);
}

nn::CnnConfig load_cnn_arch(std::istream& in) {
  nn::CnnConfig arch;
  arch.input_length =
      static_cast<std::size_t>(io::read_scalar<std::uint64_t>(in));
  arch.classes = static_cast<std::size_t>(io::read_scalar<std::uint64_t>(in));
  arch.filters = static_cast<std::size_t>(io::read_scalar<std::uint64_t>(in));
  arch.kernel = static_cast<std::size_t>(io::read_scalar<std::uint64_t>(in));
  arch.dense_units =
      static_cast<std::size_t>(io::read_scalar<std::uint64_t>(in));
  arch.conv_dropout = io::read_scalar<double>(in);
  arch.dense_dropout = io::read_scalar<double>(in);
  return arch;
}

}  // namespace

FamilyClassifier FamilyClassifier::train(const LabeledVectors& dbl,
                                         const LabeledVectors& lbl,
                                         const nn::CnnConfig& config,
                                         const nn::TrainConfig& training,
                                         double learning_rate,
                                         math::Rng& rng) {
  const obs::Span span("classifier.train");
  FamilyClassifier classifier;
  classifier.dbl_model_ =
      train_one(dbl, config, training, learning_rate, rng,
                classifier.dbl_report_, classifier.dbl_arch_);
  classifier.lbl_model_ =
      train_one(lbl, config, training, learning_rate, rng,
                classifier.lbl_report_, classifier.lbl_arch_);
  return classifier;
}

void FamilyClassifier::save(std::ostream& out) const {
  save_cnn_arch(out, dbl_arch_);
  save_cnn_arch(out, lbl_arch_);
  dbl_model_.save_parameters(out);
  lbl_model_.save_parameters(out);
}

FamilyClassifier FamilyClassifier::load(std::istream& in) {
  FamilyClassifier classifier;
  classifier.dbl_arch_ = load_cnn_arch(in);
  classifier.lbl_arch_ = load_cnn_arch(in);
  math::Rng scratch(0);  // weights are overwritten by load_parameters
  classifier.dbl_model_ = nn::build_cnn(classifier.dbl_arch_, scratch);
  classifier.lbl_model_ = nn::build_cnn(classifier.lbl_arch_, scratch);
  classifier.dbl_model_.load_parameters(in);
  classifier.lbl_model_.load_parameters(in);
  return classifier;
}

void FamilyClassifier::accumulate(
    const nn::Sequential& model,
    const std::vector<std::vector<float>>& vectors,
    std::vector<std::size_t>& votes,
    std::vector<double>& probability_mass) const {
  if (vectors.empty()) return;
  const math::Matrix batch = pack_rows(vectors);
  const math::Matrix probs = nn::softmax(model.infer(batch));
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    const auto row = probs.row(r);
    const auto best = static_cast<std::size_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
    ++votes[best];
    for (std::size_t c = 0; c < row.size(); ++c) {
      probability_mass[c] += row[c];
    }
  }
}

std::vector<std::size_t> FamilyClassifier::vote_counts(
    const features::SampleFeatures& features) const {
  std::vector<std::size_t> votes(dataset::kFamilyCount, 0);
  std::vector<double> mass(dataset::kFamilyCount, 0.0);
  accumulate(dbl_model_, features.dbl, votes, mass);
  accumulate(lbl_model_, features.lbl, votes, mass);
  return votes;
}

namespace {

dataset::Family vote_winner(const std::vector<std::size_t>& votes,
                            const std::vector<double>& mass) {
  std::size_t best = 0;
  for (std::size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[best] ||
        (votes[c] == votes[best] && mass[c] > mass[best])) {
      best = c;
    }
  }
  return dataset::family_from_index(best);
}

/// Winner votes minus runner-up votes: 0 means a mass-broken tie.
std::size_t vote_margin(const std::vector<std::size_t>& votes) {
  std::size_t top = 0;
  std::size_t second = 0;
  for (const std::size_t v : votes) {
    if (v > top) {
      second = top;
      top = v;
    } else if (v > second) {
      second = v;
    }
  }
  return top - second;
}

}  // namespace

dataset::Family FamilyClassifier::predict(
    const features::SampleFeatures& features) const {
  const obs::Span span("classifier.predict");
  std::vector<std::size_t> votes(dataset::kFamilyCount, 0);
  std::vector<double> mass(dataset::kFamilyCount, 0.0);
  accumulate(dbl_model_, features.dbl, votes, mass);
  accumulate(lbl_model_, features.lbl, votes, mass);
  obs::registry().counter_add("soteria.classifier.predictions");
  obs::registry().record("soteria.classifier.vote_margin",
                         static_cast<double>(vote_margin(votes)));
  return vote_winner(votes, mass);
}

dataset::Family FamilyClassifier::predict_dbl_only(
    const features::SampleFeatures& features) const {
  std::vector<std::size_t> votes(dataset::kFamilyCount, 0);
  std::vector<double> mass(dataset::kFamilyCount, 0.0);
  accumulate(dbl_model_, features.dbl, votes, mass);
  return vote_winner(votes, mass);
}

dataset::Family FamilyClassifier::predict_lbl_only(
    const features::SampleFeatures& features) const {
  std::vector<std::size_t> votes(dataset::kFamilyCount, 0);
  std::vector<double> mass(dataset::kFamilyCount, 0.0);
  accumulate(lbl_model_, features.lbl, votes, mass);
  return vote_winner(votes, mass);
}

std::vector<std::size_t> FamilyClassifier::predict_dbl(
    const math::Matrix& vectors) const {
  return nn::argmax_rows(dbl_model_.infer(vectors));
}

std::vector<std::size_t> FamilyClassifier::predict_lbl(
    const math::Matrix& vectors) const {
  return nn::argmax_rows(lbl_model_.infer(vectors));
}

}  // namespace soteria::core
