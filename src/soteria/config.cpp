#include "soteria/config.h"

#include <stdexcept>

#include "frontend/frontend.h"
#include "runtime/thread_pool.h"

namespace soteria::core {

void validate(const SoteriaConfig& config) {
  features::validate(config.pipeline);
  nn::validate(config.autoencoder);
  nn::validate(config.cnn);
  nn::validate(config.detector_training);
  nn::validate(config.classifier_training);
  if (config.detector_alpha < 0.0) {
    throw std::invalid_argument("SoteriaConfig: negative detector_alpha");
  }
  if (!(config.calibration_fraction > 0.0) ||
      !(config.calibration_fraction < 1.0)) {
    throw std::invalid_argument(
        "SoteriaConfig: calibration_fraction outside (0, 1)");
  }
  if (config.detector_learning_rate <= 0.0 ||
      config.classifier_learning_rate <= 0.0) {
    throw std::invalid_argument(
        "SoteriaConfig: learning rates must be positive");
  }
  if (config.training_vectors_per_sample == 0 ||
      config.training_vectors_per_sample >
          config.pipeline.walk.walks_per_labeling) {
    throw std::invalid_argument(
        "SoteriaConfig: training_vectors_per_sample outside [1, "
        "walks_per_labeling]");
  }
  if (config.num_threads > runtime::kMaxThreads) {
    throw std::invalid_argument("SoteriaConfig: num_threads exceeds " +
                                std::to_string(runtime::kMaxThreads));
  }
  if (!config.frontend.empty() &&
      frontend::FrontendRegistry::builtin().find(config.frontend) == nullptr) {
    throw std::invalid_argument("SoteriaConfig: unknown frontend \"" +
                                config.frontend + "\"");
  }
}

}  // namespace soteria::core
