#include "soteria/detector.h"

#include <cmath>
#include <stdexcept>

#include "io/binary_io.h"
#include "math/stats.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/trace.h"

namespace soteria::core {

AeDetector AeDetector::train(const math::Matrix& clean_features,
                             const math::Matrix& calibration_features,
                             const nn::AutoencoderConfig& config,
                             const nn::TrainConfig& training, double alpha,
                             double learning_rate, math::Rng& rng) {
  if (clean_features.rows() == 0 || clean_features.cols() == 0) {
    throw std::invalid_argument("AeDetector::train: empty feature matrix");
  }
  if (calibration_features.rows() == 0) {
    throw std::invalid_argument("AeDetector::train: empty calibration set");
  }
  if (calibration_features.cols() != clean_features.cols()) {
    throw std::invalid_argument(
        "AeDetector::train: calibration width mismatch");
  }
  if (calibration_features.rows() < 4) {
    throw std::invalid_argument(
        "AeDetector::train: need at least 4 calibration rows");
  }
  if (alpha < 0.0) {
    throw std::invalid_argument("AeDetector::train: negative alpha");
  }
  const obs::Span span("detector.train");

  nn::AutoencoderConfig arch = config;
  arch.input_dim = clean_features.cols();

  AeDetector detector;
  detector.arch_ = arch;
  detector.model_ = nn::build_autoencoder(arch, rng);
  nn::Adam optimizer(learning_rate);
  detector.report_ = nn::train_regression(detector.model_, clean_features,
                                          clean_features, optimizer,
                                          training, rng);

  // Calibration split A: per-dimension residual statistics.
  const std::size_t dim = clean_features.cols();
  const std::size_t half = calibration_features.rows() / 2;
  const math::Matrix part_a = nn::gather_rows(
      calibration_features, [&] {
        std::vector<std::size_t> idx(half);
        for (std::size_t i = 0; i < half; ++i) idx[i] = i;
        return idx;
      }());
  const math::Matrix reconstructed_a = detector.model_.infer(part_a);
  detector.residual_mean_.assign(dim, 0.0);
  detector.residual_stddev_.assign(dim, 0.0);
  for (std::size_t r = 0; r < part_a.rows(); ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      detector.residual_mean_[c] +=
          static_cast<double>(reconstructed_a(r, c)) - part_a(r, c);
    }
  }
  const auto n_a = static_cast<double>(part_a.rows());
  for (double& v : detector.residual_mean_) v /= n_a;
  for (std::size_t r = 0; r < part_a.rows(); ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      const double d = static_cast<double>(reconstructed_a(r, c)) -
                       part_a(r, c) - detector.residual_mean_[c];
      detector.residual_stddev_[c] += d * d;
    }
  }
  for (double& v : detector.residual_stddev_) {
    v = std::sqrt(v / n_a) + 1e-6;
  }

  // Calibration split B: score distribution -> threshold.
  const math::Matrix part_b = nn::gather_rows(
      calibration_features, [&] {
        std::vector<std::size_t> idx(calibration_features.rows() - half);
        for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = half + i;
        return idx;
      }());
  const auto calibration_scores = detector.scores(part_b);
  detector.mean_ = math::mean(calibration_scores);
  detector.stddev_ = math::stddev(calibration_scores);
  // Degenerate calibration must collapse the threshold to the mean,
  // never to NaN. All-identical scores are forced to sigma = 0 exactly
  // (the mean of n copies of x can differ from x by an ulp, leaving a
  // spurious ~1e-17 deviation), and a non-finite or non-positive sigma
  // is discarded.
  if (math::min(calibration_scores) == math::max(calibration_scores)) {
    detector.stddev_ = 0.0;
  }
  if (!std::isfinite(detector.stddev_) || detector.stddev_ <= 0.0) {
    detector.stddev_ = 0.0;
  }
  detector.alpha_ = alpha;
  detector.threshold_ = detector.mean_ + alpha * detector.stddev_;
  return detector;
}

std::vector<double> AeDetector::scores(
    const math::Matrix& features) const {
  if (residual_stddev_.empty()) {
    throw std::logic_error("AeDetector::scores: detector not calibrated");
  }
  if (features.cols() != residual_stddev_.size()) {
    throw std::invalid_argument("AeDetector::scores: width mismatch");
  }
  const obs::Span span("detector.score");
  const math::Matrix reconstructed = model_.infer(features);
  std::vector<double> out(features.rows(), 0.0);
  for (std::size_t r = 0; r < features.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < features.cols(); ++c) {
      const double z = (static_cast<double>(reconstructed(r, c)) -
                        features(r, c) - residual_mean_[c]) /
                       residual_stddev_[c];
      acc += z * z;
    }
    out[r] = std::sqrt(acc / static_cast<double>(features.cols()));
    obs::registry().record("soteria.detector.score", out[r]);
  }
  return out;
}

std::vector<double> AeDetector::reconstruction_errors(
    const math::Matrix& features) const {
  const math::Matrix reconstructed = model_.infer(features);
  return nn::row_rmse(reconstructed, features);
}

double AeDetector::sample_error(
    const math::Matrix& sample_vectors) const {
  if (sample_vectors.rows() == 0) {
    throw std::invalid_argument("AeDetector::sample_error: empty sample");
  }
  const auto sample_scores = scores(sample_vectors);
  return math::mean(sample_scores);
}

bool AeDetector::is_adversarial(
    const math::Matrix& sample_vectors) const {
  return sample_error(sample_vectors) > threshold_;
}

void AeDetector::set_alpha(double alpha) {
  if (alpha < 0.0) {
    throw std::invalid_argument("AeDetector::set_alpha: negative alpha");
  }
  alpha_ = alpha;
  threshold_ = mean_ + alpha * stddev_;
}

void AeDetector::save(std::ostream& out) const {
  io::write_scalar<std::uint64_t>(out, arch_.input_dim);
  io::write_vector<std::size_t>(out, arch_.hidden_dims);
  io::write_scalar(out, arch_.width_scale);
  io::write_vector<double>(out, residual_mean_);
  io::write_vector<double>(out, residual_stddev_);
  io::write_scalar(out, mean_);
  io::write_scalar(out, stddev_);
  io::write_scalar(out, alpha_);
  io::write_vector<double>(out, report_.epoch_losses);
  model_.save_parameters(out);
}

AeDetector AeDetector::load(std::istream& in) {
  AeDetector detector;
  detector.arch_.input_dim =
      static_cast<std::size_t>(io::read_scalar<std::uint64_t>(in));
  detector.arch_.hidden_dims = io::read_vector<std::size_t>(in);
  detector.arch_.width_scale = io::read_scalar<double>(in);
  detector.residual_mean_ = io::read_vector<double>(in);
  detector.residual_stddev_ = io::read_vector<double>(in);
  detector.mean_ = io::read_scalar<double>(in);
  detector.stddev_ = io::read_scalar<double>(in);
  detector.alpha_ = io::read_scalar<double>(in);
  detector.threshold_ = detector.mean_ + detector.alpha_ * detector.stddev_;
  detector.report_.epoch_losses = io::read_vector<double>(in);
  math::Rng scratch(0);  // weights are overwritten by load_parameters
  detector.model_ = nn::build_autoencoder(detector.arch_, scratch);
  detector.model_.load_parameters(in);
  if (detector.residual_mean_.size() != detector.arch_.input_dim ||
      detector.residual_stddev_.size() != detector.arch_.input_dim) {
    throw std::runtime_error(
        "AeDetector::load: residual statistics size mismatch");
  }
  return detector;
}

}  // namespace soteria::core
