#include "soteria/frozen.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>
#include <stdexcept>

#include "cfg/labeling.h"
#include "cfg/labeling_cache.h"
#include "dataset/family.h"
#include "features/ngram.h"
#include "features/random_walk.h"
#include "obs/trace.h"
#include "store/feature_store.h"

namespace soteria::core {

/// Grow-only flat buffers for one in-flight analysis. Everything the
/// interpreted path allocates per call (walk vectors, count rows,
/// TF-IDF matrices, layer outputs) lives here and is reused.
struct FrozenModel::Workspace {
  std::vector<cfg::Label> walk;            ///< one walk's labels, reused
  std::vector<std::uint32_t> counts;       ///< walks x dim, per labeling
  std::vector<std::uint64_t> totals;       ///< per-walk window totals
  std::vector<std::uint32_t> pooled_counts;
  std::vector<float> dbl_rows;             ///< walks x dbl_dim TF-IDF
  std::vector<float> lbl_rows;             ///< walks x lbl_dim TF-IDF
  std::vector<float> pooled_in;            ///< detector input row
  std::vector<float> recon;                ///< detector reconstruction
  std::vector<float> probs;                ///< logits -> softmax in place
  std::vector<std::size_t> votes;
  std::vector<double> mass;
  nn::FrozenNet::Scratch detector_scratch;
  nn::FrozenNet::Scratch dbl_scratch;
  nn::FrozenNet::Scratch lbl_scratch;
};

FrozenModel::Workspace& FrozenModel::workspace() {
  thread_local Workspace ws;
  return ws;
}

std::shared_ptr<const FrozenModel> FrozenModel::compile(
    const features::FeaturePipeline& pipeline, const AeDetector& detector,
    const FamilyClassifier& classifier) {
  if (pipeline.fingerprint().value == 0) {
    throw std::invalid_argument("FrozenModel: unfitted pipeline");
  }
  if (detector.residual_stddev().empty()) {
    throw std::invalid_argument("FrozenModel: detector not calibrated");
  }
  std::shared_ptr<FrozenModel> model(new FrozenModel());
  model->config_ = pipeline.config();
  model->dbl_vocab_ = pipeline.dbl_vocabulary();
  model->lbl_vocab_ = pipeline.lbl_vocabulary();
  // Direct-mapped tables over the same grams in the same index order:
  // dense TF rows come out identical to the perfect-hash path, only the
  // per-window lookup gets cheaper.
  model->dbl_table_ =
      features::DirectGramTable::build(model->dbl_vocab_.grams());
  model->lbl_table_ =
      features::DirectGramTable::build(model->lbl_vocab_.grams());
  model->fingerprint_ = pipeline.fingerprint().value;
  model->residual_mean_ = detector.residual_mean();
  model->residual_stddev_ = detector.residual_stddev();
  model->threshold_ = detector.threshold();
  model->detector_net_ = nn::FrozenNet::compile(
      detector.model(), pipeline.combined_dimension());
  model->dbl_net_ =
      nn::FrozenNet::compile(classifier.dbl_model(), model->dbl_vocab_.size());
  model->lbl_net_ =
      nn::FrozenNet::compile(classifier.lbl_model(), model->lbl_vocab_.size());
  return model;
}

void FrozenModel::extract_into(const cfg::Cfg& cfg, math::Rng& rng,
                               cfg::LabelingCache* cache,
                               Workspace& ws) const {
  const obs::Span span("frozen.extract");
  // Same labeling source and order as FeaturePipeline::labelings_for.
  const cfg::NodeLabelings labelings =
      cache != nullptr ? cache->labels(cfg, config_.labeling)
                       : cfg::label_both(cfg, config_.labeling);
  // A short label table must fail like the interpreted path's
  // apply_labels (std::out_of_range), not index past the end below.
  // Checked against node_count up front: any node can be walked, so
  // this rejects exactly the labelings the interpreted path could
  // throw on, just deterministically instead of per visited node.
  if (labelings.dbl.size() < cfg.node_count() ||
      labelings.lbl.size() < cfg.node_count()) {
    throw std::out_of_range("apply_labels: node id beyond label table");
  }

  // One adjacency view serves both labelings (the interpreted path
  // rebuilds it per labeled_walks call); the walk step count matches
  // random_walk_nodes exactly.
  const features::UndirectedView view(cfg);
  const auto steps = static_cast<std::size_t>(std::llround(
      config_.walk.length_multiplier * static_cast<double>(cfg.node_count())));
  const std::size_t walks = config_.walk.walks_per_labeling;

  const std::size_t dbl_dim = dbl_vocab_.size();
  const std::size_t lbl_dim = lbl_vocab_.size();
  ws.pooled_in.resize(dbl_dim + lbl_dim);

  // Walk + count + TF-IDF for one labeling. The walk draws from `rng`
  // in exactly random_walk_nodes's order (one draw per step with a
  // non-empty neighbor list); counting consumes no randomness, so
  // fusing it in changes nothing downstream.
  const auto run_labeling = [&](const std::vector<cfg::Label>& labels,
                                const features::Vocabulary& vocab,
                                const features::DirectGramTable& table,
                                std::vector<float>& rows, float* pooled_out) {
    const std::size_t dim = vocab.size();
    obs::registry().counter_add("soteria.features.walks", walks);
    obs::registry().counter_add("soteria.features.walk_steps", walks * steps);
    ws.counts.assign(walks * dim, 0);
    ws.totals.assign(walks, 0);
    ws.pooled_counts.assign(dim, 0);
    std::uint64_t pooled_total = 0;
    for (std::size_t w = 0; w < walks; ++w) {
      ws.walk.clear();
      ws.walk.reserve(steps + 1);
      graph::NodeId current = view.entry();
      ws.walk.push_back(labels[current]);
      for (std::size_t s = 0; s < steps; ++s) {
        const auto& nbrs = view.neighbors(current);
        if (!nbrs.empty()) current = nbrs[rng.index(nbrs.size())];
        ws.walk.push_back(labels[current]);
      }
      const std::span<std::uint32_t> row(ws.counts.data() + w * dim, dim);
      ws.totals[w] = features::count_into_vocab(ws.walk, config_.gram_sizes,
                                                table, row);
      pooled_total += ws.totals[w];
      for (std::size_t i = 0; i < dim; ++i) ws.pooled_counts[i] += row[i];
    }
    rows.resize(walks * dim);
    for (std::size_t w = 0; w < walks; ++w) {
      vocab.tfidf_into(
          std::span<const std::uint32_t>(ws.counts.data() + w * dim, dim),
          ws.totals[w], std::span<float>(rows.data() + w * dim, dim),
          config_.l2_normalize);
    }
    vocab.tfidf_into(ws.pooled_counts, pooled_total,
                     std::span<float>(pooled_out, dim), config_.l2_normalize);
  };

  // DBL walks first, then LBL — the interpreted extraction's stream
  // order, so both paths consume identical rng draws.
  run_labeling(labelings.dbl, dbl_vocab_, dbl_table_, ws.dbl_rows,
               ws.pooled_in.data());
  run_labeling(labelings.lbl, lbl_vocab_, lbl_table_, ws.lbl_rows,
               ws.pooled_in.data() + dbl_dim);
}

void FrozenModel::accumulate(const nn::FrozenNet& net, const float* rows,
                             std::size_t n, nn::FrozenNet::Scratch& scratch,
                             Workspace& ws) const {
  if (n == 0) return;
  const std::size_t classes = net.output_dim();
  ws.probs.resize(n * classes);
  net.infer_into(rows, n, ws.probs.data(), scratch);
  for (std::size_t r = 0; r < n; ++r) {
    float* row = ws.probs.data() + r * classes;
    // nn::softmax's row loop verbatim: float exp in iteration order,
    // double sum, one float reciprocal.
    const float max = *std::max_element(row, row + classes);
    double sum = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      row[c] = std::exp(row[c] - max);
      sum += row[c];
    }
    const auto inv = static_cast<float>(1.0 / sum);
    for (std::size_t c = 0; c < classes; ++c) row[c] *= inv;
    const auto best = static_cast<std::size_t>(
        std::max_element(row, row + classes) - row);
    ++ws.votes[best];
    for (std::size_t c = 0; c < classes; ++c) ws.mass[c] += row[c];
  }
}

namespace {

/// Verbatim twins of the classifier's vote helpers.
dataset::Family frozen_vote_winner(const std::vector<std::size_t>& votes,
                                   const std::vector<double>& mass) {
  std::size_t best = 0;
  for (std::size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[best] ||
        (votes[c] == votes[best] && mass[c] > mass[best])) {
      best = c;
    }
  }
  return dataset::family_from_index(best);
}

std::size_t frozen_vote_margin(const std::vector<std::size_t>& votes) {
  std::size_t top = 0;
  std::size_t second = 0;
  for (const std::size_t v : votes) {
    if (v > top) {
      second = top;
      top = v;
    } else if (v > second) {
      second = v;
    }
  }
  return top - second;
}

}  // namespace

Verdict FrozenModel::score(Workspace& ws, std::size_t dbl_walks,
                           std::size_t lbl_walks) const {
  Verdict verdict;

  // Detector: AeDetector::scores' standardized-residual loop on the
  // one pooled row, in double exactly as written there.
  const std::size_t dim = residual_stddev_.size();
  if (ws.pooled_in.size() != dim) {
    throw std::invalid_argument("AeDetector::scores: width mismatch");
  }
  {
    const obs::Span span("detector.score");
    ws.recon.resize(detector_net_.output_dim());
    detector_net_.infer_into(ws.pooled_in.data(), 1, ws.recon.data(),
                             ws.detector_scratch);
    double acc = 0.0;
    for (std::size_t c = 0; c < dim; ++c) {
      const double z = (static_cast<double>(ws.recon[c]) - ws.pooled_in[c] -
                        residual_mean_[c]) /
                       residual_stddev_[c];
      acc += z * z;
    }
    const double sample_score = std::sqrt(acc / static_cast<double>(dim));
    obs::registry().record("soteria.detector.score", sample_score);
    // sample_error is math::mean over the single score: score / 1.0.
    verdict.reconstruction_error = sample_score / 1.0;
  }
  verdict.adversarial = verdict.reconstruction_error > threshold_;

  // Classifier: FamilyClassifier::predict's vote/mass accumulation over
  // the flat per-walk rows (DBL model first, then LBL).
  {
    const obs::Span span("classifier.predict");
    ws.votes.assign(dataset::kFamilyCount, 0);
    ws.mass.assign(dataset::kFamilyCount, 0.0);
    accumulate(dbl_net_, ws.dbl_rows.data(), dbl_walks, ws.dbl_scratch, ws);
    accumulate(lbl_net_, ws.lbl_rows.data(), lbl_walks, ws.lbl_scratch, ws);
    obs::registry().counter_add("soteria.classifier.predictions");
    obs::registry().record(
        "soteria.classifier.vote_margin",
        static_cast<double>(frozen_vote_margin(ws.votes)));
    verdict.predicted = frozen_vote_winner(ws.votes, ws.mass);
  }

  obs::registry().counter_add("soteria.detector.analyzed");
  if (verdict.adversarial) {
    obs::registry().counter_add("soteria.detector.flagged");
  }
  obs::registry().record("soteria.detector.sample_error",
                         verdict.reconstruction_error);
  return verdict;
}

Verdict FrozenModel::analyze(const cfg::Cfg& cfg, math::Rng& rng,
                             cfg::LabelingCache* cache) const {
  const obs::Span span("frozen.analyze");
  Workspace& ws = workspace();
  extract_into(cfg, rng, cache, ws);
  return score(ws, config_.walk.walks_per_labeling,
               config_.walk.walks_per_labeling);
}

features::SampleFeatures FrozenModel::extract(const cfg::Cfg& cfg,
                                              math::Rng& rng,
                                              cfg::LabelingCache* cache) const {
  Workspace& ws = workspace();
  extract_into(cfg, rng, cache, ws);
  const std::size_t walks = config_.walk.walks_per_labeling;
  const std::size_t dbl_dim = dbl_vocab_.size();
  const std::size_t lbl_dim = lbl_vocab_.size();
  features::SampleFeatures features;
  features.dbl.resize(walks);
  features.lbl.resize(walks);
  for (std::size_t w = 0; w < walks; ++w) {
    features.dbl[w].assign(ws.dbl_rows.data() + w * dbl_dim,
                           ws.dbl_rows.data() + (w + 1) * dbl_dim);
    features.lbl[w].assign(ws.lbl_rows.data() + w * lbl_dim,
                           ws.lbl_rows.data() + (w + 1) * lbl_dim);
  }
  features.pooled_dbl.assign(ws.pooled_in.data(),
                             ws.pooled_in.data() + dbl_dim);
  features.pooled_lbl.assign(ws.pooled_in.data() + dbl_dim,
                             ws.pooled_in.data() + dbl_dim + lbl_dim);
  return features;
}

Verdict FrozenModel::analyze_features(
    const features::SampleFeatures& features) const {
  // Same guard pooled_matrix raises before the interpreted detector
  // ever runs.
  if (features.pooled_dbl.empty() && features.pooled_lbl.empty()) {
    throw std::invalid_argument("pooled_matrix: empty feature bundle");
  }
  Workspace& ws = workspace();
  ws.pooled_in.resize(features.pooled_dbl.size() +
                      features.pooled_lbl.size());
  std::copy(features.pooled_dbl.begin(), features.pooled_dbl.end(),
            ws.pooled_in.begin());
  std::copy(features.pooled_lbl.begin(), features.pooled_lbl.end(),
            ws.pooled_in.begin() + features.pooled_dbl.size());

  const auto pack = [](const std::vector<std::vector<float>>& vecs,
                       std::size_t width, std::vector<float>& flat) {
    for (const auto& v : vecs) {
      if (v.size() != width) {
        throw std::invalid_argument("pack_rows: ragged vector widths");
      }
    }
    flat.resize(vecs.size() * width);
    for (std::size_t w = 0; w < vecs.size(); ++w) {
      std::copy(vecs[w].begin(), vecs[w].end(), flat.data() + w * width);
    }
  };
  pack(features.dbl, dbl_net_.input_dim(), ws.dbl_rows);
  pack(features.lbl, lbl_net_.input_dim(), ws.lbl_rows);
  return score(ws, features.dbl.size(), features.lbl.size());
}

Verdict FrozenModel::analyze_stored(const cfg::Cfg& cfg,
                                    const math::Rng& fresh_rng,
                                    cfg::LabelingCache* cache,
                                    store::FeatureStore* store) const {
  if (store == nullptr) {
    math::Rng rng = fresh_rng;
    return analyze(cfg, rng, cache);
  }
  // Identical key contract to FeaturePipeline::extract_stored, so the
  // frozen and interpreted paths share (and populate) the same entries.
  const store::FeatureKey key{cfg::LabelingCache::content_hash(cfg),
                              fingerprint_, fresh_rng.seed()};
  if (auto cached = store->get(key)) return analyze_features(*cached);
  math::Rng rng = fresh_rng;
  const features::SampleFeatures features = extract(cfg, rng, cache);
  store->put(key, features);
  return analyze_features(features);
}

}  // namespace soteria::core
