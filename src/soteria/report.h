// Structured end-to-end evaluation of a trained system: one call scores
// a clean test set and a set of adversarial examples and returns every
// number the paper's evaluation section reports (detection stats,
// per-class FP, confusion matrix over passed samples), plus a renderer.
#pragma once

#include <span>
#include <string>

#include "dataset/adversarial.h"
#include "eval/metrics.h"
#include "soteria/system.h"

namespace soteria::core {

/// Full evaluation result bundle.
struct EvaluationReport {
  /// Detector confusion over {clean, adversarial}.
  eval::DetectionStats detection;
  /// Clean samples flagged as adversarial, per class.
  std::array<std::size_t, dataset::kFamilyCount> clean_flagged{};
  std::array<std::size_t, dataset::kFamilyCount> clean_total{};
  /// Family confusion over clean samples that passed the detector.
  eval::ConfusionMatrix confusion{dataset::kFamilyCount};
  /// Adversarial examples missed, per target size.
  std::array<std::size_t, dataset::kTargetSizeCount> missed_by_size{};
  std::array<std::size_t, dataset::kTargetSizeCount> total_by_size{};

  /// Detector accuracy over AEs (the paper's headline number).
  [[nodiscard]] double detection_rate() const noexcept {
    return detection.detection_rate();
  }
  /// Classifier accuracy over passed clean samples (paper's 99.91%).
  [[nodiscard]] double classification_accuracy() const noexcept {
    return confusion.overall_accuracy();
  }
};

/// Scores every clean sample and every AE through `system`. Fresh walks
/// draw from `rng`; deterministic given its state.
[[nodiscard]] EvaluationReport evaluate_system(
    const SoteriaSystem& system, std::span<const dataset::Sample> clean,
    std::span<const dataset::AdversarialExample> adversarial,
    math::Rng& rng);

/// Renders the report as the familiar text block (detection, per-class
/// FP, per-class accuracy, overall numbers).
[[nodiscard]] std::string render_report(const EvaluationReport& report);

}  // namespace soteria::core
