#include "soteria/system.h"

#include <fstream>
#include <memory>
#include <stdexcept>

#include "cfg/labeling_cache.h"
#include "frontend/frontend.h"
#include "io/binary_io.h"
#include "loader/elf.h"
#include "obs/trace.h"
#include "soteria/frozen.h"
#include "store/feature_store.h"

namespace soteria::core {

math::Matrix combined_matrix(const features::SampleFeatures& features) {
  if (features.dbl.empty() || features.lbl.empty()) {
    throw std::invalid_argument("combined_matrix: empty feature bundle");
  }
  const std::size_t walks = std::min(features.dbl.size(),
                                     features.lbl.size());
  std::vector<std::vector<float>> rows;
  rows.reserve(walks);
  for (std::size_t w = 0; w < walks; ++w) {
    rows.push_back(features.combined(w));
  }
  return pack_rows(rows);
}

math::Matrix pooled_matrix(const features::SampleFeatures& features) {
  if (features.pooled_dbl.empty() && features.pooled_lbl.empty()) {
    throw std::invalid_argument("pooled_matrix: empty feature bundle");
  }
  return pack_rows({features.pooled_combined()});
}

SoteriaSystem SoteriaSystem::train(
    std::span<const dataset::Sample> training, const SoteriaConfig& config) {
  validate(config);
  if (training.empty()) {
    throw std::invalid_argument("SoteriaSystem::train: empty training set");
  }

  if (config.collect_metrics) obs::set_enabled(true);
  const obs::Span train_span("soteria.train");

  SoteriaSystem system;
  system.config_ = config;
  // The top-level threshold knob is a training-time override of the
  // pipeline's labeling options (the persisted source of truth), like
  // the architecture dims below.
  if (config.approx_centrality_threshold != 0) {
    system.config_.pipeline.labeling.approx_centrality_threshold =
        config.approx_centrality_threshold;
  }
  // Same override pattern for the decoder identity: the pipeline's copy
  // is the persisted source of truth (and feeds the fingerprint).
  if (!config.frontend.empty()) {
    system.config_.pipeline.frontend = config.frontend;
  }
  math::Rng rng(config.seed);
  const std::size_t threads = runtime::resolve_threads(config.num_threads);

  // 1. Fit the feature pipeline (vocabularies) on the training CFGs.
  //    The shared labeling cache (when enabled) is warmed here and
  //    reused by the extraction and calibration phases below — the
  //    same training CFGs would otherwise be relabeled three times.
  std::shared_ptr<cfg::LabelingCache> labeling_cache;
  if (config.labeling_cache_capacity > 0) {
    labeling_cache =
        std::make_shared<cfg::LabelingCache>(config.labeling_cache_capacity);
  }
  std::vector<cfg::Cfg> train_cfgs;
  train_cfgs.reserve(training.size());
  for (const auto& s : training) train_cfgs.push_back(s.cfg);
  math::Rng fit_rng = rng.fork(1);
  system.pipeline_ = features::FeaturePipeline::fit(
      train_cfgs, system.config_.pipeline, fit_rng, threads, labeling_cache);

  // 2. Extract training features once; assemble the detector's pooled
  //    matrix and the classifiers' per-walk datasets. The last
  //    `calibration_fraction` of the (shuffled) training samples is held
  //    out from autoencoder fitting and used for threshold calibration.
  const std::size_t vectors_per_sample = config.training_vectors_per_sample;
  auto holdout_count = static_cast<std::size_t>(
      config.calibration_fraction * static_cast<double>(training.size()));
  holdout_count = std::min(std::max<std::size_t>(holdout_count, 1),
                           training.size() - 1);
  const std::size_t fit_count = training.size() - holdout_count;

  // Per-sample feature extraction dominates training wall-clock and is
  // embarrassingly parallel: sample i draws its walks from
  // extract_rng.child(i), so the extracted bundles (and therefore the
  // assembled matrices) are identical at any thread count.
  math::Rng extract_rng = rng.fork(2);
  const auto extracted = [&] {
    const obs::Span span("extract");
    return runtime::parallel_map(
        threads, training.size(), [&](std::size_t i) {
          math::Rng sample_rng = extract_rng.child(i);
          return system.pipeline_.extract(training[i].cfg, sample_rng);
        });
  }();

  std::vector<std::vector<float>> detector_rows;
  std::vector<std::vector<float>> dbl_rows;
  std::vector<std::vector<float>> lbl_rows;
  std::vector<std::size_t> dbl_labels;
  std::vector<std::size_t> lbl_labels;
  detector_rows.reserve(fit_count);
  dbl_rows.reserve(training.size() * vectors_per_sample);
  lbl_rows.reserve(training.size() * vectors_per_sample);

  for (std::size_t i = 0; i < training.size(); ++i) {
    const auto& features = extracted[i];
    const std::size_t label = dataset::family_index(training[i].family);
    if (i < fit_count) {
      detector_rows.push_back(features.pooled_combined());
    }
    const std::size_t walks =
        std::min({vectors_per_sample, features.dbl.size(),
                  features.lbl.size()});
    for (std::size_t w = 0; w < walks; ++w) {
      dbl_rows.push_back(features.dbl[w]);
      lbl_rows.push_back(features.lbl[w]);
      dbl_labels.push_back(label);
      lbl_labels.push_back(label);
    }
  }

  // Calibration vectors: *fresh* extractions (new walks) of the held-out
  // samples, so the threshold sees both cross-sample and cross-walk
  // variation.
  math::Rng calibration_rng = rng.fork(5);
  const auto calibration_rows = [&] {
    const obs::Span span("calibrate");
    return runtime::parallel_map(
        threads, holdout_count, [&](std::size_t j) {
          math::Rng sample_rng = calibration_rng.child(j);
          return system.pipeline_
              .extract(training[fit_count + j].cfg, sample_rng)
              .pooled_combined();
        });
  }();

  // 3. Train the detector on clean pooled vectors only.
  math::Rng detector_rng = rng.fork(3);
  system.detector_ = AeDetector::train(
      pack_rows(detector_rows), pack_rows(calibration_rows),
      config.autoencoder, config.detector_training, config.detector_alpha,
      config.detector_learning_rate, detector_rng);

  // 4. Train the two classifier CNNs.
  LabeledVectors dbl{pack_rows(dbl_rows), std::move(dbl_labels)};
  LabeledVectors lbl{pack_rows(lbl_rows), std::move(lbl_labels)};
  math::Rng classifier_rng = rng.fork(4);
  system.classifier_ = FamilyClassifier::train(
      dbl, lbl, config.cnn, config.classifier_training,
      config.classifier_learning_rate, classifier_rng);

  // 5. Attach the persistent feature store (when configured) so
  //    analyze_batch on this freshly trained system is warm-capable
  //    immediately. Purely runtime state, like the labeling cache.
  if (!config.feature_store_dir.empty()) {
    system.pipeline_.set_feature_store(
        std::make_shared<store::FeatureStore>(store::StoreConfig{
            config.feature_store_dir, config.feature_store_capacity}));
  }

  // 6. Compile the frozen fused model when the config routes analysis
  //    through it. Runtime state like the store and the cache: not
  //    persisted, rebuilt on demand via freeze().
  if (config.use_frozen) system.freeze();

  return system;
}

void SoteriaSystem::freeze() {
  frozen_ = FrozenModel::compile(pipeline_, detector_, classifier_);
}

features::SampleFeatures SoteriaSystem::extract(const cfg::Cfg& cfg,
                                                math::Rng& rng) const {
  return pipeline_.extract(cfg, rng);
}

Verdict SoteriaSystem::analyze_features(
    const features::SampleFeatures& features) const {
  if (route_frozen(AnalyzeOptions{})) {
    return frozen_->analyze_features(features);
  }
  Verdict verdict;
  verdict.reconstruction_error =
      detector_.sample_error(pooled_matrix(features));
  verdict.adversarial =
      verdict.reconstruction_error > detector_.threshold();
  verdict.predicted = classifier_.predict(features);
  obs::registry().counter_add("soteria.detector.analyzed");
  if (verdict.adversarial) {
    obs::registry().counter_add("soteria.detector.flagged");
  }
  obs::registry().record("soteria.detector.sample_error",
                         verdict.reconstruction_error);
  return verdict;
}

FeatureScores SoteriaSystem::score_features(
    const features::SampleFeatures& features) const {
  FeatureScores scores;
  scores.detector_score = detector_.sample_error(pooled_matrix(features));
  scores.threshold = detector_.threshold();
  scores.adversarial = scores.detector_score > scores.threshold;
  scores.votes = classifier_.vote_counts(features);
  scores.predicted = classifier_.predict(features);
  return scores;
}

Verdict SoteriaSystem::analyze(const cfg::Cfg& cfg, math::Rng& rng) const {
  const obs::Span span("soteria.analyze");
  if (route_frozen(AnalyzeOptions{})) {
    return frozen_->analyze(cfg, rng, pipeline_.labeling_cache().get());
  }
  return analyze_features(extract(cfg, rng));
}

Verdict SoteriaSystem::analyze(const cfg::Cfg& cfg,
                               const math::Rng& fresh_rng,
                               const AnalyzeOptions& options) const {
  if (options.collect_metrics) obs::set_enabled(true);
  const obs::Span span("soteria.analyze");
  if (route_frozen(options)) {
    // Resolve the store exactly like extract_stored: per-call override
    // first, then the pipeline's installed store.
    store::FeatureStore* store = options.feature_store
                                     ? options.feature_store.get()
                                     : pipeline_.feature_store().get();
    return frozen_->analyze_stored(cfg, fresh_rng,
                                   pipeline_.labeling_cache().get(), store);
  }
  return analyze_features(pipeline_.extract_stored(
      cfg, fresh_rng, options.feature_store.get()));
}

Verdict SoteriaSystem::analyze_image(std::span<const std::uint8_t> bytes,
                                     const math::Rng& fresh_rng,
                                     const AnalyzeOptions& options) const {
  const loader::Image image = loader::load_image(bytes);
  const frontend::Frontend& fe = frontend::resolve_frontend(
      frontend::FrontendRegistry::builtin(), image, options.frontend);
  const cfg::Cfg cfg = fe.extract(image);
  return analyze(cfg, fresh_rng, options);
}

std::vector<Verdict> SoteriaSystem::analyze_batch(
    std::span<const cfg::Cfg> cfgs, const math::Rng& rng,
    const AnalyzeOptions& options) const {
  // rng.child(i) is fresh by construction, so the store key it induces
  // is exactly the stream a cold extraction would use.
  std::vector<const cfg::Cfg*> pointers;
  std::vector<math::Rng> rngs;
  pointers.reserve(cfgs.size());
  rngs.reserve(cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    pointers.push_back(&cfgs[i]);
    rngs.push_back(rng.child(i));
  }
  return analyze_batch(pointers, rngs, options);
}

std::vector<Verdict> SoteriaSystem::analyze_batch(
    std::span<const cfg::Cfg* const> cfgs, std::span<const math::Rng> rngs,
    const AnalyzeOptions& options) const {
  if (cfgs.size() != rngs.size()) {
    throw Error(ErrorCode::kInvalidArgument,
                "SoteriaSystem::analyze_batch: cfgs/rngs size mismatch");
  }
  for (const auto* cfg : cfgs) {
    if (cfg == nullptr) {
      throw Error(ErrorCode::kInvalidArgument,
                  "SoteriaSystem::analyze_batch: null cfg");
    }
  }
  if (options.collect_metrics) obs::set_enabled(true);
  const std::size_t threads =
      options.num_threads.value_or(config_.num_threads);
  const auto deadline = options.deadline;
  const obs::Span span("soteria.analyze_batch");
  if (route_frozen(options)) {
    cfg::LabelingCache* cache = pipeline_.labeling_cache().get();
    store::FeatureStore* store = options.feature_store
                                     ? options.feature_store.get()
                                     : pipeline_.feature_store().get();
    return runtime::parallel_map(
        threads, cfgs.size(), [&](std::size_t i) {
          if (deadline && std::chrono::steady_clock::now() >= *deadline) {
            throw Error(ErrorCode::kDeadlineExceeded,
                        "SoteriaSystem::analyze_batch: deadline exceeded");
          }
          return frozen_->analyze_stored(*cfgs[i], rngs[i], cache, store);
        });
  }
  return runtime::parallel_map(
      threads, cfgs.size(), [&](std::size_t i) {
        if (deadline && std::chrono::steady_clock::now() >= *deadline) {
          throw Error(ErrorCode::kDeadlineExceeded,
                      "SoteriaSystem::analyze_batch: deadline exceeded");
        }
        return analyze_features(pipeline_.extract_stored(
            *cfgs[i], rngs[i], options.feature_store.get()));
      });
}

namespace {
constexpr std::uint32_t kSystemMagic = 0x534f5445;  // "SOTE"
}

void SoteriaSystem::save(std::ostream& out) const {
  io::write_scalar(out, kSystemMagic);
  // Scalars of the SoteriaConfig; the nested architecture configs are
  // stored by the components themselves.
  io::write_scalar(out, config_.detector_alpha);
  io::write_scalar(out, config_.detector_learning_rate);
  io::write_scalar(out, config_.classifier_learning_rate);
  io::write_scalar<std::uint64_t>(out, config_.training_vectors_per_sample);
  io::write_scalar<std::uint64_t>(out, config_.seed);
  pipeline_.save(out);
  detector_.save(out);
  classifier_.save(out);
}

SoteriaSystem SoteriaSystem::load(std::istream& in) try {
  if (io::read_scalar<std::uint32_t>(in) != kSystemMagic) {
    throw Error(ErrorCode::kCorruptModel, "SoteriaSystem::load: bad magic");
  }
  SoteriaSystem system;
  system.config_.detector_alpha = io::read_scalar<double>(in);
  system.config_.detector_learning_rate = io::read_scalar<double>(in);
  system.config_.classifier_learning_rate = io::read_scalar<double>(in);
  system.config_.training_vectors_per_sample =
      static_cast<std::size_t>(io::read_scalar<std::uint64_t>(in));
  system.config_.seed = io::read_scalar<std::uint64_t>(in);
  system.pipeline_ = features::FeaturePipeline::load(in);
  system.config_.pipeline = system.pipeline_.config();
  system.config_.approx_centrality_threshold =
      system.config_.pipeline.labeling.approx_centrality_threshold;
  system.config_.frontend = system.config_.pipeline.frontend;
  // Runtime-only state is not persisted; re-create the labeling cache
  // at the default capacity so batch analysis on a loaded model keeps
  // the cross-call memoization.
  if (system.config_.labeling_cache_capacity > 0) {
    system.pipeline_.set_labeling_cache(std::make_shared<cfg::LabelingCache>(
        system.config_.labeling_cache_capacity));
  }
  system.detector_ = AeDetector::load(in);
  system.classifier_ = FamilyClassifier::load(in);
  return system;
} catch (const Error&) {
  throw;
} catch (const std::exception& e) {
  // Anything a component loader still reports untyped (e.g. a config
  // validation failure on decoded garbage) surfaces as one typed code.
  throw Error(ErrorCode::kCorruptModel,
              std::string("SoteriaSystem::load: ") + e.what());
}

void SoteriaSystem::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw Error(ErrorCode::kIoError,
                "SoteriaSystem::save_file: cannot open " + path);
  }
  save(out);
}

SoteriaSystem SoteriaSystem::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error(ErrorCode::kIoError,
                "SoteriaSystem::load_file: cannot open " + path);
  }
  return load(in);
}

}  // namespace soteria::core
