// Family classifier (paper Section III-C, Figs. 6-7): two CNNs — one
// over DBL feature vectors, one over LBL — with majority voting across
// all per-walk vectors. The class with the most argmax votes wins; vote
// ties are broken by summed softmax probability.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "dataset/family.h"
#include "features/pipeline.h"
#include "math/matrix.h"
#include "math/rng.h"
#include "nn/cnn.h"
#include "nn/sequential.h"
#include "nn/trainer.h"

namespace soteria::core {

/// Per-labeling training data: rows of per-walk feature vectors with
/// one class label each.
struct LabeledVectors {
  math::Matrix features;             ///< n x vocabulary-size
  std::vector<std::size_t> labels;   ///< n class indices
};

class FamilyClassifier {
 public:
  /// Trains both CNNs. `config.input_length` is overridden per model by
  /// the corresponding feature width. Throws std::invalid_argument on
  /// empty inputs or label/row mismatch.
  static FamilyClassifier train(const LabeledVectors& dbl,
                                const LabeledVectors& lbl,
                                const nn::CnnConfig& config,
                                const nn::TrainConfig& training,
                                double learning_rate, math::Rng& rng);

  /// Majority-vote prediction over a sample's full feature bundle.
  /// Const and safe for concurrent callers (uses the models'
  /// thread-safe inference path).
  [[nodiscard]] dataset::Family predict(
      const features::SampleFeatures& features) const;

  /// Vote tally per class for diagnostics (same order as Family).
  [[nodiscard]] std::vector<std::size_t> vote_counts(
      const features::SampleFeatures& features) const;

  /// Single-model batch predictions (rows = per-walk vectors).
  [[nodiscard]] std::vector<std::size_t> predict_dbl(
      const math::Matrix& vectors) const;
  [[nodiscard]] std::vector<std::size_t> predict_lbl(
      const math::Matrix& vectors) const;

  /// Single-model per-sample prediction: majority vote within one
  /// labeling only (used for the Table VII ablation columns).
  [[nodiscard]] dataset::Family predict_dbl_only(
      const features::SampleFeatures& features) const;
  [[nodiscard]] dataset::Family predict_lbl_only(
      const features::SampleFeatures& features) const;

  [[nodiscard]] const nn::TrainReport& dbl_report() const noexcept {
    return dbl_report_;
  }
  [[nodiscard]] const nn::TrainReport& lbl_report() const noexcept {
    return lbl_report_;
  }
  [[nodiscard]] nn::Sequential& dbl_model() noexcept { return dbl_model_; }
  [[nodiscard]] const nn::Sequential& dbl_model() const noexcept {
    return dbl_model_;
  }
  [[nodiscard]] nn::Sequential& lbl_model() noexcept { return lbl_model_; }
  [[nodiscard]] const nn::Sequential& lbl_model() const noexcept {
    return lbl_model_;
  }

  /// Binary (de)serialization of both CNNs. `load` throws
  /// std::runtime_error on a corrupt stream.
  void save(std::ostream& out) const;
  [[nodiscard]] static FamilyClassifier load(std::istream& in);

  /// Default-constructed untrained classifier; a placeholder until
  /// assigned from train().
  FamilyClassifier() = default;

 private:
  /// Accumulates votes and probability mass from one model over a set
  /// of vectors.
  void accumulate(const nn::Sequential& model,
                  const std::vector<std::vector<float>>& vectors,
                  std::vector<std::size_t>& votes,
                  std::vector<double>& probability_mass) const;

  nn::CnnConfig dbl_arch_;  ///< architectures actually built
  nn::CnnConfig lbl_arch_;
  nn::Sequential dbl_model_;
  nn::Sequential lbl_model_;
  nn::TrainReport dbl_report_;
  nn::TrainReport lbl_report_;
};

/// Packs per-walk vectors into a matrix (rows = vectors). Throws
/// std::invalid_argument on ragged input.
[[nodiscard]] math::Matrix pack_rows(
    const std::vector<std::vector<float>>& vectors);

}  // namespace soteria::core
