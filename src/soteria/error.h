// Error taxonomy for the serving / analysis / persistence paths.
//
// `Error` derives from std::runtime_error so existing catch sites (and
// tests) keep working, but carries a machine-readable `ErrorCode` so a
// service caller can distinguish a corrupt model file from queue
// backpressure from an expired deadline without string matching.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace soteria::core {

/// Machine-readable failure categories surfaced by the public API.
enum class ErrorCode {
  kOk = 0,            ///< not an error (e.g. an accepted service ticket)
  kInvalidArgument,   ///< caller passed a structurally invalid value
  kOutOfRange,        ///< a value exceeded a structural limit
  kInvalidConfig,     ///< configuration failed validation
  kIoError,           ///< file could not be opened / read / written
  kCorruptModel,      ///< persisted model stream failed validation
  kQueueFull,         ///< service queue at capacity (backpressure)
  kDeadlineExceeded,  ///< request deadline passed before completion
  kCancelled,         ///< request discarded by a cancel-mode shutdown
  kShuttingDown,      ///< service no longer accepts new work
  kInternal,          ///< unexpected failure inside the library
};

/// Stable identifier for a code ("QueueFull", "CorruptModel", ...).
[[nodiscard]] std::string_view error_code_name(ErrorCode code) noexcept;

/// Exception with a typed code. what() is "[<code name>] <message>".
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message);

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

}  // namespace soteria::core
