// Ready-made configurations at three scales.
//
//  * paper_config()      — the paper's architecture and training protocol
//                          verbatim (GPU-sized; hours on one CPU core).
//  * cpu_scaled_config() — the default for the bench harnesses: same
//                          architecture *shape*, hidden widths and epochs
//                          scaled to finish in minutes on one core.
//                          EXPERIMENTS.md records this as the evaluation
//                          configuration.
//  * tiny_config()       — seconds-fast settings for unit tests and the
//                          quickstart example.
#pragma once

#include "soteria/config.h"

namespace soteria::core {

/// Paper-exact configuration (Section III / IV training parameters).
[[nodiscard]] SoteriaConfig paper_config();

/// Single-core-budget configuration used by the bench harnesses.
[[nodiscard]] SoteriaConfig cpu_scaled_config();

/// Fast configuration for tests and examples.
[[nodiscard]] SoteriaConfig tiny_config();

}  // namespace soteria::core
