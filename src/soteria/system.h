// End-to-end Soteria system (paper Fig. 2): feature extractor + AE
// detector + family classifier behind one `train` / `analyze` API.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "dataset/sample.h"
#include "features/pipeline.h"
#include "soteria/classifier.h"
#include "soteria/config.h"
#include "soteria/detector.h"

namespace soteria::core {

/// The verdict for one analyzed sample.
struct Verdict {
  /// True if the detector flagged the sample; flagged samples are not
  /// classified (the paper drops them before the classifier).
  bool adversarial = false;
  /// The detector's reconstruction-error score.
  double reconstruction_error = 0.0;
  /// Majority-vote family (valid also for flagged samples, for the
  /// Table VIII "what would the classifier have said" analysis).
  dataset::Family predicted = dataset::Family::kBenign;
};

class SoteriaSystem {
 public:
  /// Trains the full system on clean training samples: fits the feature
  /// pipeline, trains the detector on combined vectors, and trains the
  /// two classifier CNNs on per-walk vectors. Throws
  /// std::invalid_argument on an empty training set or invalid config.
  static SoteriaSystem train(std::span<const dataset::Sample> training,
                             const SoteriaConfig& config);

  /// Extracts features (fresh walks from `rng`) and runs detector +
  /// classifier.
  [[nodiscard]] Verdict analyze(const cfg::Cfg& cfg, math::Rng& rng);

  /// Runs detector + classifier on pre-extracted features.
  [[nodiscard]] Verdict analyze_features(
      const features::SampleFeatures& features);

  /// Feature extraction with this system's fitted pipeline.
  [[nodiscard]] features::SampleFeatures extract(const cfg::Cfg& cfg,
                                                 math::Rng& rng) const;

  [[nodiscard]] const features::FeaturePipeline& pipeline() const noexcept {
    return pipeline_;
  }
  [[nodiscard]] AeDetector& detector() noexcept { return detector_; }
  [[nodiscard]] FamilyClassifier& classifier() noexcept {
    return classifier_;
  }
  [[nodiscard]] const SoteriaConfig& config() const noexcept {
    return config_;
  }

  /// Binary (de)serialization of the whole trained system (config,
  /// vocabularies, detector, classifier). `load` throws
  /// std::runtime_error on a corrupt stream.
  void save(std::ostream& out);
  [[nodiscard]] static SoteriaSystem load(std::istream& in);

  /// File-path convenience wrappers. Throw std::runtime_error when the
  /// file cannot be opened.
  void save_file(const std::string& path);
  [[nodiscard]] static SoteriaSystem load_file(const std::string& path);

  /// Default-constructed untrained system; a placeholder until assigned
  /// from train() or load().
  SoteriaSystem() = default;

 private:
  SoteriaConfig config_;
  features::FeaturePipeline pipeline_;
  AeDetector detector_;
  FamilyClassifier classifier_;
};

/// Packs a sample's combined per-walk vectors into a matrix (one row
/// per walk).
[[nodiscard]] math::Matrix combined_matrix(
    const features::SampleFeatures& features);

/// Packs a sample's pooled combined vector into a 1-row matrix — the
/// detector's input.
[[nodiscard]] math::Matrix pooled_matrix(
    const features::SampleFeatures& features);

}  // namespace soteria::core
