// End-to-end Soteria system (paper Fig. 2): feature extractor + AE
// detector + family classifier behind one `train` / `analyze` API.
#pragma once

#include <chrono>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dataset/sample.h"
#include "features/pipeline.h"
#include "runtime/thread_pool.h"
#include "soteria/classifier.h"
#include "soteria/config.h"
#include "soteria/detector.h"
#include "soteria/error.h"

namespace soteria::core {

class FrozenModel;

/// The verdict for one analyzed sample.
struct Verdict {
  /// True if the detector flagged the sample; flagged samples are not
  /// classified (the paper drops them before the classifier).
  bool adversarial = false;
  /// The detector's reconstruction-error score.
  double reconstruction_error = 0.0;
  /// Majority-vote family (valid also for flagged samples, for the
  /// Table VIII "what would the classifier have said" analysis).
  dataset::Family predicted = dataset::Family::kBenign;
};

/// Per-call options for analyze_batch. A default-constructed value
/// reproduces the historical two-argument behavior exactly.
struct AnalyzeOptions {
  /// Worker threads for the batch (runtime::resolve_threads semantics:
  /// 0 = all hardware threads, 1 = serial). nullopt defers to
  /// `config().num_threads`. Verdicts are bit-identical at any setting.
  std::optional<std::size_t> num_threads;

  /// Absolute deadline for the whole batch. When it passes before the
  /// batch finishes, analyze_batch throws Error{kDeadlineExceeded} and
  /// partial results are discarded (checked cooperatively before each
  /// sample). nullopt = no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Enable the process-wide observability registry for this call (same
  /// one-way semantics as SoteriaConfig::collect_metrics).
  bool collect_metrics = false;

  /// Persistent feature store consulted for this call, overriding the
  /// pipeline's installed store (see SoteriaConfig::feature_store_dir);
  /// nullptr defers to the installed one. Store hits skip extraction
  /// but yield bit-identical verdicts: entries are keyed by (CFG
  /// content, pipeline fingerprint, per-sample walk seed).
  std::shared_ptr<store::FeatureStore> feature_store;

  /// Route this call through the frozen fused model when the system
  /// has one (see SoteriaSystem::freeze). nullopt defers to
  /// `config().use_frozen`; either way the flag is a no-op until
  /// freeze() has run. Verdicts are bit-identical on both paths.
  std::optional<bool> use_frozen;

  /// Front end used by analyze_image to decode the binary: a name from
  /// the built-in registry ("toy", "x86_64"), or empty / "auto" (the
  /// default) for magic-byte detection. Ignored by the CFG-taking
  /// entry points, which are already past decoding.
  std::string frontend;
};

/// Full per-query view of what the fitted system thinks of one feature
/// bundle — the oracle surface white-/gray-box attackers (attack::
/// QueryOracle) optimize against. Everything here is derived from the
/// same public detector/classifier calls a Verdict uses; exposing it in
/// one struct just keeps attacker code from re-plumbing the pieces.
struct FeatureScores {
  double detector_score = 0.0;  ///< standardized-residual RMS
  double threshold = 0.0;       ///< detector threshold Th
  bool adversarial = false;     ///< detector_score > threshold
  dataset::Family predicted = dataset::Family::kBenign;
  /// Vote tally per class, Family label order (classifier majority
  /// vote; `predicted` includes the probability-mass tie-break).
  std::vector<std::size_t> votes;
};

class SoteriaSystem {
 public:
  /// Trains the full system on clean training samples: fits the feature
  /// pipeline, trains the detector on combined vectors, and trains the
  /// two classifier CNNs on per-walk vectors. Feature extraction for
  /// training and calibration runs on `config.num_threads` threads;
  /// every sample draws from an RNG child keyed by its index, so the
  /// trained system is bit-identical at any thread count. Throws
  /// std::invalid_argument on an empty training set or invalid config.
  static SoteriaSystem train(std::span<const dataset::Sample> training,
                             const SoteriaConfig& config);

  /// Extracts features (fresh walks from `rng`) and runs detector +
  /// classifier. Always a cold extraction: `rng` may be mid-stream, so
  /// its state cannot key the feature store (and it must advance
  /// identically whether or not a store is installed).
  [[nodiscard]] Verdict analyze(const cfg::Cfg& cfg, math::Rng& rng) const;

  /// Single-sample analysis with options. `fresh_rng` must be a fresh
  /// (never-advanced) generator — its construction seed keys the
  /// feature store, exactly like one sample of analyze_batch; the
  /// caller's generator is never advanced.
  [[nodiscard]] Verdict analyze(const cfg::Cfg& cfg,
                                const math::Rng& fresh_rng,
                                const AnalyzeOptions& options) const;

  /// Analyzes a binary image end to end: loads it (raw toy bytes or an
  /// ELF container, via loader::load_image), resolves a front end from
  /// the built-in registry (`options.frontend`; auto-detected by
  /// default), extracts the CFG, and analyzes it with the options'
  /// semantics (`fresh_rng` keys the feature store exactly as in the
  /// CFG overload). Throws core::Error{kCorruptModel} for a malformed
  /// ELF and core::Error{kInvalidArgument} for an image no front end
  /// accepts.
  [[nodiscard]] Verdict analyze_image(std::span<const std::uint8_t> bytes,
                                      const math::Rng& fresh_rng,
                                      const AnalyzeOptions& options = {}) const;

  /// Runs detector + classifier on pre-extracted features. Safe for
  /// concurrent callers.
  [[nodiscard]] Verdict analyze_features(
      const features::SampleFeatures& features) const;

  /// Detector score, threshold, and full vote tally for one feature
  /// bundle (see FeatureScores). Safe for concurrent callers; does not
  /// touch the observability registry (attackers probing the system
  /// should not inflate its own analysis counters).
  [[nodiscard]] FeatureScores score_features(
      const features::SampleFeatures& features) const;

  /// Analyzes many samples concurrently. Sample i draws walks from
  /// `rng.child(i)` (`rng` itself is not advanced), so the verdicts are
  /// bit-identical to a serial loop at any thread count. Throws
  /// Error{kDeadlineExceeded} when `options.deadline` passes before the
  /// batch completes.
  [[nodiscard]] std::vector<Verdict> analyze_batch(
      std::span<const cfg::Cfg> cfgs, const math::Rng& rng,
      const AnalyzeOptions& options = {}) const;

  /// Micro-batch entry point: analyzes `*cfgs[i]` with the *fresh*
  /// generator `rngs[i]` (one per sample; typically `base.child(id)`).
  /// This is the hot path the serving layer drains request batches
  /// into — pointer-based so queued requests are analyzed without
  /// copying their CFGs, and explicitly seeded per sample so a batch
  /// assembled from any interleaving of request ids reproduces the
  /// serial analyze_batch verdict for each id exactly. The span-based
  /// overload above delegates here with `rngs[i] = rng.child(i)`.
  /// Throws Error{kInvalidArgument} on size mismatch or a null CFG.
  [[nodiscard]] std::vector<Verdict> analyze_batch(
      std::span<const cfg::Cfg* const> cfgs,
      std::span<const math::Rng> rngs,
      const AnalyzeOptions& options = {}) const;

  /// Feature extraction with this system's fitted pipeline.
  [[nodiscard]] features::SampleFeatures extract(const cfg::Cfg& cfg,
                                                 math::Rng& rng) const;

  [[nodiscard]] const features::FeaturePipeline& pipeline() const noexcept {
    return pipeline_;
  }
  [[nodiscard]] AeDetector& detector() noexcept { return detector_; }
  [[nodiscard]] const AeDetector& detector() const noexcept {
    return detector_;
  }
  [[nodiscard]] FamilyClassifier& classifier() noexcept {
    return classifier_;
  }
  [[nodiscard]] const FamilyClassifier& classifier() const noexcept {
    return classifier_;
  }
  [[nodiscard]] const SoteriaConfig& config() const noexcept {
    return config_;
  }

  /// Compiles (or refreshes) the frozen fused extract+predict snapshot
  /// of the current pipeline/detector/classifier. Analysis uses it
  /// when `config().use_frozen` (or AnalyzeOptions::use_frozen) says
  /// so; train() calls this automatically under that flag. Call again
  /// after mutating components (e.g. detector().set_alpha()) — the
  /// snapshot is immutable and does not track them. Throws
  /// std::invalid_argument on an untrained system.
  void freeze();

  /// The current snapshot; null until freeze() has run. Immutable and
  /// safe to share across threads.
  [[nodiscard]] const std::shared_ptr<const FrozenModel>& frozen()
      const noexcept {
    return frozen_;
  }

  /// Binary (de)serialization of the whole trained system (config,
  /// vocabularies, detector, classifier). `load` throws
  /// Error{kCorruptModel} (a std::runtime_error) on a corrupt stream.
  void save(std::ostream& out) const;
  [[nodiscard]] static SoteriaSystem load(std::istream& in);

  /// File-path convenience wrappers. Throw Error{kIoError} (a
  /// std::runtime_error) when the file cannot be opened.
  void save_file(const std::string& path) const;
  [[nodiscard]] static SoteriaSystem load_file(const std::string& path);

  /// Default-constructed untrained system; a placeholder until assigned
  /// from train() or load().
  SoteriaSystem() = default;

 private:
  /// True when this call should take the frozen path.
  [[nodiscard]] bool route_frozen(const AnalyzeOptions& options) const {
    return options.use_frozen.value_or(config_.use_frozen) &&
           frozen_ != nullptr;
  }

  SoteriaConfig config_;
  features::FeaturePipeline pipeline_;
  AeDetector detector_;
  FamilyClassifier classifier_;
  /// Compiled snapshot (freeze()); shared so copies of the system stay
  /// cheap and a mid-analysis re-freeze never invalidates readers.
  std::shared_ptr<const FrozenModel> frozen_;
};

/// Packs a sample's combined per-walk vectors into a matrix (one row
/// per walk).
[[nodiscard]] math::Matrix combined_matrix(
    const features::SampleFeatures& features);

/// Packs a sample's pooled combined vector into a 1-row matrix — the
/// detector's input.
[[nodiscard]] math::Matrix pooled_matrix(
    const features::SampleFeatures& features);

}  // namespace soteria::core
