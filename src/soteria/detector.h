// Adversarial-example detector (paper Section III-B.3).
//
// An autoencoder is trained to reconstruct the pooled combined
// (DBL ++ LBL) feature vectors of *clean training samples only* — it
// never sees an AE. Scoring standardizes the per-dimension
// reconstruction residuals with statistics estimated on one half of a
// held-out clean calibration split (so dimensions the autoencoder
// reconstructs tightly contribute at full weight), and the sample score
// is the RMS of those standardized residuals. The threshold
//   Th = mean(score) + alpha * stddev(score)
// is calibrated on the *other* half of the split (fresh walks, unseen
// samples), keeping the whole procedure blind to the test set and to
// any adversarial data — the paper's operational requirement.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "math/matrix.h"
#include "math/rng.h"
#include "nn/autoencoder.h"
#include "nn/sequential.h"
#include "nn/trainer.h"

namespace soteria::core {

class AeDetector {
 public:
  /// Trains the autoencoder on `clean_features` (rows = pooled combined
  /// vectors of clean training samples) and calibrates residual
  /// statistics + threshold from `calibration_features` — fresh
  /// extractions of held-out clean samples (first half: per-dimension
  /// residual standardization; second half: score distribution).
  /// `config.input_dim` is overridden by the feature width. Throws
  /// std::invalid_argument on empty matrices, width mismatch, or fewer
  /// than 4 calibration rows.
  static AeDetector train(const math::Matrix& clean_features,
                          const math::Matrix& calibration_features,
                          const nn::AutoencoderConfig& config,
                          const nn::TrainConfig& training, double alpha,
                          double learning_rate, math::Rng& rng);

  /// Standardized-residual score for every row of `features`.
  /// Const and safe for concurrent callers (uses the model's
  /// thread-safe inference path).
  [[nodiscard]] std::vector<double> scores(const math::Matrix& features)
      const;

  /// Plain per-row reconstruction RMSE (unstandardized), for diagnostics
  /// and the Fig. 12 raw-RE sweep.
  [[nodiscard]] std::vector<double> reconstruction_errors(
      const math::Matrix& features) const;

  /// Mean score over a sample's vectors (the detector input is one
  /// pooled row, but batches work too). Throws std::invalid_argument on
  /// an empty matrix.
  [[nodiscard]] double sample_error(const math::Matrix& sample_vectors)
      const;

  /// True if the sample's score exceeds the threshold.
  [[nodiscard]] bool is_adversarial(const math::Matrix& sample_vectors)
      const;

  /// Per-dimension residual standardization tables (calibration A).
  /// FrozenModel::compile snapshots these alongside the autoencoder
  /// weights.
  [[nodiscard]] const std::vector<double>& residual_mean() const noexcept {
    return residual_mean_;
  }
  [[nodiscard]] const std::vector<double>& residual_stddev() const noexcept {
    return residual_stddev_;
  }

  /// Current threshold Th = mu + alpha * sigma.
  [[nodiscard]] double threshold() const noexcept { return threshold_; }
  [[nodiscard]] double training_mean() const noexcept { return mean_; }
  [[nodiscard]] double training_stddev() const noexcept { return stddev_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// Re-derives the threshold for a different alpha without retraining
  /// (used by the Fig. 13 sweep). Throws std::invalid_argument for a
  /// negative alpha.
  void set_alpha(double alpha);

  /// Training losses per epoch.
  [[nodiscard]] const nn::TrainReport& train_report() const noexcept {
    return report_;
  }

  /// The underlying model (for persistence).
  [[nodiscard]] nn::Sequential& model() noexcept { return model_; }
  [[nodiscard]] const nn::Sequential& model() const noexcept {
    return model_;
  }

  /// Binary (de)serialization: architecture, weights, residual
  /// statistics, and threshold calibration. `load` throws
  /// std::runtime_error on a corrupt stream.
  void save(std::ostream& out) const;
  [[nodiscard]] static AeDetector load(std::istream& in);

  /// Default-constructed untrained detector; a placeholder until
  /// assigned from train().
  AeDetector() = default;

 private:
  nn::AutoencoderConfig arch_;  ///< architecture actually built
  nn::Sequential model_;
  nn::TrainReport report_;
  std::vector<double> residual_mean_;    ///< per-dimension, calibration A
  std::vector<double> residual_stddev_;  ///< per-dimension, calibration A
  double mean_ = 0.0;    ///< score mean over calibration B
  double stddev_ = 0.0;  ///< score stddev over calibration B
  double alpha_ = 1.0;
  double threshold_ = 0.0;
};

}  // namespace soteria::core
