// FrozenModel: the whole trained system — vocabulary perfect hashes,
// IDF tables, detector residual statistics, and all three networks —
// baked into one immutable fused extract+predict object.
//
// Where SoteriaSystem::analyze walks the interpreted pipeline
// (materialized walk vectors, per-walk TF-IDF allocations, a Matrix per
// network layer), the frozen path runs the same arithmetic through
// preallocated per-thread workspaces: walks are drawn and counted in
// one pass over a single UndirectedView, TF-IDF rows land in flat
// buffers, and the networks are nn::FrozenNet op lists. Every floating-
// point operation happens in the same order as the interpreted path,
// so verdicts are bit-identical (see tests/infer/frozen_identity_test).
//
// A FrozenModel is a snapshot: mutating the live system afterwards
// (e.g. detector().set_alpha()) does not update it — call
// SoteriaSystem::freeze() again. All state is immutable after compile,
// so one instance may be shared freely across threads; per-call scratch
// lives in thread_local workspaces.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "features/pipeline.h"
#include "features/vocabulary.h"
#include "math/rng.h"
#include "nn/frozen.h"
#include "soteria/system.h"

namespace soteria::cfg {
class LabelingCache;
}  // namespace soteria::cfg

namespace soteria::store {
class FeatureStore;
}  // namespace soteria::store

namespace soteria::core {

class FrozenModel {
 public:
  /// Compiles a snapshot of the fitted pipeline, calibrated detector,
  /// and trained classifier. Throws std::invalid_argument for an
  /// unfitted pipeline, an uncalibrated detector, or a network layer
  /// nn::FrozenNet cannot compile.
  [[nodiscard]] static std::shared_ptr<const FrozenModel> compile(
      const features::FeaturePipeline& pipeline, const AeDetector& detector,
      const FamilyClassifier& classifier);

  /// Fused cold analysis: walks draw from `rng` (advancing it exactly
  /// like FeaturePipeline::extract), grams are counted into dense
  /// vocabulary rows as the walk is taken, and the networks score the
  /// flat rows in place. `cache` (nullable) serves the DBL/LBL
  /// labelings like the pipeline's installed labeling cache.
  [[nodiscard]] Verdict analyze(const cfg::Cfg& cfg, math::Rng& rng,
                                cfg::LabelingCache* cache) const;

  /// Store-aware analysis with the same key contract as
  /// FeaturePipeline::extract_stored: `fresh_rng` must be a fresh
  /// (never-advanced) generator whose construction seed keys `store`.
  /// A hit scores the cached bundle; a miss extracts (fused), stores
  /// the bundle, then scores it. With a null store this is a plain
  /// fused analysis.
  [[nodiscard]] Verdict analyze_stored(const cfg::Cfg& cfg,
                                       const math::Rng& fresh_rng,
                                       cfg::LabelingCache* cache,
                                       store::FeatureStore* store) const;

  /// Detector + classifier over a pre-extracted bundle — the frozen
  /// twin of SoteriaSystem::analyze_features, bit-identical to it.
  [[nodiscard]] Verdict analyze_features(
      const features::SampleFeatures& features) const;

  /// Fused feature extraction materialized as a SampleFeatures bundle,
  /// bit-identical to FeaturePipeline::extract with the same `rng`.
  [[nodiscard]] features::SampleFeatures extract(
      const cfg::Cfg& cfg, math::Rng& rng, cfg::LabelingCache* cache) const;

  [[nodiscard]] const features::PipelineConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }

 private:
  struct Workspace;

  FrozenModel() = default;

  /// The per-thread scratch arena shared by all FrozenModel instances
  /// (buffers are grow-only and sized per call).
  [[nodiscard]] static Workspace& workspace();

  /// Fused walk+count+TF-IDF into `ws` flat buffers (dbl_rows,
  /// lbl_rows, pooled_in). Draws from `rng` in exactly the interpreted
  /// extraction's order.
  void extract_into(const cfg::Cfg& cfg, math::Rng& rng,
                    cfg::LabelingCache* cache, Workspace& ws) const;

  /// Scores `ws` (detector + voting classifier) over `dbl_walks` /
  /// `lbl_walks` rows of the flat buffers.
  [[nodiscard]] Verdict score(Workspace& ws, std::size_t dbl_walks,
                              std::size_t lbl_walks) const;

  /// Softmax + argmax voting over `rows` (n x net.output_dim), the
  /// frozen twin of FamilyClassifier::accumulate.
  void accumulate(const nn::FrozenNet& net, const float* rows, std::size_t n,
                  nn::FrozenNet::Scratch& scratch, Workspace& ws) const;

  features::PipelineConfig config_;
  features::Vocabulary dbl_vocab_;
  features::Vocabulary lbl_vocab_;
  /// Freeze-time specialization of the vocabularies' compact perfect
  /// hashes: oversized direct-mapped tables with a one-multiply probe,
  /// index-compatible with the vocabularies (same dense TF layout).
  features::DirectGramTable dbl_table_;
  features::DirectGramTable lbl_table_;
  std::uint64_t fingerprint_ = 0;

  nn::FrozenNet detector_net_;
  std::vector<double> residual_mean_;
  std::vector<double> residual_stddev_;
  double threshold_ = 0.0;

  nn::FrozenNet dbl_net_;
  nn::FrozenNet lbl_net_;
};

}  // namespace soteria::core
