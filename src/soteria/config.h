// Top-level Soteria configuration: feature pipeline, detector, and
// classifier hyper-parameters in one place. Defaults are the paper's;
// the scale knobs exist because the reproduction runs on one CPU core
// (see DESIGN.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "features/pipeline.h"
#include "nn/autoencoder.h"
#include "nn/cnn.h"
#include "nn/trainer.h"

namespace soteria::core {

/// End-to-end system configuration.
struct SoteriaConfig {
  /// Feature extraction (walks, grams, vocabulary size).
  features::PipelineConfig pipeline;

  /// Detector autoencoder. `input_dim` is overridden at training time
  /// with the fitted pipeline's combined dimension.
  nn::AutoencoderConfig autoencoder;

  /// Classifier CNNs. `input_length` is overridden at training time
  /// with the per-labeling vocabulary size; `classes` stays 4.
  nn::CnnConfig cnn;

  /// Training protocols (paper: 100 epochs, batch 128 for both).
  nn::TrainConfig detector_training = nn::make_train_config(100, 128);
  nn::TrainConfig classifier_training = nn::make_train_config(100, 128);

  /// Detection threshold Th = mean(RE) + alpha * stddev(RE); paper
  /// default alpha = 1 (Section IV-C.1).
  double detector_alpha = 1.0;

  /// Fraction of the training set held out from autoencoder fitting and
  /// used (with fresh walks) to calibrate the RE threshold, so Th
  /// reflects generalization error, not memorization. Stays within the
  /// paper's "80% training and validation" protocol.
  double calibration_fraction = 0.15;

  /// Optimizer learning rates (Adam).
  double detector_learning_rate = 1e-3;
  double classifier_learning_rate = 1e-3;

  /// How many of the per-walk vectors per sample feed classifier
  /// training (<= walks_per_labeling; lower = faster epochs). Prediction
  /// always votes over all walks.
  std::size_t training_vectors_per_sample = 10;

  /// Master seed for dataset-independent randomness (weights, dropout,
  /// walk draws during training).
  std::uint64_t seed = 42;

  /// Worker threads for the parallel phases (training feature
  /// extraction, pipeline fitting, analyze_batch). 0 = all hardware
  /// threads, 1 = serial fallback. Results are bit-identical at any
  /// setting: every sample draws from an RNG child derived from its
  /// index, never from a shared stream. Not persisted by save() —
  /// it describes the machine, not the model.
  std::size_t num_threads = 0;

  /// Node count at or above which CFG labeling switches from exact to
  /// sampled-pivot approximate centrality (graph/centrality.h); 0 (the
  /// default) keeps labeling exact at any size. A non-zero value is
  /// copied into `pipeline.labeling.approx_centrality_threshold` by
  /// train() (like the architecture dims overridden at training time)
  /// and travels with the saved model from then on; tune it to just
  /// above the largest CFG whose exact labeling latency is acceptable
  /// — the estimate's additive error is bounded by
  /// `pipeline.labeling.approx` (epsilon/delta or explicit pivots).
  std::size_t approx_centrality_threshold = 0;

  /// Name of the binary front end whose CFGs this system is trained on
  /// ("toy", "x86_64"; see frontend/frontend.h). Empty (the default)
  /// defers to `pipeline.frontend`. A non-empty value is copied into
  /// `pipeline.frontend` by train() (like approx_centrality_threshold)
  /// and travels with the saved model from then on, keying the feature
  /// store by decoder via the pipeline fingerprint.
  std::string frontend;

  /// Capacity (entries) of the shared DBL/LBL labeling cache installed
  /// on the feature pipeline; 0 disables caching. Labeling is a pure
  /// function of CFG content, so the cache only removes re-derivation
  /// (fit -> extract -> calibrate relabel the same training CFGs) —
  /// results are bit-identical with the cache on or off. Like
  /// num_threads, not persisted by save(). Memory per entry is
  /// O(nodes + edges) of the cached CFG.
  std::size_t labeling_cache_capacity = 512;

  /// Root directory of the persistent feature store (store/
  /// feature_store.h) to install on the trained pipeline; empty (the
  /// default) disables it. Entries are keyed by (CFG content hash,
  /// pipeline fingerprint, walk seed), so verdicts are bit-identical
  /// with the store on or off and retrained models miss instead of
  /// reading stale vectors. Like num_threads, not persisted by save().
  std::string feature_store_dir;

  /// Capacity (entries) of the feature store when `feature_store_dir`
  /// is set; 0 = unbounded. Eviction is least-recently-used.
  std::size_t feature_store_capacity = 4096;

  /// Route analysis through the frozen fused extract+predict model
  /// (soteria/frozen.h). train() compiles the snapshot when this is
  /// set; on a loaded or assembled system call
  /// SoteriaSystem::freeze() once. Purely a speed knob: verdicts are
  /// bit-identical to the interpreted path. Like num_threads, not
  /// persisted by save() — it describes how to run the model, not the
  /// model. After mutating the live components (e.g.
  /// detector().set_alpha()) call freeze() again; the snapshot does
  /// not track them.
  bool use_frozen = false;

  /// Enable the process-wide observability registry (obs/metrics.h)
  /// before training starts: stage timings, counters, and value
  /// distributions accumulate for later export. Off by default; when
  /// off, every instrumentation site is a single relaxed atomic load.
  /// The flag only ever turns collection on (never off — other code may
  /// have enabled it), and like num_threads it is not persisted by
  /// save().
  bool collect_metrics = false;
};

/// Throws std::invalid_argument if any nested config or knob is invalid.
void validate(const SoteriaConfig& config);

}  // namespace soteria::core
