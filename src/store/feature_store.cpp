#include "store/feature_store.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <system_error>
#include <utility>
#include <vector>

#include "math/rng.h"
#include "obs/metrics.h"
#include "soteria/error.h"

namespace soteria::store {

namespace fs = std::filesystem;

namespace {

// On-disk entry layout (little-endian host format, like io/binary_io):
//
//   u32  magic            "SFS1"
//   u32  version          kEntryFormatVersion
//   u64  content_hash     .
//   u64  fingerprint       } the FeatureKey, verified against the
//   u64  walk_seed        '  requested key on every read
//   u64  payload_size     bytes of the payload section
//   ...  payload          SampleFeatures (see encode_payload)
//   u64  checksum         FNV-1a over the payload bytes
constexpr std::uint32_t kEntryMagic = 0x31534653;  // "SFS1"
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8 + 8;
constexpr std::size_t kChecksumBytes = 8;

/// Corruption guards for the decoder: no legitimate entry holds more
/// walks or wider vectors than these.
constexpr std::uint32_t kMaxWalkVectors = 1U << 20;
constexpr std::uint32_t kMaxVectorDimension = 1U << 24;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

std::uint64_t fnv1a(const char* data, std::size_t size) noexcept {
  std::uint64_t hash = kFnvOffset;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

template <typename T>
void append_scalar(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void append_vector(std::string& out, const std::vector<float>& values) {
  append_scalar<std::uint32_t>(out,
                               static_cast<std::uint32_t>(values.size()));
  out.append(reinterpret_cast<const char*>(values.data()),
             values.size() * sizeof(float));
}

/// Bounds-checked sequential reader over an entry's bytes.
class Cursor {
 public:
  Cursor(const std::string& bytes, std::size_t offset, std::size_t end)
      : bytes_(bytes), offset_(offset), end_(end) {}

  template <typename T>
  [[nodiscard]] bool read(T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (end_ - offset_ < sizeof(T)) return false;
    std::memcpy(&value, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return true;
  }

  [[nodiscard]] bool read_vector(std::vector<float>& values) {
    std::uint32_t size = 0;
    if (!read(size) || size > kMaxVectorDimension) return false;
    if ((end_ - offset_) / sizeof(float) < size) return false;
    values.resize(size);
    std::memcpy(values.data(), bytes_.data() + offset_,
                static_cast<std::size_t>(size) * sizeof(float));
    offset_ += static_cast<std::size_t>(size) * sizeof(float);
    return true;
  }

  [[nodiscard]] bool exhausted() const noexcept { return offset_ == end_; }

 private:
  const std::string& bytes_;
  std::size_t offset_;
  std::size_t end_;
};

void encode_payload(std::string& out,
                    const features::SampleFeatures& features) {
  append_scalar<std::uint32_t>(
      out, static_cast<std::uint32_t>(features.dbl.size()));
  for (const auto& vec : features.dbl) append_vector(out, vec);
  append_scalar<std::uint32_t>(
      out, static_cast<std::uint32_t>(features.lbl.size()));
  for (const auto& vec : features.lbl) append_vector(out, vec);
  append_vector(out, features.pooled_dbl);
  append_vector(out, features.pooled_lbl);
}

bool decode_payload(Cursor& cursor, features::SampleFeatures& features) {
  std::uint32_t walks = 0;
  if (!cursor.read(walks) || walks > kMaxWalkVectors) return false;
  features.dbl.resize(walks);
  for (auto& vec : features.dbl) {
    if (!cursor.read_vector(vec)) return false;
  }
  if (!cursor.read(walks) || walks > kMaxWalkVectors) return false;
  features.lbl.resize(walks);
  for (auto& vec : features.lbl) {
    if (!cursor.read_vector(vec)) return false;
  }
  if (!cursor.read_vector(features.pooled_dbl)) return false;
  if (!cursor.read_vector(features.pooled_lbl)) return false;
  return cursor.exhausted();
}

char hex_digit(std::uint64_t nibble) {
  return "0123456789abcdef"[nibble & 0xF];
}

std::string hex64(std::uint64_t value) {
  std::string out(16, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    out[15 - i] = hex_digit(value >> (4 * i));
  }
  return out;
}

std::string entry_file_name(const FeatureKey& key) {
  return hex64(key.content_hash) + "-" + hex64(key.fingerprint) + "-" +
         hex64(key.walk_seed) + ".sfe";
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return in.good() || in.eof();
}

/// Seconds-resolution steady timestamp pair for the t/store.* records.
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

std::size_t FeatureStore::KeyHash::operator()(
    const FeatureKey& key) const noexcept {
  std::uint64_t hash = math::split_mix64(key.content_hash);
  hash = math::split_mix64(hash ^ key.fingerprint);
  hash = math::split_mix64(hash ^ key.walk_seed);
  return static_cast<std::size_t>(hash);
}

std::string FeatureStore::encode_entry(
    const FeatureKey& key, const features::SampleFeatures& features) {
  std::string payload;
  encode_payload(payload, features);

  std::string out;
  out.reserve(kHeaderBytes + payload.size() + kChecksumBytes);
  append_scalar<std::uint32_t>(out, kEntryMagic);
  append_scalar<std::uint32_t>(out, kEntryFormatVersion);
  append_scalar<std::uint64_t>(out, key.content_hash);
  append_scalar<std::uint64_t>(out, key.fingerprint);
  append_scalar<std::uint64_t>(out, key.walk_seed);
  append_scalar<std::uint64_t>(out, payload.size());
  out += payload;
  append_scalar<std::uint64_t>(out, fnv1a(payload.data(), payload.size()));
  return out;
}

std::optional<features::SampleFeatures> FeatureStore::decode_entry(
    const std::string& bytes, const FeatureKey* expected) {
  if (bytes.size() < kHeaderBytes + kChecksumBytes) return std::nullopt;
  Cursor header(bytes, 0, kHeaderBytes);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  FeatureKey key;
  std::uint64_t payload_size = 0;
  if (!header.read(magic) || !header.read(version) ||
      !header.read(key.content_hash) || !header.read(key.fingerprint) ||
      !header.read(key.walk_seed) || !header.read(payload_size)) {
    return std::nullopt;
  }
  if (magic != kEntryMagic || version != kEntryFormatVersion) {
    return std::nullopt;
  }
  if (expected != nullptr && key != *expected) return std::nullopt;
  if (payload_size != bytes.size() - kHeaderBytes - kChecksumBytes) {
    return std::nullopt;
  }

  std::uint64_t checksum = 0;
  Cursor trailer(bytes, kHeaderBytes + payload_size, bytes.size());
  if (!trailer.read(checksum) ||
      checksum != fnv1a(bytes.data() + kHeaderBytes, payload_size)) {
    return std::nullopt;
  }

  features::SampleFeatures features;
  Cursor payload(bytes, kHeaderBytes, kHeaderBytes + payload_size);
  if (!decode_payload(payload, features)) return std::nullopt;
  return features;
}

FeatureStore::FeatureStore(StoreConfig config)
    : config_(std::move(config)), root_(config_.directory) {
  if (config_.directory.empty()) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "FeatureStore: empty directory");
  }
  if (config_.shard_count == 0 || config_.shard_count > 4096) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "FeatureStore: shard_count outside [1, 4096]");
  }
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    throw core::Error(core::ErrorCode::kIoError,
                      "FeatureStore: cannot create " + root_.string() +
                          ": " + ec.message());
  }
  scan_and_recover();
}

std::filesystem::path FeatureStore::entry_path(
    const FeatureKey& key) const {
  const std::uint64_t mixed = math::split_mix64(
      key.content_hash ^ math::split_mix64(key.fingerprint ^ key.walk_seed));
  const auto shard = static_cast<std::size_t>(mixed % config_.shard_count);
  return root_ / ("shard-" + std::to_string(shard)) / entry_file_name(key);
}

void FeatureStore::quarantine_file(const fs::path& path) {
  std::error_code ec;
  const fs::path quarantine_dir = root_ / "quarantine";
  fs::create_directories(quarantine_dir, ec);
  std::uint64_t sequence = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    sequence = ++temp_sequence_;
    ++stats_.corrupt_entries;
  }
  obs::registry().counter_add("soteria.store.corrupt_entries");
  fs::rename(path,
             quarantine_dir /
                 (path.filename().string() + "." + std::to_string(sequence)),
             ec);
  if (ec) fs::remove(path, ec);  // rename failed: drop it instead
}

void FeatureStore::forget_entry(const FeatureKey& key,
                                const fs::path& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end() || it->second->path != path) return;
  stats_.bytes -= it->second->bytes;
  lru_.erase(it->second);
  index_.erase(it);
  stats_.entries = index_.size();
}

std::vector<std::filesystem::path> FeatureStore::evict_to_locked(
    std::size_t limit) {
  std::vector<fs::path> victims;
  if (limit == 0) return victims;  // 0 = unbounded
  while (lru_.size() > limit) {
    IndexEntry& oldest = lru_.back();
    victims.push_back(oldest.path);
    stats_.bytes -= oldest.bytes;
    index_.erase(oldest.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = index_.size();
  return victims;
}

void FeatureStore::scan_and_recover() {
  struct Found {
    fs::file_time_type mtime;
    FeatureKey key;
    fs::path path;
    std::uint64_t bytes = 0;
  };
  std::vector<Found> found;
  std::vector<fs::path> corrupt;
  std::vector<fs::path> stale_temps;

  std::error_code ec;
  for (fs::directory_iterator shard(root_, ec), end;
       !ec && shard != end; shard.increment(ec)) {
    if (!shard->is_directory() ||
        shard->path().filename() == "quarantine") {
      continue;
    }
    for (fs::directory_iterator it(shard->path(), ec), files_end;
         !ec && it != files_end; it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const fs::path& path = it->path();
      if (path.filename().string().starts_with(".tmp-")) {
        stale_temps.push_back(path);  // interrupted write; never published
        continue;
      }

      // Header-only validation here (magic, version, size arithmetic);
      // the payload checksum is verified on every get() and by a full
      // verify() sweep.
      std::error_code size_ec;
      const auto file_size = fs::file_size(path, size_ec);
      std::string header(kHeaderBytes, '\0');
      std::ifstream in(path, std::ios::binary);
      if (size_ec || !in.read(header.data(), kHeaderBytes)) {
        corrupt.push_back(path);
        continue;
      }
      Cursor cursor(header, 0, kHeaderBytes);
      std::uint32_t magic = 0;
      std::uint32_t version = 0;
      Found entry;
      std::uint64_t payload_size = 0;
      if (!cursor.read(magic) || !cursor.read(version) ||
          !cursor.read(entry.key.content_hash) ||
          !cursor.read(entry.key.fingerprint) ||
          !cursor.read(entry.key.walk_seed) || !cursor.read(payload_size) ||
          magic != kEntryMagic || version != kEntryFormatVersion ||
          file_size != kHeaderBytes + payload_size + kChecksumBytes) {
        corrupt.push_back(path);
        continue;
      }
      entry.path = path;
      entry.bytes = file_size;
      entry.mtime = fs::last_write_time(path, size_ec);
      found.push_back(std::move(entry));
    }
    ec.clear();
  }
  if (ec) {
    throw core::Error(core::ErrorCode::kIoError,
                      "FeatureStore: cannot scan " + root_.string() + ": " +
                          ec.message());
  }

  for (const auto& path : stale_temps) fs::remove(path, ec);
  for (const auto& path : corrupt) quarantine_file(path);

  // Oldest first, so insertion at the LRU front leaves the most
  // recently written entries the last to be evicted. Ties (and
  // duplicate keys left by a shard_count change) resolve by path for
  // determinism; the older duplicate is dropped.
  std::sort(found.begin(), found.end(), [](const Found& a, const Found& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path < b.path;
  });
  std::vector<fs::path> victims;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& entry : found) {
      if (const auto it = index_.find(entry.key); it != index_.end()) {
        victims.push_back(it->second->path);
        stats_.bytes -= it->second->bytes;
        lru_.erase(it->second);
        index_.erase(it);
      }
      lru_.push_front(
          IndexEntry{entry.key, std::move(entry.path), entry.bytes});
      index_[entry.key] = lru_.begin();
      stats_.bytes += entry.bytes;
    }
    stats_.entries = index_.size();
    const auto evicted = evict_to_locked(config_.capacity);
    victims.insert(victims.end(), evicted.begin(), evicted.end());
  }
  for (const auto& path : victims) fs::remove(path, ec);
}

std::optional<features::SampleFeatures> FeatureStore::get(
    const FeatureKey& key) {
  auto& registry = obs::registry();
  const bool timed = registry.enabled();
  const auto start = timed ? Clock::now() : Clock::time_point{};
  const auto finish = [&] {
    if (timed) registry.record("t/store.get", seconds_since(start));
  };
  const auto miss = [&]() -> std::optional<features::SampleFeatures> {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
    }
    registry.counter_add("soteria.store.misses");
    finish();
    return std::nullopt;
  };

  fs::path path;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      registry.counter_add("soteria.store.misses");
      finish();
      return std::nullopt;
    }
    path = it->second->path;
  }

  // File I/O and validation happen outside the lock; a concurrent
  // eviction can unlink the file under us, which reads as a miss.
  std::string bytes;
  if (!read_file(path, bytes)) {
    forget_entry(key, path);
    return miss();
  }
  auto features = decode_entry(bytes, &key);
  if (!features.has_value()) {
    forget_entry(key, path);
    quarantine_file(path);
    return miss();
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = index_.find(key);
        it != index_.end() && it->second->path == path) {
      lru_.splice(lru_.begin(), lru_, it->second);
    }
    ++stats_.hits;
  }
  registry.counter_add("soteria.store.hits");
  finish();
  return features;
}

void FeatureStore::put(const FeatureKey& key,
                       const features::SampleFeatures& features) {
  auto& registry = obs::registry();
  const bool timed = registry.enabled();
  const auto start = timed ? Clock::now() : Clock::time_point{};
  const auto finish = [&] {
    if (timed) registry.record("t/store.put", seconds_since(start));
  };
  const auto fail = [&] {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.write_failures;
    }
    registry.counter_add("soteria.store.write_failures");
    finish();
  };

  const std::string bytes = encode_entry(key, features);
  const fs::path path = entry_path(key);
  std::uint64_t sequence = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    sequence = ++temp_sequence_;
  }
  const fs::path temp =
      path.parent_path() / (".tmp-" + std::to_string(sequence));

  // Crash-safe publish: the full entry lands in a temp file first and
  // becomes visible only through the atomic rename; readers can never
  // observe a half-written entry under its final name.
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out.write(bytes.data(),
                   static_cast<std::streamsize>(bytes.size())) ||
        !out.flush()) {
      out.close();
      fs::remove(temp, ec);
      fail();
      return;
    }
  }
  fs::rename(temp, path, ec);
  if (ec) {
    fs::remove(temp, ec);
    fail();
    return;
  }

  std::vector<fs::path> victims;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = index_.find(key); it != index_.end()) {
      stats_.bytes -= it->second->bytes;
      it->second->bytes = bytes.size();
      it->second->path = path;
      lru_.splice(lru_.begin(), lru_, it->second);
    } else {
      lru_.push_front(IndexEntry{key, path, bytes.size()});
      index_[key] = lru_.begin();
    }
    stats_.bytes += bytes.size();
    stats_.entries = index_.size();
    ++stats_.writes;
    victims = evict_to_locked(config_.capacity);
  }
  registry.counter_add("soteria.store.writes");
  if (!victims.empty()) {
    registry.counter_add("soteria.store.evictions", victims.size());
    for (const auto& victim : victims) fs::remove(victim, ec);
  }
  finish();
}

std::size_t FeatureStore::compact() {
  std::vector<fs::path> victims;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    victims = evict_to_locked(config_.capacity);
  }
  if (!victims.empty()) {
    obs::registry().counter_add("soteria.store.evictions", victims.size());
    std::error_code ec;
    for (const auto& victim : victims) fs::remove(victim, ec);
  }
  return victims.size();
}

VerifyReport FeatureStore::verify() {
  std::vector<std::pair<FeatureKey, fs::path>> resident;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    resident.reserve(lru_.size());
    for (const auto& entry : lru_) {
      resident.emplace_back(entry.key, entry.path);
    }
  }

  VerifyReport report;
  for (const auto& [key, path] : resident) {
    ++report.checked;
    std::string bytes;
    if (!read_file(path, bytes)) {
      forget_entry(key, path);  // vanished (evicted concurrently): a miss
      continue;
    }
    if (!decode_entry(bytes, &key).has_value()) {
      forget_entry(key, path);
      quarantine_file(path);
      ++report.quarantined;
    }
  }
  return report;
}

void FeatureStore::clear() {
  std::vector<fs::path> victims;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    victims.reserve(lru_.size());
    for (const auto& entry : lru_) victims.push_back(entry.path);
    lru_.clear();
    index_.clear();
    stats_.entries = 0;
    stats_.bytes = 0;
  }
  std::error_code ec;
  for (const auto& victim : victims) fs::remove(victim, ec);
}

StoreStats FeatureStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace soteria::store
