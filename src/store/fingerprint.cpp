#include "store/fingerprint.h"

#include <sstream>
#include <string>

#include "features/pipeline.h"

namespace soteria::store {

namespace {

/// Bumped whenever anything that determines feature bytes changes
/// meaning — the fingerprint derivation, the serialized pipeline
/// layout it hashes, or the numeric routine that turns counts into
/// vectors — so stores written by an older scheme miss instead of
/// serving bundles the current build would not reproduce bit-for-bit.
///   v1: original double-precision TF-IDF accumulation.
///   v2: TF-IDF arithmetic moved to float throughout
///       (Vocabulary::tfidf_into); persisted v1 bundles differ in the
///       low mantissa bits, so they must not hit.
///   v3: serialized pipeline blob grew the front-end name
///       (PipelineConfig::frontend) — CFGs now come from pluggable
///       decoders, and entries keyed under the v2 layout predate that
///       distinction.
constexpr std::uint64_t kFingerprintVersion = 3;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t hash, const char* data,
                    std::size_t size) noexcept {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

PipelineFingerprint fingerprint_of(
    const features::FeaturePipeline& pipeline) {
  // The pipeline's own serialization already covers exactly the state
  // that determines feature output: walk config, gram sizes, top_k,
  // normalization flag, and both vocabularies with their IDF tables.
  std::ostringstream bytes(std::ios::binary);
  pipeline.save(bytes);
  const std::string blob = bytes.str();

  std::uint64_t hash = kFnvOffset;
  const std::uint64_t version = kFingerprintVersion;
  hash = fnv1a(hash, reinterpret_cast<const char*>(&version),
               sizeof(version));
  hash = fnv1a(hash, blob.data(), blob.size());
  return PipelineFingerprint{hash};
}

}  // namespace soteria::store
