// Pipeline fingerprint: a content hash of everything that determines
// what feature vectors a fitted `features::FeaturePipeline` produces —
// the walk/gram/TF-IDF configuration and both fitted vocabularies
// (grams, corpus frequencies, IDF weights), plus a format-version tag.
//
// The persistent feature store keys every entry by this fingerprint, so
// a retrained or hot-swapped model whose pipeline differs in *any*
// feature-relevant way can never be served another pipeline's cached
// vectors — stale entries become clean misses, not wrong features.
#pragma once

#include <cstdint>

namespace soteria::features {
class FeaturePipeline;
}  // namespace soteria::features

namespace soteria::store {

/// Opaque 64-bit digest of a fitted pipeline's feature semantics.
/// Equal fingerprints => the pipelines produce identical vectors for
/// identical (CFG, walk-seed) inputs.
struct PipelineFingerprint {
  std::uint64_t value = 0;

  [[nodiscard]] bool operator==(const PipelineFingerprint&) const = default;
};

/// Digests `pipeline` (config + both vocabularies, via its serialized
/// byte stream) together with the fingerprint format version.
[[nodiscard]] PipelineFingerprint fingerprint_of(
    const features::FeaturePipeline& pipeline);

}  // namespace soteria::store
