// Persistent, content-addressed feature store.
//
// The extraction pipeline (CFG -> DBL/LBL labeling -> random walks ->
// n-gram/TF-IDF) is the dominant cost per analyzed sample, and real
// deployments see the same binaries over and over. `FeatureStore` makes
// warm analyses skip extraction entirely — across process restarts and
// across a fleet sharing one directory — by mapping
//
//   (CFG content hash, pipeline fingerprint, walk seed)
//     -> the full per-sample feature bundle (per-walk + pooled vectors)
//
// to one compact, versioned, checksummed file per entry.
//
// Key design points:
//
//  * Content addressing. The CFG hash is `cfg::LabelingCache::
//    content_hash` (entry + node count + edge list), the pipeline
//    fingerprint covers config + both vocabularies (store/fingerprint.h)
//    so retrained models miss instead of reading stale vectors, and the
//    *walk seed* is part of the key: Soteria's randomization property
//    means features are a function of (CFG, pipeline, seed), and keying
//    on all three keeps a store hit bit-identical to a cold extraction.
//  * Crash safety. Writes go to a temp file in the target shard and are
//    published with one atomic rename; a crash mid-write leaves only a
//    temp file, which open-time recovery deletes. Entries that fail
//    validation (bad magic/version, key mismatch, truncation, checksum)
//    are moved to `<root>/quarantine/` — never served, never fatal.
//  * Bounded capacity. At most `capacity` entries are kept (0 =
//    unbounded); `put` evicts least-recently-used entries past the
//    bound and `compact()` re-applies the bound on demand.
//  * Thread safety. One mutex guards the in-memory index; entry
//    serialization, file reads, and file writes happen outside the
//    lock, so concurrent misses and writes on different keys don't
//    serialize. An entry evicted while a reader holds its path simply
//    turns into a miss.
//
// Observability: counters `soteria.store.{hits,misses,writes,
// evictions,corrupt_entries,write_failures}` and latency histograms
// `t/store.get` / `t/store.put` (seconds, like every span timing).
#pragma once

#include <cstdint>
#include <filesystem>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "features/pipeline.h"
#include "store/fingerprint.h"

namespace soteria::store {

/// Current on-disk entry format version (see feature_store.cpp for the
/// byte layout). Readers reject other versions as corrupt.
inline constexpr std::uint32_t kEntryFormatVersion = 1;

/// Full identity of one cached extraction.
struct FeatureKey {
  std::uint64_t content_hash = 0;  ///< cfg::LabelingCache::content_hash
  std::uint64_t fingerprint = 0;   ///< PipelineFingerprint::value
  std::uint64_t walk_seed = 0;     ///< construction seed of the walk Rng

  [[nodiscard]] bool operator==(const FeatureKey&) const = default;
};

struct StoreConfig {
  /// Root directory; created (with parents) if absent.
  std::string directory;

  /// Maximum resident entries; 0 = unbounded. Eviction is LRU.
  std::size_t capacity = 4096;

  /// Fan-out of the on-disk layout: entries land in
  /// `shard-<hash % shard_count>/`. Must be in [1, 4096].
  std::size_t shard_count = 16;
};

/// Monotonic accounting since open (quarantines during open-time
/// recovery count as corrupt_entries).
struct StoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t corrupt_entries = 0;
  std::uint64_t write_failures = 0;
  std::size_t entries = 0;  ///< resident entries right now
  std::uint64_t bytes = 0;  ///< resident payload bytes right now
};

/// Outcome of a `verify()` sweep.
struct VerifyReport {
  std::size_t checked = 0;
  std::size_t quarantined = 0;
};

class FeatureStore {
 public:
  /// Opens (or creates) the store at `config.directory` and recovers:
  /// leftover temp files are deleted, entries whose header fails
  /// validation are quarantined, the rest are indexed (LRU order =
  /// file modification time). Throws core::Error{kInvalidArgument} for
  /// a bad config and core::Error{kIoError} when the directory cannot
  /// be created or scanned.
  explicit FeatureStore(StoreConfig config);

  FeatureStore(const FeatureStore&) = delete;
  FeatureStore& operator=(const FeatureStore&) = delete;

  /// The features stored under `key`, or nullopt on a miss. An entry
  /// that exists but fails validation (truncation, checksum, key
  /// mismatch) is quarantined, counted in `corrupt_entries`, and
  /// reported as a miss — never an exception.
  [[nodiscard]] std::optional<features::SampleFeatures> get(
      const FeatureKey& key);

  /// Persists `features` under `key` (overwriting any previous entry)
  /// and evicts LRU entries past the capacity bound. Write failures
  /// are swallowed into `write_failures` — caching must never fail an
  /// analysis.
  void put(const FeatureKey& key, const features::SampleFeatures& features);

  /// Re-applies the capacity bound (useful after shrinking `capacity`
  /// out-of-band or sharing a directory with a larger writer). Returns
  /// the number of entries evicted.
  std::size_t compact();

  /// Reads and fully validates every resident entry, quarantining the
  /// ones that fail. Safe to run concurrently with get/put.
  VerifyReport verify();

  /// Removes every resident entry (quarantined files are kept).
  void clear();

  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] const StoreConfig& config() const noexcept {
    return config_;
  }

  /// Serializes an entry to its on-disk byte layout / parses one back.
  /// Exposed for the format tests; `decode_entry` returns nullopt for
  /// any malformed input (and for a key mismatch when `expected` is
  /// given).
  [[nodiscard]] static std::string encode_entry(
      const FeatureKey& key, const features::SampleFeatures& features);
  [[nodiscard]] static std::optional<features::SampleFeatures> decode_entry(
      const std::string& bytes, const FeatureKey* expected = nullptr);

 private:
  struct KeyHash {
    std::size_t operator()(const FeatureKey& key) const noexcept;
  };
  struct IndexEntry {
    FeatureKey key;
    std::filesystem::path path;
    std::uint64_t bytes = 0;
  };
  using LruList = std::list<IndexEntry>;

  [[nodiscard]] std::filesystem::path entry_path(
      const FeatureKey& key) const;
  /// Moves `path` into quarantine/ (best effort) and bumps the counter.
  void quarantine_file(const std::filesystem::path& path);
  /// Drops `key` from the index if it still resolves to `path`.
  void forget_entry(const FeatureKey& key,
                    const std::filesystem::path& path);
  /// Unlinks LRU entries past `limit`; call with `mutex_` held, files
  /// are collected and deleted by the caller outside the lock.
  [[nodiscard]] std::vector<std::filesystem::path> evict_to_locked(
      std::size_t limit);
  void scan_and_recover();

  StoreConfig config_;
  std::filesystem::path root_;

  mutable std::mutex mutex_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<FeatureKey, LruList::iterator, KeyHash> index_;
  StoreStats stats_;
  std::uint64_t temp_sequence_ = 0;  ///< unique temp-file suffix
};

}  // namespace soteria::store
