// Query oracle: the attacker's (counted) window into the defense.
//
// Gray-box attackers in the paper's threat model can submit a sample
// and observe the system's response. QueryOracle wraps a fitted
// SoteriaSystem behind exactly that surface — score one CFG, get the
// detector score / threshold / vote tally back — while counting every
// query, so the robustness matrix can report attack cost and so rate-
// limited defenses can be reasoned about later. Each query extracts
// features with a caller-supplied *fresh* generator, which keeps a
// fixed (cfg, rng) query bit-deterministic.
#pragma once

#include <cstddef>

#include "cfg/cfg.h"
#include "math/rng.h"
#include "soteria/system.h"

namespace soteria::attack {

class QueryOracle {
 public:
  /// `system` must outlive the oracle.
  explicit QueryOracle(const core::SoteriaSystem& system) noexcept
      : system_(&system) {}

  /// Scores `cfg` through the full pipeline (fresh walks drawn from a
  /// copy of `fresh_rng`; the caller's generator is never advanced).
  /// Counts one query (and one `attack.queries` tick).
  [[nodiscard]] core::FeatureScores score(const cfg::Cfg& cfg,
                                          const math::Rng& fresh_rng);

  /// The fitted detector threshold (free: fixed model metadata, not a
  /// query in the threat model).
  [[nodiscard]] double threshold() const noexcept;

  /// Queries issued through this oracle so far.
  [[nodiscard]] std::size_t queries() const noexcept { return queries_; }

  [[nodiscard]] const core::SoteriaSystem& system() const noexcept {
    return *system_;
  }

 private:
  const core::SoteriaSystem* system_;
  std::size_t queries_ = 0;
};

}  // namespace soteria::attack
