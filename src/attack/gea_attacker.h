// Parameterized GEA attacker (paper Section IV-A, generalized).
//
// The query-free baseline: embed a target-family sample into the
// victim per GEA. Parameterized over everything the source attack
// fixed — target family, target size bucket, insertion-point strategy
// (entry guard, mid-block, multi-injection) — and realized at the
// binary level whenever the victim and targets carry binaries, so the
// produced AE is an executable whose extracted CFG has the GEA shape.
#pragma once

#include <string>
#include <string_view>

#include "attack/attacker.h"
#include "cfg/gea.h"
#include "dataset/adversarial.h"

namespace soteria::attack {

/// Parameters of the GEA attacker.
struct GeaAttackerOptions {
  dataset::Family target_family = dataset::Family::kBenign;
  dataset::TargetSize target_size = dataset::TargetSize::kSmall;
  cfg::InsertionPoint insertion = cfg::InsertionPoint::kEntryGuard;
  /// Number of injected targets. 1 reproduces classic GEA; above 1 the
  /// attack builds a guard chain over `injections` targets drawn from
  /// consecutive size buckets starting at `target_size` (kMidBlock
  /// applies to single injections only and is ignored otherwise).
  std::size_t injections = 1;
};

class GeaAttacker final : public Attacker {
 public:
  explicit GeaAttacker(const GeaAttackerOptions& options)
      : options_(options) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "gea";
  }
  [[nodiscard]] std::string params() const override;
  [[nodiscard]] const GeaAttackerOptions& options() const noexcept {
    return options_;
  }

 protected:
  [[nodiscard]] AttackResult do_generate(
      const dataset::Sample& sample,
      std::span<const dataset::Sample> corpus,
      math::Rng& rng) const override;

 private:
  GeaAttackerOptions options_;
};

}  // namespace soteria::attack
