#include "attack/binary_gea.h"

#include <limits>
#include <string>

#include "isa/isa.h"
#include "soteria/error.h"

namespace soteria::attack {

namespace {

constexpr std::uint8_t kGuardRegister = 15;
constexpr std::size_t kGuardCount = 3;

void require_image(std::span<const std::uint8_t> image, const char* what) {
  if (image.empty() || image.size() % isa::kInstructionSize != 0) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      std::string(what) + ": empty or ragged image");
  }
}

std::int16_t checked_offset(long long offset, const char* what) {
  if (offset < std::numeric_limits<std::int16_t>::min() ||
      offset > std::numeric_limits<std::int16_t>::max()) {
    throw core::Error(core::ErrorCode::kOutOfRange,
                      std::string(what) + ": branch offset " +
                          std::to_string(offset) +
                          " exceeds the 16-bit reach");
  }
  return static_cast<std::int16_t>(offset);
}

/// Emits `mov rG, 0; cmpi rG, 1; jz +jump` — the never-taken guard.
/// Never taken regardless of rG's prior value: the mov runs first.
void emit_guard(std::vector<std::uint8_t>& out, std::int16_t jump,
                std::uint8_t guard_register = kGuardRegister) {
  isa::encode_to(
      isa::Instruction{isa::Opcode::kMovImm, guard_register, 0}, out);
  isa::encode_to(
      isa::Instruction{isa::Opcode::kCmpImm, guard_register, 1}, out);
  isa::encode_to(isa::Instruction{isa::Opcode::kJz, 0, jump}, out);
}

/// True for opcodes that overwrite their primary register operand.
bool writes_register(isa::Opcode op) noexcept {
  switch (op) {
    case isa::Opcode::kMovImm:
    case isa::Opcode::kMovReg:
    case isa::Opcode::kAdd:
    case isa::Opcode::kSub:
    case isa::Opcode::kMul:
    case isa::Opcode::kXor:
    case isa::Opcode::kAnd:
    case isa::Opcode::kOr:
    case isa::Opcode::kShl:
    case isa::Opcode::kShr:
    case isa::Opcode::kLoad:
    case isa::Opcode::kPop:
      return true;
    default:
      return false;
  }
}

/// True for opcodes that read their primary register operand before
/// (possibly) overwriting it.
bool reads_primary(isa::Opcode op) noexcept {
  switch (op) {
    case isa::Opcode::kAdd:
    case isa::Opcode::kSub:
    case isa::Opcode::kMul:
    case isa::Opcode::kXor:
    case isa::Opcode::kAnd:
    case isa::Opcode::kOr:
    case isa::Opcode::kShl:
    case isa::Opcode::kShr:
    case isa::Opcode::kCmp:
    case isa::Opcode::kCmpImm:
    case isa::Opcode::kStore:
    case isa::Opcode::kPush:
      return true;
    default:
      return false;
  }
}

/// True for opcodes whose immediate's low nibble names a second source
/// register.
bool reads_imm_register(isa::Opcode op) noexcept {
  switch (op) {
    case isa::Opcode::kMovReg:
    case isa::Opcode::kAdd:
    case isa::Opcode::kSub:
    case isa::Opcode::kMul:
    case isa::Opcode::kXor:
    case isa::Opcode::kAnd:
    case isa::Opcode::kOr:
    case isa::Opcode::kShl:
    case isa::Opcode::kShr:
    case isa::Opcode::kCmp:
    case isa::Opcode::kLoad:
    case isa::Opcode::kStore:
      return true;
    default:
      return false;
  }
}

}  // namespace

BinaryGeaResult binary_gea(std::span<const std::uint8_t> original,
                           std::span<const std::uint8_t> target) {
  require_image(original, "binary_gea (original)");
  require_image(target, "binary_gea (target)");

  const std::size_t original_count =
      original.size() / isa::kInstructionSize;
  // Guard: r15 = 0; cmpi r15, 1; jz +original_count (into the target).
  // r15 != 1, so the jump is never taken and the original side runs —
  // yet both sides are statically reachable from the entry block.
  const std::int16_t jump = checked_offset(
      static_cast<long long>(original_count), "binary_gea");

  BinaryGeaResult result;
  result.guard_instructions = kGuardCount;
  result.guard_index = 0;
  result.original_offset = kGuardCount;
  result.target_offset = kGuardCount + original_count;

  result.image.reserve(kGuardCount * isa::kInstructionSize +
                       original.size() + target.size());
  emit_guard(result.image, jump);
  result.image.insert(result.image.end(), original.begin(),
                      original.end());
  result.image.insert(result.image.end(), target.begin(), target.end());
  return result;
}

BinaryGeaResult binary_gea_at(std::span<const std::uint8_t> original,
                              std::span<const std::uint8_t> target,
                              std::size_t insert_instruction,
                              std::uint8_t guard_register) {
  require_image(original, "binary_gea_at (original)");
  require_image(target, "binary_gea_at (target)");
  if (guard_register >= isa::kRegisterCount) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "binary_gea_at: no register r" +
                          std::to_string(guard_register));
  }

  const std::size_t count = original.size() / isa::kInstructionSize;
  const std::size_t p = insert_instruction;
  if (p >= count) {
    throw core::Error(core::ErrorCode::kOutOfRange,
                      "binary_gea_at: insertion boundary " +
                          std::to_string(p) + " past an original of " +
                          std::to_string(count) + " instructions");
  }

  // New layout (instruction indices):
  //   [0, p)                 original prefix (unchanged positions)
  //   [p, p+3)               guard
  //   [p+3, count+3)         original suffix (shifted by the guard)
  //   [count+3, ...)         target, verbatim (internally relative)
  //
  // Relocation: a branch at old index i targeting old index t = i+1+imm
  // keeps its semantics under new_src = i < p ? i : i+3 and
  // new_t = t <= p ? t : t+3. Targets equal to p map to the guard start,
  // so every path that used to enter instruction p now runs through the
  // (transparent) guard first — which is what keeps the injected lobe
  // reachable in the extracted CFG.
  const auto relocate_index = [p](long long x) -> long long {
    return x < static_cast<long long>(p) ? x : x + 3;
  };
  const auto relocate_target = [p](long long t) -> long long {
    return t <= static_cast<long long>(p) ? t : t + 3;
  };

  std::vector<std::uint8_t> patched(original.begin(), original.end());
  for (std::size_t i = 0; i < count; ++i) {
    const std::span<const std::uint8_t> word =
        original.subspan(i * isa::kInstructionSize, isa::kInstructionSize);
    const std::optional<isa::Instruction> insn = isa::decode(word);
    // Unknown words are inert data and are copied verbatim.
    if (!insn.has_value() || !isa::is_control_flow(insn->opcode)) continue;
    const long long old_target =
        static_cast<long long>(i) + 1 + insn->imm;
    const long long new_imm =
        relocate_target(old_target) - (relocate_index(i) + 1);
    isa::Instruction moved = *insn;
    moved.imm = checked_offset(new_imm, "binary_gea_at");
    const auto bytes = isa::encode(moved);
    std::copy(bytes.begin(), bytes.end(),
              patched.begin() +
                  static_cast<std::ptrdiff_t>(i * isa::kInstructionSize));
  }

  // jz sits at new index p+2; the target lobe starts at count+3.
  const std::int16_t jump = checked_offset(
      static_cast<long long>(count) - static_cast<long long>(p),
      "binary_gea_at");

  BinaryGeaResult result;
  result.guard_instructions = kGuardCount;
  result.guard_index = p;
  result.original_offset = 0;
  result.target_offset = count + kGuardCount;

  const std::size_t split = p * isa::kInstructionSize;
  result.image.reserve(patched.size() +
                       kGuardCount * isa::kInstructionSize + target.size());
  result.image.insert(result.image.end(), patched.begin(),
                      patched.begin() + static_cast<std::ptrdiff_t>(split));
  emit_guard(result.image, jump, guard_register);
  result.image.insert(result.image.end(),
                      patched.begin() + static_cast<std::ptrdiff_t>(split),
                      patched.end());
  result.image.insert(result.image.end(), target.begin(), target.end());
  return result;
}

MultiBinaryGeaResult binary_gea_multi(
    std::span<const std::uint8_t> original,
    std::span<const std::vector<std::uint8_t>> targets) {
  require_image(original, "binary_gea_multi (original)");
  if (targets.empty()) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "binary_gea_multi: no targets");
  }
  for (const auto& t : targets) {
    require_image(t, "binary_gea_multi (target)");
  }

  const std::size_t k = targets.size();
  const std::size_t original_count =
      original.size() / isa::kInstructionSize;

  MultiBinaryGeaResult result;
  result.guard_instructions = kGuardCount * k;
  result.original_offset = result.guard_instructions;
  result.target_offsets.reserve(k);
  std::size_t cursor = result.guard_instructions + original_count;
  std::size_t total_bytes =
      result.guard_instructions * isa::kInstructionSize + original.size();
  for (const auto& t : targets) {
    result.target_offsets.push_back(cursor);
    cursor += t.size() / isa::kInstructionSize;
    total_bytes += t.size();
  }

  result.image.reserve(total_bytes);
  // Guard chain: guard i's jz (at index 3i+2) jumps into target i;
  // fall-through reaches guard i+1 and finally the original.
  for (std::size_t i = 0; i < k; ++i) {
    const long long jump =
        static_cast<long long>(result.target_offsets[i]) -
        (static_cast<long long>(kGuardCount * i) + kGuardCount);
    emit_guard(result.image, checked_offset(jump, "binary_gea_multi"));
  }
  result.image.insert(result.image.end(), original.begin(),
                      original.end());
  for (const auto& t : targets) {
    result.image.insert(result.image.end(), t.begin(), t.end());
  }
  return result;
}

std::vector<GuardPoint> safe_guard_points(
    std::span<const std::uint8_t> image) {
  require_image(image, "safe_guard_points");
  const std::size_t count = image.size() / isa::kInstructionSize;

  std::vector<std::optional<isa::Instruction>> insns;
  insns.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    insns.push_back(isa::decode(
        image.subspan(i * isa::kInstructionSize, isa::kInstructionSize)));
  }

  // Registers no decoded instruction ever writes always hold the VM's
  // initial 0 — exactly the value the guard's mov writes, so clobbering
  // them is invisible at *any* boundary (loops included).
  bool written_somewhere[isa::kRegisterCount] = {};
  for (const auto& insn : insns) {
    if (insn.has_value() && writes_register(insn->opcode)) {
      written_somewhere[insn->reg & 0xF] = true;
    }
  }

  std::vector<GuardPoint> points;
  for (std::size_t p = 1; p < count; ++p) {
    // The preceding instruction must fall through into the guard.
    const auto& prev = insns[p - 1];
    if (!prev.has_value() || prev->opcode == isa::Opcode::kJmp ||
        prev->opcode == isa::Opcode::kRet ||
        prev->opcode == isa::Opcode::kHalt) {
      continue;
    }

    // One straight-line scan from the boundary decides both clobbers.
    // Flags: the guard's cmpi is invisible if the path reaches a fresh
    // cmp (or halt) before any instruction that reads or redirects on
    // the flags. Registers: a register first *written* in the window is
    // dead at the boundary; on reaching a halt, so is every register
    // the window never touched. Calls, branches, syscalls, and unknown
    // words end the window — past them the value could be read. Flows
    // that branch *into* the window never executed the guard, so they
    // are unaffected by either clobber.
    enum class Access : std::uint8_t { kNone, kRead, kWrite };
    Access first[isa::kRegisterCount] = {};
    bool flags_dead = false;
    bool halt_reached = false;
    for (std::size_t j = p; j < count; ++j) {
      if (!insns[j].has_value()) break;  // data: cannot reason, unsafe
      const isa::Instruction& insn = *insns[j];
      const isa::Opcode op = insn.opcode;
      if (op == isa::Opcode::kHalt) {
        flags_dead = true;
        halt_reached = true;
        break;
      }
      if (op == isa::Opcode::kCmp || op == isa::Opcode::kCmpImm) {
        flags_dead = true;
      }
      if (isa::is_control_flow(op) || op == isa::Opcode::kRet ||
          op == isa::Opcode::kSyscall) {
        break;
      }
      // Reads happen before the (possible) write of the same register.
      if (reads_primary(op) && first[insn.reg & 0xF] == Access::kNone) {
        first[insn.reg & 0xF] = Access::kRead;
      }
      if (reads_imm_register(op) && first[insn.imm & 0xF] == Access::kNone) {
        first[insn.imm & 0xF] = Access::kRead;
      }
      if (writes_register(op) && first[insn.reg & 0xF] == Access::kNone) {
        first[insn.reg & 0xF] = Access::kWrite;
      }
    }
    if (!flags_dead) continue;

    // Prefer the conventional r15 downwards so entry-style guards and
    // interior guards pick the same register whenever they can.
    for (int g = isa::kRegisterCount - 1; g >= 0; --g) {
      const bool dead = !written_somewhere[g] ||
                        first[g] == Access::kWrite ||
                        (halt_reached && first[g] == Access::kNone);
      if (dead) {
        points.push_back(
            GuardPoint{p, static_cast<std::uint8_t>(g)});
        break;
      }
    }
  }
  return points;
}

std::vector<std::uint8_t> append_attack(
    std::span<const std::uint8_t> image, std::size_t byte_count,
    math::Rng& rng) {
  require_image(image, "append_attack");
  std::vector<std::uint8_t> out(image.begin(), image.end());
  const std::size_t instructions =
      (byte_count + isa::kInstructionSize - 1) / isa::kInstructionSize;
  static constexpr isa::Opcode kFiller[] = {
      isa::Opcode::kMovImm, isa::Opcode::kAdd, isa::Opcode::kXor,
      isa::Opcode::kLoad,   isa::Opcode::kOr,  isa::Opcode::kNop};
  for (std::size_t i = 0; i < instructions; ++i) {
    isa::encode_to(
        isa::Instruction{
            kFiller[rng.index(std::size(kFiller))],
            static_cast<std::uint8_t>(rng.index(isa::kRegisterCount)),
            static_cast<std::int16_t>(rng.uniform_int(0, 255))},
        out);
  }
  return out;
}

}  // namespace soteria::attack
