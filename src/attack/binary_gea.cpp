#include "attack/binary_gea.h"

#include <limits>
#include <stdexcept>

#include "isa/isa.h"

namespace soteria::attack {

namespace {

constexpr std::uint8_t kGuardRegister = 15;

void require_image(std::span<const std::uint8_t> image, const char* what) {
  if (image.empty() || image.size() % isa::kInstructionSize != 0) {
    throw std::invalid_argument(std::string(what) +
                                ": empty or ragged image");
  }
}

}  // namespace

BinaryGeaResult binary_gea(std::span<const std::uint8_t> original,
                           std::span<const std::uint8_t> target) {
  require_image(original, "binary_gea (original)");
  require_image(target, "binary_gea (target)");

  const std::size_t original_count =
      original.size() / isa::kInstructionSize;
  // Guard: r15 = 0; cmpi r15, 1; jz +original_count (into the target).
  // r15 != 1, so the jump is never taken and the original side runs —
  // yet both sides are statically reachable from the entry block.
  constexpr std::size_t kGuardCount = 3;
  if (original_count >
      static_cast<std::size_t>(std::numeric_limits<std::int16_t>::max())) {
    throw std::out_of_range(
        "binary_gea: original too large for the guard branch");
  }

  BinaryGeaResult result;
  result.guard_instructions = kGuardCount;
  result.original_offset = kGuardCount;
  result.target_offset = kGuardCount + original_count;

  result.image.reserve(kGuardCount * isa::kInstructionSize +
                       original.size() + target.size());
  isa::encode_to(
      isa::Instruction{isa::Opcode::kMovImm, kGuardRegister, 0},
      result.image);
  isa::encode_to(
      isa::Instruction{isa::Opcode::kCmpImm, kGuardRegister, 1},
      result.image);
  isa::encode_to(
      isa::Instruction{isa::Opcode::kJz, 0,
                       static_cast<std::int16_t>(original_count)},
      result.image);
  result.image.insert(result.image.end(), original.begin(),
                      original.end());
  result.image.insert(result.image.end(), target.begin(), target.end());
  return result;
}

std::vector<std::uint8_t> append_attack(
    std::span<const std::uint8_t> image, std::size_t byte_count,
    math::Rng& rng) {
  require_image(image, "append_attack");
  std::vector<std::uint8_t> out(image.begin(), image.end());
  const std::size_t instructions =
      (byte_count + isa::kInstructionSize - 1) / isa::kInstructionSize;
  static constexpr isa::Opcode kFiller[] = {
      isa::Opcode::kMovImm, isa::Opcode::kAdd, isa::Opcode::kXor,
      isa::Opcode::kLoad,   isa::Opcode::kOr,  isa::Opcode::kNop};
  for (std::size_t i = 0; i < instructions; ++i) {
    isa::encode_to(
        isa::Instruction{
            kFiller[rng.index(std::size(kFiller))],
            static_cast<std::uint8_t>(rng.index(isa::kRegisterCount)),
            static_cast<std::int16_t>(rng.uniform_int(0, 255))},
        out);
  }
  return out;
}

}  // namespace soteria::attack
