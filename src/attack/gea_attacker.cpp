#include "attack/gea_attacker.h"

#include <string>

#include "attack/binary_gea.h"
#include "attack/targets.h"
#include "cfg/extractor.h"
#include "soteria/error.h"

namespace soteria::attack {

namespace {

/// True when every involved sample carries a binary, i.e. the attack
/// can be realized at the code level.
bool all_have_binaries(const dataset::Sample& sample,
                       std::span<const dataset::Sample* const> targets) {
  if (sample.binary.empty()) return false;
  for (const dataset::Sample* t : targets) {
    if (t->binary.empty()) return false;
  }
  return true;
}

}  // namespace

std::string GeaAttacker::params() const {
  std::string params = std::string("target=") +
                       dataset::family_name(options_.target_family) +
                       ",size=" +
                       dataset::target_size_name(options_.target_size) +
                       ",insert=" +
                       cfg::insertion_point_name(options_.insertion);
  if (options_.injections != 1) {
    params += ",injections=" + std::to_string(options_.injections);
  }
  return params;
}

AttackResult GeaAttacker::do_generate(
    const dataset::Sample& sample, std::span<const dataset::Sample> corpus,
    math::Rng& rng) const {
  if (options_.injections == 0) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "GeaAttacker: injections must be >= 1");
  }

  // Draw the injected targets: bucket `target_size` first, additional
  // injections from the following buckets (wrapping), so a 3-injection
  // attack embeds one sample of every size.
  std::vector<const dataset::Sample*> targets;
  targets.reserve(options_.injections);
  for (std::size_t i = 0; i < options_.injections; ++i) {
    const auto size = static_cast<dataset::TargetSize>(
        (static_cast<std::size_t>(options_.target_size) + i) %
        dataset::kTargetSizeCount);
    targets.push_back(
        &select_target(corpus, options_.target_family, size));
  }

  AttackResult result;
  result.target_family = options_.target_family;
  result.detail = "targets=";
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (i > 0) result.detail += '+';
    result.detail += std::to_string(targets[i]->id);
  }

  if (all_have_binaries(sample, targets)) {
    // Code-level realization: the AE is a runnable image and its CFG is
    // re-extracted from the bytes, exactly like a defender would.
    if (options_.injections > 1) {
      std::vector<std::vector<std::uint8_t>> images;
      images.reserve(targets.size());
      for (const dataset::Sample* t : targets) images.push_back(t->binary);
      result.binary = binary_gea_multi(sample.binary, images).image;
      result.detail += ",insert=entry-chain";
    } else if (options_.insertion == cfg::InsertionPoint::kMidBlock) {
      const auto points = safe_guard_points(sample.binary);
      if (points.empty()) {
        result.binary =
            binary_gea(sample.binary, targets.front()->binary).image;
        result.detail += ",insert=entry(no-safe-mid)";
      } else {
        const GuardPoint point = points[rng.index(points.size())];
        result.binary =
            binary_gea_at(sample.binary, targets.front()->binary,
                          point.boundary, point.guard_register)
                .image;
        result.detail += ",insert=mid@" + std::to_string(point.boundary);
      }
    } else {
      result.binary =
          binary_gea(sample.binary, targets.front()->binary).image;
      result.detail += ",insert=entry";
    }
    result.cfg = cfg::extract(result.binary);
    return result;
  }

  // Graph-level fallback (e.g. victims that are themselves synthetic
  // CFG-only AEs).
  if (options_.injections > 1) {
    std::vector<cfg::Cfg> cfgs;
    cfgs.reserve(targets.size());
    for (const dataset::Sample* t : targets) cfgs.push_back(t->cfg);
    result.cfg = cfg::gea_combine_multi(sample.cfg, cfgs).combined;
    result.detail += ",insert=entry-chain(graph)";
  } else {
    cfg::GeaOptions gea;
    gea.insertion = options_.insertion;
    if (gea.insertion == cfg::InsertionPoint::kMidBlock) {
      gea.anchor = static_cast<graph::NodeId>(
          rng.index(sample.cfg.node_count()));
      result.detail += ",anchor=" + std::to_string(gea.anchor);
    }
    result.cfg =
        cfg::gea_combine(sample.cfg, targets.front()->cfg, gea).combined;
    result.detail += std::string(",insert=") +
                     cfg::insertion_point_name(gea.insertion) + "(graph)";
  }
  return result;
}

}  // namespace soteria::attack
