#include "attack/guided.h"

#include <limits>
#include <string>
#include <vector>

#include "attack/binary_gea.h"
#include "attack/oracle.h"
#include "attack/targets.h"
#include "cfg/extractor.h"
#include "cfg/gea.h"
#include "isa/isa.h"
#include "soteria/error.h"

namespace soteria::attack {

namespace {

/// One scored candidate injection.
struct Candidate {
  AttackResult result;
  core::FeatureScores scores;
};

/// How many detector-surviving candidates the adaptive attacker
/// re-scores under a second walk seed.
constexpr std::size_t kRescoreLimit = 4;

/// Vote margin of `target` over the strongest other class (negative
/// when the classifier prefers another family).
long long target_margin(const core::FeatureScores& scores,
                        dataset::Family target) {
  const std::size_t target_index = dataset::family_index(target);
  if (target_index >= scores.votes.size()) return 0;
  long long best_other = 0;
  for (std::size_t f = 0; f < scores.votes.size(); ++f) {
    if (f == target_index) continue;
    best_other = std::max(best_other,
                          static_cast<long long>(scores.votes[f]));
  }
  return static_cast<long long>(scores.votes[target_index]) - best_other;
}

/// Entry-guard GEA of `sample` with one target, at whichever level the
/// inputs support.
AttackResult entry_candidate(const dataset::Sample& sample,
                             const dataset::Sample& target,
                             dataset::Family target_family) {
  AttackResult result;
  result.target_family = target_family;
  if (!sample.binary.empty() && !target.binary.empty()) {
    result.binary = binary_gea(sample.binary, target.binary).image;
    result.cfg = cfg::extract(result.binary);
    result.detail =
        "target=" + std::to_string(target.id) + ",insert=entry";
  } else {
    result.cfg = cfg::gea_combine(sample.cfg, target.cfg).combined;
    result.detail =
        "target=" + std::to_string(target.id) + ",insert=entry(graph)";
  }
  return result;
}

/// Mid-block GEA at a safe guard point (binary-level inputs only).
AttackResult mid_candidate(const dataset::Sample& sample,
                           const dataset::Sample& target,
                           dataset::Family target_family,
                           const GuardPoint& point) {
  AttackResult result;
  result.target_family = target_family;
  result.binary = binary_gea_at(sample.binary, target.binary,
                                point.boundary, point.guard_register)
                      .image;
  result.cfg = cfg::extract(result.binary);
  result.detail = "target=" + std::to_string(target.id) + ",insert=mid@" +
                  std::to_string(point.boundary);
  return result;
}

/// First `instructions` of the target, halt-terminated. The injected
/// lobe is never executed, so truncation cannot damage the victim; it
/// just bounds how far the pooled features move.
std::vector<std::uint8_t> trimmed_payload(const dataset::Sample& target,
                                          std::size_t instructions) {
  std::vector<std::uint8_t> payload(
      target.binary.begin(),
      target.binary.begin() +
          static_cast<std::ptrdiff_t>(instructions * isa::kInstructionSize));
  isa::encode_to(isa::Instruction{isa::Opcode::kHalt, 0, 0}, payload);
  return payload;
}

/// Trimmed injection behind the entry guard (binary level).
AttackResult trim_candidate(const dataset::Sample& sample,
                            const dataset::Sample& target,
                            dataset::Family target_family,
                            std::size_t instructions) {
  AttackResult result;
  result.target_family = target_family;
  result.binary =
      binary_gea(sample.binary, trimmed_payload(target, instructions)).image;
  result.cfg = cfg::extract(result.binary);
  result.detail = "target=" + std::to_string(target.id) + ",trim=" +
                  std::to_string(instructions) + ",insert=entry";
  return result;
}

/// Trimmed injection at an interior guard point — the detector-aware
/// sweet spot. A tiny lobe hung off a deep boundary adds nodes that
/// rank *last* under both labelings (lowest density, deepest level), so
/// almost every existing label — and with it almost every walk n-gram —
/// survives; the deeper the attachment, the smaller the walk mass that
/// ever reaches the lobe. This is the knob that gets candidates back
/// under the detector threshold.
AttackResult trim_mid_candidate(const dataset::Sample& sample,
                                const dataset::Sample& target,
                                dataset::Family target_family,
                                const GuardPoint& point,
                                std::size_t instructions) {
  AttackResult result;
  result.target_family = target_family;
  result.binary =
      binary_gea_at(sample.binary, trimmed_payload(target, instructions),
                    point.boundary, point.guard_register)
          .image;
  result.cfg = cfg::extract(result.binary);
  result.detail = "target=" + std::to_string(target.id) + ",trim=" +
                  std::to_string(instructions) + ",insert=mid@" +
                  std::to_string(point.boundary);
  return result;
}

/// Guard-chain multi-injection of the given targets (binary level).
AttackResult chain_candidate(
    const dataset::Sample& sample,
    std::span<const dataset::Sample* const> targets,
    dataset::Family target_family) {
  AttackResult result;
  result.target_family = target_family;
  std::vector<std::vector<std::uint8_t>> images;
  images.reserve(targets.size());
  result.detail = "targets=";
  for (std::size_t i = 0; i < targets.size(); ++i) {
    images.push_back(targets[i]->binary);
    if (i > 0) result.detail += '+';
    result.detail += std::to_string(targets[i]->id);
  }
  result.binary = binary_gea_multi(sample.binary, images).image;
  result.cfg = cfg::extract(result.binary);
  result.detail += ",insert=entry-chain";
  return result;
}

/// Builds and scores the candidate pool shared by both guided
/// strategies. `include_chains` adds the adaptive attacker's
/// multi-injection candidates. Candidate i is scored with
/// `rng.child(i)`, so the pool is deterministic for a fixed seed.
std::vector<Candidate> score_candidates(
    const dataset::Sample& sample, std::span<const dataset::Sample> corpus,
    const GuidedOptions& options, const core::SoteriaSystem& system,
    bool include_chains, std::size_t& queries, math::Rng& rng) {
  const auto pool =
      spread_targets(corpus, options.target_family,
                     options.candidates == 0 ? 1 : options.candidates);

  std::vector<AttackResult> built;
  for (const dataset::Sample* target : pool) {
    built.push_back(entry_candidate(sample, *target, options.target_family));
  }
  const bool binary_level =
      !sample.binary.empty() && !pool.front()->binary.empty();
  std::vector<GuardPoint> points;
  if (binary_level) points = safe_guard_points(sample.binary);
  if (options.mid_points > 0 && !points.empty()) {
    // Interior boundaries, evenly spread, paired with the smallest
    // target (the least feature distortion per injected lobe).
    const std::size_t take = std::min(options.mid_points, points.size());
    for (std::size_t i = 0; i < take; ++i) {
      const std::size_t index =
          take == 1 ? 0 : i * (points.size() - 1) / (take - 1);
      built.push_back(mid_candidate(sample, *pool.front(),
                                    options.target_family, points[index]));
    }
  }
  if (binary_level) {
    // Trimmed payloads of the smallest target: progressively less
    // injected material, progressively less feature distortion. The
    // deep interior placements are the detector-evading candidates;
    // the entry placements keep a foot in classifier-flipping space.
    const std::size_t target_instructions =
        pool.front()->binary.size() / isa::kInstructionSize;
    for (const std::size_t trim : {1ULL, 2ULL, 4ULL, 8ULL}) {
      if (trim >= target_instructions) break;
      if (!points.empty()) {
        built.push_back(trim_mid_candidate(sample, *pool.front(),
                                           options.target_family,
                                           points.back(), trim));
        if (points.size() >= 2) {
          built.push_back(trim_mid_candidate(
              sample, *pool.front(), options.target_family,
              points[points.size() / 2], trim));
        }
      }
    }
    for (const std::size_t trim : {4ULL, 16ULL}) {
      if (trim >= target_instructions) break;
      built.push_back(trim_candidate(sample, *pool.front(),
                                     options.target_family, trim));
    }
  }
  if (include_chains && binary_level && pool.size() >= 2) {
    // Two chains: the two smallest targets, and (when available) the
    // full small/medium/large spread.
    std::vector<const dataset::Sample*> chain(pool.begin(),
                                              pool.begin() + 2);
    bool have_binaries = true;
    for (const dataset::Sample* t : chain) {
      have_binaries = have_binaries && !t->binary.empty();
    }
    if (have_binaries) {
      built.push_back(
          chain_candidate(sample, chain, options.target_family));
    }
  }

  std::vector<Candidate> candidates;
  candidates.reserve(built.size());
  QueryOracle oracle(system);
  for (std::size_t i = 0; i < built.size(); ++i) {
    Candidate c;
    c.scores = oracle.score(built[i].cfg, rng.child(i));
    c.result = std::move(built[i]);
    candidates.push_back(std::move(c));
  }
  queries += oracle.queries();
  return candidates;
}

/// Finishes the winning candidate into an AttackResult.
AttackResult finish(Candidate&& best, std::size_t queries) {
  AttackResult result = std::move(best.result);
  result.queries = queries;
  result.detail += ",score=" + std::to_string(best.scores.detector_score);
  return result;
}

std::string guided_params(const GuidedOptions& options) {
  return std::string("target=") +
         dataset::family_name(options.target_family) +
         ",candidates=" + std::to_string(options.candidates) +
         ",mid_points=" + std::to_string(options.mid_points);
}

}  // namespace

std::string ScoreGuidedAttacker::params() const {
  return guided_params(options_);
}

AttackResult ScoreGuidedAttacker::do_generate(
    const dataset::Sample& sample, std::span<const dataset::Sample> corpus,
    math::Rng& rng) const {
  std::size_t queries = 0;
  auto candidates =
      score_candidates(sample, corpus, options_, *system_,
                       /*include_chains=*/false, queries, rng);

  // Lexicographic: classified as the target family first, then lowest
  // detector score; among non-target candidates, the largest vote
  // margin toward the target breaks ties before the score does.
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const auto& a = candidates[i].scores;
    const auto& b = candidates[best].scores;
    const bool a_hit = a.predicted == options_.target_family;
    const bool b_hit = b.predicted == options_.target_family;
    bool better = false;
    if (a_hit != b_hit) {
      better = a_hit;
    } else if (a_hit) {
      better = a.detector_score < b.detector_score;
    } else {
      const auto margin_a = target_margin(a, options_.target_family);
      const auto margin_b = target_margin(b, options_.target_family);
      better = margin_a != margin_b
                   ? margin_a > margin_b
                   : a.detector_score < b.detector_score;
    }
    if (better) best = i;
  }
  return finish(std::move(candidates[best]), queries);
}

std::string AdaptiveAttacker::params() const {
  return guided_params(options_);
}

AttackResult AdaptiveAttacker::do_generate(
    const dataset::Sample& sample, std::span<const dataset::Sample> corpus,
    math::Rng& rng) const {
  std::size_t queries = 0;
  auto candidates =
      score_candidates(sample, corpus, options_, *system_,
                       /*include_chains=*/true, queries, rng);

  // The defense randomizes its walks, so one lucky score is not an
  // evasion. Re-score the surviving candidates under an independent
  // walk seed and keep the *worse* of the two scores — a candidate must
  // clear the threshold twice to count as alive, which is what makes
  // the evasion hold up against the verdict's own fresh walks.
  {
    QueryOracle oracle(*system_);
    std::size_t rescored = 0;
    for (std::size_t i = 0;
         i < candidates.size() && rescored < kRescoreLimit; ++i) {
      if (candidates[i].scores.adversarial) continue;
      ++rescored;
      const core::FeatureScores again = oracle.score(
          candidates[i].result.cfg, rng.child(candidates.size() + i));
      if (again.detector_score > candidates[i].scores.detector_score) {
        candidates[i].scores.detector_score = again.detector_score;
        candidates[i].scores.adversarial = again.adversarial;
      }
    }
    queries += oracle.queries();
  }

  // Detector-aware: surviving the AE detector (score <= Th) dominates
  // everything else; then target classification, margin, and finally
  // raw score.
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const auto& a = candidates[i].scores;
    const auto& b = candidates[best].scores;
    const bool a_alive = !a.adversarial;
    const bool b_alive = !b.adversarial;
    bool better = false;
    if (a_alive != b_alive) {
      better = a_alive;
    } else {
      const bool a_hit = a.predicted == options_.target_family;
      const bool b_hit = b.predicted == options_.target_family;
      if (a_hit != b_hit) {
        better = a_hit;
      } else if (a_alive) {
        // Both survive: maximize the margin below the threshold — the
        // verdict re-extracts with fresh walks, so headroom is what
        // keeps the evasion from flickering back over it.
        better = a.detector_score < b.detector_score;
      } else {
        const auto margin_a = target_margin(a, options_.target_family);
        const auto margin_b = target_margin(b, options_.target_family);
        better = margin_a != margin_b
                     ? margin_a > margin_b
                     : a.detector_score < b.detector_score;
      }
    }
    if (better) best = i;
  }
  return finish(std::move(candidates[best]), queries);
}

}  // namespace soteria::attack
