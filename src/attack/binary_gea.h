// Code-level attacks against CFG-based classifiers.
//
// * binary_gea: the GEA attack realized at the binary level — a guard
//   block branches to either the original program or the injected
//   target, with both rejoined at a shared halt. The guard condition is
//   constant-false for the injected side, so the original behaviour is
//   preserved (a *practical* AE per Section II-A: reachable in the CFG,
//   executable, undamaged). Unlike cfg::gea_combine (which merges
//   graphs), this produces an actual runnable image whose *extracted*
//   CFG has the shared-entry/shared-exit GEA shape.
//
//   The attack is parameterized across the spectrum of the GEA source
//   paper and the explainability-guided follow-up:
//     - binary_gea_multi injects several targets behind a guard chain
//       (one never-taken conditional branch per target);
//     - binary_gea_at plants the guard at an interior instruction
//       boundary, relocating every control-flow immediate that crosses
//       the insertion point so the original still executes bit-for-bit;
//       safe_guard_points enumerates the boundaries where a guard is
//       semantically transparent, together with a register whose
//       clobbering is provably invisible there (never written in the
//       image, or locally dead) — deep boundaries matter because the
//       further from the entry the lobe attaches, the less the labeling
//       ranks and walk statistics move.
//
// * append_attack: the binary-level *impractical* AE — benign bytes
//   appended past the halt. It changes byte-level representations
//   (e.g. the image baseline's input) while being invisible to CFG
//   features, which is the paper's motivating contrast.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "math/rng.h"

namespace soteria::attack {

/// Result of a binary-level GEA combination.
struct BinaryGeaResult {
  std::vector<std::uint8_t> image;  ///< runnable combined binary
  std::size_t guard_instructions = 0;   ///< guard size (instructions)
  std::size_t guard_index = 0;          ///< instruction index of the guard
  std::size_t original_offset = 0;      ///< instruction index of original
  std::size_t target_offset = 0;        ///< instruction index of target
};

/// Result of a multi-injection combination.
struct MultiBinaryGeaResult {
  std::vector<std::uint8_t> image;      ///< runnable combined binary
  std::size_t guard_instructions = 0;   ///< prologue size (3 per target)
  std::size_t original_offset = 0;      ///< instruction index of original
  std::vector<std::size_t> target_offsets;  ///< one per injected target
};

/// Combines `original` with `target` at the code level. Control flow:
/// a guard compares a register against an impossible constant and
/// conditionally jumps into the (relocated) target; fall-through enters
/// the (relocated) original. Each program's halts are preserved, so
/// whichever side runs terminates the process exactly like the original
/// did. Throws core::Error{kInvalidArgument} for empty or ragged images
/// and core::Error{kOutOfRange} if the combined image exceeds branch
/// reach.
[[nodiscard]] BinaryGeaResult binary_gea(
    std::span<const std::uint8_t> original,
    std::span<const std::uint8_t> target);

/// Plants the guard at instruction boundary `insert_instruction` of
/// `original` (0 = entry, reproducing binary_gea's prologue placement)
/// instead of the entry. Every control-flow immediate of the original
/// whose source or target crosses the boundary is relocated, and
/// branches *to* the boundary enter the (transparent) guard first, so
/// the original's execution is preserved whenever the boundary is safe
/// (see safe_guard_points, which also chooses `guard_register`). The
/// injected target is appended past the original's end. Throws
/// core::Error{kInvalidArgument} for empty or ragged images or an
/// invalid register and core::Error{kOutOfRange} for a boundary at or
/// past the original's end or a relocation that exceeds branch reach.
[[nodiscard]] BinaryGeaResult binary_gea_at(
    std::span<const std::uint8_t> original,
    std::span<const std::uint8_t> target, std::size_t insert_instruction,
    std::uint8_t guard_register = 15);

/// Injects every image of `targets` behind a guard chain at the entry:
/// guard i's never-taken branch jumps into target i, and fall-through
/// reaches guard i+1 (finally the original). Throws
/// core::Error{kInvalidArgument} for empty/ragged inputs or an empty
/// target list and core::Error{kOutOfRange} when any branch exceeds
/// reach.
[[nodiscard]] MultiBinaryGeaResult binary_gea_multi(
    std::span<const std::uint8_t> original,
    std::span<const std::vector<std::uint8_t>> targets);

/// A provably transparent interior guard placement: the instruction
/// boundary plus the register the guard may clobber there.
struct GuardPoint {
  std::size_t boundary = 0;        ///< instruction index (see binary_gea_at)
  std::uint8_t guard_register = 0; ///< register the guard writes
};

/// Interior instruction boundaries of `image` where a guard insertion
/// is semantically transparent, each paired with a usable guard
/// register. A boundary qualifies when (1) the preceding instruction
/// falls through into it, (2) the comparison flags are dead (the
/// fall-through path reaches a fresh cmp or a halt before any branch
/// that could read them), and (3) some register's clobbering is
/// invisible — it is never written anywhere in the image (so it always
/// holds the VM's initial 0, which is exactly what the guard writes),
/// or the straight-line code after the boundary writes it before any
/// read, call, branch, or syscall (flows that enter the window from a
/// branch target never passed the guard, so they are unaffected).
/// Boundary 0 (the entry) is always safe and not listed; points are in
/// ascending boundary order. Throws core::Error{kInvalidArgument} for
/// an empty or ragged image.
[[nodiscard]] std::vector<GuardPoint> safe_guard_points(
    std::span<const std::uint8_t> image);

/// Appends `byte_count` benign-looking filler instructions after the
/// image's end (never reachable). Changes the byte stream, not the CFG.
[[nodiscard]] std::vector<std::uint8_t> append_attack(
    std::span<const std::uint8_t> image, std::size_t byte_count,
    math::Rng& rng);

}  // namespace soteria::attack
