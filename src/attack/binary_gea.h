// Code-level attacks against CFG-based classifiers.
//
// * binary_gea: the GEA attack realized at the binary level — a guard
//   block branches to either the original program or the injected
//   target, with both rejoined at a shared halt. The guard condition is
//   constant-false for the injected side, so the original behaviour is
//   preserved (a *practical* AE per Section II-A: reachable in the CFG,
//   executable, undamaged). Unlike cfg::gea_combine (which merges
//   graphs), this produces an actual runnable image whose *extracted*
//   CFG has the shared-entry/shared-exit GEA shape.
//
// * append_attack: the binary-level *impractical* AE — benign bytes
//   appended past the halt. It changes byte-level representations
//   (e.g. the image baseline's input) while being invisible to CFG
//   features, which is the paper's motivating contrast.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "math/rng.h"

namespace soteria::attack {

/// Result of a binary-level GEA combination.
struct BinaryGeaResult {
  std::vector<std::uint8_t> image;  ///< runnable combined binary
  std::size_t guard_instructions = 0;   ///< prologue size (instructions)
  std::size_t original_offset = 0;      ///< instruction index of original
  std::size_t target_offset = 0;        ///< instruction index of target
};

/// Combines `original` with `target` at the code level. Control flow:
/// a guard compares a register against an impossible constant and
/// conditionally jumps into the (relocated) target; fall-through enters
/// the (relocated) original. Each program's halts are preserved, so
/// whichever side runs terminates the process exactly like the original
/// did. Throws std::invalid_argument for empty or ragged images and
/// std::out_of_range if the combined image exceeds branch reach.
[[nodiscard]] BinaryGeaResult binary_gea(
    std::span<const std::uint8_t> original,
    std::span<const std::uint8_t> target);

/// Appends `byte_count` benign-looking filler instructions after the
/// image's end (never reachable). Changes the byte stream, not the CFG.
[[nodiscard]] std::vector<std::uint8_t> append_attack(
    std::span<const std::uint8_t> image, std::size_t byte_count,
    math::Rng& rng);

}  // namespace soteria::attack
