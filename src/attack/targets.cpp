#include "attack/targets.h"

#include <algorithm>
#include <string>

#include "soteria/error.h"

namespace soteria::attack {

std::vector<const dataset::Sample*> family_members(
    std::span<const dataset::Sample> corpus, dataset::Family family) {
  std::vector<const dataset::Sample*> members;
  for (const dataset::Sample& s : corpus) {
    if (s.family == family) members.push_back(&s);
  }
  std::sort(members.begin(), members.end(),
            [](const dataset::Sample* a, const dataset::Sample* b) {
              if (a->cfg.node_count() != b->cfg.node_count()) {
                return a->cfg.node_count() < b->cfg.node_count();
              }
              return a->id < b->id;
            });
  return members;
}

namespace {

std::vector<const dataset::Sample*> require_members(
    std::span<const dataset::Sample> corpus, dataset::Family family,
    const char* what) {
  auto members = family_members(corpus, family);
  if (members.empty()) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      std::string(what) + ": corpus has no samples of " +
                          dataset::family_name(family));
  }
  return members;
}

}  // namespace

const dataset::Sample& select_target(
    std::span<const dataset::Sample> corpus, dataset::Family family,
    dataset::TargetSize size) {
  const auto members = require_members(corpus, family, "select_target");
  switch (size) {
    case dataset::TargetSize::kSmall: return *members.front();
    case dataset::TargetSize::kMedium: return *members[members.size() / 2];
    case dataset::TargetSize::kLarge: return *members.back();
  }
  return *members.front();
}

std::vector<const dataset::Sample*> spread_targets(
    std::span<const dataset::Sample> corpus, dataset::Family family,
    std::size_t count) {
  const auto members = require_members(corpus, family, "spread_targets");
  if (count == 0 || members.size() <= count) return members;
  std::vector<const dataset::Sample*> picked;
  picked.reserve(count);
  // Evenly spaced indices over [0, size-1], endpoints included.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t index =
        count == 1 ? 0 : i * (members.size() - 1) / (count - 1);
    picked.push_back(members[index]);
  }
  picked.erase(std::unique(picked.begin(), picked.end()), picked.end());
  return picked;
}

}  // namespace soteria::attack
