// Obfuscation transforms (paper Section V, Limitations).
//
// The paper names binary obfuscation as Soteria's main blind spot: an
// incomplete CFG yields an incomplete feature representation. These
// transforms let the limitation be *measured* instead of asserted:
//
// * opaque_predicates — wraps blocks in always-true conditional jumps
//   (semantically a no-op, structurally new branches), modelling
//   function-preserving control-flow obfuscation;
// * indirect_branches — replaces a fraction of direct jumps with
//   opaque data words the linear-sweep extractor cannot resolve,
//   yielding the paper's "incomplete CFG" (missing edges).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "math/rng.h"

namespace soteria::attack {

/// Inserts `count` opaque predicates at random instruction boundaries:
///   cmpi r14, <impossible>; jnz skip; <junk op>; skip:
/// The junk op is unreachable at runtime (r14 is never the sentinel) —
/// wait: jnz with a non-equal compare *always* branches, so execution
/// skips the junk, while the CFG gains a diamond per predicate.
/// Throws core::Error{kInvalidArgument} on an empty/ragged image.
[[nodiscard]] std::vector<std::uint8_t> opaque_predicates(
    std::span<const std::uint8_t> image, std::size_t count,
    math::Rng& rng);

/// Replaces roughly `fraction` of unconditional jumps with an invalid
/// opcode word (standing in for an indirect, statically unresolvable
/// branch). The extractor treats the word as inert data, so every
/// replaced jump removes an edge — an incomplete CFG. Returns the
/// obfuscated image; `fraction` outside [0, 1] throws.
[[nodiscard]] std::vector<std::uint8_t> indirect_branches(
    std::span<const std::uint8_t> image, double fraction, math::Rng& rng);

}  // namespace soteria::attack
