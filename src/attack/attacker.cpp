#include "attack/attacker.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace soteria::attack {

AttackResult Attacker::generate(const dataset::Sample& sample,
                                std::span<const dataset::Sample> corpus,
                                math::Rng& rng) const {
  const obs::Span span("attack.generate");
  AttackResult result = do_generate(sample, corpus, rng);
  result.original_family = sample.family;
  // attack.queries is counted at the oracle, one tick per query.
  obs::registry().counter_add("attack.generated");
  return result;
}

}  // namespace soteria::attack
