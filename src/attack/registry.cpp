#include "attack/registry.h"

#include <cctype>
#include <charconv>
#include <string>
#include <utility>
#include <vector>

#include "attack/gea_attacker.h"
#include "attack/guided.h"
#include "soteria/error.h"

namespace soteria::attack {

namespace {

[[noreturn]] void bad(const std::string& message) {
  throw core::Error(core::ErrorCode::kInvalidArgument,
                    "make_attacker: " + message);
}

/// Splits "k1=v1,k2=v2" into pairs. Empty input yields no pairs.
std::vector<std::pair<std::string_view, std::string_view>> parse_params(
    std::string_view params) {
  std::vector<std::pair<std::string_view, std::string_view>> pairs;
  while (!params.empty()) {
    const std::size_t comma = params.find(',');
    const std::string_view item = params.substr(0, comma);
    params = comma == std::string_view::npos
                 ? std::string_view{}
                 : params.substr(comma + 1);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      bad("malformed param '" + std::string(item) +
          "' (expected key=value)");
    }
    pairs.emplace_back(item.substr(0, eq), item.substr(eq + 1));
  }
  return pairs;
}

dataset::Family parse_family(std::string_view value) {
  for (dataset::Family f : dataset::all_families()) {
    std::string name = dataset::family_name(f);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    if (value == name) return f;
  }
  bad("unknown family '" + std::string(value) + "'");
}

dataset::TargetSize parse_size(std::string_view value) {
  if (value == "small") return dataset::TargetSize::kSmall;
  if (value == "medium") return dataset::TargetSize::kMedium;
  if (value == "large") return dataset::TargetSize::kLarge;
  bad("unknown size '" + std::string(value) + "'");
}

cfg::InsertionPoint parse_insert(std::string_view value) {
  if (value == "entry") return cfg::InsertionPoint::kEntryGuard;
  if (value == "mid") return cfg::InsertionPoint::kMidBlock;
  bad("unknown insertion point '" + std::string(value) + "'");
}

std::size_t parse_count(std::string_view key, std::string_view value) {
  std::size_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    bad("param " + std::string(key) + "='" + std::string(value) +
        "' is not a count");
  }
  return out;
}

std::unique_ptr<Attacker> make_gea(std::string_view params) {
  GeaAttackerOptions options;
  for (const auto& [key, value] : parse_params(params)) {
    if (key == "target") {
      options.target_family = parse_family(value);
    } else if (key == "size") {
      options.target_size = parse_size(value);
    } else if (key == "insert") {
      options.insertion = parse_insert(value);
    } else if (key == "injections") {
      options.injections = parse_count(key, value);
    } else {
      bad("unknown gea param '" + std::string(key) + "'");
    }
  }
  return std::make_unique<GeaAttacker>(options);
}

GuidedOptions parse_guided(std::string_view name,
                           std::string_view params) {
  GuidedOptions options;
  for (const auto& [key, value] : parse_params(params)) {
    if (key == "target") {
      options.target_family = parse_family(value);
    } else if (key == "candidates") {
      options.candidates = parse_count(key, value);
    } else if (key == "mid_points") {
      options.mid_points = parse_count(key, value);
    } else {
      bad("unknown " + std::string(name) + " param '" + std::string(key) +
          "'");
    }
  }
  return options;
}

}  // namespace

std::vector<std::string_view> attacker_names() {
  return {"gea", "score", "adaptive"};
}

std::unique_ptr<Attacker> make_attacker(std::string_view name,
                                        std::string_view params,
                                        const core::SoteriaSystem* system) {
  if (name == "gea") return make_gea(params);
  if (name == "score" || name == "adaptive") {
    if (system == nullptr) {
      bad("'" + std::string(name) +
          "' is oracle-guided and needs a fitted system");
    }
    const GuidedOptions options = parse_guided(name, params);
    if (name == "score") {
      return std::make_unique<ScoreGuidedAttacker>(*system, options);
    }
    return std::make_unique<AdaptiveAttacker>(*system, options);
  }
  bad("unknown attacker '" + std::string(name) + "'");
}

}  // namespace soteria::attack
