// Attacker registry: name + "key=value" params -> a ready Attacker.
//
// The seam the CLI (`soteria_cli attack --attack <name>`, `eval-matrix`)
// and the robustness matrix build strategies through, so attack configs
// are plain strings that can live in reports and test fixtures.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "attack/attacker.h"
#include "soteria/system.h"

namespace soteria::attack {

/// The registered strategy names ("gea", "score", "adaptive").
[[nodiscard]] std::vector<std::string_view> attacker_names();

/// Creates an attacker. `params` is a comma-separated "key=value" list:
///   common:  target=benign|gafgyt|mirai|tsunami
///   gea:     size=small|medium|large, insert=entry|mid, injections=N
///   guided:  candidates=N, mid_points=N
/// Guided strategies ("score", "adaptive") require `system` — the
/// defense they query — and must not outlive it; "gea" ignores it.
/// Throws core::Error{kInvalidArgument} for an unknown name, malformed
/// or unknown params, or a missing system.
[[nodiscard]] std::unique_ptr<Attacker> make_attacker(
    std::string_view name, std::string_view params,
    const core::SoteriaSystem* system);

}  // namespace soteria::attack
