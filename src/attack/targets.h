// Injection-target selection for attackers.
//
// dataset::select_targets picks graph-level GEA targets (CFG only);
// attackers additionally need the target's *binary* so the AE stays
// executable, and need deterministic by-bucket selection from whatever
// corpus the attack runs against. These helpers select whole Samples.
#pragma once

#include <span>
#include <vector>

#include "dataset/adversarial.h"
#include "dataset/sample.h"

namespace soteria::attack {

/// The members of `family` in `corpus`, sorted by ascending CFG node
/// count (ties by sample id) — the ordering every bucket selection
/// derives from. Pointers into `corpus`; empty if the family is absent.
[[nodiscard]] std::vector<const dataset::Sample*> family_members(
    std::span<const dataset::Sample> corpus, dataset::Family family);

/// The `size`-bucket target of `family`: smallest / median / largest
/// member by node count (paper Section IV-A's Small/Medium/Large).
/// Throws core::Error{kInvalidArgument} when the family has no members.
[[nodiscard]] const dataset::Sample& select_target(
    std::span<const dataset::Sample> corpus, dataset::Family family,
    dataset::TargetSize size);

/// Up to `count` members of `family` spread evenly across the sorted
/// size range (always including the extremes when count >= 2) — the
/// candidate pool guided attackers score. Throws
/// core::Error{kInvalidArgument} when the family has no members.
[[nodiscard]] std::vector<const dataset::Sample*> spread_targets(
    std::span<const dataset::Sample> corpus, dataset::Family family,
    std::size_t count);

}  // namespace soteria::attack
