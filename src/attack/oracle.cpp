#include "attack/oracle.h"

#include "obs/metrics.h"

namespace soteria::attack {

core::FeatureScores QueryOracle::score(const cfg::Cfg& cfg,
                                       const math::Rng& fresh_rng) {
  ++queries_;
  obs::registry().counter_add("attack.queries");
  math::Rng rng = fresh_rng;
  return system_->score_features(system_->extract(cfg, rng));
}

double QueryOracle::threshold() const noexcept {
  return system_->detector().threshold();
}

}  // namespace soteria::attack
