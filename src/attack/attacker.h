// Common interface of the attack framework.
//
// Every attack strategy — the parameterized GEA of the source paper,
// the score-guided gray-box variant, the detector-aware adaptive
// variant — is an `Attacker`: given a victim sample and a corpus to
// draw injection targets from, it produces one adversarial example.
// The base class owns the cross-cutting concerns (observability spans
// and counters, result bookkeeping) so strategies only implement
// do_generate(). Attackers are stateless between calls and safe to
// share across threads as long as each call gets its own Rng — the
// property the eval matrix relies on to parallelize over cells.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cfg/cfg.h"
#include "dataset/sample.h"
#include "math/rng.h"

namespace soteria::attack {

/// One generated adversarial example.
struct AttackResult {
  /// The AE's CFG — always populated; what the defense analyzes.
  cfg::Cfg cfg;
  /// The AE's runnable image. Populated whenever the victim (and the
  /// chosen injection targets) carry binaries, in which case `cfg` is
  /// re-extracted from these bytes so graph and code never diverge.
  /// Empty for graph-level-only attacks.
  std::vector<std::uint8_t> binary;
  dataset::Family original_family = dataset::Family::kBenign;
  dataset::Family target_family = dataset::Family::kBenign;
  /// Oracle queries this AE cost (0 for query-free attacks).
  std::size_t queries = 0;
  /// Human-readable description of the concrete choice made
  /// (e.g. "target id=17 insert=mid@4").
  std::string detail;
};

/// Abstract attack strategy. Implementations must be const-callable
/// and thread-compatible: generate() may run concurrently from many
/// threads provided each call owns its Rng.
class Attacker {
 public:
  virtual ~Attacker() = default;

  /// Registry name ("gea", "score", "adaptive").
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// The configured parameters, rendered "key=value,key=value" — the
  /// same syntax make_attacker parses.
  [[nodiscard]] virtual std::string params() const = 0;

  /// Generates one AE for `sample`, drawing injection material from
  /// `corpus` and all randomness from `rng`. Instruments the call
  /// (t/attack.generate span, attack.generated counter) around the
  /// strategy's do_generate. Throws core::Error{kInvalidArgument} when
  /// the corpus cannot supply the configured target family.
  [[nodiscard]] AttackResult generate(
      const dataset::Sample& sample,
      std::span<const dataset::Sample> corpus, math::Rng& rng) const;

 protected:
  [[nodiscard]] virtual AttackResult do_generate(
      const dataset::Sample& sample,
      std::span<const dataset::Sample> corpus, math::Rng& rng) const = 0;
};

}  // namespace soteria::attack
