// Oracle-guided attackers (gray-box threat model).
//
// Both strategies build a pool of candidate GEA injections for the
// victim — different target samples, insertion points, and (adaptive)
// multi-injection chains — score every candidate through a counted
// QueryOracle against the *fitted* defense, and keep the best one:
//
// * ScoreGuidedAttacker ("score") optimizes the classifier objective:
//   among candidates the classifier assigns to the target family, it
//   picks the one with the lowest detector score (falling back to the
//   largest vote margin toward the target when none classify as it).
//
// * AdaptiveAttacker ("adaptive") is detector-aware: it knows the AE
//   detector exists and optimizes *past its threshold* — candidates
//   scoring under Th are preferred unconditionally (that is the
//   survival condition), then target classification, then margin. Its
//   candidate pool additionally includes guard-chain multi-injections.
//
// Determinism: every candidate is scored with a per-index child of the
// caller's generator, so a fixed (victim, corpus, rng seed) triple
// yields a bit-identical AE and query count at any thread count.
#pragma once

#include <string>
#include <string_view>

#include "attack/attacker.h"
#include "dataset/adversarial.h"
#include "soteria/system.h"

namespace soteria::attack {

/// Parameters shared by the guided attackers.
struct GuidedOptions {
  dataset::Family target_family = dataset::Family::kBenign;
  /// Size of the injection-target candidate pool (evenly spread over
  /// the family's size range; see spread_targets).
  std::size_t candidates = 6;
  /// Interior insertion boundaries tried per victim (binary-level
  /// victims only; 0 disables mid-block candidates).
  std::size_t mid_points = 2;
};

class ScoreGuidedAttacker final : public Attacker {
 public:
  /// `system` is the attacked defense; it must outlive the attacker.
  ScoreGuidedAttacker(const core::SoteriaSystem& system,
                      const GuidedOptions& options)
      : system_(&system), options_(options) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "score";
  }
  [[nodiscard]] std::string params() const override;

 protected:
  [[nodiscard]] AttackResult do_generate(
      const dataset::Sample& sample,
      std::span<const dataset::Sample> corpus,
      math::Rng& rng) const override;

 private:
  const core::SoteriaSystem* system_;
  GuidedOptions options_;
};

class AdaptiveAttacker final : public Attacker {
 public:
  /// `system` is the attacked defense (threshold included); it must
  /// outlive the attacker.
  AdaptiveAttacker(const core::SoteriaSystem& system,
                   const GuidedOptions& options)
      : system_(&system), options_(options) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "adaptive";
  }
  [[nodiscard]] std::string params() const override;

 protected:
  [[nodiscard]] AttackResult do_generate(
      const dataset::Sample& sample,
      std::span<const dataset::Sample> corpus,
      math::Rng& rng) const override;

 private:
  const core::SoteriaSystem* system_;
  GuidedOptions options_;
};

}  // namespace soteria::attack
