#include "attack/obfuscation.h"

#include <string>

#include "isa/isa.h"
#include "soteria/error.h"

namespace soteria::attack {

namespace {

constexpr std::uint8_t kOpaqueRegister = 14;
constexpr std::int16_t kImpossibleSentinel = 0x7ABC;
constexpr std::uint8_t kInvalidOpcode = 0xEE;  // decodes as data

void require_image(std::span<const std::uint8_t> image, const char* what) {
  if (image.empty() || image.size() % isa::kInstructionSize != 0) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      std::string(what) + ": empty or ragged image");
  }
}

}  // namespace

std::vector<std::uint8_t> opaque_predicates(
    std::span<const std::uint8_t> image, std::size_t count,
    math::Rng& rng) {
  require_image(image, "opaque_predicates");
  auto program = isa::disassemble(image);

  // Inserting instructions would break every relative branch, so the
  // predicates are appended as a prologue trampoline instead: the new
  // entry runs `count` opaque diamonds and then jumps to the original
  // entry. All original offsets stay intact; the CFG gains 2 blocks per
  // predicate plus the trampoline edge.
  std::vector<isa::Instruction> prologue;
  for (std::size_t i = 0; i < count; ++i) {
    prologue.push_back(isa::Instruction{
        isa::Opcode::kMovImm, kOpaqueRegister,
        static_cast<std::int16_t>(rng.uniform_int(0, 255))});
    prologue.push_back(isa::Instruction{isa::Opcode::kCmpImm,
                                        kOpaqueRegister,
                                        kImpossibleSentinel});
    // r14 != sentinel, so jnz always branches over the junk op.
    prologue.push_back(isa::Instruction{isa::Opcode::kJnz, 0, 1});
    prologue.push_back(isa::Instruction{
        isa::Opcode::kXor,
        static_cast<std::uint8_t>(rng.index(isa::kRegisterCount)),
        static_cast<std::int16_t>(rng.uniform_int(0, 255))});
  }
  // Jump from the end of the prologue to the original entry, which now
  // lives right after the prologue: offset 0 (fall-through) would blur
  // the block boundary, so an explicit jmp keeps the structure obvious.
  prologue.push_back(isa::Instruction{isa::Opcode::kJmp, 0, 0});

  std::vector<std::uint8_t> out;
  out.reserve((prologue.size() + program.size()) * isa::kInstructionSize);
  for (const auto& insn : prologue) isa::encode_to(insn, out);
  out.insert(out.end(), image.begin(), image.end());
  return out;
}

std::vector<std::uint8_t> indirect_branches(
    std::span<const std::uint8_t> image, double fraction, math::Rng& rng) {
  require_image(image, "indirect_branches");
  if (fraction < 0.0 || fraction > 1.0) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "indirect_branches: fraction outside [0, 1]");
  }
  std::vector<std::uint8_t> out(image.begin(), image.end());
  for (std::size_t off = 0; off < out.size();
       off += isa::kInstructionSize) {
    if (out[off] == static_cast<std::uint8_t>(isa::Opcode::kJmp) &&
        rng.bernoulli(fraction)) {
      // Stand-in for "jmp [reg]": an opaque word the linear sweep
      // cannot resolve. Preserve the original offset bytes as payload.
      out[off] = kInvalidOpcode;
    }
  }
  return out;
}

}  // namespace soteria::attack
