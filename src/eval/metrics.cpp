#include "eval/metrics.h"

#include <stdexcept>

namespace soteria::eval {

ConfusionMatrix::ConfusionMatrix(std::size_t classes)
    : classes_(classes), counts_(classes * classes, 0) {
  if (classes == 0) {
    throw std::invalid_argument("ConfusionMatrix: zero classes");
  }
}

void ConfusionMatrix::record(std::size_t truth, std::size_t prediction) {
  if (truth >= classes_ || prediction >= classes_) {
    throw std::out_of_range("ConfusionMatrix::record: label out of range");
  }
  ++counts_[truth * classes_ + prediction];
  ++total_;
}

std::size_t ConfusionMatrix::count(std::size_t truth,
                                   std::size_t prediction) const {
  if (truth >= classes_ || prediction >= classes_) {
    throw std::out_of_range("ConfusionMatrix::count: label out of range");
  }
  return counts_[truth * classes_ + prediction];
}

std::size_t ConfusionMatrix::class_total(std::size_t truth) const {
  if (truth >= classes_) {
    throw std::out_of_range("ConfusionMatrix::class_total: label out of "
                            "range");
  }
  std::size_t sum = 0;
  for (std::size_t p = 0; p < classes_; ++p) {
    sum += counts_[truth * classes_ + p];
  }
  return sum;
}

double ConfusionMatrix::class_accuracy(std::size_t truth) const {
  const std::size_t total = class_total(truth);
  if (total == 0) return 0.0;
  return static_cast<double>(count(truth, truth)) /
         static_cast<double>(total);
}

double ConfusionMatrix::overall_accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t trace = 0;
  for (std::size_t c = 0; c < classes_; ++c) {
    trace += counts_[c * classes_ + c];
  }
  return static_cast<double>(trace) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(std::size_t c) const {
  if (c >= classes_) {
    throw std::out_of_range("ConfusionMatrix::precision: label out of "
                            "range");
  }
  std::size_t predicted = 0;
  for (std::size_t t = 0; t < classes_; ++t) {
    predicted += counts_[t * classes_ + c];
  }
  if (predicted == 0) return 0.0;
  return static_cast<double>(count(c, c)) / static_cast<double>(predicted);
}

double ConfusionMatrix::recall(std::size_t c) const {
  return class_accuracy(c);
}

double ConfusionMatrix::f1(std::size_t c) const {
  const double p = precision(c);
  const double r = recall(c);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

ConfusionMatrix confusion_from(std::span<const std::size_t> truths,
                               std::span<const std::size_t> predictions,
                               std::size_t classes) {
  if (truths.size() != predictions.size()) {
    throw std::invalid_argument("confusion_from: length mismatch");
  }
  ConfusionMatrix cm(classes);
  for (std::size_t i = 0; i < truths.size(); ++i) {
    cm.record(truths[i], predictions[i]);
  }
  return cm;
}

double DetectionStats::detection_rate() const noexcept {
  const std::size_t aes = true_positives + false_negatives;
  if (aes == 0) return 0.0;
  return static_cast<double>(true_positives) / static_cast<double>(aes);
}

double DetectionStats::false_positive_rate() const noexcept {
  const std::size_t clean = true_negatives + false_positives;
  if (clean == 0) return 0.0;
  return static_cast<double>(false_positives) / static_cast<double>(clean);
}

double DetectionStats::accuracy() const noexcept {
  const std::size_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(true_positives + true_negatives) /
         static_cast<double>(n);
}

}  // namespace soteria::eval
