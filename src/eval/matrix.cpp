#include "eval/matrix.h"

#include <algorithm>
#include <sstream>

#include "attack/registry.h"
#include "eval/table.h"
#include "math/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "soteria/error.h"

namespace soteria::eval {

namespace {

void append_json_string(std::string& out, const std::string& value) {
  out.push_back('"');
  for (char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

std::string format_rate(double value) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(6);
  out << value;
  return out.str();
}

/// Runs one (attack, defense) cell. Deterministic for a fixed
/// (specs, seed, cell rng): the attacker is constructed inside the cell
/// so guided strategies bind to this cell's defense variant.
MatrixCell run_cell(const AttackSpec& attack_spec,
                    const DefenseSpec& defense_spec,
                    const core::SoteriaSystem& defense,
                    std::span<const dataset::Sample> victims,
                    std::span<const dataset::Sample> corpus,
                    const math::Rng& cell_rng) {
  const obs::Span span("eval.cell");
  MatrixCell cell;
  cell.attack = attack_spec.label;
  cell.defense = defense_spec.label;

  const auto attacker = soteria::attack::make_attacker(
      attack_spec.name, attack_spec.params, &defense);

  for (std::size_t j = 0; j < victims.size(); ++j) {
    soteria::attack::AttackResult result;
    math::Rng generate_rng = cell_rng.child(2 * j);
    try {
      result = attacker->generate(victims[j], corpus, generate_rng);
    } catch (const core::Error&) {
      ++cell.failures;
      continue;
    }
    if (victims[j].family == result.target_family) {
      // Vacuous attack (the victim already is the target class); the
      // generation cost is real, the verdict would be meaningless.
      ++cell.skipped;
      cell.queries += result.queries;
      continue;
    }
    math::Rng analyze_rng = cell_rng.child(2 * j + 1);
    const core::Verdict verdict = defense.analyze(result.cfg, analyze_rng);

    ++cell.victims;
    cell.queries += result.queries;
    if (verdict.adversarial) {
      ++cell.detected;
    } else {
      ++cell.evaded;
      if (verdict.predicted == result.target_family) ++cell.target_hits;
    }
    if (verdict.predicted != victims[j].family) ++cell.family_flips;
  }
  obs::registry().counter_add("eval.matrix.cells");
  return cell;
}

}  // namespace

std::string MatrixReport::to_json() const {
  std::string out = "{\"version\":1,\"seed\":" + std::to_string(seed) +
                    ",\"victims_per_cell\":" +
                    std::to_string(victims_per_cell) + ",\"attacks\":[";
  for (std::size_t i = 0; i < attacks.size(); ++i) {
    if (i > 0) out.push_back(',');
    append_json_string(out, attacks[i]);
  }
  out += "],\"defenses\":[";
  for (std::size_t i = 0; i < defenses.size(); ++i) {
    if (i > 0) out.push_back(',');
    append_json_string(out, defenses[i]);
  }
  out += "],\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const MatrixCell& c = cells[i];
    if (i > 0) out.push_back(',');
    out += "{\"attack\":";
    append_json_string(out, c.attack);
    out += ",\"defense\":";
    append_json_string(out, c.defense);
    out += ",\"victims\":" + std::to_string(c.victims);
    out += ",\"skipped\":" + std::to_string(c.skipped);
    out += ",\"failures\":" + std::to_string(c.failures);
    out += ",\"detected\":" + std::to_string(c.detected);
    out += ",\"evaded\":" + std::to_string(c.evaded);
    out += ",\"family_flips\":" + std::to_string(c.family_flips);
    out += ",\"target_hits\":" + std::to_string(c.target_hits);
    out += ",\"queries\":" + std::to_string(c.queries);
    out += ",\"detection_rate\":" + format_rate(c.detection_rate());
    out += ",\"evasion_rate\":" + format_rate(c.evasion_rate());
    out += ",\"flip_rate\":" + format_rate(c.flip_rate());
    out.push_back('}');
  }
  out += "]}";
  return out;
}

std::string MatrixReport::to_text() const {
  Table table({"attack", "defense", "victims", "det%", "evade%", "flip%",
               "queries"});
  for (const MatrixCell& c : cells) {
    table.add_row({c.attack, c.defense, std::to_string(c.victims),
                   format_percent(c.detection_rate()),
                   format_percent(c.evasion_rate()),
                   format_percent(c.flip_rate()),
                   std::to_string(c.queries)});
  }
  return table.render("Robustness matrix (seed " + std::to_string(seed) +
                      ", " + std::to_string(victims_per_cell) +
                      " victims/cell)");
}

MatrixReport run_matrix(const core::SoteriaSystem& base,
                        std::span<const dataset::Sample> victims,
                        std::span<const dataset::Sample> corpus,
                        std::span<const AttackSpec> attacks,
                        std::span<const DefenseSpec> defenses,
                        const MatrixOptions& options) {
  if (attacks.empty() || defenses.empty()) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "run_matrix: need at least one attack and one "
                      "defense spec");
  }
  if (victims.empty()) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "run_matrix: no victims");
  }

  const std::size_t victim_count =
      options.victims_per_cell == 0
          ? victims.size()
          : std::min(options.victims_per_cell, victims.size());
  const auto cell_victims = victims.first(victim_count);

  // One defense variant per spec, cloned through the system's own
  // (bit-exact) serialization so the caller's system is never mutated.
  // A frozen base is re-frozen per variant — the snapshot bakes in the
  // threshold the alpha change re-derives.
  std::vector<core::SoteriaSystem> variants;
  variants.reserve(defenses.size());
  for (const DefenseSpec& spec : defenses) {
    std::stringstream buffer;
    base.save(buffer);
    core::SoteriaSystem variant = core::SoteriaSystem::load(buffer);
    variant.detector().set_alpha(spec.alpha);
    if (base.frozen() != nullptr) variant.freeze();
    variants.push_back(std::move(variant));
  }

  MatrixReport report;
  report.seed = options.seed;
  report.victims_per_cell = victim_count;
  for (const AttackSpec& a : attacks) report.attacks.push_back(a.label);
  for (const DefenseSpec& d : defenses) {
    report.defenses.push_back(d.label);
  }

  const math::Rng root(options.seed);
  const std::size_t total = attacks.size() * defenses.size();
  report.cells.resize(total);
  runtime::parallel_for(options.num_threads, total, [&](std::size_t i) {
    const std::size_t a = i / defenses.size();
    const std::size_t d = i % defenses.size();
    report.cells[i] = run_cell(attacks[a], defenses[d], variants[d],
                               cell_victims, corpus, root.child(i));
  });
  return report;
}

}  // namespace soteria::eval
