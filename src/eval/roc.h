// ROC analysis for score-based detectors: threshold sweeps and AUC.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace soteria::eval {

/// One point on the ROC curve.
struct RocPoint {
  double threshold = 0.0;
  double true_positive_rate = 0.0;   ///< positives scoring > threshold
  double false_positive_rate = 0.0;  ///< negatives scoring > threshold
};

/// Sweeps `steps`+1 evenly spaced thresholds across the combined score
/// range. `positive_scores` are the anomaly/attack scores (higher =
/// more anomalous), `negative_scores` the clean ones. Throws
/// std::invalid_argument if either set is empty or steps == 0.
[[nodiscard]] std::vector<RocPoint> roc_curve(
    std::span<const double> positive_scores,
    std::span<const double> negative_scores, std::size_t steps = 50);

/// Exact AUC by rank comparison (the probability that a random positive
/// outscores a random negative; ties count half). Throws
/// std::invalid_argument if either set is empty.
[[nodiscard]] double auc(std::span<const double> positive_scores,
                         std::span<const double> negative_scores);

/// The threshold whose TPR/FPR point maximizes Youden's J (TPR - FPR) —
/// a standard blind operating-point rule. Throws on empty inputs.
[[nodiscard]] double best_youden_threshold(
    std::span<const double> positive_scores,
    std::span<const double> negative_scores, std::size_t steps = 200);

}  // namespace soteria::eval
