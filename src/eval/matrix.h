// Robustness evaluation matrix: attack x defense-config grid.
//
// For every (attack spec, defense config) cell, the runner generates
// one AE per victim with the configured attacker against that cell's
// defense variant, analyzes it with the same variant, and aggregates
// detection rate, evasion rate, family-flip rate, and oracle query
// cost. The grid answers the question the single-number robustness
// tables cannot: *which* attacks get past *which* operating points.
//
// Determinism contract: cell (i) derives its generator as
// Rng(seed).child(i) and victim j inside it from further children, and
// cells are parallelized over a runtime::ThreadPool — so the report is
// bit-identical for a fixed seed at any thread count. The JSON output
// deliberately contains no timings or host facts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dataset/sample.h"
#include "soteria/system.h"

namespace soteria::eval {

/// One attack column: a registry name plus its parameter string (see
/// attack::make_attacker). `label` is the display/report key.
struct AttackSpec {
  std::string label;
  std::string name;
  std::string params;
};

/// One defense row: a variant of the fitted system. `alpha` re-derives
/// the detector threshold (Th = mu + alpha * sigma) on a copy of the
/// base system; the base is never mutated.
struct DefenseSpec {
  std::string label;
  double alpha = 1.0;
};

struct MatrixOptions {
  std::uint64_t seed = 42;
  /// Worker threads over cells (runtime::resolve_threads semantics:
  /// 0 = all hardware threads). The report is bit-identical at any
  /// setting.
  std::size_t num_threads = 1;
  /// Cap on victims evaluated per cell (0 = all provided victims).
  std::size_t victims_per_cell = 0;
};

/// Aggregates of one (attack, defense) cell.
struct MatrixCell {
  std::string attack;   ///< AttackSpec::label
  std::string defense;  ///< DefenseSpec::label
  std::size_t victims = 0;       ///< AEs actually generated and scored
  std::size_t skipped = 0;       ///< victims already of the target family
  std::size_t failures = 0;      ///< generations that threw core::Error
  std::size_t detected = 0;      ///< flagged by the AE detector
  std::size_t evaded = 0;        ///< not flagged
  std::size_t family_flips = 0;  ///< predicted != victim's true family
  std::size_t target_hits = 0;   ///< evaded and predicted == target
  std::size_t queries = 0;       ///< oracle queries spent in this cell

  [[nodiscard]] double detection_rate() const noexcept {
    return victims == 0 ? 0.0
                        : static_cast<double>(detected) /
                              static_cast<double>(victims);
  }
  [[nodiscard]] double evasion_rate() const noexcept {
    return victims == 0 ? 0.0
                        : static_cast<double>(evaded) /
                              static_cast<double>(victims);
  }
  [[nodiscard]] double flip_rate() const noexcept {
    return victims == 0 ? 0.0
                        : static_cast<double>(family_flips) /
                              static_cast<double>(victims);
  }
};

/// The full grid, attack-major (cells[a * defenses + d]).
struct MatrixReport {
  std::uint64_t seed = 0;
  std::size_t victims_per_cell = 0;
  std::vector<std::string> attacks;   ///< column labels, spec order
  std::vector<std::string> defenses;  ///< row labels, spec order
  std::vector<MatrixCell> cells;

  /// Versioned machine-readable form ({"version":1,...}); contains no
  /// timings, so two runs of the same seed compare byte-equal.
  [[nodiscard]] std::string to_json() const;

  /// Human-readable table for the CLI.
  [[nodiscard]] std::string to_text() const;
};

/// Runs the grid. `base` is the fitted defense the DefenseSpec variants
/// derive from; `victims` are attacked; `corpus` supplies injection
/// targets (typically the training set — the attacker's own material).
/// Throws core::Error{kInvalidArgument} on an empty attack/defense list
/// or empty victims. Per-victim attacker failures (e.g. a target family
/// missing from the corpus) are counted in MatrixCell::failures rather
/// than aborting the grid.
[[nodiscard]] MatrixReport run_matrix(
    const core::SoteriaSystem& base,
    std::span<const dataset::Sample> victims,
    std::span<const dataset::Sample> corpus,
    std::span<const AttackSpec> attacks,
    std::span<const DefenseSpec> defenses, const MatrixOptions& options);

}  // namespace soteria::eval
