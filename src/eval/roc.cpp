#include "eval/roc.h"

#include <algorithm>
#include <stdexcept>

namespace soteria::eval {

namespace {

std::pair<double, double> score_range(std::span<const double> a,
                                      std::span<const double> b) {
  const auto [a_min, a_max] = std::minmax_element(a.begin(), a.end());
  const auto [b_min, b_max] = std::minmax_element(b.begin(), b.end());
  return {std::min(*a_min, *b_min), std::max(*a_max, *b_max)};
}

void require_nonempty(std::span<const double> positives,
                      std::span<const double> negatives,
                      const char* what) {
  if (positives.empty() || negatives.empty()) {
    throw std::invalid_argument(std::string(what) + ": empty score set");
  }
}

double rate_above(std::span<const double> scores, double threshold) {
  std::size_t above = 0;
  for (double s : scores) above += s > threshold;
  return static_cast<double>(above) / static_cast<double>(scores.size());
}

}  // namespace

std::vector<RocPoint> roc_curve(std::span<const double> positive_scores,
                                std::span<const double> negative_scores,
                                std::size_t steps) {
  require_nonempty(positive_scores, negative_scores, "roc_curve");
  if (steps == 0) {
    throw std::invalid_argument("roc_curve: steps must be > 0");
  }
  const auto [lo, hi] = score_range(positive_scores, negative_scores);
  std::vector<RocPoint> curve;
  curve.reserve(steps + 1);
  for (std::size_t i = 0; i <= steps; ++i) {
    RocPoint point;
    // Pin the endpoints exactly so rounding cannot place the last
    // threshold below the maximum score.
    point.threshold =
        i == steps ? hi
                   : lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(steps);
    point.true_positive_rate = rate_above(positive_scores, point.threshold);
    point.false_positive_rate =
        rate_above(negative_scores, point.threshold);
    curve.push_back(point);
  }
  return curve;
}

double auc(std::span<const double> positive_scores,
           std::span<const double> negative_scores) {
  require_nonempty(positive_scores, negative_scores, "auc");
  // Rank-based computation via sorted negatives: O((m+n) log n).
  std::vector<double> negatives(negative_scores.begin(),
                                negative_scores.end());
  std::sort(negatives.begin(), negatives.end());
  double wins = 0.0;
  for (double p : positive_scores) {
    const auto below = std::lower_bound(negatives.begin(), negatives.end(),
                                        p) -
                       negatives.begin();
    const auto not_above = std::upper_bound(negatives.begin(),
                                            negatives.end(), p) -
                           negatives.begin();
    const auto ties = not_above - below;
    wins += static_cast<double>(below) + 0.5 * static_cast<double>(ties);
  }
  return wins / (static_cast<double>(positive_scores.size()) *
                 static_cast<double>(negative_scores.size()));
}

double best_youden_threshold(std::span<const double> positive_scores,
                             std::span<const double> negative_scores,
                             std::size_t steps) {
  const auto curve = roc_curve(positive_scores, negative_scores, steps);
  double best_j = -2.0;
  double best_threshold = curve.front().threshold;
  for (const auto& point : curve) {
    const double j = point.true_positive_rate - point.false_positive_rate;
    if (j > best_j) {
      best_j = j;
      best_threshold = point.threshold;
    }
  }
  return best_threshold;
}

}  // namespace soteria::eval
