// Classification metrics: confusion matrix, per-class and overall
// accuracy, precision/recall/F1.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace soteria::eval {

/// Square confusion matrix over `classes` labels; rows = truth,
/// columns = prediction.
class ConfusionMatrix {
 public:
  /// Throws std::invalid_argument for zero classes.
  explicit ConfusionMatrix(std::size_t classes);

  /// Records one (truth, prediction) observation. Throws
  /// std::out_of_range for labels >= classes.
  void record(std::size_t truth, std::size_t prediction);

  [[nodiscard]] std::size_t classes() const noexcept { return classes_; }
  [[nodiscard]] std::size_t count(std::size_t truth,
                                  std::size_t prediction) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// Samples whose truth is `c`.
  [[nodiscard]] std::size_t class_total(std::size_t truth) const;

  /// Fraction of class-c samples predicted as c; 0 when the class is
  /// empty.
  [[nodiscard]] double class_accuracy(std::size_t truth) const;

  /// Overall accuracy (trace / total); 0 when empty.
  [[nodiscard]] double overall_accuracy() const;

  /// Precision/recall/F1 for one class (one-vs-rest); 0 where undefined.
  [[nodiscard]] double precision(std::size_t c) const;
  [[nodiscard]] double recall(std::size_t c) const;
  [[nodiscard]] double f1(std::size_t c) const;

 private:
  std::size_t classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  // classes_ x classes_, row-major
};

/// Builds a confusion matrix from parallel truth/prediction arrays.
/// Throws std::invalid_argument on length mismatch.
[[nodiscard]] ConfusionMatrix confusion_from(
    std::span<const std::size_t> truths,
    std::span<const std::size_t> predictions, std::size_t classes);

/// Binary detection counts (for the AE detector).
struct DetectionStats {
  std::size_t true_positives = 0;   ///< AEs flagged as AE
  std::size_t false_negatives = 0;  ///< AEs passed as clean
  std::size_t true_negatives = 0;   ///< clean passed as clean
  std::size_t false_positives = 0;  ///< clean flagged as AE

  [[nodiscard]] std::size_t total() const noexcept {
    return true_positives + false_negatives + true_negatives +
           false_positives;
  }
  /// Detection rate over AEs (TP / (TP + FN)); 0 when no AEs seen.
  [[nodiscard]] double detection_rate() const noexcept;
  /// False-positive rate over clean samples; 0 when no clean seen.
  [[nodiscard]] double false_positive_rate() const noexcept;
  /// Overall accuracy.
  [[nodiscard]] double accuracy() const noexcept;
};

}  // namespace soteria::eval
