// ASCII table rendering for the bench harnesses that regenerate the
// paper's tables.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace soteria::eval {

/// Simple column-aligned text table.
class Table {
 public:
  /// Creates a table with the given column headers. Throws
  /// std::invalid_argument if no headers are given.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row. Throws std::invalid_argument if the cell count does
  /// not match the header count.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const noexcept {
    return rows_.size();
  }

  /// Renders with column alignment, a header underline, and `title` on
  /// the first line when non-empty.
  [[nodiscard]] std::string render(const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` as a fixed-precision string ("97.79").
[[nodiscard]] std::string format_percent(double fraction, int decimals = 2);

/// Formats a plain double.
[[nodiscard]] std::string format_double(double value, int decimals = 3);

}  // namespace soteria::eval
