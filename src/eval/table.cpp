#include "eval/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace soteria::eval {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: no headers");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: expected " +
                                std::to_string(headers_.size()) +
                                " cells, got " +
                                std::to_string(cells.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
      if (c + 1 < cells.size()) line += "  ";
    }
    line += '\n';
    return line;
  };

  std::string out;
  if (!title.empty()) {
    out += title;
    out += '\n';
  }
  out += render_row(headers_);
  std::size_t underline = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    underline += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(underline, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string format_percent(double fraction, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, fraction * 100.0);
  return buffer;
}

std::string format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

}  // namespace soteria::eval
