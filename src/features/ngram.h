// n-gram extraction over random-walk label traces.
//
// Grams of length 2, 3 and 4 (paper default) are packed into a single
// 64-bit key: 4 x 14-bit labels + a length tag. Packing keeps gram
// counting allocation-free in the hot loop and makes vocabulary lookup a
// single hash probe.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cfg/labeling.h"

namespace soteria::features {

/// Packed n-gram identity.
using GramKey = std::uint64_t;

/// Gram occurrence counts.
using GramCounts = std::unordered_map<GramKey, std::uint32_t>;

/// Largest label a gram can carry (14 bits per label).
inline constexpr cfg::Label kMaxGramLabel = (1U << 14) - 1;

/// Longest supported gram.
inline constexpr std::size_t kMaxGramLength = 4;

/// Packs `labels` (1..4 entries, each <= kMaxGramLabel) into a key.
/// Throws std::invalid_argument on violation.
[[nodiscard]] GramKey pack_gram(std::span<const cfg::Label> labels);

/// Reverses pack_gram.
[[nodiscard]] std::vector<cfg::Label> unpack_gram(GramKey key);

/// Gram length stored in a key.
[[nodiscard]] std::size_t gram_length(GramKey key) noexcept;

/// Counts all grams of each size in `sizes` over one walk trace,
/// accumulating into `counts`. Throws std::invalid_argument for a size
/// of 0 or > kMaxGramLength.
void count_grams(std::span<const cfg::Label> walk,
                 std::span<const std::size_t> sizes, GramCounts& counts);

/// Convenience: counts over many walks into a fresh map.
[[nodiscard]] GramCounts count_grams(
    const std::vector<std::vector<cfg::Label>>& walks,
    std::span<const std::size_t> sizes);

/// Total number of gram occurrences recorded in `counts`.
[[nodiscard]] std::uint64_t total_occurrences(const GramCounts& counts);

/// Human-readable gram, e.g. "3-1-4".
[[nodiscard]] std::string gram_to_string(GramKey key);

}  // namespace soteria::features
