// n-gram extraction over random-walk label traces.
//
// Grams of length 2, 3 and 4 (paper default) are packed into a single
// 64-bit key: 4 x 14-bit labels + a length tag. Packing keeps gram
// counting allocation-free in the hot loop and makes vocabulary lookup a
// single hash probe.
//
// The counting hot path comes in three tiers, fastest first:
//   - count_into_vocab: rolling packed-key update resolved through a
//     minimal perfect hash over a fitted vocabulary, accumulating
//     directly into a dense TF vector (no intermediate map at all);
//   - FlatGramCounter: the same rolling update feeding an
//     open-addressing table with power-of-two capacity and linear
//     probing, reusable across walks (training, where the vocabulary
//     does not exist yet);
//   - count_grams: the std::unordered_map API kept for callers that
//     want a plain map, now also driven by the rolling update.
// count_grams_reference preserves the original per-window
// pack_gram + unordered_map implementation as the test oracle.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cfg/labeling.h"

namespace soteria::features {

/// Packed n-gram identity.
using GramKey = std::uint64_t;

/// Gram occurrence counts.
using GramCounts = std::unordered_map<GramKey, std::uint32_t>;

/// Largest label a gram can carry (14 bits per label).
inline constexpr cfg::Label kMaxGramLabel = (1U << 14) - 1;

/// Longest supported gram.
inline constexpr std::size_t kMaxGramLength = 4;

/// Bits per label in a packed key; label i sits at bits
/// [kGramLabelBits*i, kGramLabelBits*(i+1)).
inline constexpr std::uint64_t kGramLabelBits = 14;

/// Mask selecting one label field.
inline constexpr std::uint64_t kGramLabelMask = (1ULL << kGramLabelBits) - 1;

/// Bit position of the length tag. Because the tag is always >= 1, a
/// packed key is never 0 — which lets 0 serve as the empty-slot
/// sentinel in open-addressing tables.
inline constexpr std::uint64_t kGramLengthShift =
    kGramLabelBits * kMaxGramLength;  // 56

/// Packs `labels` (1..4 entries, each <= kMaxGramLabel) into a key.
/// Throws std::invalid_argument on violation.
[[nodiscard]] GramKey pack_gram(std::span<const cfg::Label> labels);

/// Reverses pack_gram.
[[nodiscard]] std::vector<cfg::Label> unpack_gram(GramKey key);

/// Gram length stored in a key.
[[nodiscard]] std::size_t gram_length(GramKey key) noexcept;

/// Counts all grams of each size in `sizes` over one walk trace,
/// accumulating into `counts`. Throws std::invalid_argument for a size
/// of 0 or > kMaxGramLength, or for a walk label > kMaxGramLabel when
/// at least one size produces windows. Validation is hoisted out of
/// the window loop; the loop itself is one shift+or+mask per step.
void count_grams(std::span<const cfg::Label> walk,
                 std::span<const std::size_t> sizes, GramCounts& counts);

/// Convenience: counts over many walks into a fresh map. `sizes` is
/// validated once, not per walk.
[[nodiscard]] GramCounts count_grams(
    const std::vector<std::vector<cfg::Label>>& walks,
    std::span<const std::size_t> sizes);

/// The original per-window pack_gram + map implementation, preserved
/// verbatim as the oracle for the rolling-update paths (tests/infer)
/// and as the before-side of bench/perf_infer.
void count_grams_reference(std::span<const cfg::Label> walk,
                           std::span<const std::size_t> sizes,
                           GramCounts& counts);

/// Total number of gram occurrences recorded in `counts`.
[[nodiscard]] std::uint64_t total_occurrences(const GramCounts& counts);

/// Human-readable gram, e.g. "3-1-4".
[[nodiscard]] std::string gram_to_string(GramKey key);

/// Open-addressing gram counter: power-of-two capacity, linear
/// probing, key 0 as the empty sentinel (a packed key is never 0).
/// clear() keeps the allocation, so one counter amortizes across all
/// walks a thread processes. Produces counts identical to the
/// reference map (integer accumulation is order-independent).
class FlatGramCounter {
 public:
  FlatGramCounter() = default;
  /// Pre-sizes the table for about `expected_distinct` distinct grams.
  explicit FlatGramCounter(std::size_t expected_distinct);

  /// Removes all entries but keeps capacity.
  void clear() noexcept;

  /// Adds `count` occurrences of `key` (key must be a valid packed
  /// gram, i.e. non-zero).
  void add(GramKey key, std::uint32_t count);

  /// Counts all grams of each size over one walk via the rolling
  /// update. Same validation contract as count_grams.
  void count_walk(std::span<const cfg::Label> walk,
                  std::span<const std::size_t> sizes);

  /// Number of distinct grams currently stored.
  [[nodiscard]] std::size_t distinct() const noexcept { return size_; }

  /// Total occurrences across all stored grams.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Visits every (key, count) pair in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != 0) fn(keys_[i], vals_[i]);
    }
  }

  /// Accumulates the stored counts into `out`.
  void export_into(GramCounts& out) const;

  /// The stored counts as a fresh map.
  [[nodiscard]] GramCounts to_counts() const;

 private:
  [[nodiscard]] std::size_t slot_for(GramKey key) const noexcept;
  void grow(std::size_t min_capacity);

  std::vector<GramKey> keys_;
  std::vector<std::uint32_t> vals_;
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

/// Minimal perfect hash over a fixed set of distinct packed gram keys
/// (CHD-style: bucket displacement search). lookup verifies the stored
/// key, so keys outside the build set reliably return npos. Built once
/// per fitted vocabulary (~top_k keys), then every in-vocabulary query
/// is two hashes + one compare, with no chains and no resizing.
class PerfectGramHash {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  PerfectGramHash() = default;

  /// Builds over `keys` (distinct, non-zero). The i-th key maps to
  /// index i. Throws std::invalid_argument on duplicates.
  [[nodiscard]] static PerfectGramHash build(std::span<const GramKey> keys);

  /// Index of `key` in the build set, or npos if absent.
  [[nodiscard]] std::size_t lookup(GramKey key) const noexcept;

  /// Number of keys in the build set.
  [[nodiscard]] std::size_t size() const noexcept { return slot_key_.size(); }

 private:
  std::vector<std::uint32_t> seeds_;        // per-bucket displacement
  std::vector<GramKey> slot_key_;           // verification keys
  std::vector<std::uint32_t> slot_index_;   // slot -> build-set index
  std::uint64_t global_seed_ = 0;
};

/// Direct-mapped vocabulary lookup for the frozen inference path: a
/// 4x-oversized power-of-two open-addressing table over the selected
/// grams. Trades ~4x the memory of the minimal perfect hash for a
/// lookup that is one multiply-xorshift hash, one mask, and (at ~25%
/// load) almost always a single probe — roughly a third of the CHD
/// lookup's work, which dominates the fused walk+count loop. Built at
/// freeze time from Vocabulary::grams(); the Vocabulary itself keeps
/// the compact perfect hash for general use and serialization.
class DirectGramTable {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  DirectGramTable() = default;

  /// Builds over `keys` (distinct, non-zero). The i-th key maps to
  /// index i. Throws std::invalid_argument on duplicates or key 0.
  [[nodiscard]] static DirectGramTable build(std::span<const GramKey> keys);

  /// Index of `key` in the build set, or npos if absent.
  [[nodiscard]] std::size_t lookup(GramKey key) const noexcept {
    if (slot_key_.empty()) return npos;
    std::uint64_t h = key * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    std::size_t slot = static_cast<std::size_t>(h) & mask_;
    while (true) {
      const GramKey stored = slot_key_[slot];
      if (stored == key) return slot_index_[slot];
      if (stored == 0) return npos;
      slot = (slot + 1) & mask_;
    }
  }

  /// Number of keys in the build set.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  std::vector<GramKey> slot_key_;          // 0 = empty slot
  std::vector<std::uint32_t> slot_index_;  // slot -> build-set index
  std::size_t mask_ = 0;                   // capacity - 1 (power of two)
  std::size_t size_ = 0;
};

/// Fused counting for the inference hot path: counts all grams of each
/// size over `walk` with the rolling update, resolves each key through
/// `hash`, and accumulates in-vocabulary hits directly into the dense
/// `counts` vector (counts.size() must equal hash.size()). Returns the
/// total number of windows — which equals total_occurrences of the
/// full (unfiltered) gram map, since every window yields exactly one
/// gram. Same validation contract as count_grams.
std::uint64_t count_into_vocab(std::span<const cfg::Label> walk,
                               std::span<const std::size_t> sizes,
                               const PerfectGramHash& hash,
                               std::span<std::uint32_t> counts);

/// As above, resolving keys through a DirectGramTable built over the
/// same grams (index order matches, so the dense counts are identical
/// to the perfect-hash overload's).
std::uint64_t count_into_vocab(std::span<const cfg::Label> walk,
                               std::span<const std::size_t> sizes,
                               const DirectGramTable& table,
                               std::span<std::uint32_t> counts);

}  // namespace soteria::features
