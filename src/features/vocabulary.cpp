#include "features/vocabulary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "io/binary_io.h"
#include "soteria/error.h"

namespace soteria::features {

namespace {

/// Shared L2 pass: both tfidf_into overloads normalize the same way so
/// their outputs stay bit-identical.
void l2_normalize_in_place(std::span<float> vec) {
  float norm_sq = 0.0F;
  for (float x : vec) norm_sq += x * x;
  if (norm_sq > 0.0F) {
    const float inv = 1.0F / std::sqrt(norm_sq);
    for (float& x : vec) x *= inv;
  }
}

}  // namespace

void Vocabulary::finalize_tables() {
  idf_f_.resize(idf_.size());
  for (std::size_t i = 0; i < idf_.size(); ++i) {
    idf_f_[i] = static_cast<float>(idf_[i]);
  }
  hash_ = PerfectGramHash::build(grams_);
}

Vocabulary Vocabulary::build(const std::vector<GramCounts>& corpus,
                             std::size_t top_k) {
  if (corpus.empty()) {
    throw std::invalid_argument("Vocabulary::build: empty corpus");
  }
  if (top_k == 0) {
    throw std::invalid_argument("Vocabulary::build: top_k must be > 0");
  }

  std::unordered_map<GramKey, std::uint64_t> totals;
  std::unordered_map<GramKey, std::uint64_t> document_frequency;
  for (const auto& sample : corpus) {
    for (const auto& [key, count] : sample) {
      totals[key] += count;
      document_frequency[key] += 1;
    }
  }

  std::vector<std::pair<GramKey, std::uint64_t>> ranked(totals.begin(),
                                                        totals.end());
  const std::size_t keep = std::min(top_k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + keep, ranked.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  ranked.resize(keep);

  Vocabulary vocab;
  vocab.grams_.reserve(keep);
  vocab.frequencies_.reserve(keep);
  vocab.idf_.reserve(keep);
  const double n_docs = static_cast<double>(corpus.size());
  for (std::size_t i = 0; i < keep; ++i) {
    const auto [key, total] = ranked[i];
    vocab.grams_.push_back(key);
    vocab.frequencies_.push_back(total);
    const double df = static_cast<double>(document_frequency[key]);
    vocab.idf_.push_back(std::log((1.0 + n_docs) / (1.0 + df)) + 1.0);
  }
  vocab.finalize_tables();
  return vocab;
}

std::optional<std::size_t> Vocabulary::index_of(GramKey key) const {
  const std::size_t idx = hash_.lookup(key);
  if (idx == PerfectGramHash::npos) return std::nullopt;
  return idx;
}

std::vector<float> Vocabulary::tfidf_vector(const GramCounts& counts,
                                            bool l2_normalize) const {
  std::vector<float> vec(grams_.size(), 0.0F);
  tfidf_into(counts, vec, l2_normalize);
  return vec;
}

void Vocabulary::tfidf_into(const GramCounts& counts, std::span<float> out,
                            bool l2_normalize) const {
  std::fill(out.begin(), out.end(), 0.0F);
  const std::uint64_t total = total_occurrences(counts);
  if (total == 0) return;
  // Each selected slot is written at most once (map keys are
  // distinct), so iteration order cannot change the result.
  const float inv_total = 1.0F / static_cast<float>(total);
  for (const auto& [key, count] : counts) {
    const std::size_t idx = hash_.lookup(key);
    if (idx == PerfectGramHash::npos) continue;
    out[idx] = (static_cast<float>(count) * inv_total) * idf_f_[idx];
  }
  if (l2_normalize) l2_normalize_in_place(out);
}

void Vocabulary::tfidf_into(std::span<const std::uint32_t> counts_by_index,
                            std::uint64_t total_occurrences,
                            std::span<float> out, bool l2_normalize) const {
  std::fill(out.begin(), out.end(), 0.0F);
  if (total_occurrences == 0) return;
  const float inv_total = 1.0F / static_cast<float>(total_occurrences);
  for (std::size_t i = 0; i < counts_by_index.size(); ++i) {
    const std::uint32_t count = counts_by_index[i];
    if (count == 0) continue;
    out[i] = (static_cast<float>(count) * inv_total) * idf_f_[i];
  }
  if (l2_normalize) l2_normalize_in_place(out);
}

void Vocabulary::save(std::ostream& out) const {
  io::write_vector(out, grams_);
  io::write_vector(out, frequencies_);
  io::write_vector(out, idf_);
}

Vocabulary Vocabulary::load(std::istream& in) {
  Vocabulary vocab;
  vocab.grams_ = io::read_vector<GramKey>(in);
  vocab.frequencies_ = io::read_vector<std::uint64_t>(in);
  vocab.idf_ = io::read_vector<double>(in);
  if (vocab.frequencies_.size() != vocab.grams_.size() ||
      vocab.idf_.size() != vocab.grams_.size()) {
    throw core::Error(core::ErrorCode::kCorruptModel,
                      "Vocabulary::load: inconsistent table sizes");
  }
  try {
    vocab.finalize_tables();
  } catch (const std::invalid_argument& error) {
    // Duplicate or zero gram keys can only come from a corrupt stream.
    throw core::Error(core::ErrorCode::kCorruptModel,
                      std::string("Vocabulary::load: ") + error.what());
  }
  return vocab;
}

}  // namespace soteria::features
