#include "features/vocabulary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "io/binary_io.h"
#include "soteria/error.h"

namespace soteria::features {

Vocabulary Vocabulary::build(const std::vector<GramCounts>& corpus,
                             std::size_t top_k) {
  if (corpus.empty()) {
    throw std::invalid_argument("Vocabulary::build: empty corpus");
  }
  if (top_k == 0) {
    throw std::invalid_argument("Vocabulary::build: top_k must be > 0");
  }

  std::unordered_map<GramKey, std::uint64_t> totals;
  std::unordered_map<GramKey, std::uint64_t> document_frequency;
  for (const auto& sample : corpus) {
    for (const auto& [key, count] : sample) {
      totals[key] += count;
      document_frequency[key] += 1;
    }
  }

  std::vector<std::pair<GramKey, std::uint64_t>> ranked(totals.begin(),
                                                        totals.end());
  const std::size_t keep = std::min(top_k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + keep, ranked.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  ranked.resize(keep);

  Vocabulary vocab;
  vocab.grams_.reserve(keep);
  vocab.frequencies_.reserve(keep);
  vocab.idf_.reserve(keep);
  const double n_docs = static_cast<double>(corpus.size());
  for (std::size_t i = 0; i < keep; ++i) {
    const auto [key, total] = ranked[i];
    vocab.grams_.push_back(key);
    vocab.frequencies_.push_back(total);
    const double df = static_cast<double>(document_frequency[key]);
    vocab.idf_.push_back(std::log((1.0 + n_docs) / (1.0 + df)) + 1.0);
    vocab.index_.emplace(key, i);
  }
  return vocab;
}

std::optional<std::size_t> Vocabulary::index_of(GramKey key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<float> Vocabulary::tfidf_vector(const GramCounts& counts,
                                            bool l2_normalize) const {
  std::vector<float> vec(grams_.size(), 0.0F);
  const auto total = static_cast<double>(total_occurrences(counts));
  if (total == 0.0) return vec;
  for (const auto& [key, count] : counts) {
    const auto idx = index_of(key);
    if (!idx.has_value()) continue;
    const double tf = static_cast<double>(count) / total;
    vec[*idx] = static_cast<float>(tf * idf_[*idx]);
  }
  if (l2_normalize) {
    double norm = 0.0;
    for (float x : vec) norm += static_cast<double>(x) * x;
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      const auto inv = static_cast<float>(1.0 / norm);
      for (float& x : vec) x *= inv;
    }
  }
  return vec;
}

void Vocabulary::save(std::ostream& out) const {
  io::write_vector(out, grams_);
  io::write_vector(out, frequencies_);
  io::write_vector(out, idf_);
}

Vocabulary Vocabulary::load(std::istream& in) {
  Vocabulary vocab;
  vocab.grams_ = io::read_vector<GramKey>(in);
  vocab.frequencies_ = io::read_vector<std::uint64_t>(in);
  vocab.idf_ = io::read_vector<double>(in);
  if (vocab.frequencies_.size() != vocab.grams_.size() ||
      vocab.idf_.size() != vocab.grams_.size()) {
    throw core::Error(core::ErrorCode::kCorruptModel,
                      "Vocabulary::load: inconsistent table sizes");
  }
  for (std::size_t i = 0; i < vocab.grams_.size(); ++i) {
    vocab.index_.emplace(vocab.grams_[i], i);
  }
  return vocab;
}

}  // namespace soteria::features
