#include "features/biased_walk.h"

#include <algorithm>
#include <stdexcept>

namespace soteria::features {

void validate(const BiasedWalkConfig& config) {
  if (!(config.return_parameter > 0.0) ||
      !(config.in_out_parameter > 0.0)) {
    throw std::invalid_argument(
        "BiasedWalkConfig: p and q must be positive");
  }
}

std::vector<graph::NodeId> biased_walk_nodes(const UndirectedView& view,
                                             std::size_t steps,
                                             const BiasedWalkConfig& config,
                                             math::Rng& rng) {
  validate(config);
  std::vector<graph::NodeId> trace;
  trace.reserve(steps + 1);
  graph::NodeId current = view.entry();
  trace.push_back(current);
  bool has_previous = false;
  graph::NodeId previous = current;

  std::vector<double> weights;
  for (std::size_t step = 0; step < steps; ++step) {
    const auto& nbrs = view.neighbors(current);
    if (nbrs.empty()) {
      trace.push_back(current);
      continue;
    }
    graph::NodeId next;
    if (!has_previous) {
      next = nbrs[rng.index(nbrs.size())];
    } else {
      const auto& prev_nbrs = view.neighbors(previous);
      weights.assign(nbrs.size(), 0.0);
      double total = 0.0;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        double w;
        if (nbrs[i] == previous) {
          w = 1.0 / config.return_parameter;
        } else if (std::binary_search(prev_nbrs.begin(), prev_nbrs.end(),
                                      nbrs[i])) {
          w = 1.0;  // neighbours are sorted by UndirectedView
        } else {
          w = 1.0 / config.in_out_parameter;
        }
        weights[i] = w;
        total += w;
      }
      double pick = rng.uniform(0.0, total);
      std::size_t chosen = nbrs.size() - 1;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        pick -= weights[i];
        if (pick < 0.0) {
          chosen = i;
          break;
        }
      }
      next = nbrs[chosen];
    }
    previous = current;
    has_previous = true;
    current = next;
    trace.push_back(current);
  }
  return trace;
}

}  // namespace soteria::features
