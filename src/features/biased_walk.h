// node2vec-style biased random walks (Grover & Leskovec), the method
// the paper's feature design is "inspired by" ([27]).
//
// A second-order walk: stepping from t to v, the next neighbour x is
// weighted by
//   1/p  if x == t            (return parameter)
//   1    if dist(t, x) == 1   (stay near)
//   1/q  otherwise            (in-out parameter)
// p = q = 1 degenerates to the paper's uniform walk. Exposed as an
// optional extension so the BFS-ish (q > 1) / DFS-ish (q < 1)
// exploration trade-off can be studied on CFG features.
#pragma once

#include <cstddef>
#include <vector>

#include "features/random_walk.h"

namespace soteria::features {

/// node2vec bias parameters.
struct BiasedWalkConfig {
  double return_parameter = 1.0;  ///< p
  double in_out_parameter = 1.0;  ///< q
};

/// Throws std::invalid_argument for non-positive p or q.
void validate(const BiasedWalkConfig& config);

/// One biased walk of `steps` steps from the entry node; returns the
/// visited node sequence (length steps+1). With p = q = 1 the
/// distribution matches `random_walk_nodes`.
[[nodiscard]] std::vector<graph::NodeId> biased_walk_nodes(
    const UndirectedView& view, std::size_t steps,
    const BiasedWalkConfig& config, math::Rng& rng);

}  // namespace soteria::features
