// Corpus vocabulary: the top-k most frequent grams plus their inverse
// document frequencies.
//
// The paper keeps the 500 most frequent grams per labeling method and
// weights counts with TF-IDF, so a sample's feature vector is
// tf(g, sample) * idf(g, corpus) over the selected grams.
//
// Lookup is a minimal perfect hash over the selected grams (built at
// fit/load time), and the TF-IDF arithmetic stays in float throughout —
// both the map-based and the dense `tfidf_into` overloads perform the
// identical per-slot operations, so the interpreted and frozen paths
// produce bit-identical vectors.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "features/ngram.h"

namespace soteria::features {

/// Fitted vocabulary for one labeling method.
class Vocabulary {
 public:
  /// Builds the vocabulary from per-sample gram counts. Selects the
  /// `top_k` grams by total corpus frequency (ties broken by key for
  /// determinism) and computes smoothed IDF:
  ///   idf(g) = ln((1 + N) / (1 + df(g))) + 1.
  /// Keeps fewer than top_k grams if the corpus has fewer distinct
  /// grams. Throws std::invalid_argument for an empty corpus or top_k
  /// of 0.
  static Vocabulary build(const std::vector<GramCounts>& corpus,
                          std::size_t top_k);

  /// Number of selected grams (the feature dimension).
  [[nodiscard]] std::size_t size() const noexcept { return grams_.size(); }

  /// Feature index of `key`, or nullopt if not selected.
  [[nodiscard]] std::optional<std::size_t> index_of(GramKey key) const;

  /// Selected grams in feature-index order (most frequent first).
  [[nodiscard]] const std::vector<GramKey>& grams() const noexcept {
    return grams_;
  }

  /// Corpus-wide occurrence count per selected gram (index order).
  [[nodiscard]] const std::vector<std::uint64_t>& frequencies()
      const noexcept {
    return frequencies_;
  }

  /// Smoothed IDF per selected gram (index order).
  [[nodiscard]] const std::vector<double>& idf() const noexcept {
    return idf_;
  }

  /// The minimal perfect hash over the selected grams; shared with
  /// count_into_vocab so counting can accumulate straight into the
  /// dense TF vector.
  [[nodiscard]] const PerfectGramHash& hash() const noexcept { return hash_; }

  /// TF-IDF feature vector for one bag of gram counts. Dimension ==
  /// size(). Unselected grams are ignored. With `l2_normalize` the
  /// vector is scaled to unit norm; without it, term frequencies stay
  /// relative to the sample's total gram count, so the in-vocabulary
  /// mass fraction (which structural attacks shift) remains visible.
  [[nodiscard]] std::vector<float> tfidf_vector(
      const GramCounts& counts, bool l2_normalize = true) const;

  /// Writes the TF-IDF vector for `counts` into `out` (size() floats),
  /// overwriting it. Bit-identical to tfidf_vector.
  void tfidf_into(const GramCounts& counts, std::span<float> out,
                  bool l2_normalize = true) const;

  /// Dense-input overload for the fast path: `counts_by_index` holds
  /// per-selected-gram counts (index order, size() entries) and
  /// `total_occurrences` the full window total including
  /// out-of-vocabulary grams (as returned by count_into_vocab).
  /// Bit-identical to the map overload on equivalent inputs.
  void tfidf_into(std::span<const std::uint32_t> counts_by_index,
                  std::uint64_t total_occurrences, std::span<float> out,
                  bool l2_normalize = true) const;

  /// Default-constructed empty vocabulary (no grams selected); useful as
  /// a placeholder before fitting.
  Vocabulary() = default;

  /// Binary (de)serialization. `load` throws core::Error{kCorruptModel}
  /// on a corrupt or truncated stream.
  void save(std::ostream& out) const;
  [[nodiscard]] static Vocabulary load(std::istream& in);

 private:
  void finalize_tables();

  std::vector<GramKey> grams_;
  std::vector<std::uint64_t> frequencies_;
  std::vector<double> idf_;
  std::vector<float> idf_f_;  // idf_ narrowed once, not per gram per sample
  PerfectGramHash hash_;
};

}  // namespace soteria::features
