// Corpus vocabulary: the top-k most frequent grams plus their inverse
// document frequencies.
//
// The paper keeps the 500 most frequent grams per labeling method and
// weights counts with TF-IDF, so a sample's feature vector is
// tf(g, sample) * idf(g, corpus) over the selected grams.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <unordered_map>
#include <vector>

#include "features/ngram.h"

namespace soteria::features {

/// Fitted vocabulary for one labeling method.
class Vocabulary {
 public:
  /// Builds the vocabulary from per-sample gram counts. Selects the
  /// `top_k` grams by total corpus frequency (ties broken by key for
  /// determinism) and computes smoothed IDF:
  ///   idf(g) = ln((1 + N) / (1 + df(g))) + 1.
  /// Keeps fewer than top_k grams if the corpus has fewer distinct
  /// grams. Throws std::invalid_argument for an empty corpus or top_k
  /// of 0.
  static Vocabulary build(const std::vector<GramCounts>& corpus,
                          std::size_t top_k);

  /// Number of selected grams (the feature dimension).
  [[nodiscard]] std::size_t size() const noexcept { return grams_.size(); }

  /// Feature index of `key`, or nullopt if not selected.
  [[nodiscard]] std::optional<std::size_t> index_of(GramKey key) const;

  /// Selected grams in feature-index order (most frequent first).
  [[nodiscard]] const std::vector<GramKey>& grams() const noexcept {
    return grams_;
  }

  /// Corpus-wide occurrence count per selected gram (index order).
  [[nodiscard]] const std::vector<std::uint64_t>& frequencies()
      const noexcept {
    return frequencies_;
  }

  /// Smoothed IDF per selected gram (index order).
  [[nodiscard]] const std::vector<double>& idf() const noexcept {
    return idf_;
  }

  /// TF-IDF feature vector for one bag of gram counts. Dimension ==
  /// size(). Unselected grams are ignored. With `l2_normalize` the
  /// vector is scaled to unit norm; without it, term frequencies stay
  /// relative to the sample's total gram count, so the in-vocabulary
  /// mass fraction (which structural attacks shift) remains visible.
  [[nodiscard]] std::vector<float> tfidf_vector(
      const GramCounts& counts, bool l2_normalize = true) const;

  /// Default-constructed empty vocabulary (no grams selected); useful as
  /// a placeholder before fitting.
  Vocabulary() = default;

  /// Binary (de)serialization. `load` throws core::Error{kCorruptModel}
  /// on a corrupt or truncated stream.
  void save(std::ostream& out) const;
  [[nodiscard]] static Vocabulary load(std::istream& in);

 private:
  std::vector<GramKey> grams_;
  std::vector<std::uint64_t> frequencies_;
  std::vector<double> idf_;
  std::unordered_map<GramKey, std::size_t> index_;
};

}  // namespace soteria::features
