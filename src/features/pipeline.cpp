#include "features/pipeline.h"

#include <stdexcept>
#include <utility>

#include "cfg/labeling_cache.h"
#include "io/binary_io.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "store/feature_store.h"

namespace soteria::features {

void validate(const PipelineConfig& config) {
  validate(config.walk);
  if (config.top_k == 0) {
    throw std::invalid_argument("PipelineConfig: top_k must be > 0");
  }
  if (config.gram_sizes.empty()) {
    throw std::invalid_argument("PipelineConfig: no gram sizes");
  }
  for (std::size_t n : config.gram_sizes) {
    if (n == 0 || n > kMaxGramLength) {
      throw std::invalid_argument("PipelineConfig: gram size " +
                                  std::to_string(n) + " outside [1, " +
                                  std::to_string(kMaxGramLength) + "]");
    }
  }
  cfg::validate(config.labeling);
  if (config.frontend.empty()) {
    throw std::invalid_argument("PipelineConfig: frontend name is empty");
  }
}

std::vector<float> SampleFeatures::combined(std::size_t walk) const {
  if (walk >= dbl.size() || walk >= lbl.size()) {
    throw std::out_of_range("SampleFeatures::combined: walk index " +
                            std::to_string(walk));
  }
  std::vector<float> vec = dbl[walk];
  vec.insert(vec.end(), lbl[walk].begin(), lbl[walk].end());
  return vec;
}

namespace {

std::vector<float> mean_of(const std::vector<std::vector<float>>& vecs) {
  if (vecs.empty()) return {};
  std::vector<float> mean(vecs.front().size(), 0.0F);
  for (const auto& v : vecs) {
    for (std::size_t i = 0; i < mean.size(); ++i) mean[i] += v[i];
  }
  const auto inv = 1.0F / static_cast<float>(vecs.size());
  for (float& x : mean) x *= inv;
  return mean;
}

}  // namespace

std::vector<float> SampleFeatures::mean_dbl() const { return mean_of(dbl); }
std::vector<float> SampleFeatures::mean_lbl() const { return mean_of(lbl); }

std::vector<float> SampleFeatures::mean_combined() const {
  std::vector<float> mean = mean_dbl();
  const auto lbl_mean = mean_lbl();
  mean.insert(mean.end(), lbl_mean.begin(), lbl_mean.end());
  return mean;
}

std::vector<float> SampleFeatures::pooled_combined() const {
  std::vector<float> vec = pooled_dbl;
  vec.insert(vec.end(), pooled_lbl.begin(), pooled_lbl.end());
  return vec;
}

cfg::NodeLabelings FeaturePipeline::labelings_for(
    const cfg::Cfg& cfg) const {
  if (labeling_cache_) return labeling_cache_->labels(cfg, config_.labeling);
  return cfg::label_both(cfg, config_.labeling);
}

GramCounts FeaturePipeline::gram_counts_for_labels(
    const cfg::Cfg& cfg, const std::vector<cfg::Label>& labels,
    math::Rng& rng) const {
  const auto walks = labeled_walks(cfg, labels, config_.walk, rng);
  // Counting goes through the open-addressing counter (integer
  // accumulation, so the resulting map is identical to the reference);
  // fit() has no fitted vocabulary yet, so the dense count_into_vocab
  // path is not available here.
  FlatGramCounter counter(1024);
  for (const auto& walk : walks) {
    counter.count_walk(walk, config_.gram_sizes);
  }
  return counter.to_counts();
}

GramCounts FeaturePipeline::gram_counts(const cfg::Cfg& cfg,
                                        cfg::LabelingMethod method,
                                        math::Rng& rng) const {
  const auto labelings = labelings_for(cfg);
  return gram_counts_for_labels(cfg,
                                method == cfg::LabelingMethod::kDensity
                                    ? labelings.dbl
                                    : labelings.lbl,
                                rng);
}

FeaturePipeline FeaturePipeline::fit(
    std::span<const cfg::Cfg> training, const PipelineConfig& config,
    math::Rng& rng, std::size_t num_threads,
    std::shared_ptr<cfg::LabelingCache> labeling_cache) {
  validate(config);
  if (training.empty()) {
    throw std::invalid_argument("FeaturePipeline::fit: empty corpus");
  }
  const obs::Span span("pipeline.fit");
  FeaturePipeline pipeline;
  pipeline.config_ = config;
  pipeline.labeling_cache_ = std::move(labeling_cache);

  // Each sample's walks draw from children of `rng` keyed by sample
  // index (DBL on even streams, LBL on odd), so the per-sample local
  // gram maps are identical no matter which thread computes them; the
  // vocabulary builder then merges the local maps into corpus totals.
  // Both labelings derive from one shared node_ranks computation (and
  // populate the labeling cache for the extraction that follows).
  struct LabelingCounts {
    GramCounts dbl;
    GramCounts lbl;
  };
  auto counts = runtime::parallel_map(
      num_threads, training.size(), [&](std::size_t i) {
        math::Rng dbl_rng = rng.child(2 * i);
        math::Rng lbl_rng = rng.child(2 * i + 1);
        const auto labelings = pipeline.labelings_for(training[i]);
        LabelingCounts sample;
        sample.dbl = pipeline.gram_counts_for_labels(
            training[i], labelings.dbl, dbl_rng);
        sample.lbl = pipeline.gram_counts_for_labels(
            training[i], labelings.lbl, lbl_rng);
        return sample;
      });

  std::vector<GramCounts> dbl_corpus;
  std::vector<GramCounts> lbl_corpus;
  dbl_corpus.reserve(training.size());
  lbl_corpus.reserve(training.size());
  for (auto& sample : counts) {
    dbl_corpus.push_back(std::move(sample.dbl));
    lbl_corpus.push_back(std::move(sample.lbl));
  }
  {
    const obs::Span vocab_span("vocab.build");
    pipeline.dbl_vocab_ = Vocabulary::build(dbl_corpus, config.top_k);
    pipeline.lbl_vocab_ = Vocabulary::build(lbl_corpus, config.top_k);
  }
  pipeline.fingerprint_ = store::fingerprint_of(pipeline);
  return pipeline;
}

SampleFeatures FeaturePipeline::extract(const cfg::Cfg& cfg,
                                        math::Rng& rng) const {
  const obs::Span span("pipeline.extract");
  SampleFeatures features;
  const auto labelings = labelings_for(cfg);

  const auto dbl_walks =
      labeled_walks(cfg, labelings.dbl, config_.walk, rng);
  const auto lbl_walks =
      labeled_walks(cfg, labelings.lbl, config_.walk, rng);

  // Staged so the gram-counting and vectorisation costs show up as
  // separate spans in the timing tree. Counting uses the rolling
  // packed-key update into the general map representation — the same
  // intermediate the training path and gram_counts() produce. The
  // vocabulary-fused dense counting (count_into_vocab straight into TF
  // rows, no map at all) is deliberately left to the frozen model
  // (soteria/frozen.*): it requires a baked per-vocabulary lookup
  // structure, which is exactly what freezing is for. The map and
  // dense TF-IDF overloads are bit-identical, so both paths produce
  // the same vectors.
  const std::size_t dbl_dim = dbl_vocab_.size();
  const std::size_t lbl_dim = lbl_vocab_.size();
  std::vector<GramCounts> dbl_maps(dbl_walks.size());
  std::vector<GramCounts> lbl_maps(lbl_walks.size());
  GramCounts dbl_pooled;
  GramCounts lbl_pooled;
  {
    const obs::Span ngram_span("features.ngrams");
    // Reserve once per map: a walk yields several hundred distinct
    // grams, and letting unordered_map grow through its default
    // rehash ladder costs more than the counting itself.
    dbl_pooled.reserve(4096);
    lbl_pooled.reserve(4096);
    for (std::size_t w = 0; w < dbl_walks.size(); ++w) {
      dbl_maps[w].reserve(2048);
      count_grams(dbl_walks[w], config_.gram_sizes, dbl_maps[w]);
      for (const auto& [key, count] : dbl_maps[w]) dbl_pooled[key] += count;
    }
    for (std::size_t w = 0; w < lbl_walks.size(); ++w) {
      lbl_maps[w].reserve(2048);
      count_grams(lbl_walks[w], config_.gram_sizes, lbl_maps[w]);
      for (const auto& [key, count] : lbl_maps[w]) lbl_pooled[key] += count;
    }
  }
  {
    const obs::Span tfidf_span("features.tfidf");
    features.dbl.resize(dbl_walks.size());
    for (std::size_t w = 0; w < dbl_walks.size(); ++w) {
      features.dbl[w].resize(dbl_dim);
      dbl_vocab_.tfidf_into(dbl_maps[w], features.dbl[w],
                            config_.l2_normalize);
    }
    features.lbl.resize(lbl_walks.size());
    for (std::size_t w = 0; w < lbl_walks.size(); ++w) {
      features.lbl[w].resize(lbl_dim);
      lbl_vocab_.tfidf_into(lbl_maps[w], features.lbl[w],
                            config_.l2_normalize);
    }
    features.pooled_dbl.resize(dbl_dim);
    dbl_vocab_.tfidf_into(dbl_pooled, features.pooled_dbl,
                          config_.l2_normalize);
    features.pooled_lbl.resize(lbl_dim);
    lbl_vocab_.tfidf_into(lbl_pooled, features.pooled_lbl,
                          config_.l2_normalize);
  }
  return features;
}

void FeaturePipeline::save(std::ostream& out) const {
  io::write_scalar(out, config_.walk.length_multiplier);
  io::write_scalar<std::uint64_t>(out, config_.walk.walks_per_labeling);
  io::write_scalar<std::uint64_t>(out, config_.top_k);
  io::write_vector<std::size_t>(out, config_.gram_sizes);
  io::write_scalar<std::uint8_t>(out, config_.l2_normalize ? 1 : 0);
  // Labeling options are model state: they change the labels every
  // feature is built from, and serializing them here also folds them
  // into the pipeline fingerprint (store/fingerprint.h hashes this
  // blob), keying the feature store by centrality mode.
  io::write_scalar<std::uint64_t>(out,
                                  config_.labeling.approx_centrality_threshold);
  io::write_scalar<std::uint64_t>(out, config_.labeling.approx.pivot_count);
  io::write_scalar(out, config_.labeling.approx.epsilon);
  io::write_scalar(out, config_.labeling.approx.delta);
  io::write_scalar<std::uint64_t>(out, config_.labeling.approx.seed);
  // The frontend name is model state for the same reason: CFGs from
  // different decoders are different feature universes, and hashing the
  // name here keys the feature store by decoder.
  io::write_string(out, config_.frontend);
  dbl_vocab_.save(out);
  lbl_vocab_.save(out);
}

FeaturePipeline FeaturePipeline::load(std::istream& in) {
  FeaturePipeline pipeline;
  pipeline.config_.walk.length_multiplier = io::read_scalar<double>(in);
  pipeline.config_.walk.walks_per_labeling =
      static_cast<std::size_t>(io::read_scalar<std::uint64_t>(in));
  pipeline.config_.top_k =
      static_cast<std::size_t>(io::read_scalar<std::uint64_t>(in));
  pipeline.config_.gram_sizes = io::read_vector<std::size_t>(in);
  pipeline.config_.l2_normalize = io::read_scalar<std::uint8_t>(in) != 0;
  pipeline.config_.labeling.approx_centrality_threshold =
      static_cast<std::size_t>(io::read_scalar<std::uint64_t>(in));
  pipeline.config_.labeling.approx.pivot_count =
      static_cast<std::size_t>(io::read_scalar<std::uint64_t>(in));
  pipeline.config_.labeling.approx.epsilon = io::read_scalar<double>(in);
  pipeline.config_.labeling.approx.delta = io::read_scalar<double>(in);
  pipeline.config_.labeling.approx.seed = io::read_scalar<std::uint64_t>(in);
  pipeline.config_.frontend = io::read_string(in);
  validate(pipeline.config_);
  pipeline.dbl_vocab_ = Vocabulary::load(in);
  pipeline.lbl_vocab_ = Vocabulary::load(in);
  pipeline.fingerprint_ = store::fingerprint_of(pipeline);
  return pipeline;
}

SampleFeatures FeaturePipeline::extract_stored(
    const cfg::Cfg& cfg, const math::Rng& fresh_rng,
    store::FeatureStore* store) const {
  store::FeatureStore* target =
      store != nullptr ? store : feature_store_.get();
  if (target == nullptr) {
    math::Rng rng = fresh_rng;
    return extract(cfg, rng);
  }
  // The key ties the entry to the exact extraction it replaces: the
  // CFG's content, this pipeline's fitted state, and the walk stream
  // (fresh_rng's construction seed — which fully determines the stream
  // only because the generator has never been advanced).
  const store::FeatureKey key{cfg::LabelingCache::content_hash(cfg),
                              fingerprint_.value, fresh_rng.seed()};
  if (auto cached = target->get(key)) return *std::move(cached);
  math::Rng rng = fresh_rng;
  SampleFeatures features = extract(cfg, rng);
  target->put(key, features);
  return features;
}

}  // namespace soteria::features
