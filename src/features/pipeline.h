// End-to-end feature extraction (paper Fig. 3):
//   CFG -> {DBL, LBL} labelings -> 10 random walks each ->
//   {2,3,4}-grams -> TF-IDF against a top-500 vocabulary per labeling.
//
// `fit()` learns the two vocabularies from a training corpus;
// `extract()` then turns any CFG into:
//   * 10 per-walk 1x500 DBL vectors and 10 per-walk 1x500 LBL vectors
//     (the classifier's voting inputs), and
//   * 10 combined 1x1000 vectors (walk i's DBL ++ LBL), the detector's
//     autoencoder inputs.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cfg/cfg.h"
#include "cfg/labeling.h"
#include "features/random_walk.h"
#include "features/vocabulary.h"
#include "math/rng.h"
#include "store/fingerprint.h"

namespace soteria::cfg {
class LabelingCache;
}  // namespace soteria::cfg

namespace soteria::store {
class FeatureStore;
}  // namespace soteria::store

namespace soteria::features {

/// Pipeline hyper-parameters (paper defaults).
struct PipelineConfig {
  WalkConfig walk;
  std::size_t top_k = 500;                    ///< grams kept per labeling
  std::vector<std::size_t> gram_sizes = {2, 3, 4};
  /// L2-normalize TF-IDF vectors. Disabling keeps each sample's
  /// in-vocabulary mass fraction, which GEA merges shift measurably.
  bool l2_normalize = true;
  /// Labeling knobs, notably the approximate-centrality threshold for
  /// firmware-scale CFGs (exact everywhere by default). Persisted by
  /// save() and hashed into the pipeline fingerprint, so pipelines
  /// that label differently never share feature-store entries.
  cfg::LabelingOptions labeling;
  /// Name of the binary front end (frontend::Frontend::name()) whose
  /// CFGs this pipeline was fitted on ("toy", "x86_64", ...). Persisted
  /// by save() and hashed into the pipeline fingerprint, so
  /// feature-store and labeling-cache entries produced under one
  /// decoder can never alias another's even when two decoders happen to
  /// emit isomorphic CFGs.
  std::string frontend = "toy";
};

/// Throws std::invalid_argument for invalid walk config, zero top_k, or
/// unsupported gram sizes.
void validate(const PipelineConfig& config);

/// Feature bundle for one sample.
struct SampleFeatures {
  /// Per-walk TF-IDF vectors; size == walks_per_labeling, each of
  /// dimension vocabulary size (<= top_k). The classifier CNNs vote
  /// over these.
  std::vector<std::vector<float>> dbl;
  std::vector<std::vector<float>> lbl;

  /// TF-IDF over the gram counts of *all* walks pooled, one vector per
  /// labeling — the stable per-sample representation the detector's
  /// autoencoder consumes (per-walk vectors are too noisy to define a
  /// reconstruction manifold).
  std::vector<float> pooled_dbl;
  std::vector<float> pooled_lbl;

  /// walk i's DBL vector concatenated with walk i's LBL vector.
  [[nodiscard]] std::vector<float> combined(std::size_t walk) const;

  /// pooled_dbl ++ pooled_lbl: the 1x1000 detector input (paper Fig. 5).
  [[nodiscard]] std::vector<float> pooled_combined() const;

  /// Mean of all per-walk combined vectors (used for PCA plots).
  [[nodiscard]] std::vector<float> mean_combined() const;

  /// Mean per-labeling vectors.
  [[nodiscard]] std::vector<float> mean_dbl() const;
  [[nodiscard]] std::vector<float> mean_lbl() const;
};

/// Fitted feature extractor.
class FeaturePipeline {
 public:
  /// Learns DBL and LBL vocabularies from `training` CFGs. Fitting
  /// walks draw from per-sample children of `rng` (rng itself is not
  /// advanced), and with `num_threads` > 1 the per-sample gram maps are
  /// counted concurrently and merged at the end — results are
  /// bit-identical at any thread count (0 = all hardware threads).
  /// A non-null `labeling_cache` is installed on the returned pipeline
  /// and already warmed by fitting, so the training extraction that
  /// typically follows reuses the fit labelings. Throws on empty
  /// corpus or bad config.
  static FeaturePipeline fit(
      std::span<const cfg::Cfg> training, const PipelineConfig& config,
      math::Rng& rng, std::size_t num_threads = 1,
      std::shared_ptr<cfg::LabelingCache> labeling_cache = nullptr);

  /// Extracts the full feature bundle for one CFG. Each call draws
  /// fresh walks from `rng` — this is Soteria's randomization property:
  /// two extractions of the same sample yield different (but similarly
  /// distributed) vectors.
  [[nodiscard]] SampleFeatures extract(const cfg::Cfg& cfg,
                                       math::Rng& rng) const;

  /// extract() through the persistent feature store. `fresh_rng` must be
  /// a *fresh* (never-advanced) generator — typically a per-sample
  /// `rng.child(i)` — because its construction seed is part of the store
  /// key: a hit returns exactly the vectors a cold extraction with that
  /// seed would produce, so results are bit-identical with the store on
  /// or off. Consults `store` when non-null, else the installed
  /// `feature_store()`; with neither, this is a plain cold extract.
  [[nodiscard]] SampleFeatures extract_stored(
      const cfg::Cfg& cfg, const math::Rng& fresh_rng,
      store::FeatureStore* store = nullptr) const;

  [[nodiscard]] const Vocabulary& dbl_vocabulary() const noexcept {
    return dbl_vocab_;
  }
  [[nodiscard]] const Vocabulary& lbl_vocabulary() const noexcept {
    return lbl_vocab_;
  }
  [[nodiscard]] const PipelineConfig& config() const noexcept {
    return config_;
  }

  /// Combined feature dimension (DBL size + LBL size; 1000 with paper
  /// defaults and a large enough corpus).
  [[nodiscard]] std::size_t combined_dimension() const noexcept {
    return dbl_vocab_.size() + lbl_vocab_.size();
  }

  /// Raw gram counts for one labeling of one CFG (all walks pooled);
  /// exposed for vocabulary building and the Table V analysis.
  [[nodiscard]] GramCounts gram_counts(const cfg::Cfg& cfg,
                                       cfg::LabelingMethod method,
                                       math::Rng& rng) const;

  /// Installs (nullptr: removes) a shared cache of DBL/LBL labelings
  /// consulted by extract/fit/gram_counts. Purely a performance knob:
  /// labeling is deterministic, so results are bit-identical with the
  /// cache on or off. Not persisted by save() — like thread counts, it
  /// describes the runtime, not the model.
  void set_labeling_cache(
      std::shared_ptr<cfg::LabelingCache> cache) noexcept {
    labeling_cache_ = std::move(cache);
  }
  [[nodiscard]] const std::shared_ptr<cfg::LabelingCache>& labeling_cache()
      const noexcept {
    return labeling_cache_;
  }

  /// Installs (nullptr: removes) the persistent feature store consulted
  /// by extract_stored(). Like the labeling cache, this is a runtime
  /// attachment, not model state: it is not persisted by save(), and
  /// results are bit-identical with the store on or off.
  void set_feature_store(std::shared_ptr<store::FeatureStore> store) noexcept {
    feature_store_ = std::move(store);
  }
  [[nodiscard]] const std::shared_ptr<store::FeatureStore>& feature_store()
      const noexcept {
    return feature_store_;
  }

  /// Content fingerprint of this fitted pipeline (config + both
  /// vocabularies); part of every feature-store key, so entries written
  /// by a differently-trained pipeline can never be served. Zero for a
  /// default-constructed (unfitted) pipeline.
  [[nodiscard]] const store::PipelineFingerprint& fingerprint()
      const noexcept {
    return fingerprint_;
  }

  /// Default-constructed unfitted pipeline (empty vocabularies); a
  /// placeholder until assigned from fit().
  FeaturePipeline() = default;

  /// Binary (de)serialization of the config and both vocabularies.
  /// `load` throws core::Error{kCorruptModel} on a corrupt stream.
  void save(std::ostream& out) const;
  [[nodiscard]] static FeaturePipeline load(std::istream& in);

 private:
  /// Both labelings of `cfg`, through the cache when one is installed.
  [[nodiscard]] cfg::NodeLabelings labelings_for(const cfg::Cfg& cfg) const;

  /// Walks over `labels` pooled into gram counts (the per-labeling
  /// tail of gram_counts, with the labeling already derived).
  [[nodiscard]] GramCounts gram_counts_for_labels(
      const cfg::Cfg& cfg, const std::vector<cfg::Label>& labels,
      math::Rng& rng) const;

  PipelineConfig config_;
  Vocabulary dbl_vocab_;
  Vocabulary lbl_vocab_;
  std::shared_ptr<cfg::LabelingCache> labeling_cache_;
  std::shared_ptr<store::FeatureStore> feature_store_;
  /// Set at the end of fit()/load(); zero while unfitted.
  store::PipelineFingerprint fingerprint_;
};

}  // namespace soteria::features
