// Random-walk traversal over labeled CFGs (paper Section III-B.2).
//
// A marker starts at the entry block and repeatedly moves to a uniformly
// random neighbour in the *undirected* view of the graph (probability
// 1/deg(v)), recording the label of every visited node. Soteria uses
// walks of length 5·|V| and repeats each walk ten times per labeling,
// which is the randomization that prevents an adversary from predicting
// the classifier's feature vector.
#pragma once

#include <cstddef>
#include <vector>

#include "cfg/cfg.h"
#include "cfg/labeling.h"
#include "math/rng.h"

namespace soteria::features {

/// Immutable undirected adjacency snapshot of a CFG, built once and
/// shared by all walks over that graph.
class UndirectedView {
 public:
  /// Throws std::invalid_argument for an empty CFG.
  explicit UndirectedView(const cfg::Cfg& cfg);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] graph::NodeId entry() const noexcept { return entry_; }
  [[nodiscard]] const std::vector<graph::NodeId>& neighbors(
      graph::NodeId v) const {
    return adjacency_.at(v);
  }

 private:
  std::vector<std::vector<graph::NodeId>> adjacency_;
  graph::NodeId entry_;
};

/// Walk parameters.
struct WalkConfig {
  /// |W| = multiplier * |V| steps (the paper uses 5).
  double length_multiplier = 5.0;
  /// Walks per labeling method (the paper uses 10).
  std::size_t walks_per_labeling = 10;
};

/// Throws std::invalid_argument on non-positive multiplier or zero walk
/// count.
void validate(const WalkConfig& config);

/// One random walk of `steps` steps from the entry; returns the visited
/// *node* sequence of length steps+1. A node with no neighbours (only
/// possible for a single-block CFG) repeats in place so walk lengths
/// stay uniform.
[[nodiscard]] std::vector<graph::NodeId> random_walk_nodes(
    const UndirectedView& view, std::size_t steps, math::Rng& rng);

/// Maps a node sequence through a label assignment.
[[nodiscard]] std::vector<cfg::Label> apply_labels(
    const std::vector<graph::NodeId>& nodes,
    const std::vector<cfg::Label>& labels);

/// Full per-labeling walk bundle: `walks_per_labeling` label traces of
/// length multiplier*|V| + 1 each.
[[nodiscard]] std::vector<std::vector<cfg::Label>> labeled_walks(
    const cfg::Cfg& cfg, const std::vector<cfg::Label>& labels,
    const WalkConfig& config, math::Rng& rng);

}  // namespace soteria::features
