#include "features/random_walk.h"

#include <cmath>
#include <stdexcept>

#include "obs/trace.h"

namespace soteria::features {

UndirectedView::UndirectedView(const cfg::Cfg& cfg) : entry_(cfg.entry()) {
  if (cfg.node_count() == 0) {
    throw std::invalid_argument("UndirectedView: empty CFG");
  }
  adjacency_.resize(cfg.node_count());
  for (graph::NodeId v = 0; v < cfg.node_count(); ++v) {
    adjacency_[v] = cfg.graph().undirected_neighbors(v);
  }
}

void validate(const WalkConfig& config) {
  if (!(config.length_multiplier > 0.0)) {
    throw std::invalid_argument(
        "WalkConfig: length_multiplier must be positive");
  }
  if (config.walks_per_labeling == 0) {
    throw std::invalid_argument(
        "WalkConfig: walks_per_labeling must be positive");
  }
}

std::vector<graph::NodeId> random_walk_nodes(const UndirectedView& view,
                                             std::size_t steps,
                                             math::Rng& rng) {
  std::vector<graph::NodeId> trace;
  trace.reserve(steps + 1);
  graph::NodeId current = view.entry();
  trace.push_back(current);
  for (std::size_t i = 0; i < steps; ++i) {
    const auto& nbrs = view.neighbors(current);
    if (!nbrs.empty()) {
      current = nbrs[rng.index(nbrs.size())];
    }
    trace.push_back(current);
  }
  return trace;
}

std::vector<cfg::Label> apply_labels(
    const std::vector<graph::NodeId>& nodes,
    const std::vector<cfg::Label>& labels) {
  std::vector<cfg::Label> out;
  out.reserve(nodes.size());
  for (graph::NodeId v : nodes) {
    if (v >= labels.size()) {
      throw std::out_of_range("apply_labels: node id beyond label table");
    }
    out.push_back(labels[v]);
  }
  return out;
}

std::vector<std::vector<cfg::Label>> labeled_walks(
    const cfg::Cfg& cfg, const std::vector<cfg::Label>& labels,
    const WalkConfig& config, math::Rng& rng) {
  validate(config);
  const obs::Span span("features.walks");
  const UndirectedView view(cfg);
  const auto steps = static_cast<std::size_t>(std::llround(
      config.length_multiplier * static_cast<double>(cfg.node_count())));
  obs::registry().counter_add("soteria.features.walks",
                              config.walks_per_labeling);
  obs::registry().counter_add("soteria.features.walk_steps",
                              config.walks_per_labeling * steps);
  std::vector<std::vector<cfg::Label>> walks;
  walks.reserve(config.walks_per_labeling);
  for (std::size_t w = 0; w < config.walks_per_labeling; ++w) {
    walks.push_back(apply_labels(random_walk_nodes(view, steps, rng), labels));
  }
  return walks;
}

}  // namespace soteria::features
