#include "features/ngram.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "math/rng.h"

namespace soteria::features {

namespace {

[[noreturn]] void throw_bad_size(std::size_t n) {
  throw std::invalid_argument("count_grams: gram size " + std::to_string(n) +
                              " outside [1, " +
                              std::to_string(kMaxGramLength) + "]");
}

[[noreturn]] void throw_bad_label(cfg::Label label) {
  throw std::invalid_argument("count_grams: label " + std::to_string(label) +
                              " exceeds kMaxGramLabel");
}

void validate_sizes(std::span<const std::size_t> sizes) {
  for (std::size_t n : sizes) {
    if (n == 0 || n > kMaxGramLength) throw_bad_size(n);
  }
}

/// Validates walk labels when at least one size produces windows.
/// Every walk position is covered by some window of any size n <=
/// walk.size(), so this throws exactly when the per-window reference
/// would have thrown — just before counting instead of mid-stream.
void validate_walk(std::span<const cfg::Label> walk,
                   std::span<const std::size_t> sizes) {
  bool any_windows = false;
  for (std::size_t n : sizes) any_windows |= walk.size() >= n;
  if (!any_windows) return;
  for (cfg::Label label : walk) {
    if (label > kMaxGramLabel) throw_bad_label(label);
  }
}

/// Per-size state for the rolling packed-key update. Advancing a
/// size-n window by one label is: mask off the length tag, drop the
/// oldest label with one right shift, insert the new label at position
/// n-1, re-apply the tag — one shift+or+mask per step, no per-window
/// pack_gram call.
struct RollingKey {
  std::uint64_t key = 0;
  std::uint64_t tag = 0;          // n << kGramLengthShift
  std::uint64_t body_mask = 0;    // low 14*n bits
  std::uint64_t insert_shift = 0; // 14*(n-1)
  std::size_t length = 0;

  void init(std::size_t n) noexcept {
    key = 0;
    tag = static_cast<std::uint64_t>(n) << kGramLengthShift;
    body_mask = (n == kMaxGramLength) ? ((1ULL << kGramLengthShift) - 1)
                                      : ((1ULL << (kGramLabelBits * n)) - 1);
    insert_shift = kGramLabelBits * (n - 1);
    length = n;
  }

  void roll(std::uint64_t label) noexcept {
    key = tag | (((key & body_mask) >> kGramLabelBits) |
                 (label << insert_shift));
  }
};

/// Drives the rolling update over one walk, invoking `emit(key, mult)`
/// once per window position. Inputs must already be validated.
///
/// `sizes` may be arbitrarily long and may repeat a size — the
/// reference counts each repeat as its own pass over the walk. Folding
/// repeats into a per-size multiplicity keeps the state bounded by the
/// kMaxGramLength distinct valid sizes (so the fixed arrays can never
/// overflow) while emitting the same totals: integer accumulation is
/// order-independent, so `emit(key, m)` equals m separate passes.
template <typename Emit>
void roll_walk(std::span<const cfg::Label> walk,
               std::span<const std::size_t> sizes, Emit&& emit) {
  RollingKey rolling[kMaxGramLength];
  std::uint32_t multiplicity[kMaxGramLength];
  std::size_t active = 0;
  for (std::size_t n : sizes) {
    if (walk.size() < n) continue;
    std::size_t s = 0;
    while (s < active && rolling[s].length != n) ++s;
    if (s == active) {
      rolling[active].init(n);
      multiplicity[active] = 0;
      ++active;
    }
    ++multiplicity[s];
  }
  if (active == 0) return;
  for (std::size_t p = 0; p < walk.size(); ++p) {
    const auto label = static_cast<std::uint64_t>(walk[p]);
    for (std::size_t s = 0; s < active; ++s) {
      RollingKey& r = rolling[s];
      r.roll(label);
      if (p + 1 >= r.length) emit(r.key, multiplicity[s]);
    }
  }
}

void count_grams_prevalidated(std::span<const cfg::Label> walk,
                              std::span<const std::size_t> sizes,
                              GramCounts& counts) {
  validate_walk(walk, sizes);
  roll_walk(walk, sizes, [&counts](GramKey key, std::uint32_t mult) {
    counts[key] += mult;
  });
}

/// Probe hash decorrelated from the raw key bits (which are highly
/// structured: small labels in fixed fields).
inline std::size_t probe_hash(GramKey key) noexcept {
  return static_cast<std::size_t>(math::split_mix64(key));
}

/// CHD family hash: bucket/slot assignment keyed by a salt.
inline std::uint64_t salted_hash(GramKey key, std::uint64_t salt) noexcept {
  return math::split_mix64(key ^ math::split_mix64(salt));
}

}  // namespace

GramKey pack_gram(std::span<const cfg::Label> labels) {
  if (labels.empty() || labels.size() > kMaxGramLength) {
    throw std::invalid_argument("pack_gram: gram length " +
                                std::to_string(labels.size()) +
                                " outside [1, " +
                                std::to_string(kMaxGramLength) + "]");
  }
  GramKey key = static_cast<std::uint64_t>(labels.size()) << kGramLengthShift;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] > kMaxGramLabel) {
      throw std::invalid_argument("pack_gram: label " +
                                  std::to_string(labels[i]) +
                                  " exceeds kMaxGramLabel");
    }
    key |= static_cast<std::uint64_t>(labels[i]) << (kGramLabelBits * i);
  }
  return key;
}

std::vector<cfg::Label> unpack_gram(GramKey key) {
  const std::size_t len = gram_length(key);
  std::vector<cfg::Label> labels(len);
  for (std::size_t i = 0; i < len; ++i) {
    labels[i] = static_cast<cfg::Label>((key >> (kGramLabelBits * i)) &
                                        kGramLabelMask);
  }
  return labels;
}

std::size_t gram_length(GramKey key) noexcept {
  return static_cast<std::size_t>(key >> kGramLengthShift);
}

void count_grams(std::span<const cfg::Label> walk,
                 std::span<const std::size_t> sizes, GramCounts& counts) {
  validate_sizes(sizes);
  count_grams_prevalidated(walk, sizes, counts);
}

GramCounts count_grams(const std::vector<std::vector<cfg::Label>>& walks,
                       std::span<const std::size_t> sizes) {
  validate_sizes(sizes);
  GramCounts counts;
  for (const auto& walk : walks) {
    count_grams_prevalidated(walk, sizes, counts);
  }
  return counts;
}

void count_grams_reference(std::span<const cfg::Label> walk,
                           std::span<const std::size_t> sizes,
                           GramCounts& counts) {
  for (std::size_t n : sizes) {
    if (n == 0 || n > kMaxGramLength) throw_bad_size(n);
    if (walk.size() < n) continue;
    for (std::size_t i = 0; i + n <= walk.size(); ++i) {
      counts[pack_gram(walk.subspan(i, n))] += 1;
    }
  }
}

std::uint64_t total_occurrences(const GramCounts& counts) {
  std::uint64_t total = 0;
  for (const auto& [key, count] : counts) total += count;
  return total;
}

std::string gram_to_string(GramKey key) {
  const auto labels = unpack_gram(key);
  std::string text;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) text += '-';
    text += std::to_string(labels[i]);
  }
  return text;
}

// ---------------------------------------------------------------------------
// FlatGramCounter

FlatGramCounter::FlatGramCounter(std::size_t expected_distinct) {
  std::size_t capacity = 16;
  // Target <= 70% load at the expected population.
  while (capacity * 7 < expected_distinct * 10) capacity <<= 1;
  keys_.assign(capacity, 0);
  vals_.assign(capacity, 0);
}

void FlatGramCounter::clear() noexcept {
  std::fill(keys_.begin(), keys_.end(), 0);
  size_ = 0;
  total_ = 0;
}

std::size_t FlatGramCounter::slot_for(GramKey key) const noexcept {
  const std::size_t mask = keys_.size() - 1;
  std::size_t slot = probe_hash(key) & mask;
  while (keys_[slot] != 0 && keys_[slot] != key) slot = (slot + 1) & mask;
  return slot;
}

void FlatGramCounter::grow(std::size_t min_capacity) {
  std::size_t capacity = keys_.empty() ? 16 : keys_.size();
  while (capacity < min_capacity) capacity <<= 1;
  std::vector<GramKey> old_keys = std::move(keys_);
  std::vector<std::uint32_t> old_vals = std::move(vals_);
  keys_.assign(capacity, 0);
  vals_.assign(capacity, 0);
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] == 0) continue;
    const std::size_t slot = slot_for(old_keys[i]);
    keys_[slot] = old_keys[i];
    vals_[slot] = old_vals[i];
  }
}

void FlatGramCounter::add(GramKey key, std::uint32_t count) {
  if (keys_.empty()) grow(16);
  std::size_t slot = slot_for(key);
  if (keys_[slot] == 0) {
    // Keep load factor <= 70%.
    if ((size_ + 1) * 10 > keys_.size() * 7) {
      grow(keys_.size() * 2);
      slot = slot_for(key);
    }
    keys_[slot] = key;
    vals_[slot] = 0;
    ++size_;
  }
  vals_[slot] += count;
  total_ += count;
}

void FlatGramCounter::count_walk(std::span<const cfg::Label> walk,
                                 std::span<const std::size_t> sizes) {
  validate_sizes(sizes);
  validate_walk(walk, sizes);
  roll_walk(walk, sizes,
            [this](GramKey key, std::uint32_t mult) { add(key, mult); });
}

void FlatGramCounter::export_into(GramCounts& out) const {
  for_each([&out](GramKey key, std::uint32_t count) { out[key] += count; });
}

GramCounts FlatGramCounter::to_counts() const {
  GramCounts out;
  out.reserve(size_);
  export_into(out);
  return out;
}

// ---------------------------------------------------------------------------
// PerfectGramHash

PerfectGramHash PerfectGramHash::build(std::span<const GramKey> keys) {
  PerfectGramHash hash;
  const std::size_t n = keys.size();
  if (n == 0) return hash;

  // Duplicates must be rejected before the seed search: two copies of
  // a key share every hash, so no displacement can ever separate them
  // and the retry loop below would never terminate.
  {
    std::vector<GramKey> sorted(keys.begin(), keys.end());
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      throw std::invalid_argument("PerfectGramHash: duplicate keys");
    }
  }

  // Roughly one bucket per 4 keys; displacement search handles the
  // collisions inside each bucket.
  const std::size_t bucket_count = (n + 3) / 4;

  for (std::uint64_t global_seed = 0x5eed;; ++global_seed) {
    std::vector<std::vector<std::uint32_t>> buckets(bucket_count);
    for (std::size_t i = 0; i < n; ++i) {
      if (keys[i] == 0) {
        throw std::invalid_argument("PerfectGramHash: key 0 is reserved");
      }
      buckets[salted_hash(keys[i], global_seed) % bucket_count].push_back(
          static_cast<std::uint32_t>(i));
    }

    // Largest buckets first: they have the fewest displacement options.
    std::vector<std::uint32_t> order(bucket_count);
    for (std::size_t b = 0; b < bucket_count; ++b) {
      order[b] = static_cast<std::uint32_t>(b);
    }
    std::sort(order.begin(), order.end(),
              [&buckets](std::uint32_t a, std::uint32_t b) {
                return buckets[a].size() > buckets[b].size();
              });

    std::vector<std::uint32_t> seeds(bucket_count, 0);
    std::vector<GramKey> slot_key(n, 0);
    std::vector<std::uint32_t> slot_index(n, 0);
    bool ok = true;

    std::vector<std::size_t> placed;
    placed.reserve(kMaxGramLength);
    for (std::uint32_t b : order) {
      const auto& bucket = buckets[b];
      if (bucket.empty()) break;  // sorted: the rest are empty too
      bool bucket_ok = false;
      for (std::uint32_t d = 1; d < (1U << 16); ++d) {
        placed.clear();
        bool fits = true;
        for (std::uint32_t idx : bucket) {
          const std::size_t slot =
              salted_hash(keys[idx], global_seed + d) % n;
          if (slot_key[slot] != 0) {
            fits = false;
            break;
          }
          bool dup = false;
          for (std::size_t p : placed) dup |= p == slot;
          if (dup) {
            fits = false;
            break;
          }
          placed.push_back(slot);
        }
        if (!fits) continue;
        for (std::size_t k = 0; k < bucket.size(); ++k) {
          slot_key[placed[k]] = keys[bucket[k]];
          slot_index[placed[k]] = bucket[k];
        }
        seeds[b] = d;
        bucket_ok = true;
        break;
      }
      if (!bucket_ok) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;  // retry with a fresh global seed

    // A left-over zero verification key would mean a duplicate input
    // key silently stole a slot.
    std::size_t filled = 0;
    for (GramKey k : slot_key) filled += k != 0;
    if (filled != n) {
      throw std::invalid_argument("PerfectGramHash: duplicate keys");
    }

    hash.seeds_ = std::move(seeds);
    hash.slot_key_ = std::move(slot_key);
    hash.slot_index_ = std::move(slot_index);
    hash.global_seed_ = global_seed;
    return hash;
  }
}

std::size_t PerfectGramHash::lookup(GramKey key) const noexcept {
  const std::size_t n = slot_key_.size();
  if (n == 0) return npos;
  const std::size_t bucket = salted_hash(key, global_seed_) % seeds_.size();
  const std::uint32_t d = seeds_[bucket];
  const std::size_t slot = salted_hash(key, global_seed_ + d) % n;
  return slot_key_[slot] == key ? slot_index_[slot] : npos;
}

// ---------------------------------------------------------------------------
// DirectGramTable

DirectGramTable DirectGramTable::build(std::span<const GramKey> keys) {
  DirectGramTable table;
  if (keys.empty()) return table;

  // ~25% load: next power of two >= 4 * n. Most counting-loop lookups
  // are out-of-vocabulary probes that must run to an empty slot, so
  // load factor matters more than table residency — but past 4x the
  // extra slots only add cache misses. Measured sweet spot on the
  // paper-default 500-gram vocabulary (2048 slots, 24 KiB).
  std::size_t capacity = 64;
  while (capacity < keys.size() * 4) capacity <<= 1;
  table.slot_key_.assign(capacity, 0);
  table.slot_index_.assign(capacity, 0);
  table.mask_ = capacity - 1;
  table.size_ = keys.size();

  for (std::size_t i = 0; i < keys.size(); ++i) {
    const GramKey key = keys[i];
    if (key == 0) {
      throw std::invalid_argument("DirectGramTable: key 0 is reserved");
    }
    std::uint64_t h = key * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    std::size_t slot = static_cast<std::size_t>(h) & table.mask_;
    while (table.slot_key_[slot] != 0) {
      if (table.slot_key_[slot] == key) {
        throw std::invalid_argument("DirectGramTable: duplicate keys");
      }
      slot = (slot + 1) & table.mask_;
    }
    table.slot_key_[slot] = key;
    table.slot_index_[slot] = static_cast<std::uint32_t>(i);
  }
  return table;
}

namespace {

/// Shared body of the two count_into_vocab overloads; `Index` is any
/// structure with lookup(key) -> index-or-npos over the vocabulary.
template <typename Index>
std::uint64_t count_into_vocab_impl(std::span<const cfg::Label> walk,
                                    std::span<const std::size_t> sizes,
                                    const Index& index,
                                    std::span<std::uint32_t> counts) {
  validate_sizes(sizes);
  validate_walk(walk, sizes);
  std::uint64_t windows = 0;
  roll_walk(walk, sizes,
            [&index, counts, &windows](GramKey key, std::uint32_t mult) {
              windows += mult;
              const std::size_t idx = index.lookup(key);
              if (idx != Index::npos) counts[idx] += mult;
            });
  return windows;
}

}  // namespace

std::uint64_t count_into_vocab(std::span<const cfg::Label> walk,
                               std::span<const std::size_t> sizes,
                               const PerfectGramHash& hash,
                               std::span<std::uint32_t> counts) {
  return count_into_vocab_impl(walk, sizes, hash, counts);
}

std::uint64_t count_into_vocab(std::span<const cfg::Label> walk,
                               std::span<const std::size_t> sizes,
                               const DirectGramTable& table,
                               std::span<std::uint32_t> counts) {
  return count_into_vocab_impl(walk, sizes, table, counts);
}

}  // namespace soteria::features
