#include "features/ngram.h"

#include <stdexcept>
#include <string>

namespace soteria::features {

namespace {

constexpr std::uint64_t kLabelBits = 14;
constexpr std::uint64_t kLabelMask = (1ULL << kLabelBits) - 1;
constexpr std::uint64_t kLengthShift = kLabelBits * kMaxGramLength;  // 56

}  // namespace

GramKey pack_gram(std::span<const cfg::Label> labels) {
  if (labels.empty() || labels.size() > kMaxGramLength) {
    throw std::invalid_argument("pack_gram: gram length " +
                                std::to_string(labels.size()) +
                                " outside [1, " +
                                std::to_string(kMaxGramLength) + "]");
  }
  GramKey key = static_cast<std::uint64_t>(labels.size()) << kLengthShift;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] > kMaxGramLabel) {
      throw std::invalid_argument("pack_gram: label " +
                                  std::to_string(labels[i]) +
                                  " exceeds kMaxGramLabel");
    }
    key |= static_cast<std::uint64_t>(labels[i]) << (kLabelBits * i);
  }
  return key;
}

std::vector<cfg::Label> unpack_gram(GramKey key) {
  const std::size_t len = gram_length(key);
  std::vector<cfg::Label> labels(len);
  for (std::size_t i = 0; i < len; ++i) {
    labels[i] = static_cast<cfg::Label>((key >> (kLabelBits * i)) &
                                        kLabelMask);
  }
  return labels;
}

std::size_t gram_length(GramKey key) noexcept {
  return static_cast<std::size_t>(key >> kLengthShift);
}

void count_grams(std::span<const cfg::Label> walk,
                 std::span<const std::size_t> sizes, GramCounts& counts) {
  for (std::size_t n : sizes) {
    if (n == 0 || n > kMaxGramLength) {
      throw std::invalid_argument("count_grams: gram size " +
                                  std::to_string(n) + " outside [1, " +
                                  std::to_string(kMaxGramLength) + "]");
    }
    if (walk.size() < n) continue;
    for (std::size_t i = 0; i + n <= walk.size(); ++i) {
      counts[pack_gram(walk.subspan(i, n))] += 1;
    }
  }
}

GramCounts count_grams(const std::vector<std::vector<cfg::Label>>& walks,
                       std::span<const std::size_t> sizes) {
  GramCounts counts;
  for (const auto& walk : walks) count_grams(walk, sizes, counts);
  return counts;
}

std::uint64_t total_occurrences(const GramCounts& counts) {
  std::uint64_t total = 0;
  for (const auto& [key, count] : counts) total += count;
  return total;
}

std::string gram_to_string(GramKey key) {
  const auto labels = unpack_gram(key);
  std::string text;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) text += '-';
    text += std::to_string(labels[i]);
  }
  return text;
}

}  // namespace soteria::features
