// Minimal binary (de)serialization helpers used for model and pipeline
// persistence. Streams are little-endian host format with explicit
// sizes; readers validate every length before allocating.
//
// Failures carry the core::Error taxonomy: write failures throw
// Error{kIoError}; truncated or implausible input throws
// Error{kCorruptModel}. Both are std::runtime_errors.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "soteria/error.h"

namespace soteria::io {

/// Hard cap on any single deserialized container, as a corruption guard.
inline constexpr std::uint64_t kMaxContainerElements = 1ULL << 32;

/// Writes a trivially copyable scalar.
template <typename T>
void write_scalar(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  if (!out) {
    throw core::Error(core::ErrorCode::kIoError, "binary_io: write failed");
  }
}

/// Reads a trivially copyable scalar.
template <typename T>
[[nodiscard]] T read_scalar(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) {
    throw core::Error(core::ErrorCode::kCorruptModel,
                      "binary_io: truncated stream");
  }
  return value;
}

/// Writes a vector of trivially copyable elements (length-prefixed).
template <typename T>
void write_vector(std::ostream& out, std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_scalar<std::uint64_t>(out, values.size());
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(T)));
  if (!out) {
    throw core::Error(core::ErrorCode::kIoError, "binary_io: write failed");
  }
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& values) {
  write_vector<T>(out, std::span<const T>(values));
}

/// Reads a length-prefixed vector.
template <typename T>
[[nodiscard]] std::vector<T> read_vector(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto count = read_scalar<std::uint64_t>(in);
  if (count > kMaxContainerElements) {
    throw core::Error(core::ErrorCode::kCorruptModel,
                      "binary_io: implausible container size " +
                          std::to_string(count));
  }
  std::vector<T> values(static_cast<std::size_t>(count));
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(T)));
  if (!in) {
    throw core::Error(core::ErrorCode::kCorruptModel,
                      "binary_io: truncated stream");
  }
  return values;
}

/// Writes / reads a length-prefixed string.
void write_string(std::ostream& out, const std::string& value);
[[nodiscard]] std::string read_string(std::istream& in);

}  // namespace soteria::io
