#include "io/binary_io.h"

namespace soteria::io {

void write_string(std::ostream& out, const std::string& value) {
  write_scalar<std::uint64_t>(out, value.size());
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
  if (!out) {
    throw core::Error(core::ErrorCode::kIoError, "binary_io: write failed");
  }
}

std::string read_string(std::istream& in) {
  const auto size = read_scalar<std::uint64_t>(in);
  if (size > kMaxContainerElements) {
    throw core::Error(core::ErrorCode::kCorruptModel,
                      "binary_io: implausible string size");
  }
  std::string value(static_cast<std::size_t>(size), '\0');
  in.read(value.data(), static_cast<std::streamsize>(size));
  if (!in) {
    throw core::Error(core::ErrorCode::kCorruptModel,
                      "binary_io: truncated stream");
  }
  return value;
}

}  // namespace soteria::io
