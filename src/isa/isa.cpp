#include "isa/isa.h"

#include <array>
#include <stdexcept>

namespace soteria::isa {

bool is_control_flow(Opcode op) noexcept {
  switch (op) {
    case Opcode::kJmp:
    case Opcode::kJz:
    case Opcode::kJnz:
    case Opcode::kJlt:
    case Opcode::kJge:
    case Opcode::kCall:
      return true;
    default:
      return false;
  }
}

bool is_conditional_branch(Opcode op) noexcept {
  switch (op) {
    case Opcode::kJz:
    case Opcode::kJnz:
    case Opcode::kJlt:
    case Opcode::kJge:
      return true;
    default:
      return false;
  }
}

bool ends_basic_block(Opcode op) noexcept {
  switch (op) {
    case Opcode::kJmp:
    case Opcode::kJz:
    case Opcode::kJnz:
    case Opcode::kJlt:
    case Opcode::kJge:
    case Opcode::kCall:
    case Opcode::kRet:
    case Opcode::kHalt:
      return true;
    default:
      return false;
  }
}

bool is_valid_opcode(std::uint8_t value) noexcept {
  switch (static_cast<Opcode>(value)) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kMovImm:
    case Opcode::kMovReg:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kXor:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kCmp:
    case Opcode::kCmpImm:
    case Opcode::kLoad:
    case Opcode::kStore:
    case Opcode::kPush:
    case Opcode::kPop:
    case Opcode::kJmp:
    case Opcode::kJz:
    case Opcode::kJnz:
    case Opcode::kJlt:
    case Opcode::kJge:
    case Opcode::kCall:
    case Opcode::kRet:
    case Opcode::kSyscall:
      return true;
  }
  return false;
}

std::string mnemonic(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
    case Opcode::kMovImm: return "mov";
    case Opcode::kMovReg: return "movr";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kXor: return "xor";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kCmp: return "cmp";
    case Opcode::kCmpImm: return "cmpi";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kPush: return "push";
    case Opcode::kPop: return "pop";
    case Opcode::kJmp: return "jmp";
    case Opcode::kJz: return "jz";
    case Opcode::kJnz: return "jnz";
    case Opcode::kJlt: return "jlt";
    case Opcode::kJge: return "jge";
    case Opcode::kCall: return "call";
    case Opcode::kRet: return "ret";
    case Opcode::kSyscall: return "syscall";
  }
  return "db";
}

std::array<std::uint8_t, kInstructionSize> encode(
    const Instruction& insn) noexcept {
  const auto uimm = static_cast<std::uint16_t>(insn.imm);
  return {static_cast<std::uint8_t>(insn.opcode), insn.reg,
          static_cast<std::uint8_t>(uimm & 0xFF),
          static_cast<std::uint8_t>(uimm >> 8)};
}

void encode_to(const Instruction& insn, std::vector<std::uint8_t>& out) {
  const auto bytes = encode(insn);
  out.insert(out.end(), bytes.begin(), bytes.end());
}

std::optional<Instruction> decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kInstructionSize) {
    throw std::invalid_argument("decode: need " +
                                std::to_string(kInstructionSize) +
                                " bytes, got " +
                                std::to_string(bytes.size()));
  }
  if (!is_valid_opcode(bytes[0])) return std::nullopt;
  Instruction insn;
  insn.opcode = static_cast<Opcode>(bytes[0]);
  insn.reg = bytes[1];
  insn.imm = static_cast<std::int16_t>(
      static_cast<std::uint16_t>(bytes[2]) |
      (static_cast<std::uint16_t>(bytes[3]) << 8));
  return insn;
}

std::vector<Instruction> disassemble(std::span<const std::uint8_t> image) {
  if (image.size() % kInstructionSize != 0) {
    throw std::invalid_argument(
        "disassemble: image size " + std::to_string(image.size()) +
        " is not a multiple of " + std::to_string(kInstructionSize));
  }
  std::vector<Instruction> out;
  out.reserve(image.size() / kInstructionSize);
  for (std::size_t off = 0; off < image.size(); off += kInstructionSize) {
    const auto insn = decode(image.subspan(off, kInstructionSize));
    if (insn.has_value()) {
      out.push_back(*insn);
    } else {
      // Inert data word: keep image length, never branches.
      Instruction data;
      data.opcode = Opcode::kNop;
      data.reg = image[off + 1];
      data.imm = static_cast<std::int16_t>(
          static_cast<std::uint16_t>(image[off + 2]) |
          (static_cast<std::uint16_t>(image[off + 3]) << 8));
      out.push_back(data);
    }
  }
  return out;
}

std::string to_string(const Instruction& insn, std::size_t index) {
  std::string text = mnemonic(insn.opcode);
  if (is_control_flow(insn.opcode)) {
    const auto target = static_cast<std::int64_t>(index) + 1 + insn.imm;
    text += " @" + std::to_string(target);
  } else if (insn.opcode != Opcode::kNop && insn.opcode != Opcode::kHalt &&
             insn.opcode != Opcode::kRet) {
    text += " r" + std::to_string(insn.reg) + ", " +
            std::to_string(insn.imm);
  }
  return text;
}

}  // namespace soteria::isa
