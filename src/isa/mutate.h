// Small program mutations over symbolic programs.
//
// Real IoT malware families are forks of a handful of released
// codebases (Gafgyt/BASHLITE, Mirai, Tsunami/Kaiten): samples within a
// family differ by configuration constants, a few added handlers, and
// compiler noise — not by wholesale restructuring. `mutate_program`
// models exactly that: given a family *template* program it applies
//   * immediate tweaks        (no CFG effect — config constants),
//   * straight-line insertions (block size changes, no new blocks),
//   * if-diamond insertions    (a couple of new blocks each),
//   * appended helper functions plus a call site (a small new lobe),
// so per-variant CFGs form tight clusters with small structural spread,
// the way the paper's corpus does.
#pragma once

#include "isa/assembler.h"
#include "math/rng.h"

namespace soteria::isa {

/// Mutation intensity knobs; counts are drawn uniformly in [min, max].
struct MutationConfig {
  int min_imm_tweaks = 2;
  int max_imm_tweaks = 10;
  int min_straight_insertions = 1;
  int max_straight_insertions = 4;
  int min_diamond_insertions = 0;
  int max_diamond_insertions = 2;
  int min_helper_functions = 0;
  int max_helper_functions = 1;
  int min_helper_ops = 2;     ///< straight ops inside an added helper
  int max_helper_ops = 5;
};

/// Throws std::invalid_argument on inverted ranges or negative minima.
void validate(const MutationConfig& config);

/// Returns a mutated copy of `program`. The result always assembles if
/// the input does. Deterministic given `rng`.
[[nodiscard]] AsmProgram mutate_program(const AsmProgram& program,
                                        const MutationConfig& config,
                                        math::Rng& rng);

}  // namespace soteria::isa
