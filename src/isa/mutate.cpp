#include "isa/mutate.h"

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace soteria::isa {

void validate(const MutationConfig& c) {
  auto check = [](int lo, int hi, const char* what) {
    if (lo < 0 || lo > hi) {
      throw std::invalid_argument(std::string("MutationConfig: bad ") +
                                  what + " range [" + std::to_string(lo) +
                                  ", " + std::to_string(hi) + "]");
    }
  };
  check(c.min_imm_tweaks, c.max_imm_tweaks, "imm-tweak");
  check(c.min_straight_insertions, c.max_straight_insertions,
        "straight-insertion");
  check(c.min_diamond_insertions, c.max_diamond_insertions,
        "diamond-insertion");
  check(c.min_helper_functions, c.max_helper_functions, "helper-function");
  if (c.min_helper_ops < 1 || c.min_helper_ops > c.max_helper_ops) {
    throw std::invalid_argument("MutationConfig: bad helper-op range");
  }
}

namespace {

constexpr Opcode kStraightOps[] = {Opcode::kMovImm, Opcode::kAdd,
                                   Opcode::kXor,    Opcode::kAnd,
                                   Opcode::kOr,     Opcode::kLoad,
                                   Opcode::kStore,  Opcode::kSyscall};

// Inserted code must not clobber live control state: r1 is the code
// generator's loop counter, r14/r15 are reserved by the obfuscation and
// GEA guards. Mutations write only r2..r13, like a compiler allocating
// around live ranges.
constexpr std::uint8_t kFirstScratchRegister = 2;
constexpr std::uint8_t kScratchRegisterCount = 12;

AsmItem straight_item(math::Rng& rng) {
  AsmItem item;
  item.kind = AsmItem::Kind::kInstruction;
  item.insn.opcode = kStraightOps[rng.index(std::size(kStraightOps))];
  item.insn.reg = static_cast<std::uint8_t>(
      kFirstScratchRegister + rng.index(kScratchRegisterCount));
  item.insn.imm = static_cast<std::int16_t>(rng.uniform_int(0, 255));
  return item;
}

}  // namespace

AsmProgram mutate_program(const AsmProgram& program,
                          const MutationConfig& config, math::Rng& rng) {
  validate(config);
  const auto& items = program.items();

  // Instruction positions (insertions only go before instructions, so a
  // label definition keeps binding to the instruction after it).
  // Positions directly after a cmp/cmpi are excluded: an insertion
  // there could clobber the flags a following conditional branch reads,
  // changing program behaviour (mutations must preserve executability
  // and rough semantics, like real malware forks do).
  std::vector<std::size_t> instruction_positions;
  const Instruction* previous_instruction = nullptr;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].kind == AsmItem::Kind::kLabelDef) continue;
    const bool after_compare =
        previous_instruction != nullptr &&
        (previous_instruction->opcode == Opcode::kCmp ||
         previous_instruction->opcode == Opcode::kCmpImm);
    if (!after_compare) instruction_positions.push_back(i);
    previous_instruction = &items[i].insn;
  }

  // Planned insertions: item index -> sequences to splice in before it.
  std::map<std::size_t, std::vector<std::vector<AsmItem>>> insertions;
  std::size_t mutation_label = 0;
  const auto fresh = [&mutation_label](const char* prefix) {
    return std::string("mut") + prefix + "$" +
           std::to_string(mutation_label++);
  };

  if (!instruction_positions.empty()) {
    const auto pick_position = [&] {
      return instruction_positions[rng.index(instruction_positions.size())];
    };

    const int straight = static_cast<int>(rng.uniform_int(
        config.min_straight_insertions, config.max_straight_insertions));
    for (int i = 0; i < straight; ++i) {
      insertions[pick_position()].push_back({straight_item(rng)});
    }

    const int diamonds = static_cast<int>(rng.uniform_int(
        config.min_diamond_insertions, config.max_diamond_insertions));
    for (int i = 0; i < diamonds; ++i) {
      const std::string skip = fresh("skip");
      std::vector<AsmItem> seq;
      AsmItem cmp;
      cmp.kind = AsmItem::Kind::kInstruction;
      cmp.insn = Instruction{
          Opcode::kCmpImm,
          static_cast<std::uint8_t>(kFirstScratchRegister +
                                    rng.index(kScratchRegisterCount)),
          static_cast<std::int16_t>(rng.uniform_int(0, 99))};
      seq.push_back(cmp);
      AsmItem branch;
      branch.kind = AsmItem::Kind::kLabelRef;
      branch.insn = Instruction{Opcode::kJz, 0, 0};
      branch.label = skip;
      seq.push_back(branch);
      const int body = static_cast<int>(rng.uniform_int(1, 3));
      for (int b = 0; b < body; ++b) seq.push_back(straight_item(rng));
      AsmItem def;
      def.kind = AsmItem::Kind::kLabelDef;
      def.label = skip;
      seq.push_back(def);
      insertions[pick_position()].push_back(std::move(seq));
    }

    const int helpers = static_cast<int>(rng.uniform_int(
        config.min_helper_functions, config.max_helper_functions));
    for (int i = 0; i < helpers; ++i) {
      const std::string name = fresh("fn");
      AsmItem call;
      call.kind = AsmItem::Kind::kLabelRef;
      call.insn = Instruction{Opcode::kCall, 0, 0};
      call.label = name;
      insertions[pick_position()].push_back({call});
      // The helper body is appended after the last item.
      std::vector<AsmItem> body;
      AsmItem def;
      def.kind = AsmItem::Kind::kLabelDef;
      def.label = name;
      body.push_back(def);
      const int ops = static_cast<int>(
          rng.uniform_int(config.min_helper_ops, config.max_helper_ops));
      for (int b = 0; b < ops; ++b) body.push_back(straight_item(rng));
      AsmItem ret;
      ret.kind = AsmItem::Kind::kInstruction;
      ret.insn = Instruction{Opcode::kRet, 0, 0};
      body.push_back(ret);
      insertions[items.size()].push_back(std::move(body));
    }
  }

  // Immediate tweaks only touch instructions whose immediate is a true
  // data constant. Register-register ALU ops encode their *source
  // register* in the immediate (tweaking one rewires dataflow and can
  // break loop decrements), and cmp immediates feed branch decisions —
  // both are excluded so mutated programs keep terminating.
  const auto is_tweakable = [](Opcode op) {
    switch (op) {
      case Opcode::kMovImm:
      case Opcode::kLoad:
      case Opcode::kStore:
      case Opcode::kSyscall:
        return true;
      default:
        return false;
    }
  };
  std::vector<std::size_t> tweakable;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].kind == AsmItem::Kind::kInstruction &&
        is_tweakable(items[i].insn.opcode)) {
      tweakable.push_back(i);
    }
  }
  std::vector<std::pair<std::size_t, std::int16_t>> tweaks;
  if (!tweakable.empty()) {
    const int count = static_cast<int>(
        rng.uniform_int(config.min_imm_tweaks, config.max_imm_tweaks));
    for (int i = 0; i < count; ++i) {
      tweaks.emplace_back(tweakable[rng.index(tweakable.size())],
                          static_cast<std::int16_t>(rng.uniform_int(0, 255)));
    }
  }

  // Rebuild with splices applied.
  AsmProgram mutated;
  const auto emit_item = [&mutated](const AsmItem& item) {
    switch (item.kind) {
      case AsmItem::Kind::kInstruction:
        mutated.emit(item.insn);
        break;
      case AsmItem::Kind::kLabelRef:
        mutated.emit_branch(item.insn.opcode, item.label, item.insn.reg);
        break;
      case AsmItem::Kind::kLabelDef:
        mutated.define_label(item.label);
        break;
    }
  };
  for (std::size_t i = 0; i <= items.size(); ++i) {
    if (const auto it = insertions.find(i); it != insertions.end()) {
      for (const auto& seq : it->second) {
        for (const auto& item : seq) emit_item(item);
      }
    }
    if (i == items.size()) break;
    AsmItem item = items[i];
    for (const auto& [index, imm] : tweaks) {
      if (index == i) item.insn.imm = imm;
    }
    emit_item(item);
  }
  return mutated;
}

}  // namespace soteria::isa
