// Two-pass assembler: symbolic programs (instructions + labels) down to
// SIR-32 machine code. The code generators build `AsmProgram`s; the
// assembler resolves label references into signed instruction-relative
// offsets and emits the flat binary image the extractor consumes.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/isa.h"

namespace soteria::isa {

/// One assembly item: either a concrete instruction, an instruction
/// whose immediate is a pending label reference, or a label definition.
struct AsmItem {
  enum class Kind { kInstruction, kLabelRef, kLabelDef };

  Kind kind = Kind::kInstruction;
  Instruction insn;    ///< valid for kInstruction and kLabelRef
  std::string label;   ///< target label (kLabelRef) or name (kLabelDef)
};

/// A symbolic program under construction.
class AsmProgram {
 public:
  /// Appends a concrete instruction.
  void emit(Instruction insn);
  void emit(Opcode op, std::uint8_t reg = 0, std::int16_t imm = 0);

  /// Appends a control-flow instruction targeting `label`.
  void emit_branch(Opcode op, std::string label, std::uint8_t reg = 0);

  /// Defines `label` at the current position. Throws
  /// std::invalid_argument on duplicate definition.
  void define_label(std::string label);

  /// Generates a fresh unique label with the given prefix.
  [[nodiscard]] std::string fresh_label(const std::string& prefix);

  /// Number of emitted instructions (labels excluded).
  [[nodiscard]] std::size_t instruction_count() const noexcept;

  [[nodiscard]] const std::vector<AsmItem>& items() const noexcept {
    return items_;
  }

  /// Appends all of `other`'s items (labels must not collide; the caller
  /// is expected to use fresh_label()-style namespacing).
  void append(const AsmProgram& other);

 private:
  std::vector<AsmItem> items_;
  std::unordered_map<std::string, bool> defined_;
  std::size_t next_label_ = 0;
};

/// Assembles to a flat binary image. Throws std::invalid_argument for
/// undefined or duplicate labels and std::out_of_range if a relative
/// offset overflows the 16-bit immediate.
[[nodiscard]] std::vector<std::uint8_t> assemble(const AsmProgram& program);

}  // namespace soteria::isa
