// Structured random program generation.
//
// `generate_program` builds a whole synthetic firmware image: a main
// entry function plus a call graph of helper functions, each assembled
// from structured constructs (straight-line blocks, if/else diamonds,
// while loops, switch dispatch chains, call sites). A `CodeGenProfile`
// controls the mix; the dataset module instantiates one profile per
// malware family so that CFG *shape* distributions differ by class,
// which is all Soteria's features ever observe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/assembler.h"
#include "math/rng.h"

namespace soteria::isa {

/// Knobs controlling the control-flow idioms of generated programs.
/// All probabilities are in [0, 1]; construct-kind probabilities are
/// normalized internally, so they need not sum to 1.
struct CodeGenProfile {
  std::string name = "generic";

  int min_functions = 4;       ///< total functions incl. main
  int max_functions = 20;
  int min_constructs = 2;      ///< structured constructs per function
  int max_constructs = 6;
  int min_straight = 1;        ///< ALU/mem ops per straight-line block
  int max_straight = 4;

  double straight_weight = 1.0;  ///< plain basic block
  double branch_weight = 1.0;    ///< if/else diamond
  double loop_weight = 0.5;      ///< while loop
  double switch_weight = 0.2;    ///< compare/branch dispatch chain

  int min_switch_cases = 3;
  int max_switch_cases = 6;

  double nest_probability = 0.3;   ///< chance a branch/loop body nests
  int max_nesting_depth = 3;
  double call_probability = 0.3;   ///< chance a block ends in a call
  double early_ret_probability = 0.05;
};

/// Throws std::invalid_argument if the profile is inconsistent
/// (min > max, probabilities outside [0,1], no positive construct
/// weight).
void validate(const CodeGenProfile& profile);

/// Generates a symbolic program. Function 0 (the image entry at offset
/// 0) is main; every generated function is reachable through the call
/// graph. Deterministic given `rng`'s state.
[[nodiscard]] AsmProgram generate_program(const CodeGenProfile& profile,
                                          math::Rng& rng);

/// Convenience: generate + assemble.
[[nodiscard]] std::vector<std::uint8_t> generate_binary(
    const CodeGenProfile& profile, math::Rng& rng);

}  // namespace soteria::isa
