// SIR-32: a small fixed-width instruction set standing in for the ARM/
// MIPS firmware the paper disassembled with radare2.
//
// Every instruction is exactly 4 bytes:
//   byte 0: opcode
//   byte 1: primary register operand (dst / condition source)
//   bytes 2-3: 16-bit little-endian immediate; for control-flow opcodes
//              this is a *signed instruction-relative* offset measured
//              from the following instruction.
//
// The fixed width keeps the disassembler a linear sweep (like radare2's
// default analysis on these firmwares), so basic-block leader detection
// is exact and the CFG extraction code path is faithful.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace soteria::isa {

/// Instruction width in bytes. All encodings are fixed width.
inline constexpr std::size_t kInstructionSize = 4;

/// Number of general-purpose registers (r0..r15).
inline constexpr std::uint8_t kRegisterCount = 16;

/// SIR-32 opcodes. Values are part of the binary format; do not reorder.
enum class Opcode : std::uint8_t {
  kNop = 0x00,
  kHalt = 0x01,
  kMovImm = 0x10,  ///< rA = imm
  kMovReg = 0x11,  ///< rA = r(imm & 0xF)
  kAdd = 0x12,     ///< rA += r(imm & 0xF)
  kSub = 0x13,
  kMul = 0x14,
  kXor = 0x15,
  kAnd = 0x16,
  kOr = 0x17,
  kShl = 0x18,
  kShr = 0x19,
  kCmp = 0x20,   ///< flags = rA <=> r(imm & 0xF)
  kCmpImm = 0x21,
  kLoad = 0x30,   ///< rA = mem[r(imm & 0xF) + (imm >> 4)]
  kStore = 0x31,
  kPush = 0x32,
  kPop = 0x33,
  kJmp = 0x40,   ///< unconditional, relative
  kJz = 0x41,    ///< branch if zero flag
  kJnz = 0x42,
  kJlt = 0x43,
  kJge = 0x44,
  kCall = 0x50,  ///< relative call
  kRet = 0x51,
  kSyscall = 0x60,  ///< imm selects the service (net/io/proc)
};

/// True for opcodes whose immediate is a control-flow target.
[[nodiscard]] bool is_control_flow(Opcode op) noexcept;

/// True for conditional branches (fall-through + target successors).
[[nodiscard]] bool is_conditional_branch(Opcode op) noexcept;

/// True for opcodes that terminate a basic block.
[[nodiscard]] bool ends_basic_block(Opcode op) noexcept;

/// True if `value` encodes a known opcode.
[[nodiscard]] bool is_valid_opcode(std::uint8_t value) noexcept;

/// Mnemonic for diagnostics/disassembly listings.
[[nodiscard]] std::string mnemonic(Opcode op);

/// One decoded SIR-32 instruction.
struct Instruction {
  Opcode opcode = Opcode::kNop;
  std::uint8_t reg = 0;     ///< primary register operand
  std::int16_t imm = 0;     ///< immediate / relative target offset

  [[nodiscard]] bool operator==(const Instruction&) const = default;
};

/// Encodes one instruction into its 4-byte form.
[[nodiscard]] std::array<std::uint8_t, kInstructionSize> encode(
    const Instruction& insn) noexcept;

/// Appends the encoding of `insn` to `out`.
void encode_to(const Instruction& insn, std::vector<std::uint8_t>& out);

/// Decodes the 4 bytes at `bytes`. Returns nullopt for unknown opcodes
/// (callers treat such words as inert data). Throws
/// std::invalid_argument if fewer than 4 bytes are supplied.
[[nodiscard]] std::optional<Instruction> decode(
    std::span<const std::uint8_t> bytes);

/// Decodes a whole image by linear sweep; unknown words decode to kNop
/// with the raw value preserved in `imm` so the image round-trips in
/// length. Throws std::invalid_argument if the image size is not a
/// multiple of the instruction width.
[[nodiscard]] std::vector<Instruction> disassemble(
    std::span<const std::uint8_t> image);

/// Renders one instruction as assembly text, with `index` used to print
/// absolute targets for control flow.
[[nodiscard]] std::string to_string(const Instruction& insn,
                                    std::size_t index);

}  // namespace soteria::isa
