#include "isa/vm.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace soteria::isa {

const char* vm_status_name(VmStatus status) noexcept {
  switch (status) {
    case VmStatus::kHalted: return "halted";
    case VmStatus::kStepLimit: return "step-limit";
    case VmStatus::kFault: return "fault";
  }
  return "unknown";
}

namespace {

struct Machine {
  std::array<std::int32_t, kRegisterCount> registers{};
  std::vector<std::int32_t> memory;
  std::vector<std::int32_t> data_stack;
  std::vector<std::size_t> call_stack;
  bool zero_flag = false;
  bool negative_flag = false;
};

}  // namespace

VmResult execute(std::span<const std::uint8_t> image,
                 const VmConfig& config) {
  const auto program = disassemble(image);  // validates size/alignment
  if (program.empty()) {
    throw std::invalid_argument("execute: empty image");
  }

  Machine machine;
  machine.memory.assign(config.memory_words, 0);

  VmResult result;
  std::size_t pc = 0;
  std::vector<std::uint64_t> visit_counts;
  if (config.record_hotspots) visit_counts.assign(program.size(), 0);

  const auto finalize = [&](VmResult& r) -> VmResult& {
    if (config.record_hotspots) {
      std::vector<std::pair<std::size_t, std::uint64_t>> ranked;
      for (std::size_t i = 0; i < visit_counts.size(); ++i) {
        if (visit_counts[i] > 0) ranked.emplace_back(i, visit_counts[i]);
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) {
                  return a.second > b.second;
                });
      if (ranked.size() > config.hotspot_count) {
        ranked.resize(config.hotspot_count);
      }
      r.hotspots = std::move(ranked);
    }
    return r;
  };

  const auto fault = [&](std::size_t index) -> VmResult {
    result.status = VmStatus::kFault;
    result.faulting_index = index;
    return finalize(result);
  };

  while (result.steps < config.max_steps) {
    if (pc >= program.size()) return fault(pc);
    const Instruction& insn = program[pc];
    const std::size_t current = pc;
    if (config.record_hotspots) ++visit_counts[current];
    ++result.steps;
    ++pc;

    const auto reg_a = static_cast<std::size_t>(insn.reg % kRegisterCount);
    const auto reg_b =
        static_cast<std::size_t>(insn.imm & (kRegisterCount - 1));
    auto& ra = machine.registers[reg_a];
    const std::int32_t rb = machine.registers[reg_b];

    const auto branch_to = [&](std::size_t from) -> bool {
      const auto target = static_cast<std::int64_t>(from) + 1 + insn.imm;
      if (target < 0 ||
          target >= static_cast<std::int64_t>(program.size())) {
        return false;
      }
      pc = static_cast<std::size_t>(target);
      return true;
    };

    switch (insn.opcode) {
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        result.status = VmStatus::kHalted;
        return finalize(result);
      case Opcode::kMovImm:
        ra = insn.imm;
        break;
      case Opcode::kMovReg:
        ra = rb;
        break;
      case Opcode::kAdd:
        ra = static_cast<std::int32_t>(static_cast<std::uint32_t>(ra) +
                                       static_cast<std::uint32_t>(rb));
        break;
      case Opcode::kSub:
        ra = static_cast<std::int32_t>(static_cast<std::uint32_t>(ra) -
                                       static_cast<std::uint32_t>(rb));
        break;
      case Opcode::kMul:
        ra = static_cast<std::int32_t>(static_cast<std::uint32_t>(ra) *
                                       static_cast<std::uint32_t>(rb));
        break;
      case Opcode::kXor:
        ra ^= rb;
        break;
      case Opcode::kAnd:
        ra &= rb;
        break;
      case Opcode::kOr:
        ra |= rb;
        break;
      case Opcode::kShl:
        ra = static_cast<std::int32_t>(static_cast<std::uint32_t>(ra)
                                       << (static_cast<std::uint32_t>(rb) &
                                           31U));
        break;
      case Opcode::kShr:
        ra = static_cast<std::int32_t>(static_cast<std::uint32_t>(ra) >>
                                       (static_cast<std::uint32_t>(rb) &
                                        31U));
        break;
      case Opcode::kCmp: {
        const std::int64_t diff =
            static_cast<std::int64_t>(ra) - static_cast<std::int64_t>(rb);
        machine.zero_flag = diff == 0;
        machine.negative_flag = diff < 0;
        break;
      }
      case Opcode::kCmpImm: {
        const std::int64_t diff = static_cast<std::int64_t>(ra) - insn.imm;
        machine.zero_flag = diff == 0;
        machine.negative_flag = diff < 0;
        break;
      }
      case Opcode::kLoad: {
        const auto address = static_cast<std::size_t>(
            static_cast<std::uint32_t>(rb + insn.imm)) %
                             machine.memory.size();
        ra = machine.memory[address];
        break;
      }
      case Opcode::kStore: {
        const auto address = static_cast<std::size_t>(
            static_cast<std::uint32_t>(rb + insn.imm)) %
                             machine.memory.size();
        machine.memory[address] = ra;
        break;
      }
      case Opcode::kPush:
        if (machine.data_stack.size() >= config.stack_limit) {
          return fault(current);
        }
        machine.data_stack.push_back(ra);
        break;
      case Opcode::kPop:
        if (machine.data_stack.empty()) return fault(current);
        ra = machine.data_stack.back();
        machine.data_stack.pop_back();
        break;
      case Opcode::kJmp:
        if (!branch_to(current)) return fault(current);
        break;
      case Opcode::kJz:
        if (machine.zero_flag && !branch_to(current)) return fault(current);
        break;
      case Opcode::kJnz:
        if (!machine.zero_flag && !branch_to(current)) {
          return fault(current);
        }
        break;
      case Opcode::kJlt:
        if (machine.negative_flag && !branch_to(current)) {
          return fault(current);
        }
        break;
      case Opcode::kJge:
        if (!machine.negative_flag && !branch_to(current)) {
          return fault(current);
        }
        break;
      case Opcode::kCall:
        if (machine.call_stack.size() >= config.stack_limit) {
          return fault(current);
        }
        machine.call_stack.push_back(pc);
        if (!branch_to(current)) return fault(current);
        result.max_call_depth =
            std::max<std::uint64_t>(result.max_call_depth,
                                    machine.call_stack.size());
        break;
      case Opcode::kRet:
        if (machine.call_stack.empty()) return fault(current);
        pc = machine.call_stack.back();
        machine.call_stack.pop_back();
        break;
      case Opcode::kSyscall:
        ++result.syscalls;
        break;
    }
  }
  result.status = VmStatus::kStepLimit;
  return finalize(result);
}

}  // namespace soteria::isa
