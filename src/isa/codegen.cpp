#include "isa/codegen.h"

#include <stdexcept>

namespace soteria::isa {

namespace {

constexpr std::uint8_t kTempReg = 1;  // loop counters / switch selector

/// Generation context threaded through the recursive construct emitter.
struct GenContext {
  const CodeGenProfile& profile;
  math::Rng& rng;
  AsmProgram& program;
  std::vector<std::vector<int>>& pending_calls;  // per function
  int current_function = 0;
};

std::string function_label(int index) {
  return "fn" + std::to_string(index);
}

void emit_random_alu(GenContext& ctx) {
  // kPush/kPop are deliberately excluded: an unpaired pop faults the
  // VM, and generated firmware must always execute cleanly (the
  // paper's practicality requirement, enforced by tests via
  // isa::execute).
  static constexpr Opcode kAluOps[] = {
      Opcode::kMovImm, Opcode::kMovReg, Opcode::kAdd,  Opcode::kSub,
      Opcode::kMul,    Opcode::kXor,    Opcode::kAnd,  Opcode::kOr,
      Opcode::kShl,    Opcode::kShr,    Opcode::kLoad, Opcode::kStore,
      Opcode::kSyscall};
  const Opcode op =
      kAluOps[ctx.rng.index(std::size(kAluOps))];
  const auto reg =
      static_cast<std::uint8_t>(ctx.rng.index(kRegisterCount));
  const auto imm = static_cast<std::int16_t>(ctx.rng.uniform_int(0, 255));
  ctx.program.emit(op, reg, imm);
}

// Pops and emits one pending mandatory call for the current function,
// if any remain; otherwise emits a call to a random *later* function.
// Calls only ever target higher indices, so the call graph is acyclic
// and every generated program terminates (isa::execute relies on this).
void emit_call_site(GenContext& ctx, int function_count) {
  auto& pending = ctx.pending_calls[ctx.current_function];
  int target;
  if (!pending.empty()) {
    target = pending.back();
    pending.pop_back();
  } else {
    const int first_later = ctx.current_function + 1;
    if (first_later >= function_count) return;
    target = static_cast<int>(
        ctx.rng.uniform_int(first_later, function_count - 1));
  }
  ctx.program.emit_branch(Opcode::kCall, function_label(target));
}

void emit_straight_block(GenContext& ctx) {
  const int ops = static_cast<int>(ctx.rng.uniform_int(
      ctx.profile.min_straight, ctx.profile.max_straight));
  for (int i = 0; i < ops; ++i) emit_random_alu(ctx);
}

void emit_construct(GenContext& ctx, int function_count, int depth);

// Body of a branch arm / loop / switch case: either a nested construct
// or a straight-line block.
void emit_body(GenContext& ctx, int function_count, int depth) {
  if (depth < ctx.profile.max_nesting_depth &&
      ctx.rng.bernoulli(ctx.profile.nest_probability)) {
    emit_construct(ctx, function_count, depth + 1);
  } else {
    emit_straight_block(ctx);
  }
  if (ctx.rng.bernoulli(ctx.profile.call_probability)) {
    emit_call_site(ctx, function_count);
  }
}

void emit_branch_diamond(GenContext& ctx, int function_count, int depth) {
  const std::string else_l = ctx.program.fresh_label("else");
  const std::string end_l = ctx.program.fresh_label("endif");
  ctx.program.emit(Opcode::kCmpImm, kTempReg,
                   static_cast<std::int16_t>(ctx.rng.uniform_int(0, 99)));
  ctx.program.emit_branch(Opcode::kJz, else_l);
  emit_body(ctx, function_count, depth);
  if (ctx.rng.bernoulli(ctx.profile.early_ret_probability) &&
      ctx.current_function != 0) {
    ctx.program.emit(Opcode::kRet);
  } else {
    ctx.program.emit_branch(Opcode::kJmp, end_l);
  }
  ctx.program.define_label(else_l);
  emit_body(ctx, function_count, depth);
  ctx.program.define_label(end_l);
}

void emit_loop(GenContext& ctx, int function_count, int depth) {
  const std::string head_l = ctx.program.fresh_label("loop");
  const std::string end_l = ctx.program.fresh_label("endloop");
  ctx.program.emit(Opcode::kMovImm, kTempReg,
                   static_cast<std::int16_t>(ctx.rng.uniform_int(1, 64)));
  ctx.program.define_label(head_l);
  ctx.program.emit(Opcode::kCmpImm, kTempReg, 0);
  ctx.program.emit_branch(Opcode::kJz, end_l);
  emit_body(ctx, function_count, depth);
  ctx.program.emit(Opcode::kSub, kTempReg, 1);
  ctx.program.emit_branch(Opcode::kJmp, head_l);
  ctx.program.define_label(end_l);
}

void emit_switch(GenContext& ctx, int function_count, int depth) {
  const std::string end_l = ctx.program.fresh_label("endswitch");
  const int cases = static_cast<int>(ctx.rng.uniform_int(
      ctx.profile.min_switch_cases, ctx.profile.max_switch_cases));
  for (int c = 0; c < cases; ++c) {
    const std::string next_l = ctx.program.fresh_label("case");
    ctx.program.emit(Opcode::kCmpImm, kTempReg,
                     static_cast<std::int16_t>(c));
    ctx.program.emit_branch(Opcode::kJnz, next_l);
    emit_body(ctx, function_count, depth);
    ctx.program.emit_branch(Opcode::kJmp, end_l);
    ctx.program.define_label(next_l);
  }
  emit_straight_block(ctx);  // default arm
  ctx.program.define_label(end_l);
}

void emit_construct(GenContext& ctx, int function_count, int depth) {
  const double total = ctx.profile.straight_weight +
                       ctx.profile.branch_weight + ctx.profile.loop_weight +
                       ctx.profile.switch_weight;
  double pick = ctx.rng.uniform(0.0, total);
  if ((pick -= ctx.profile.straight_weight) < 0.0) {
    emit_straight_block(ctx);
    if (ctx.rng.bernoulli(ctx.profile.call_probability)) {
      emit_call_site(ctx, function_count);
    }
  } else if ((pick -= ctx.profile.branch_weight) < 0.0) {
    emit_branch_diamond(ctx, function_count, depth);
  } else if ((pick -= ctx.profile.loop_weight) < 0.0) {
    emit_loop(ctx, function_count, depth);
  } else {
    emit_switch(ctx, function_count, depth);
  }
}

}  // namespace

void validate(const CodeGenProfile& p) {
  auto check_range = [](int lo, int hi, const char* what) {
    if (lo < 1 || lo > hi) {
      throw std::invalid_argument(std::string("CodeGenProfile: bad ") +
                                  what + " range [" + std::to_string(lo) +
                                  ", " + std::to_string(hi) + "]");
    }
  };
  check_range(p.min_functions, p.max_functions, "function");
  check_range(p.min_constructs, p.max_constructs, "construct");
  check_range(p.min_straight, p.max_straight, "straight-block");
  check_range(p.min_switch_cases, p.max_switch_cases, "switch-case");
  auto check_prob = [](double v, const char* what) {
    if (v < 0.0 || v > 1.0) {
      throw std::invalid_argument(std::string("CodeGenProfile: ") + what +
                                  " outside [0,1]");
    }
  };
  check_prob(p.nest_probability, "nest_probability");
  check_prob(p.call_probability, "call_probability");
  check_prob(p.early_ret_probability, "early_ret_probability");
  const double total = p.straight_weight + p.branch_weight +
                       p.loop_weight + p.switch_weight;
  if (p.straight_weight < 0.0 || p.branch_weight < 0.0 ||
      p.loop_weight < 0.0 || p.switch_weight < 0.0 || total <= 0.0) {
    throw std::invalid_argument(
        "CodeGenProfile: construct weights must be non-negative with a "
        "positive sum");
  }
  if (p.max_nesting_depth < 0) {
    throw std::invalid_argument("CodeGenProfile: negative nesting depth");
  }
}

AsmProgram generate_program(const CodeGenProfile& profile, math::Rng& rng) {
  validate(profile);
  const int function_count = static_cast<int>(
      rng.uniform_int(profile.min_functions, profile.max_functions));

  // Call plan: every function i > 0 is called from some j < i, making
  // the whole call graph reachable from main (function 0).
  std::vector<std::vector<int>> pending_calls(function_count);
  for (int i = 1; i < function_count; ++i) {
    const int caller = static_cast<int>(rng.index(i));
    pending_calls[caller].push_back(i);
  }

  AsmProgram program;
  GenContext ctx{profile, rng, program, pending_calls, 0};

  for (int f = 0; f < function_count; ++f) {
    ctx.current_function = f;
    program.define_label(function_label(f));
    const int constructs = static_cast<int>(rng.uniform_int(
        profile.min_constructs, profile.max_constructs));
    for (int c = 0; c < constructs; ++c) {
      emit_construct(ctx, function_count, 0);
    }
    // Flush mandatory calls that body generation did not consume, so the
    // call plan's reachability guarantee holds.
    while (!pending_calls[f].empty()) {
      const int target = pending_calls[f].back();
      pending_calls[f].pop_back();
      program.emit_branch(Opcode::kCall, function_label(target));
    }
    program.emit(f == 0 ? Opcode::kHalt : Opcode::kRet);
  }
  return program;
}

std::vector<std::uint8_t> generate_binary(const CodeGenProfile& profile,
                                          math::Rng& rng) {
  return assemble(generate_program(profile, rng));
}

}  // namespace soteria::isa
