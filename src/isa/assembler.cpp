#include "isa/assembler.h"

#include <limits>
#include <stdexcept>

namespace soteria::isa {

void AsmProgram::emit(Instruction insn) {
  AsmItem item;
  item.kind = AsmItem::Kind::kInstruction;
  item.insn = insn;
  items_.push_back(std::move(item));
}

void AsmProgram::emit(Opcode op, std::uint8_t reg, std::int16_t imm) {
  emit(Instruction{op, reg, imm});
}

void AsmProgram::emit_branch(Opcode op, std::string label,
                             std::uint8_t reg) {
  if (!is_control_flow(op)) {
    throw std::invalid_argument("emit_branch: " + mnemonic(op) +
                                " is not a control-flow opcode");
  }
  AsmItem item;
  item.kind = AsmItem::Kind::kLabelRef;
  item.insn = Instruction{op, reg, 0};
  item.label = std::move(label);
  items_.push_back(std::move(item));
}

void AsmProgram::define_label(std::string label) {
  auto [it, inserted] = defined_.emplace(label, true);
  if (!inserted) {
    throw std::invalid_argument("define_label: duplicate label '" + label +
                                "'");
  }
  AsmItem item;
  item.kind = AsmItem::Kind::kLabelDef;
  item.label = std::move(label);
  items_.push_back(std::move(item));
}

std::string AsmProgram::fresh_label(const std::string& prefix) {
  return prefix + "$" + std::to_string(next_label_++);
}

std::size_t AsmProgram::instruction_count() const noexcept {
  std::size_t n = 0;
  for (const auto& item : items_) {
    if (item.kind != AsmItem::Kind::kLabelDef) ++n;
  }
  return n;
}

void AsmProgram::append(const AsmProgram& other) {
  for (const auto& item : other.items_) {
    if (item.kind == AsmItem::Kind::kLabelDef) {
      define_label(item.label);
    } else {
      items_.push_back(item);
    }
  }
  next_label_ = std::max(next_label_, other.next_label_);
}

std::vector<std::uint8_t> assemble(const AsmProgram& program) {
  // Pass 1: assign instruction indices to labels.
  std::unordered_map<std::string, std::size_t> label_index;
  std::size_t index = 0;
  for (const auto& item : program.items()) {
    if (item.kind == AsmItem::Kind::kLabelDef) {
      if (!label_index.emplace(item.label, index).second) {
        throw std::invalid_argument("assemble: duplicate label '" +
                                    item.label + "'");
      }
    } else {
      ++index;
    }
  }

  // Pass 2: emit, resolving label references to relative offsets.
  std::vector<std::uint8_t> image;
  image.reserve(index * kInstructionSize);
  index = 0;
  for (const auto& item : program.items()) {
    if (item.kind == AsmItem::Kind::kLabelDef) continue;
    Instruction insn = item.insn;
    if (item.kind == AsmItem::Kind::kLabelRef) {
      const auto it = label_index.find(item.label);
      if (it == label_index.end()) {
        throw std::invalid_argument("assemble: undefined label '" +
                                    item.label + "'");
      }
      const auto rel = static_cast<std::int64_t>(it->second) -
                       (static_cast<std::int64_t>(index) + 1);
      if (rel < std::numeric_limits<std::int16_t>::min() ||
          rel > std::numeric_limits<std::int16_t>::max()) {
        throw std::out_of_range("assemble: branch to '" + item.label +
                                "' overflows the 16-bit offset (" +
                                std::to_string(rel) + ")");
      }
      insn.imm = static_cast<std::int16_t>(rel);
    }
    encode_to(insn, image);
    ++index;
  }
  return image;
}

}  // namespace soteria::isa
