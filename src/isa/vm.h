// SIR-32 virtual machine.
//
// Executes firmware images so the *practicality* requirement of the
// paper's threat model is checkable, not assumed: a practical AE "should
// still be executable (undamaged)". Tests run every generated sample,
// every mutated variant, and every binary-level GEA combination through
// the VM and assert clean termination.
//
// The machine: 16 registers, a data memory, a call/data stack, and
// zero/negative flags from cmp. Syscalls are counted, not performed.
// Execution is bounded by a step budget; loops in generated code are
// data-driven and terminate, but adversarially crafted inputs may not,
// so the budget distinguishes kHalted / kStepLimit / kFault outcomes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "isa/isa.h"

namespace soteria::isa {

/// Why execution stopped.
enum class VmStatus : std::uint8_t {
  kHalted = 0,     ///< reached halt at top level (clean termination)
  kStepLimit = 1,  ///< budget exhausted (possibly non-terminating)
  kFault = 2,      ///< jump out of image, stack underflow/overflow, ...
};

/// Name for diagnostics.
[[nodiscard]] const char* vm_status_name(VmStatus status) noexcept;

/// Execution summary.
struct VmResult {
  VmStatus status = VmStatus::kFault;
  std::uint64_t steps = 0;           ///< instructions retired
  std::uint64_t syscalls = 0;        ///< syscall instructions seen
  std::uint64_t max_call_depth = 0;  ///< deepest call nesting reached
  std::size_t faulting_index = 0;    ///< instruction index of a fault
  /// With VmConfig::record_hotspots: (instruction index, visit count)
  /// for the most-executed instructions, hottest first.
  std::vector<std::pair<std::size_t, std::uint64_t>> hotspots;
};

/// VM limits.
struct VmConfig {
  std::uint64_t max_steps = 1'000'000;
  std::size_t stack_limit = 4096;     ///< max stack slots
  std::size_t memory_words = 65536;   ///< data memory size
  bool record_hotspots = false;       ///< collect VmResult::hotspots
  std::size_t hotspot_count = 8;      ///< how many to report
};

/// Runs `image` from instruction 0 until halt, fault, or budget
/// exhaustion. Throws std::invalid_argument for an empty or ragged
/// image.
[[nodiscard]] VmResult execute(std::span<const std::uint8_t> image,
                               const VmConfig& config = {});

}  // namespace soteria::isa
