// Parallel batch engine: a fixed-size thread pool with a
// `parallel_for` / `parallel_map` API over index ranges.
//
// Design goals, in order:
//   1. Determinism. The pool never decides *what* a task computes, only
//      *when* — callers derive one RNG child per index (math::Rng::child)
//      and write results by index, so outputs are bit-identical to a
//      serial loop at any thread count.
//   2. Simplicity. No work stealing, no futures: one atomic claim
//      counter per region, the caller thread participates as a runner,
//      and the region returns when every runner has finished.
//   3. Safety. The first exception thrown by any index is rethrown in
//      the caller after the region drains; a body that calls back into
//      the pool (reentrancy) degrades to an inline serial loop instead
//      of deadlocking.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <type_traits>
#include <vector>

namespace soteria::runtime {

/// Upper bound accepted for any thread-count knob, as a configuration
/// corruption guard (oversubscription beyond this is never useful).
inline constexpr std::size_t kMaxThreads = 256;

/// Detected hardware concurrency, never less than 1.
[[nodiscard]] std::size_t hardware_threads() noexcept;

/// Resolves a user-facing thread knob: 0 means "all hardware threads",
/// anything else is taken literally (so tests can oversubscribe a small
/// machine and still exercise real concurrency). Never returns 0.
[[nodiscard]] std::size_t resolve_threads(std::size_t requested) noexcept;

/// True while the calling thread is executing inside a parallel region
/// (used to run nested regions serially instead of deadlocking).
[[nodiscard]] bool in_parallel_region() noexcept;

/// Fixed-size pool of `threads - 1` workers; the caller thread is the
/// remaining runner, so `ThreadPool(1)` owns no threads and every
/// region runs serially on the caller.
class ThreadPool {
 public:
  /// `threads` is resolved via resolve_threads (0 = hardware). Throws
  /// std::invalid_argument above kMaxThreads.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured concurrency (workers + the participating caller).
  [[nodiscard]] std::size_t thread_count() const noexcept;

  /// Runs body(0) ... body(n-1), each exactly once, distributed over
  /// the workers and the calling thread. Blocks until every index has
  /// completed (or the region was poisoned by an exception). The first
  /// exception thrown by any body is rethrown here; remaining unclaimed
  /// indices are skipped once an exception occurs. Reentrant calls from
  /// inside a body run serially inline.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// parallel_for whose body also receives a dense *slot* id. Each
  /// runner (worker or caller) claims one slot for the whole region, so
  /// slot values are < thread_count(), every index executed by the same
  /// runner sees the same slot, and no two concurrent bodies share one.
  /// This is the seam for per-thread partial accumulators: callers
  /// allocate thread_count() buffers up front, bodies write only to
  /// buffer[slot], and the buffers are merged after the region returns
  /// — no locks, no per-chunk allocation, one merge at the end.
  /// Serial and reentrant fallbacks run everything on slot 0.
  void parallel_for_slots(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// parallel_for that collects fn(i) into a vector by index. The
  /// result type must be default-constructible.
  template <typename F>
  [[nodiscard]] auto parallel_map(std::size_t n, F&& fn)
      -> std::vector<std::invoke_result_t<F&, std::size_t>> {
    std::vector<std::invoke_result_t<F&, std::size_t>> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Impl;
  Impl* impl_;
};

/// One-shot region over a short-lived pool: resolves `num_threads`,
/// runs serially when the resolved count is 1 (or n <= 1, or the caller
/// is already inside a region), otherwise spins up a pool for the
/// duration of the loop. Heavy phases (training, corpus extraction,
/// batch analysis) amortize the pool construction; callers with many
/// small regions should hold their own ThreadPool.
void parallel_for(std::size_t num_threads, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// One-shot slotted region (see ThreadPool::parallel_for_slots): slot
/// values are < resolve_threads(num_threads), so callers size their
/// per-slot accumulator arrays to that count. Runs serially on slot 0
/// when the resolved count is 1 (or n <= 1, or inside another region).
void parallel_for_slots(
    std::size_t num_threads, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body);

/// Map-by-index counterpart of the free parallel_for.
template <typename F>
[[nodiscard]] auto parallel_map(std::size_t num_threads, std::size_t n,
                                F&& fn)
    -> std::vector<std::invoke_result_t<F&, std::size_t>> {
  std::vector<std::invoke_result_t<F&, std::size_t>> out(n);
  parallel_for(num_threads, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace soteria::runtime
