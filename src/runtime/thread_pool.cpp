#include "runtime/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "obs/trace.h"

namespace soteria::runtime {

namespace {

thread_local bool t_in_parallel_region = false;

/// Restores the reentrancy flag on scope exit (exception-safe).
struct RegionGuard {
  bool previous;
  RegionGuard() : previous(t_in_parallel_region) {
    t_in_parallel_region = true;
  }
  ~RegionGuard() { t_in_parallel_region = previous; }
};

}  // namespace

std::size_t hardware_threads() noexcept {
  const unsigned detected = std::thread::hardware_concurrency();
  return detected == 0 ? 1 : static_cast<std::size_t>(detected);
}

std::size_t resolve_threads(std::size_t requested) noexcept {
  return requested == 0 ? hardware_threads() : requested;
}

bool in_parallel_region() noexcept { return t_in_parallel_region; }

/// One parallel_for region. Runners (queued worker tasks plus the
/// caller) claim indices through `next` until the range drains or an
/// exception poisons the region; the caller waits until every runner
/// has signalled completion, so no body can still be executing when
/// parallel_for returns.
struct Region {
  const std::function<void(std::size_t)>* body = nullptr;
  /// Slotted variant (exactly one of body / body_slotted is set): the
  /// runner passes its claimed slot id alongside each index.
  const std::function<void(std::size_t, std::size_t)>* body_slotted =
      nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> next_slot{0};
  std::atomic<bool> poisoned{false};
  std::size_t total_runners = 0;

  std::mutex mutex;
  std::condition_variable done;
  std::size_t finished_runners = 0;  // guarded by mutex
  std::exception_ptr error;          // guarded by mutex

  /// The caller's span nesting at region start, installed on every
  /// runner so a traced stage records the same path no matter which
  /// thread executes it (per-path aggregates stay thread-count
  /// invariant). Empty when tracing is off.
  obs::SpanContext span_context;

  void run_indices() {
    RegionGuard guard;
    const obs::SpanContextGuard span_guard(span_context);
    // Claimed once per runner, never contended again: every index this
    // runner executes shares the slot, and slots stay < total_runners.
    const std::size_t slot =
        next_slot.fetch_add(1, std::memory_order_relaxed);
    while (!poisoned.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        if (body_slotted != nullptr) {
          (*body_slotted)(slot, i);
        } else {
          (*body)(i);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        poisoned.store(true, std::memory_order_relaxed);
      }
    }
    std::lock_guard<std::mutex> lock(mutex);
    ++finished_runners;
    if (finished_runners == total_runners) done.notify_all();
  }
};

struct ThreadPool::Impl {
  std::vector<std::thread> workers;
  std::deque<std::function<void()>> queue;  // guarded by mutex
  std::mutex mutex;
  std::condition_variable wake;
  bool stopping = false;  // guarded by mutex

  /// Launches `region` (body already installed) over `n` indices and
  /// blocks until every runner has finished. Queued tasks own the
  /// region state independently of this stack frame; the caller waits
  /// for every runner (started or not), so no body outlives the call.
  void run_region(std::shared_ptr<Region> region, std::size_t n) {
    region->n = n;
    region->span_context = obs::current_span_context();
    const std::size_t queued_runners = std::min(workers.size(), n - 1);
    region->total_runners = queued_runners + 1;

    {
      std::lock_guard<std::mutex> lock(mutex);
      for (std::size_t r = 0; r < queued_runners; ++r) {
        queue.emplace_back([region] { region->run_indices(); });
      }
    }
    if (queued_runners == 1) {
      wake.notify_one();
    } else {
      wake.notify_all();
    }

    region->run_indices();

    std::unique_lock<std::mutex> lock(region->mutex);
    region->done.wait(lock, [&] {
      return region->finished_runners == region->total_runners;
    });
    if (region->error) std::rethrow_exception(region->error);
  }

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex);
        wake.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping and drained
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  const std::size_t resolved = resolve_threads(threads);
  if (resolved > kMaxThreads) {
    delete impl_;
    throw std::invalid_argument("ThreadPool: " + std::to_string(resolved) +
                                " threads exceeds the cap of " +
                                std::to_string(kMaxThreads));
  }
  impl_->workers.reserve(resolved - 1);
  for (std::size_t i = 0; i + 1 < resolved; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->wake.notify_all();
  for (auto& worker : impl_->workers) worker.join();
  delete impl_;
}

std::size_t ThreadPool::thread_count() const noexcept {
  return impl_->workers.size() + 1;
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (impl_->workers.empty() || n == 1 || t_in_parallel_region) {
    RegionGuard guard;
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto region = std::make_shared<Region>();
  region->body = &body;
  impl_->run_region(std::move(region), n);
}

void ThreadPool::parallel_for_slots(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (impl_->workers.empty() || n == 1 || t_in_parallel_region) {
    RegionGuard guard;
    for (std::size_t i = 0; i < n; ++i) body(0, i);
    return;
  }
  auto region = std::make_shared<Region>();
  region->body_slotted = &body;
  impl_->run_region(std::move(region), n);
}

void parallel_for(std::size_t num_threads, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  const std::size_t resolved = resolve_threads(num_threads);
  if (resolved > kMaxThreads) {
    throw std::invalid_argument("parallel_for: " + std::to_string(resolved) +
                                " threads exceeds the cap of " +
                                std::to_string(kMaxThreads));
  }
  if (resolved == 1 || n <= 1 || t_in_parallel_region) {
    RegionGuard guard;
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(resolved);
  pool.parallel_for(n, body);
}

void parallel_for_slots(
    std::size_t num_threads, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t resolved = resolve_threads(num_threads);
  if (resolved > kMaxThreads) {
    throw std::invalid_argument(
        "parallel_for_slots: " + std::to_string(resolved) +
        " threads exceeds the cap of " + std::to_string(kMaxThreads));
  }
  if (resolved == 1 || n <= 1 || t_in_parallel_region) {
    RegionGuard guard;
    for (std::size_t i = 0; i < n; ++i) body(0, i);
    return;
  }
  ThreadPool pool(resolved);
  pool.parallel_for_slots(n, body);
}

}  // namespace soteria::runtime
