#include "dataset/generator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "cfg/extractor.h"
#include "dataset/family_profiles.h"
#include "isa/codegen.h"

namespace soteria::dataset {

void validate(const DatasetConfig& config) {
  if (!(config.scale > 0.0)) {
    throw std::invalid_argument("DatasetConfig: scale must be positive");
  }
  if (!(config.train_fraction > 0.0) || !(config.train_fraction < 1.0)) {
    throw std::invalid_argument(
        "DatasetConfig: train_fraction outside (0, 1)");
  }
  for (double ratio : config.variant_ratio) {
    if (ratio <= 0.0) {
      throw std::invalid_argument(
          "DatasetConfig: variant ratios must be positive");
    }
  }
  if (config.min_variants == 0) {
    throw std::invalid_argument(
        "DatasetConfig: min_variants must be positive");
  }
  for (const auto& mutation : config.mutation) {
    isa::validate(mutation);
  }
}

std::array<isa::MutationConfig, kFamilyCount>
DatasetConfig::default_mutations() {
  std::array<isa::MutationConfig, kFamilyCount> mutations;

  isa::MutationConfig structural;  // code-restructuring forks
  structural.min_straight_insertions = 1;
  structural.max_straight_insertions = 3;
  structural.min_diamond_insertions = 0;
  structural.max_diamond_insertions = 1;
  structural.min_helper_functions = 0;
  structural.max_helper_functions = 1;
  structural.max_helper_ops = 3;

  isa::MutationConfig config_only;  // constants-and-padding forks
  config_only.min_imm_tweaks = 4;
  config_only.max_imm_tweaks = 16;
  config_only.min_straight_insertions = 0;
  config_only.max_straight_insertions = 2;
  config_only.min_diamond_insertions = 0;
  config_only.max_diamond_insertions = 0;
  config_only.min_helper_functions = 0;
  config_only.max_helper_functions = 0;

  // Benign keeps a light structural spread (independent projects and
  // rebuilds); malware families mutate constants/padding only — their
  // structural diversity comes from the strain count instead, which is
  // how fork ecosystems actually look (each fork is a new strain that
  // itself appears in the corpus).
  isa::MutationConfig benign = config_only;
  benign.min_straight_insertions = 1;
  benign.max_straight_insertions = 3;
  mutations[family_index(Family::kBenign)] = benign;
  mutations[family_index(Family::kGafgyt)] = config_only;
  mutations[family_index(Family::kMirai)] = config_only;
  mutations[family_index(Family::kTsunami)] = config_only;
  return mutations;
}

std::size_t scaled_count(std::size_t count, double scale) {
  const auto scaled = static_cast<std::size_t>(
      std::floor(static_cast<double>(count) * scale));
  return std::max<std::size_t>(5, scaled);
}

std::array<std::size_t, kFamilyCount> Dataset::class_counts(
    const std::vector<Sample>& samples) {
  std::array<std::size_t, kFamilyCount> counts{};
  for (const auto& s : samples) ++counts[family_index(s.family)];
  return counts;
}

namespace {

// Reject degenerate programs that collapse into a handful of blocks:
// the paper's smallest sample has 10 nodes, and sub-gram-size graphs
// make walk features meaningless.
constexpr std::size_t kMinNodes = 8;
constexpr int kMaxAttempts = 64;

}  // namespace

Sample generate_sample(Family family, std::uint64_t id, math::Rng& rng) {
  Sample sample;
  sample.id = id;
  sample.family = family;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    sample.binary = isa::generate_binary(profile_for(family), rng);
    sample.cfg = cfg::extract(sample.binary);
    if (sample.cfg.node_count() >= kMinNodes) return sample;
  }
  return sample;  // pathologically unlucky stream: keep the last draw
}

std::size_t variant_count(const DatasetConfig& config, Family family,
                          std::size_t count) {
  const double ratio = config.variant_ratio[family_index(family)];
  const auto variants = static_cast<std::size_t>(
      std::llround(static_cast<double>(count) * ratio));
  return std::clamp(variants, config.min_variants, count);
}

Sample generate_variant_sample(Family family, std::uint64_t id,
                               std::uint64_t variant_seed,
                               const isa::MutationConfig& mutation,
                               math::Rng& rng) {
  // The strain template is fully determined by the variant seed; the
  // per-sample mutation draws from the caller's stream.
  math::Rng template_rng(variant_seed);
  isa::AsmProgram base;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    base = isa::generate_program(profile_for(family), template_rng);
    if (cfg::extract(isa::assemble(base)).node_count() >= kMinNodes) break;
  }

  Sample sample;
  sample.id = id;
  sample.family = family;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const auto mutated = isa::mutate_program(base, mutation, rng);
    sample.binary = isa::assemble(mutated);
    sample.cfg = cfg::extract(sample.binary);
    if (sample.cfg.node_count() >= kMinNodes) return sample;
  }
  return sample;
}

Dataset generate_dataset(const DatasetConfig& config, math::Rng& rng) {
  validate(config);
  const std::array<std::size_t, kFamilyCount> sizes = {
      scaled_count(config.benign, config.scale),
      scaled_count(config.gafgyt, config.scale),
      scaled_count(config.mirai, config.scale),
      scaled_count(config.tsunami, config.scale),
  };

  Dataset dataset;
  std::uint64_t next_id = 0;
  for (Family family : all_families()) {
    std::vector<Sample> members;
    const std::size_t count = sizes[family_index(family)];
    const std::size_t variants = variant_count(config, family, count);
    // Strain template seeds for this class.
    std::vector<std::uint64_t> variant_seeds(variants);
    for (auto& seed : variant_seeds) {
      seed = static_cast<std::uint64_t>(rng.uniform_int(
          0, std::numeric_limits<std::int64_t>::max()));
    }
    members.reserve(count);
    const auto& mutation = config.mutation[family_index(family)];
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t seed = variant_seeds[i % variants];
      members.push_back(generate_variant_sample(family, next_id++, seed,
                                                mutation, rng));
    }
    rng.shuffle(members);
    // Stratified split: at least one sample on each side per class.
    auto train_count = static_cast<std::size_t>(std::llround(
        config.train_fraction * static_cast<double>(members.size())));
    train_count = std::clamp<std::size_t>(train_count, 1, members.size() - 1);
    for (std::size_t i = 0; i < members.size(); ++i) {
      auto& bucket = i < train_count ? dataset.train : dataset.test;
      bucket.push_back(std::move(members[i]));
    }
  }
  rng.shuffle(dataset.train);
  rng.shuffle(dataset.test);
  return dataset;
}

}  // namespace soteria::dataset
