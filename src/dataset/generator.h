// Corpus generation and stratified train/test splitting.
//
// Default class sizes follow the paper's Table II ratios (Benign 3,016;
// Gafgyt 11,085; Mirai 2,365; Tsunami 260 — the totals implied by the
// 20% test counts 600/2,217/473/52), scaled by `scale` so single-core
// runs stay tractable. Splits are stratified per class at
// `train_fraction` (paper: 80/20).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dataset/sample.h"
#include "isa/mutate.h"
#include "math/rng.h"

namespace soteria::dataset {

/// Corpus parameters.
///
/// The corpus models how IoT malware corpora are actually composed:
/// each malware family is a handful of *strains* (forks of one released
/// codebase — BASHLITE, Mirai, Kaiten), and individual samples are
/// small mutations of a strain (changed constants, an extra handler).
/// Benign samples are more diverse (independent projects) but still
/// cluster (multiple builds per project).
struct DatasetConfig {
  /// Per-class full-corpus sizes before scaling (paper ratios).
  std::size_t benign = 3016;
  std::size_t gafgyt = 11085;
  std::size_t mirai = 2365;
  std::size_t tsunami = 260;
  /// Multiplies every class size (floor, minimum 5 per class).
  double scale = 1.0;
  /// Fraction of each class assigned to training.
  double train_fraction = 0.8;

  /// Strains per class = clamp(round(count * ratio), min_variants,
  /// count), indexed by family. Gafgyt (BASHLITE) is the fork-heaviest
  /// family in the wild, so it gets the highest ratio; Mirai and
  /// Tsunami descend from a handful of codebases.
  std::array<double, kFamilyCount> variant_ratio = {0.04, 0.06, 0.025,
                                                    0.03};
  std::size_t min_variants = 3;
  /// Per-sample mutation intensity on top of the strain template,
  /// per family. Defaults model the observed fork behaviour: structural
  /// diversity lives in the strain count (each fork is a strain), while
  /// per-sample mutations are configuration constants and padding;
  /// benign builds additionally shuffle a little straight-line code.
  std::array<isa::MutationConfig, kFamilyCount> mutation =
      default_mutations();

  /// The per-family defaults described above.
  [[nodiscard]] static std::array<isa::MutationConfig, kFamilyCount>
  default_mutations();
};

/// Throws std::invalid_argument for non-positive scale or a train
/// fraction outside (0, 1).
void validate(const DatasetConfig& config);

/// Scaled per-class size (floor(scale * count), at least 5).
[[nodiscard]] std::size_t scaled_count(std::size_t count, double scale);

/// Generated corpus with a stratified split.
struct Dataset {
  std::vector<Sample> train;
  std::vector<Sample> test;

  /// Per-class counts over a sample list.
  [[nodiscard]] static std::array<std::size_t, kFamilyCount> class_counts(
      const std::vector<Sample>& samples);
};

/// Generates one fully independent sample of `family` (binary +
/// extracted CFG) — no strain structure. Used for tests and targets.
[[nodiscard]] Sample generate_sample(Family family, std::uint64_t id,
                                     math::Rng& rng);

/// Number of strains a class of `count` samples gets under `config`.
[[nodiscard]] std::size_t variant_count(const DatasetConfig& config,
                                        Family family, std::size_t count);

/// Generates one sample as a mutation of the strain template defined by
/// `variant_seed` (same seed -> same template, so samples sharing a
/// seed form a cluster).
[[nodiscard]] Sample generate_variant_sample(Family family,
                                             std::uint64_t id,
                                             std::uint64_t variant_seed,
                                             const isa::MutationConfig&
                                                 mutation,
                                             math::Rng& rng);

/// Generates the full corpus (strain-structured) and splits it.
/// Deterministic given `rng`.
[[nodiscard]] Dataset generate_dataset(const DatasetConfig& config,
                                       math::Rng& rng);

}  // namespace soteria::dataset
