// GEA adversarial-set construction (paper Section IV-A, Table III).
//
// For every class, three target samples are picked from the corpus by
// node count — the minimum ("Small"), median ("Medium"), and maximum
// ("Large") — and each target is GEA-embedded into every *test* sample
// of every other class. One AE set therefore exists per (class, size)
// pair: 12 sets, each with (test size - targeted class test count) AEs.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "cfg/gea.h"
#include "dataset/generator.h"
#include "dataset/sample.h"

namespace soteria::dataset {

/// GEA target size bucket.
enum class TargetSize : std::uint8_t { kSmall = 0, kMedium = 1, kLarge = 2 };

inline constexpr std::size_t kTargetSizeCount = 3;

/// Display name ("Small" / "Medium" / "Large").
[[nodiscard]] const char* target_size_name(TargetSize size) noexcept;

/// A selected GEA target sample.
struct GeaTarget {
  Family family = Family::kBenign;
  TargetSize size = TargetSize::kSmall;
  std::size_t node_count = 0;
  cfg::Cfg cfg;
};

/// One generated adversarial example.
struct AdversarialExample {
  cfg::Cfg cfg;                    ///< GEA-combined graph
  Family original_family = Family::kBenign;  ///< base sample's class
  Family target_family = Family::kBenign;    ///< injected target's class
  TargetSize target_size = TargetSize::kSmall;
};

/// Picks the small/median/large targets of `family` from `samples`
/// (paper: selected from the whole dataset). Throws
/// std::invalid_argument if the class has no samples.
[[nodiscard]] std::vector<GeaTarget> select_targets(
    std::span<const Sample> samples, Family family);

/// All 12 targets (4 classes x 3 sizes) in class-major order.
[[nodiscard]] std::vector<GeaTarget> select_all_targets(
    std::span<const Sample> samples);

/// Applies GEA with `target` over every sample in `test` whose class
/// differs from the target's class.
[[nodiscard]] std::vector<AdversarialExample> generate_adversarial_set(
    std::span<const Sample> test, const GeaTarget& target);

/// The full adversarial dataset: concatenation over all 12 targets.
[[nodiscard]] std::vector<AdversarialExample> generate_full_adversarial_set(
    std::span<const Sample> test, std::span<const GeaTarget> targets);

}  // namespace soteria::dataset
