#include "dataset/adversarial.h"

#include <algorithm>
#include <stdexcept>

namespace soteria::dataset {

const char* target_size_name(TargetSize size) noexcept {
  switch (size) {
    case TargetSize::kSmall: return "Small";
    case TargetSize::kMedium: return "Medium";
    case TargetSize::kLarge: return "Large";
  }
  return "Unknown";
}

std::vector<GeaTarget> select_targets(std::span<const Sample> samples,
                                      Family family) {
  std::vector<const Sample*> members;
  for (const auto& s : samples) {
    if (s.family == family) members.push_back(&s);
  }
  if (members.empty()) {
    throw std::invalid_argument(std::string("select_targets: no samples of "
                                            "class ") +
                                family_name(family));
  }
  std::sort(members.begin(), members.end(),
            [](const Sample* a, const Sample* b) {
              if (a->cfg.node_count() != b->cfg.node_count()) {
                return a->cfg.node_count() < b->cfg.node_count();
              }
              return a->id < b->id;
            });

  const auto make_target = [family](const Sample& s, TargetSize size) {
    GeaTarget t;
    t.family = family;
    t.size = size;
    t.node_count = s.cfg.node_count();
    t.cfg = s.cfg;
    return t;
  };
  return {
      make_target(*members.front(), TargetSize::kSmall),
      make_target(*members[members.size() / 2], TargetSize::kMedium),
      make_target(*members.back(), TargetSize::kLarge),
  };
}

std::vector<GeaTarget> select_all_targets(std::span<const Sample> samples) {
  std::vector<GeaTarget> targets;
  targets.reserve(kFamilyCount * kTargetSizeCount);
  for (Family family : all_families()) {
    auto per_class = select_targets(samples, family);
    for (auto& t : per_class) targets.push_back(std::move(t));
  }
  return targets;
}

std::vector<AdversarialExample> generate_adversarial_set(
    std::span<const Sample> test, const GeaTarget& target) {
  std::vector<AdversarialExample> aes;
  for (const auto& s : test) {
    if (s.family == target.family) continue;
    AdversarialExample ae;
    ae.cfg = cfg::gea_combine(s.cfg, target.cfg).combined;
    ae.original_family = s.family;
    ae.target_family = target.family;
    ae.target_size = target.size;
    aes.push_back(std::move(ae));
  }
  return aes;
}

std::vector<AdversarialExample> generate_full_adversarial_set(
    std::span<const Sample> test, std::span<const GeaTarget> targets) {
  std::vector<AdversarialExample> all;
  for (const auto& target : targets) {
    auto aes = generate_adversarial_set(test, target);
    all.insert(all.end(), std::make_move_iterator(aes.begin()),
               std::make_move_iterator(aes.end()));
  }
  return all;
}

}  // namespace soteria::dataset
