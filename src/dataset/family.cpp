#include "dataset/family.h"

#include <stdexcept>

namespace soteria::dataset {

Family family_from_index(std::size_t index) {
  if (index >= kFamilyCount) {
    throw std::invalid_argument("family_from_index: index " +
                                std::to_string(index) + " >= " +
                                std::to_string(kFamilyCount));
  }
  return static_cast<Family>(index);
}

const char* family_name(Family f) noexcept {
  switch (f) {
    case Family::kBenign: return "Benign";
    case Family::kGafgyt: return "Gafgyt";
    case Family::kMirai: return "Mirai";
    case Family::kTsunami: return "Tsunami";
  }
  return "Unknown";
}

}  // namespace soteria::dataset
