#include "dataset/family_profiles.h"

namespace soteria::dataset {

isa::CodeGenProfile profile_for(Family family) {
  isa::CodeGenProfile p;
  switch (family) {
    case Family::kBenign:
      p.name = "benign";
      p.min_functions = 2;
      p.max_functions = 18;
      p.min_constructs = 1;
      p.max_constructs = 5;
      p.min_straight = 1;
      p.max_straight = 4;
      p.straight_weight = 1.0;
      p.branch_weight = 1.0;
      p.loop_weight = 0.5;
      p.switch_weight = 0.15;
      p.min_switch_cases = 3;
      p.max_switch_cases = 6;
      p.nest_probability = 0.3;
      p.max_nesting_depth = 3;
      p.call_probability = 0.25;
      p.early_ret_probability = 0.05;
      break;
    case Family::kGafgyt:
      p.name = "gafgyt";
      p.min_functions = 3;
      p.max_functions = 13;
      p.min_constructs = 1;
      p.max_constructs = 3;
      p.min_straight = 1;
      p.max_straight = 3;
      p.straight_weight = 1.2;
      p.branch_weight = 0.8;
      p.loop_weight = 0.25;
      p.switch_weight = 0.35;
      p.min_switch_cases = 3;
      p.max_switch_cases = 8;
      p.nest_probability = 0.15;
      p.max_nesting_depth = 2;
      p.call_probability = 0.4;
      p.early_ret_probability = 0.10;
      break;
    case Family::kMirai:
      p.name = "mirai";
      p.min_functions = 2;
      p.max_functions = 10;
      p.min_constructs = 2;
      p.max_constructs = 5;
      p.min_straight = 1;
      p.max_straight = 3;
      p.straight_weight = 0.7;
      p.branch_weight = 0.9;
      p.loop_weight = 1.1;
      p.switch_weight = 0.20;
      p.min_switch_cases = 3;
      p.max_switch_cases = 7;
      p.nest_probability = 0.4;
      p.max_nesting_depth = 3;
      p.call_probability = 0.2;
      p.early_ret_probability = 0.03;
      break;
    case Family::kTsunami:
      p.name = "tsunami";
      p.min_functions = 1;
      p.max_functions = 4;
      p.min_constructs = 1;
      p.max_constructs = 3;
      p.min_straight = 3;
      p.max_straight = 8;
      p.straight_weight = 1.3;
      p.branch_weight = 0.5;
      p.loop_weight = 0.3;
      p.switch_weight = 0.9;
      p.min_switch_cases = 6;
      p.max_switch_cases = 14;
      p.nest_probability = 0.1;
      p.max_nesting_depth = 2;
      p.call_probability = 0.15;
      p.early_ret_probability = 0.02;
      break;
  }
  return p;
}

}  // namespace soteria::dataset
