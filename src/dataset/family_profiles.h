// Per-family code-generation profiles.
//
// Each family gets a distinct mix of control-flow idioms modelled on how
// these botnets are actually structured:
//   * Gafgyt  — many small bot-command handler functions behind a wide
//               dispatcher; call-heavy, shallow bodies.
//   * Mirai   — scanner/killer loops: fewer, larger functions dominated
//               by (nested) loops with moderate dispatch.
//   * Tsunami — an IRC bot: one broad command switch with mostly linear
//               handler bodies; the smallest binaries of the three.
//   * Benign  — diverse general-purpose utilities: balanced branching,
//               moderate loops, broad size range.
//
// Soteria's features are functions of CFG shape only, so these profiles
// are what makes the synthetic corpus learnable in the same way the real
// corpus was (see DESIGN.md, substitutions).
#pragma once

#include "dataset/family.h"
#include "isa/codegen.h"

namespace soteria::dataset {

/// The code-generation profile for `family`.
[[nodiscard]] isa::CodeGenProfile profile_for(Family family);

}  // namespace soteria::dataset
