// Sample taxonomy: the paper's four classes.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace soteria::dataset {

/// IoT sample class: benign or one of the three malware families the
/// paper classifies (Table II).
enum class Family : std::uint8_t {
  kBenign = 0,
  kGafgyt = 1,
  kMirai = 2,
  kTsunami = 3,
};

/// Number of classes.
inline constexpr std::size_t kFamilyCount = 4;

/// All classes in label order.
[[nodiscard]] constexpr std::array<Family, kFamilyCount> all_families() {
  return {Family::kBenign, Family::kGafgyt, Family::kMirai,
          Family::kTsunami};
}

/// Class label index (0..3) used by the classifier.
[[nodiscard]] constexpr std::size_t family_index(Family f) noexcept {
  return static_cast<std::size_t>(f);
}

/// Family from a label index. Throws std::invalid_argument if out of
/// range.
[[nodiscard]] Family family_from_index(std::size_t index);

/// Display name ("Benign", "Gafgyt", ...).
[[nodiscard]] const char* family_name(Family f) noexcept;

}  // namespace soteria::dataset
