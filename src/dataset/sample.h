// One corpus sample: the synthetic firmware binary, its extracted CFG,
// and its ground-truth family.
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/cfg.h"
#include "dataset/family.h"

namespace soteria::dataset {

/// One IoT sample. For GEA adversarial examples (graph-level attack)
/// `binary` is empty and only the CFG is populated.
struct Sample {
  std::uint64_t id = 0;
  Family family = Family::kBenign;
  std::vector<std::uint8_t> binary;
  cfg::Cfg cfg;
};

}  // namespace soteria::dataset
