// Pipeline observability: a lightweight, thread-safe metrics registry.
//
// A `MetricsRegistry` holds named counters, gauges, and fixed-bucket
// histograms. Writes land in per-thread shards (one uncontended mutex
// each, registered with the registry on first use), so instrumentation
// composes with `runtime::ThreadPool` without cross-thread lock
// contention; `snapshot()` merges the shards on read. Aggregated
// counter values and record counts are independent of how work was
// scheduled across threads — the metrics correctness tests assert this
// at several thread counts.
//
// The registry is *disabled by default*: every write entry point is a
// single relaxed atomic load away from a no-op, so instrumented hot
// paths cost nothing measurable until observability is switched on
// (`SoteriaConfig::collect_metrics`, `obs::set_enabled`, or the CLI's
// `--metrics` flag).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace soteria::obs {

/// Number of finite histogram bucket boundaries. Bucket i covers
/// (bound(i-1), bound(i)] with bound(i) = 1e-6 * 2^i, spanning one
/// microsecond to ~67 seconds for latencies (and, the same boundaries
/// being pure magnitudes, ~1e-6 to ~134 for value distributions such as
/// reconstruction-error scores). One extra overflow bucket catches
/// everything larger.
inline constexpr std::size_t kHistogramBuckets = 27;

/// Upper bound of finite bucket `i` (i < kHistogramBuckets).
[[nodiscard]] double bucket_upper_bound(std::size_t i) noexcept;

/// Aggregated state of one histogram: moments plus fixed log-scale
/// bucket counts (last slot = overflow). Plain data; merging two
/// histograms adds counts and widens min/max.
struct HistogramData {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< meaningful only when count > 0
  double max = 0.0;  ///< meaningful only when count > 0
  std::array<std::uint64_t, kHistogramBuckets + 1> buckets{};

  void record(double value) noexcept;
  void merge(const HistogramData& other) noexcept;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Bucket-resolution quantile estimate (upper bound of the bucket
  /// holding the q-th record, clamped by the recorded max). q in [0, 1].
  [[nodiscard]] double quantile(double q) const noexcept;
};

/// Merged, point-in-time view of a registry. Ordered maps so exporters
/// and tests see a deterministic iteration order.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Thread-safe named-metric registry with per-thread write shards.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = false);
  ~MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Toggles collection. Disabling does not discard already-recorded
  /// data; `reset()` does.
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Adds `delta` to the named counter. No-op while disabled.
  void counter_add(std::string_view name, std::uint64_t delta = 1);

  /// Sets the named gauge; concurrent writers resolve last-write-wins
  /// via a registry-wide version stamp. No-op while disabled.
  void gauge_set(std::string_view name, double value);

  /// Records one observation into the named histogram. No-op while
  /// disabled.
  void record(std::string_view name, double value);

  /// Merges every thread's shard into one consistent view. Safe to call
  /// while other threads keep recording (each shard is locked briefly).
  [[nodiscard]] Snapshot snapshot() const;

  /// Clears all recorded data in every shard (the enabled flag is
  /// unchanged).
  void reset();

 private:
  struct GaugeCell {
    std::uint64_t version = 0;
    double value = 0.0;
  };
  struct Shard {
    std::mutex mutex;
    std::map<std::string, std::uint64_t, std::less<>> counters;
    std::map<std::string, GaugeCell, std::less<>> gauges;
    std::map<std::string, HistogramData, std::less<>> histograms;
  };

  /// This thread's shard for this registry, created and registered on
  /// first use.
  [[nodiscard]] Shard& local_shard();

  std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> gauge_version_{0};
  const std::uint64_t id_;  ///< process-unique, keys the TLS shard cache
  mutable std::mutex shards_mutex_;
  std::vector<std::shared_ptr<Shard>> shards_;
};

/// The process-wide default registry all built-in instrumentation
/// writes to. Starts disabled.
[[nodiscard]] MetricsRegistry& registry() noexcept;

/// Convenience toggles for the default registry.
inline void set_enabled(bool enabled) noexcept {
  registry().set_enabled(enabled);
}
[[nodiscard]] inline bool enabled() noexcept { return registry().enabled(); }

}  // namespace soteria::obs
