#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <string_view>

#include "obs/trace.h"

namespace soteria::obs {

namespace {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

std::string format_ms(double seconds) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", seconds * 1e3);
  return buffer;
}

bool is_span_name(std::string_view name) {
  return name.substr(0, kTimePrefix.size()) == kTimePrefix;
}

/// Nesting depth of a span path: number of '/' separators past the
/// "t/" prefix.
std::size_t span_depth(std::string_view name) {
  std::size_t depth = 0;
  for (const char c : name.substr(kTimePrefix.size())) {
    depth += c == '/' ? 1 : 0;
  }
  return depth;
}

/// Last path component of a span name ("t/a/b/c" -> "c").
std::string_view span_leaf(std::string_view name) {
  const auto slash = name.rfind('/');
  return slash == std::string_view::npos ? name : name.substr(slash + 1);
}

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

}  // namespace

std::string export_text(const Snapshot& snapshot) {
  std::ostringstream out;

  bool have_spans = false;
  bool have_values = false;
  for (const auto& [name, data] : snapshot.histograms) {
    (is_span_name(name) ? have_spans : have_values) = true;
    (void)data;
  }

  if (have_spans) {
    out << "== stage timings (ms) ==\n";
    out << "  stage" << std::string(43, ' ')
        << "count      total       mean        p95\n";
    // The map is name-ordered, and a span's path sorts directly before
    // its children's paths, so plain iteration walks the tree in
    // depth-first order; indent by depth.
    for (const auto& [name, data] : snapshot.histograms) {
      if (!is_span_name(name)) continue;
      const std::size_t depth = span_depth(name);
      std::string label(2 * depth, ' ');
      label += span_leaf(name);
      if (label.size() < 46) label.resize(46, ' ');
      char row[128];
      std::snprintf(row, sizeof(row), "%8llu %10s %10s %10s",
                    static_cast<unsigned long long>(data.count),
                    format_ms(data.sum).c_str(),
                    format_ms(data.mean()).c_str(),
                    format_ms(data.quantile(0.95)).c_str());
      out << "  " << label << row << "\n";
    }
  }

  if (!snapshot.counters.empty()) {
    out << "== counters ==\n";
    for (const auto& [name, value] : snapshot.counters) {
      out << "  " << name << " = " << value << "\n";
    }
  }

  if (!snapshot.gauges.empty()) {
    out << "== gauges ==\n";
    for (const auto& [name, value] : snapshot.gauges) {
      out << "  " << name << " = " << format_double(value) << "\n";
    }
  }

  if (have_values) {
    out << "== distributions ==\n";
    for (const auto& [name, data] : snapshot.histograms) {
      if (is_span_name(name)) continue;
      out << "  " << name << ": count " << data.count << ", mean "
          << format_double(data.mean()) << ", p50 "
          << format_double(data.quantile(0.5)) << ", p95 "
          << format_double(data.quantile(0.95)) << ", min "
          << format_double(data.min) << ", max "
          << format_double(data.max) << "\n";
    }
  }

  if (snapshot.empty()) out << "(no metrics recorded)\n";
  return out.str();
}

std::string export_json(const Snapshot& snapshot) {
  std::string out;
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_json_number(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, data] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"count\":";
    out += std::to_string(data.count);
    out += ",\"sum\":";
    append_json_number(out, data.sum);
    out += ",\"min\":";
    append_json_number(out, data.min);
    out += ",\"max\":";
    append_json_number(out, data.max);
    out += ",\"mean\":";
    append_json_number(out, data.mean());
    out += ",\"p50\":";
    append_json_number(out, data.quantile(0.5));
    out += ",\"p95\":";
    append_json_number(out, data.quantile(0.95));
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t i = 0; i < data.buckets.size(); ++i) {
      if (data.buckets[i] == 0) continue;  // sparse: skip empty buckets
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += "{\"le\":";
      if (i < kHistogramBuckets) {
        append_json_number(out, bucket_upper_bound(i));
      } else {
        out += "null";  // overflow bucket
      }
      out += ",\"count\":";
      out += std::to_string(data.buckets[i]);
      out += '}';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void write_text(std::ostream& out, const Snapshot& snapshot) {
  out << export_text(snapshot);
}

void write_json(std::ostream& out, const Snapshot& snapshot) {
  out << export_json(snapshot);
}

}  // namespace soteria::obs
