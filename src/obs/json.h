// Minimal JSON document model + recursive-descent parser.
//
// Exists so the JSON exporter's output is verifiable in-tree (the obs
// test suite round-trips every export through this parser) and so
// tooling can consume metric dumps without an external dependency. It
// parses the full JSON grammar the exporter emits: objects, arrays,
// strings (with \uXXXX escapes decoded to UTF-8), numbers, booleans,
// null. Not a streaming parser; documents are metric-dump sized.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace soteria::obs::json {

/// One JSON value. Objects use ordered maps so iteration (and
/// re-serialization in tests) is deterministic.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept {
    return type_ == Type::kNull;
  }

  /// Typed accessors; each throws std::runtime_error on a type
  /// mismatch so tests fail with a message instead of UB.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Value>& as_array() const;
  [[nodiscard]] const std::map<std::string, Value>& as_object() const;

  /// Object member access; throws std::runtime_error if this is not an
  /// object or the key is absent.
  [[nodiscard]] const Value& at(const std::string& key) const;

  /// True if this is an object containing `key`.
  [[nodiscard]] bool contains(const std::string& key) const;

  static Value make_bool(bool v);
  static Value make_number(double v);
  static Value make_string(std::string v);
  static Value make_array(std::vector<Value> v);
  static Value make_object(std::map<std::string, Value> v);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Parses one JSON document. Throws std::runtime_error (with a byte
/// offset in the message) on malformed input or trailing garbage.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace soteria::obs::json
