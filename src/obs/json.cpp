#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <stdexcept>
#include <utility>

namespace soteria::obs::json {

bool Value::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) throw std::runtime_error("json: not a number");
  return number_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("json: not a string");
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  if (type_ != Type::kArray) throw std::runtime_error("json: not an array");
  return array_;
}

const std::map<std::string, Value>& Value::as_object() const {
  if (type_ != Type::kObject) throw std::runtime_error("json: not an object");
  return object_;
}

const Value& Value::at(const std::string& key) const {
  const auto& object = as_object();
  const auto it = object.find(key);
  if (it == object.end()) {
    throw std::runtime_error("json: missing key '" + key + "'");
  }
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return type_ == Type::kObject && object_.count(key) > 0;
}

Value Value::make_bool(bool v) {
  Value value;
  value.type_ = Type::kBool;
  value.bool_ = v;
  return value;
}

Value Value::make_number(double v) {
  Value value;
  value.type_ = Type::kNumber;
  value.number_ = v;
  return value;
}

Value Value::make_string(std::string v) {
  Value value;
  value.type_ = Type::kString;
  value.string_ = std::move(v);
  return value;
}

Value Value::make_array(std::vector<Value> v) {
  Value value;
  value.type_ = Type::kArray;
  value.array_ = std::move(v);
  return value;
}

Value Value::make_object(std::map<std::string, Value> v) {
  Value value;
  value.type_ = Type::kObject;
  value.object_ = std::move(v);
  return value;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value();
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    std::map<std::string, Value> members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members[std::move(key)] = parse_value();
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Value::make_object(std::move(members));
  }

  Value parse_array() {
    expect('[');
    std::vector<Value> items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Value::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u':
          append_utf8(out, parse_hex4());
          break;
        default:
          fail("bad escape");
      }
    }
    return out;
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("short \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u digit");
      }
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    double number = 0.0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    const auto [end, ec] = std::from_chars(first, last, number);
    if (ec != std::errc() || end != last) fail("bad number");
    return Value::make_number(number);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace soteria::obs::json
