// Scoped wall-clock tracing with nesting.
//
// A `Span` is an RAII timer: construction notes the steady-clock start,
// destruction records the elapsed seconds into the registry's histogram
// named after the span's *path* — the "/"-joined chain of enclosing
// span names on the current thread, prefixed with `kTimePrefix` so
// exporters can tell stage timings from value histograms. Nested spans
// therefore produce a per-stage breakdown like
//
//   t/soteria.train
//   t/soteria.train/pipeline.fit
//   t/soteria.train/pipeline.fit/features.walks
//
// While the registry is disabled a Span is two relaxed atomic loads and
// nothing else — no clock read, no string work.
//
// Parallel regions: `runtime::ThreadPool` captures the caller's span
// context when a region starts and installs it on every runner (workers
// *and* the participating caller), so a stage's path is identical no
// matter which thread executes it — and so per-path aggregates are
// identical at every thread count.
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace soteria::obs {

/// Histogram-name prefix identifying span timings (values in seconds).
inline constexpr std::string_view kTimePrefix = "t/";

/// Captured span nesting state of the current thread; cheap to copy
/// into worker threads. Empty while tracing is disabled.
struct SpanContext {
  std::string path;
};

/// The calling thread's current span path ("" at top level).
[[nodiscard]] SpanContext current_span_context();

/// Installs a captured span context on the current thread for the
/// lifetime of the guard (used by the thread pool around parallel
/// regions); restores the previous context on destruction.
class SpanContextGuard {
 public:
  explicit SpanContextGuard(const SpanContext& context);
  ~SpanContextGuard();

  SpanContextGuard(const SpanContextGuard&) = delete;
  SpanContextGuard& operator=(const SpanContextGuard&) = delete;

 private:
  std::string saved_;
};

/// RAII stage timer. `name` must outlive nothing — it is copied into
/// the thread's path immediately.
class Span {
 public:
  explicit Span(std::string_view name,
                MetricsRegistry& registry = obs::registry());
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  MetricsRegistry* registry_ = nullptr;  ///< null when disabled
  std::size_t parent_length_ = 0;        ///< path length to restore
  std::chrono::steady_clock::time_point start_;
};

/// Alias matching the "scoped timer" vocabulary used across the benches.
using ScopedTimer = Span;

}  // namespace soteria::obs
