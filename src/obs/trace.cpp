#include "obs/trace.h"

#include <utility>

namespace soteria::obs {

namespace {

/// Current span path of this thread, *excluding* the kTimePrefix. One
/// string mutated in place: Span appends "/<name>" (or "<name>" at top
/// level) on entry and truncates back on exit, so nesting costs no
/// allocations once the string's capacity has grown.
std::string& thread_path() {
  thread_local std::string path;
  return path;
}

}  // namespace

SpanContext current_span_context() { return SpanContext{thread_path()}; }

SpanContextGuard::SpanContextGuard(const SpanContext& context)
    : saved_(std::exchange(thread_path(), context.path)) {}

SpanContextGuard::~SpanContextGuard() { thread_path() = std::move(saved_); }

Span::Span(std::string_view name, MetricsRegistry& registry) {
  if (!registry.enabled()) return;
  registry_ = &registry;
  std::string& path = thread_path();
  parent_length_ = path.size();
  if (!path.empty()) path += '/';
  path += name;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (registry_ == nullptr) return;
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
  std::string& path = thread_path();
  std::string name;
  name.reserve(kTimePrefix.size() + path.size());
  name += kTimePrefix;
  name += path;
  registry_->record(name, elapsed);
  path.resize(parent_length_);
}

}  // namespace soteria::obs
