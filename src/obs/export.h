// Text and JSON exporters for metric snapshots.
//
// `export_text` renders a human-oriented report: counters, gauges, a
// stage-timing tree built from the span paths (histograms whose name
// starts with trace.h's kTimePrefix, values in seconds, printed in
// ms), and the remaining value histograms with quantile estimates.
// `export_json` emits one machine-readable document whose structure is
// mirrored by the obs test suite through obs::json::parse.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.h"

namespace soteria::obs {

/// Human-readable report of `snapshot`.
[[nodiscard]] std::string export_text(const Snapshot& snapshot);

/// JSON document:
///   {"counters": {name: n, ...},
///    "gauges": {name: x, ...},
///    "histograms": {name: {"count": n, "sum": x, "min": x, "max": x,
///                          "mean": x, "p50": x, "p95": x,
///                          "buckets": [{"le": bound, "count": n}, ...]},
///                   ...}}
/// Span timings keep their "t/..." names; non-finite numbers are
/// emitted as null (JSON has no NaN/Inf).
[[nodiscard]] std::string export_json(const Snapshot& snapshot);

/// Stream helpers (same content as the string exporters).
void write_text(std::ostream& out, const Snapshot& snapshot);
void write_json(std::ostream& out, const Snapshot& snapshot);

}  // namespace soteria::obs
