#include "obs/metrics.h"

#include <algorithm>
#include <unordered_map>

namespace soteria::obs {

namespace {

/// Smallest finite bucket boundary: 1 microsecond (in seconds) for
/// latencies, 1e-6 as a plain magnitude otherwise.
constexpr double kFirstBound = 1e-6;

/// Bucket index for `value`: the first bucket whose upper bound is >=
/// value, or the overflow slot. Branch-free log2 would be overkill —
/// 27 iterations worst case, and record() is not the hot path's hot
/// path (it runs only when observability is on).
std::size_t bucket_index(double value) noexcept {
  double bound = kFirstBound;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (value <= bound) return i;
    bound *= 2.0;
  }
  return kHistogramBuckets;  // overflow
}

std::atomic<std::uint64_t> next_registry_id{1};

}  // namespace

double bucket_upper_bound(std::size_t i) noexcept {
  double bound = kFirstBound;
  for (std::size_t k = 0; k < i && k < kHistogramBuckets; ++k) {
    bound *= 2.0;
  }
  return bound;
}

void HistogramData::record(double value) noexcept {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  ++buckets[bucket_index(value)];
}

void HistogramData::merge(const HistogramData& other) noexcept {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

double HistogramData::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank) {
      return i < kHistogramBuckets ? std::min(bucket_upper_bound(i), max)
                                   : max;
    }
  }
  return max;
}

MetricsRegistry::MetricsRegistry(bool enabled)
    : enabled_(enabled),
      id_(next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  // Cache keyed by process-unique registry id, never by address, so a
  // registry reallocated at a dead registry's address cannot inherit
  // its shard. Entries for dead registries stay cached (bounded by the
  // number of registries this thread ever wrote to) — the shared_ptr
  // keeps the shard storage valid either way.
  thread_local std::unordered_map<std::uint64_t, std::shared_ptr<Shard>>
      cache;
  auto it = cache.find(id_);
  if (it == cache.end()) {
    auto shard = std::make_shared<Shard>();
    {
      const std::lock_guard<std::mutex> lock(shards_mutex_);
      shards_.push_back(shard);
    }
    it = cache.emplace(id_, std::move(shard)).first;
  }
  return *it->second;
}

void MetricsRegistry::counter_add(std::string_view name,
                                  std::uint64_t delta) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.counters.find(name);
  if (it == shard.counters.end()) {
    shard.counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::gauge_set(std::string_view name, double value) {
  if (!enabled()) return;
  const std::uint64_t version =
      gauge_version_.fetch_add(1, std::memory_order_relaxed) + 1;
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.gauges.find(name);
  if (it == shard.gauges.end()) {
    shard.gauges.emplace(std::string(name), GaugeCell{version, value});
  } else {
    it->second = GaugeCell{version, value};
  }
}

void MetricsRegistry::record(std::string_view name, double value) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.histograms.find(name);
  if (it == shard.histograms.end()) {
    it = shard.histograms.emplace(std::string(name), HistogramData{}).first;
  }
  it->second.record(value);
}

Snapshot MetricsRegistry::snapshot() const {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    const std::lock_guard<std::mutex> lock(shards_mutex_);
    shards = shards_;
  }
  Snapshot out;
  std::map<std::string, std::uint64_t> gauge_versions;
  for (const auto& shard : shards) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [name, value] : shard->counters) {
      out.counters[name] += value;
    }
    for (const auto& [name, cell] : shard->gauges) {
      auto it = gauge_versions.find(name);
      if (it == gauge_versions.end() || cell.version > it->second) {
        gauge_versions[name] = cell.version;
        out.gauges[name] = cell.value;
      }
    }
    for (const auto& [name, data] : shard->histograms) {
      out.histograms[name].merge(data);
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    const std::lock_guard<std::mutex> lock(shards_mutex_);
    shards = shards_;
  }
  for (const auto& shard : shards) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->counters.clear();
    shard->gauges.clear();
    shard->histograms.clear();
  }
}

MetricsRegistry& registry() noexcept {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace soteria::obs
