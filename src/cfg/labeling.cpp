#include "cfg/labeling.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/centrality.h"
#include "graph/traversal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace soteria::cfg {

const char* method_name(LabelingMethod method) noexcept {
  return method == LabelingMethod::kDensity ? "DBL" : "LBL";
}

void validate(const LabelingOptions& options) {
  graph::validate(options.approx);
}

bool approximate_labeling(const LabelingOptions& options,
                          std::size_t nodes) {
  return options.approx_centrality_threshold != 0 &&
         nodes >= options.approx_centrality_threshold &&
         graph::resolved_pivot_count(nodes, options.approx) < nodes;
}

std::vector<NodeRank> node_ranks(const Cfg& cfg) {
  return node_ranks(cfg, LabelingOptions{});
}

std::vector<NodeRank> node_ranks(const Cfg& cfg,
                                 const LabelingOptions& options) {
  const auto& g = cfg.graph();
  const std::size_t n = g.node_count();
  std::vector<NodeRank> ranks(n);
  if (n == 0) return ranks;
  const obs::Span span("cfg.label.ranks");

  graph::CentralityOptions centrality_options;
  centrality_options.approximate = approximate_labeling(options, n);
  centrality_options.approx = options.approx;
  if (centrality_options.approximate) {
    obs::registry().counter_add("soteria.centrality.approx");
  }
  const auto centrality = graph::centrality_scores(g, centrality_options);
  const auto levels = graph::node_levels(g, cfg.entry());
  const auto edge_count = static_cast<double>(g.edge_count());
  for (graph::NodeId v = 0; v < n; ++v) {
    ranks[v].density =
        edge_count > 0.0
            ? static_cast<double>(g.total_degree(v)) / edge_count
            : 0.0;
    ranks[v].centrality_factor =
        centrality.betweenness[v] + centrality.closeness[v];
    ranks[v].level = levels[v];
  }
  return ranks;
}

std::vector<Label> labels_from_ranks(const std::vector<NodeRank>& ranks,
                                     LabelingMethod method) {
  const std::size_t n = ranks.size();
  if (n == 0) throw std::invalid_argument("labels_from_ranks: empty ranks");

  std::vector<graph::NodeId> order(n);
  std::iota(order.begin(), order.end(), graph::NodeId{0});

  // Shared tie-break chain: density desc, CF desc, level asc, id asc.
  const auto density_chain = [&ranks](graph::NodeId a, graph::NodeId b) {
    if (ranks[a].density != ranks[b].density)
      return ranks[a].density > ranks[b].density;
    if (ranks[a].centrality_factor != ranks[b].centrality_factor)
      return ranks[a].centrality_factor > ranks[b].centrality_factor;
    if (ranks[a].level != ranks[b].level)
      return ranks[a].level < ranks[b].level;
    return a < b;
  };

  if (method == LabelingMethod::kDensity) {
    std::sort(order.begin(), order.end(), density_chain);
  } else {
    std::sort(order.begin(), order.end(),
              [&ranks, &density_chain](graph::NodeId a, graph::NodeId b) {
                if (ranks[a].level != ranks[b].level)
                  return ranks[a].level < ranks[b].level;
                return density_chain(a, b);
              });
  }

  std::vector<Label> labels(n);
  for (std::size_t position = 0; position < n; ++position) {
    labels[order[position]] = position;
  }
  return labels;
}

std::vector<Label> label_nodes(const Cfg& cfg, LabelingMethod method) {
  return label_nodes(cfg, method, LabelingOptions{});
}

std::vector<Label> label_nodes(const Cfg& cfg, LabelingMethod method,
                               const LabelingOptions& options) {
  if (cfg.node_count() == 0)
    throw std::invalid_argument("label_nodes: empty CFG");
  const obs::Span span(method == LabelingMethod::kDensity ? "cfg.label.dbl"
                                                          : "cfg.label.lbl");
  return labels_from_ranks(node_ranks(cfg, options), method);
}

NodeLabelings label_both(const Cfg& cfg) {
  return label_both(cfg, LabelingOptions{});
}

NodeLabelings label_both(const Cfg& cfg, const LabelingOptions& options) {
  if (cfg.node_count() == 0)
    throw std::invalid_argument("label_both: empty CFG");
  const auto ranks = node_ranks(cfg, options);
  NodeLabelings labelings;
  {
    const obs::Span span("cfg.label.dbl");
    labelings.dbl = labels_from_ranks(ranks, LabelingMethod::kDensity);
  }
  {
    const obs::Span span("cfg.label.lbl");
    labelings.lbl = labels_from_ranks(ranks, LabelingMethod::kLevel);
  }
  return labelings;
}

std::vector<graph::NodeId> nodes_by_label(const std::vector<Label>& labels) {
  std::vector<graph::NodeId> inverse(labels.size());
  std::vector<bool> seen(labels.size(), false);
  for (graph::NodeId v = 0; v < labels.size(); ++v) {
    if (labels[v] >= labels.size()) {
      throw std::invalid_argument("nodes_by_label: label out of range");
    }
    if (seen[labels[v]]) {
      throw std::invalid_argument("nodes_by_label: duplicate label " +
                                  std::to_string(labels[v]));
    }
    seen[labels[v]] = true;
    inverse[labels[v]] = v;
  }
  return inverse;
}

}  // namespace soteria::cfg
