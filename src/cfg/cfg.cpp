#include "cfg/cfg.h"

#include <stdexcept>
#include <string>

namespace soteria::cfg {

Cfg::Cfg(graph::DiGraph graph, graph::NodeId entry,
         std::vector<BasicBlock> blocks)
    : graph_(std::move(graph)), entry_(entry), blocks_(std::move(blocks)) {
  if (!graph_.empty() && entry_ >= graph_.node_count()) {
    throw std::invalid_argument("Cfg: entry " + std::to_string(entry_) +
                                " out of range for " +
                                std::to_string(graph_.node_count()) +
                                " nodes");
  }
  if (!blocks_.empty() && blocks_.size() != graph_.node_count()) {
    throw std::invalid_argument(
        "Cfg: block metadata count " + std::to_string(blocks_.size()) +
        " != node count " + std::to_string(graph_.node_count()));
  }
}

std::vector<graph::NodeId> Cfg::exit_nodes() const {
  std::vector<graph::NodeId> exits;
  for (graph::NodeId v = 0; v < graph_.node_count(); ++v) {
    if (graph_.out_degree(v) == 0) exits.push_back(v);
  }
  return exits;
}

}  // namespace soteria::cfg
