// Binary image -> CFG extraction (the radare2 role in the paper).
//
// Historically this was the toy-ISA linear sweep itself; it is now a
// thin wrapper over the pluggable front-end seam (frontend/frontend.h),
// delegating raw toy images to `frontend::ToyIsaFrontend`. The produced
// CFGs are bit-identical to the pre-seam extractor (pinned by
// tests/frontend/toy_identity_test.cpp):
//   jmp            -> target
//   jz/jnz/jlt/jge -> target + fall-through
//   call           -> callee entry + fall-through (return path)
//   ret/halt       -> no successors
//
// By default the extracted CFG is pruned to the blocks reachable from
// the entry (image offset 0). That pruning is the property Soteria
// leans on: bytes appended after a halt, or functions never called, are
// invisible to every downstream feature.
//
// For ELF containers and other ISAs, use loader::load_image +
// frontend::resolve_frontend directly (or SoteriaSystem::analyze_image,
// which wires the whole path).
#pragma once

#include <cstdint>
#include <span>

#include "cfg/cfg.h"
#include "frontend/options.h"

namespace soteria::cfg {

/// Extraction options — shared with every front end. Historical callers
/// that set `prune_unreachable` compile unchanged; `max_image_bytes`
/// rides along from the frontend seam (0 = unlimited).
using ExtractOptions = frontend::FrontendOptions;

/// Extracts the CFG of a raw toy-ISA `image`. Throws
/// core::Error{kInvalidArgument} for an empty image, one whose size is
/// not a multiple of the instruction width, or one over
/// `options.max_image_bytes`.
[[nodiscard]] Cfg extract(std::span<const std::uint8_t> image,
                          const ExtractOptions& options = {});

}  // namespace soteria::cfg
