// Binary image -> CFG extraction (the radare2 role in the paper).
//
// Linear-sweep disassembly, exact leader detection (branch targets and
// fall-through points), basic-block construction, and successor edges:
//   jmp            -> target
//   jz/jnz/jlt/jge -> target + fall-through
//   call           -> callee entry + fall-through (return path)
//   ret/halt       -> no successors
//
// By default the extracted CFG is pruned to the blocks reachable from
// the entry (image offset 0). That pruning is the property Soteria
// leans on: bytes appended after a halt, or functions never called, are
// invisible to every downstream feature.
#pragma once

#include <cstdint>
#include <span>

#include "cfg/cfg.h"

namespace soteria::cfg {

/// Extraction options.
struct ExtractOptions {
  /// Keep only blocks reachable from the entry block. Disabling this
  /// exposes unreachable code in the CFG; tests use it to demonstrate
  /// the append-immunity property.
  bool prune_unreachable = true;
};

/// Extracts the CFG of `image`. Throws std::invalid_argument for an
/// empty image or one whose size is not a multiple of the instruction
/// width.
[[nodiscard]] Cfg extract(std::span<const std::uint8_t> image,
                          const ExtractOptions& options = {});

}  // namespace soteria::cfg
