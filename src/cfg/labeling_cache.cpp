#include "cfg/labeling_cache.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"

namespace soteria::cfg {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t value) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (8 * byte)) & 0xffULL;
    h *= kFnvPrime;
  }
}

}  // namespace

LabelingCache::LabelingCache(std::size_t capacity)
    : LabelingCache(capacity, static_cast<std::uint64_t (*)(const Cfg&)>(
                                  &LabelingCache::content_hash)) {}

LabelingCache::LabelingCache(std::size_t capacity, Hasher hasher)
    : capacity_(capacity), hasher_(std::move(hasher)) {
  if (capacity_ == 0) {
    throw std::invalid_argument("LabelingCache: zero capacity");
  }
  if (!hasher_) {
    throw std::invalid_argument("LabelingCache: null hasher");
  }
}

std::uint64_t LabelingCache::content_hash(const Cfg& cfg) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(cfg.entry()));
  fnv_mix(h, static_cast<std::uint64_t>(cfg.node_count()));
  for (const auto& [u, v] : cfg.graph().edges()) {
    fnv_mix(h, static_cast<std::uint64_t>(u));
    fnv_mix(h, static_cast<std::uint64_t>(v));
  }
  return h;
}

std::uint64_t LabelingCache::content_hash(const Cfg& cfg,
                                          std::string_view frontend_tag) {
  std::uint64_t h = content_hash(cfg);
  // Length-prefixed so distinct tags can never produce the same byte
  // stream, then the tag bytes themselves.
  fnv_mix(h, static_cast<std::uint64_t>(frontend_tag.size()));
  for (const char c : frontend_tag) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

LabelingCache::Key LabelingCache::make_key(const Cfg& cfg,
                                           const LabelingOptions& options) {
  Key key;
  key.entry = cfg.entry();
  key.nodes = cfg.node_count();
  key.edges = cfg.graph().edges();
  if (approximate_labeling(options, key.nodes)) {
    key.mode.approximate = true;
    key.mode.pivots =
        graph::resolved_pivot_count(key.nodes, options.approx);
    key.mode.seed = options.approx.seed;
  }
  return key;
}

NodeLabelings LabelingCache::labels(const Cfg& cfg) {
  return labels(cfg, LabelingOptions{});
}

NodeLabelings LabelingCache::labels(const Cfg& cfg,
                                    const LabelingOptions& options) {
  if (cfg.node_count() == 0) {
    throw std::invalid_argument("LabelingCache::labels: empty CFG");
  }
  Key key = make_key(cfg, options);
  // Exact-mode lookups hash exactly as before the mode existed;
  // approximate entries fold their mode in, so the two can only meet
  // in a bucket via a (detected) collision.
  std::uint64_t hash = hasher_(cfg);
  if (key.mode.approximate) {
    fnv_mix(hash, 0x617070726f78ULL);  // "approx" tag
    fnv_mix(hash, static_cast<std::uint64_t>(key.mode.pivots));
    fnv_mix(hash, key.mode.seed);
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto bucket = buckets_.find(hash); bucket != buckets_.end()) {
      for (const auto& it : bucket->second) {
        if (it->key == key) {
          lru_.splice(lru_.begin(), lru_, it);
          ++stats_.hits;
          obs::registry().counter_add("soteria.cache.labeling.hits");
          return it->labelings;
        }
      }
    }
    ++stats_.misses;
    obs::registry().counter_add("soteria.cache.labeling.misses");
  }

  // Compute outside the lock: concurrent misses on distinct CFGs must
  // not serialize on the expensive graph analytics.
  NodeLabelings labelings = label_both(cfg, options);

  std::lock_guard<std::mutex> lock(mutex_);
  // Another thread may have inserted the same CFG while we computed;
  // labeling is deterministic, so just return without duplicating.
  if (const auto bucket = buckets_.find(hash); bucket != buckets_.end()) {
    for (const auto& it : bucket->second) {
      if (it->key == key) return labelings;
    }
  }
  lru_.push_front(Entry{hash, std::move(key), labelings});
  buckets_[hash].push_back(lru_.begin());
  while (lru_.size() > capacity_) {
    const auto victim = std::prev(lru_.end());
    auto& bucket = buckets_[victim->hash];
    bucket.erase(std::find(bucket.begin(), bucket.end(), victim));
    if (bucket.empty()) buckets_.erase(victim->hash);
    lru_.erase(victim);
    ++stats_.evictions;
    obs::registry().counter_add("soteria.cache.labeling.evictions");
  }
  return labelings;
}

LabelingCache::Stats LabelingCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t LabelingCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void LabelingCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  buckets_.clear();
  stats_ = Stats{};
}

}  // namespace soteria::cfg
