// Consistent CFG node labeling (paper Section III-B.1).
//
// Soteria assigns each node a label in [0, |V|-1] under two schemes:
//
//  * Density-based (DBL): rank by density (in+out degree over total edge
//    count), densest first; ties broken by centrality factor
//    CF(v) = betweenness + closeness (higher first), then by level
//    (shallower first), then by node id ascending ("symmetric" nodes).
//
//  * Level-based (LBL): rank by level (1 + BFS distance from the entry),
//    shallowest first — so the entry always gets label 0; ties within a
//    level broken like DBL (density, then CF, then id).
//
// Both schemes are strict total orders, so *any* structural modification
// of the graph (e.g. GEA embedding) perturbs the whole label assignment,
// which is what makes the downstream features attack-sensitive.
#pragma once

#include <cstddef>
#include <vector>

#include "cfg/cfg.h"

namespace soteria::cfg {

/// Node label: position in [0, |V|-1].
using Label = std::size_t;

/// Which labeling scheme to apply.
enum class LabelingMethod { kDensity, kLevel };

/// Short scheme name ("DBL" / "LBL") for reports.
[[nodiscard]] const char* method_name(LabelingMethod method) noexcept;

/// Per-node ranking keys, exposed for tests and diagnostics.
struct NodeRank {
  double density = 0.0;
  double centrality_factor = 0.0;
  std::size_t level = 0;  ///< 1-based; kUnreachable if not reachable
};

/// Computes the ranking keys for every node of `cfg` in one fused
/// graph-analytics pass (betweenness + closeness from a single Brandes
/// sweep, levels from one BFS).
[[nodiscard]] std::vector<NodeRank> node_ranks(const Cfg& cfg);

/// Orders nodes under `method` given precomputed ranking keys — the
/// sort-only tail of label_nodes, so both labelings can share one
/// node_ranks computation. Throws std::invalid_argument for empty
/// `ranks`.
[[nodiscard]] std::vector<Label> labels_from_ranks(
    const std::vector<NodeRank>& ranks, LabelingMethod method);

/// Labels all nodes under `method`. Returns labels indexed by node id:
/// result[v] is node v's label. Throws std::invalid_argument for an
/// empty CFG. Unreachable nodes (possible only in unpruned CFGs) sort
/// after all reachable ones.
[[nodiscard]] std::vector<Label> label_nodes(const Cfg& cfg,
                                             LabelingMethod method);

/// Both labelings of one CFG.
struct NodeLabelings {
  std::vector<Label> dbl;
  std::vector<Label> lbl;
};

/// Labels all nodes under *both* schemes from one shared node_ranks
/// computation — the graph analytics (centrality + levels) that
/// dominate labeling cost run exactly once. Equivalent to calling
/// label_nodes twice; throws std::invalid_argument for an empty CFG.
[[nodiscard]] NodeLabelings label_both(const Cfg& cfg);

/// Inverse view: node id holding each label (result[label] = node).
/// Throws std::invalid_argument if any label is out of range or
/// duplicated (a valid labeling is a permutation of [0, |V|-1]).
[[nodiscard]] std::vector<graph::NodeId> nodes_by_label(
    const std::vector<Label>& labels);

}  // namespace soteria::cfg
