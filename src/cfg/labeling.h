// Consistent CFG node labeling (paper Section III-B.1).
//
// Soteria assigns each node a label in [0, |V|-1] under two schemes:
//
//  * Density-based (DBL): rank by density (in+out degree over total edge
//    count), densest first; ties broken by centrality factor
//    CF(v) = betweenness + closeness (higher first), then by level
//    (shallower first), then by node id ascending ("symmetric" nodes).
//
//  * Level-based (LBL): rank by level (1 + BFS distance from the entry),
//    shallowest first — so the entry always gets label 0; ties within a
//    level broken like DBL (density, then CF, then id).
//
// Both schemes are strict total orders, so *any* structural modification
// of the graph (e.g. GEA embedding) perturbs the whole label assignment,
// which is what makes the downstream features attack-sensitive.
#pragma once

#include <cstddef>
#include <vector>

#include "cfg/cfg.h"
#include "graph/centrality.h"

namespace soteria::cfg {

/// Node label: position in [0, |V|-1].
using Label = std::size_t;

/// Which labeling scheme to apply.
enum class LabelingMethod { kDensity, kLevel };

/// Short scheme name ("DBL" / "LBL") for reports.
[[nodiscard]] const char* method_name(LabelingMethod method) noexcept;

/// Per-node ranking keys, exposed for tests and diagnostics.
struct NodeRank {
  double density = 0.0;
  double centrality_factor = 0.0;
  std::size_t level = 0;  ///< 1-based; kUnreachable if not reachable
};

/// Knobs of the graph-analytics pass feeding both labelings. The
/// default is the exact fused Brandes sweep on every CFG; setting
/// `approx_centrality_threshold` switches CFGs at or above that many
/// nodes to the sampled-pivot centrality estimate (graph/centrality.h)
/// — same rank keys, bounded-error scores, a fraction of the cost.
/// Part of PipelineConfig (persisted with the model), so two pipelines
/// that label differently can never share cached or stored features.
struct LabelingOptions {
  /// Node count at or above which centrality is approximated;
  /// 0 (default) = never, labeling stays exact at any size.
  std::size_t approx_centrality_threshold = 0;

  /// Approximation parameters used once the threshold trips.
  graph::ApproxCentralityOptions approx;

  [[nodiscard]] bool operator==(const LabelingOptions&) const = default;
};

/// Throws std::invalid_argument for invalid approximation parameters.
void validate(const LabelingOptions& options);

/// True when `options` put an n-node CFG on the approximate centrality
/// path: the threshold is set, n reaches it, and the resolved pivot
/// count is actually below n (a full pivot set is the exact sweep, so
/// it is normalized to exact — cache keys rely on this).
[[nodiscard]] bool approximate_labeling(const LabelingOptions& options,
                                        std::size_t nodes);

/// Computes the ranking keys for every node of `cfg` in one fused
/// graph-analytics pass (betweenness + closeness from a single Brandes
/// sweep, levels from one BFS).
[[nodiscard]] std::vector<NodeRank> node_ranks(const Cfg& cfg);

/// As above under explicit labeling options (exact or approximate
/// centrality per `options` and the CFG's size).
[[nodiscard]] std::vector<NodeRank> node_ranks(
    const Cfg& cfg, const LabelingOptions& options);

/// Orders nodes under `method` given precomputed ranking keys — the
/// sort-only tail of label_nodes, so both labelings can share one
/// node_ranks computation. Throws std::invalid_argument for empty
/// `ranks`.
[[nodiscard]] std::vector<Label> labels_from_ranks(
    const std::vector<NodeRank>& ranks, LabelingMethod method);

/// Labels all nodes under `method`. Returns labels indexed by node id:
/// result[v] is node v's label. Throws std::invalid_argument for an
/// empty CFG. Unreachable nodes (possible only in unpruned CFGs) sort
/// after all reachable ones.
[[nodiscard]] std::vector<Label> label_nodes(const Cfg& cfg,
                                             LabelingMethod method);

/// As above under explicit labeling options.
[[nodiscard]] std::vector<Label> label_nodes(const Cfg& cfg,
                                             LabelingMethod method,
                                             const LabelingOptions& options);

/// Both labelings of one CFG.
struct NodeLabelings {
  std::vector<Label> dbl;
  std::vector<Label> lbl;
};

/// Labels all nodes under *both* schemes from one shared node_ranks
/// computation — the graph analytics (centrality + levels) that
/// dominate labeling cost run exactly once. Equivalent to calling
/// label_nodes twice; throws std::invalid_argument for an empty CFG.
[[nodiscard]] NodeLabelings label_both(const Cfg& cfg);

/// As above under explicit labeling options.
[[nodiscard]] NodeLabelings label_both(const Cfg& cfg,
                                       const LabelingOptions& options);

/// Inverse view: node id holding each label (result[label] = node).
/// Throws std::invalid_argument if any label is out of range or
/// duplicated (a valid labeling is a permutation of [0, |V|-1]).
[[nodiscard]] std::vector<graph::NodeId> nodes_by_label(
    const std::vector<Label>& labels);

}  // namespace soteria::cfg
