// Control-flow graph type.
//
// A `Cfg` is a directed graph over basic blocks plus a designated entry
// block. Blocks carry optional instruction-range metadata when the CFG
// came from a binary; CFGs produced by graph-level transforms (GEA) have
// synthetic blocks with zero instruction count.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.h"

namespace soteria::cfg {

/// Metadata for one basic block: a half-open instruction index range
/// into the disassembled image it was extracted from.
struct BasicBlock {
  std::size_t first_instruction = 0;
  std::size_t instruction_count = 0;
};

/// A control-flow graph: directed block graph + entry block.
class Cfg {
 public:
  Cfg() = default;

  /// Builds a CFG over `graph` with entry block `entry`. Throws
  /// std::invalid_argument if entry is out of range (unless the graph is
  /// empty) or if `blocks` is non-empty but mismatched in size.
  Cfg(graph::DiGraph graph, graph::NodeId entry,
      std::vector<BasicBlock> blocks = {});

  [[nodiscard]] const graph::DiGraph& graph() const noexcept {
    return graph_;
  }
  [[nodiscard]] graph::NodeId entry() const noexcept { return entry_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return graph_.node_count();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return graph_.edge_count();
  }

  /// Block metadata; empty for synthetic CFGs.
  [[nodiscard]] const std::vector<BasicBlock>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] bool has_block_metadata() const noexcept {
    return !blocks_.empty();
  }

  /// Blocks with no successors (program exits: ret-to-caller at top
  /// level, halt, or dead ends).
  [[nodiscard]] std::vector<graph::NodeId> exit_nodes() const;

 private:
  graph::DiGraph graph_;
  graph::NodeId entry_ = 0;
  std::vector<BasicBlock> blocks_;
};

}  // namespace soteria::cfg
