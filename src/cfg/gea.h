// Graph Embedding and Augmentation (GEA) — the attack Soteria defends
// against (Abusnaina et al. [9], paper Section II-C).
//
// GEA merges the CFG of an original sample with the CFG of a target
// sample drawn from the class the adversary wants to be classified as:
// a new shared entry block branches to both sub-CFGs and a new shared
// exit block joins their exits, so only one branch (the original code)
// ever executes while the *structure* — and therefore every CFG-derived
// feature — changes.
#pragma once

#include "cfg/cfg.h"

namespace soteria::cfg {

/// Result of a GEA combination, with the node ranges of each component
/// exposed for tests and diagnostics.
struct GeaResult {
  Cfg combined;
  graph::NodeId shared_entry = 0;
  graph::NodeId shared_exit = 0;
  graph::NodeId original_offset = 0;  ///< original's node k -> offset + k
  graph::NodeId target_offset = 0;    ///< target's node k -> offset + k
};

/// Combines `original` with `target` per GEA. Throws
/// std::invalid_argument if either CFG is empty.
///
/// Sub-CFGs with no natural exit (e.g. ending in an infinite loop) are
/// joined to the shared exit from their deepest node so the combined
/// graph always has the shared-entry/shared-exit shape of Fig. 1(c).
[[nodiscard]] GeaResult gea_combine(const Cfg& original, const Cfg& target);

}  // namespace soteria::cfg
