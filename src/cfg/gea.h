// Graph Embedding and Augmentation (GEA) — the attack Soteria defends
// against (Abusnaina et al. [9], paper Section II-C).
//
// GEA merges the CFG of an original sample with the CFG of a target
// sample drawn from the class the adversary wants to be classified as:
// a new shared entry block branches to both sub-CFGs and a new shared
// exit block joins their exits, so only one branch (the original code)
// ever executes while the *structure* — and therefore every CFG-derived
// feature — changes.
//
// The combine is parameterized (GeaOptions) over the attack spectrum of
// the GEA source paper and the explainability-guided follow-up:
//
// * kEntryGuard — the paper's fixed shape (Fig. 1c): a new shared entry
//   branches to both lobes.
// * kMidBlock — the injected lobe hangs off an interior node of the
//   original (the shape produced when the guard is planted mid-stream
//   at the binary level, as attribution-guided attacks do); the
//   original's entry stays the combined entry.
//
// gea_combine_multi chains several injections (guard chain at the
// entry, one injected lobe per target), mirroring the multi-injection
// guard prologue of attack::binary_gea_multi.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cfg/cfg.h"

namespace soteria::cfg {

/// Where the injected lobe attaches to the original CFG.
enum class InsertionPoint : std::uint8_t {
  kEntryGuard = 0,  ///< new shared entry branches to both lobes
  kMidBlock = 1,    ///< lobe hangs off an interior node of the original
};

/// Display name ("entry" / "mid").
[[nodiscard]] const char* insertion_point_name(InsertionPoint p) noexcept;

/// Parameters of a single-target GEA combination.
struct GeaOptions {
  InsertionPoint insertion = InsertionPoint::kEntryGuard;
  /// For kMidBlock: the original node the injected lobe hangs off.
  /// Ignored by kEntryGuard. Must be < original.node_count().
  graph::NodeId anchor = 0;
};

/// Result of a GEA combination, with the node ranges of each component
/// exposed for tests and diagnostics.
struct GeaResult {
  Cfg combined;
  graph::NodeId shared_entry = 0;
  graph::NodeId shared_exit = 0;
  graph::NodeId original_offset = 0;  ///< original's node k -> offset + k
  graph::NodeId target_offset = 0;    ///< target's node k -> offset + k
};

/// Result of a multi-injection combination.
struct MultiGeaResult {
  Cfg combined;
  graph::NodeId shared_exit = 0;
  graph::NodeId original_offset = 0;
  /// Guard-chain nodes, one per target; guard i branches to target i's
  /// entry and to the next guard (the last guard falls through to the
  /// original's entry). guards[0] is the combined entry.
  std::vector<graph::NodeId> guards;
  std::vector<graph::NodeId> target_offsets;  ///< target i's node k -> offset + k
};

/// Combines `original` with `target` per GEA (the paper's entry-guard
/// shape). Throws core::Error{kInvalidArgument} if either CFG is empty.
///
/// Sub-CFGs with no natural exit (e.g. ending in an infinite loop) are
/// joined to the shared exit from their deepest node so the combined
/// graph always has the shared-entry/shared-exit shape of Fig. 1(c).
[[nodiscard]] GeaResult gea_combine(const Cfg& original, const Cfg& target);

/// Parameterized combine. kEntryGuard reproduces the two-argument
/// overload exactly; kMidBlock keeps the original's entry and adds an
/// `options.anchor` -> target-entry edge, with both lobes' exits joined
/// at a shared exit. Throws core::Error{kInvalidArgument} for empty
/// CFGs and core::Error{kOutOfRange} for an out-of-range anchor.
[[nodiscard]] GeaResult gea_combine(const Cfg& original, const Cfg& target,
                                    const GeaOptions& options);

/// Injects every CFG of `targets` behind a guard chain at the entry:
/// guard i branches to target i and to guard i+1 (the last guard to the
/// original's entry); every lobe's exits join one shared exit. Throws
/// core::Error{kInvalidArgument} for an empty original, an empty target
/// list, or any empty target.
[[nodiscard]] MultiGeaResult gea_combine_multi(
    const Cfg& original, std::span<const Cfg> targets);

}  // namespace soteria::cfg
