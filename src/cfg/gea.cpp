#include "cfg/gea.h"

#include "graph/traversal.h"
#include "soteria/error.h"

namespace soteria::cfg {

namespace {

/// Exit nodes of `c`, falling back to the deepest reachable node when
/// the sub-CFG has none (everything loops).
std::vector<graph::NodeId> exits_or_deepest(const Cfg& c) {
  auto exits = c.exit_nodes();
  if (!exits.empty()) return exits;
  const auto dist = graph::bfs_distances(c.graph(), c.entry());
  graph::NodeId deepest = c.entry();
  std::size_t best = 0;
  for (graph::NodeId v = 0; v < dist.size(); ++v) {
    if (dist[v] != graph::kUnreachable && dist[v] >= best) {
      best = dist[v];
      deepest = v;
    }
  }
  return {deepest};
}

void require_nonempty(const Cfg& c, const char* what) {
  if (c.node_count() == 0) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      std::string("gea_combine: empty ") + what + " CFG");
  }
}

GeaResult combine_mid_block(const Cfg& original, const Cfg& target,
                            graph::NodeId anchor) {
  if (anchor >= original.node_count()) {
    throw core::Error(core::ErrorCode::kOutOfRange,
                      "gea_combine: anchor " + std::to_string(anchor) +
                          " out of range for an original of " +
                          std::to_string(original.node_count()) + " nodes");
  }

  graph::DiGraph g;
  const graph::NodeId original_offset = g.merge_disjoint(original.graph());
  const graph::NodeId target_offset = g.merge_disjoint(target.graph());
  const graph::NodeId shared_exit = g.add_node();

  g.add_edge(original_offset + anchor, target_offset + target.entry());
  for (graph::NodeId v : exits_or_deepest(original)) {
    g.add_edge(original_offset + v, shared_exit);
  }
  for (graph::NodeId v : exits_or_deepest(target)) {
    g.add_edge(target_offset + v, shared_exit);
  }

  GeaResult result;
  result.shared_entry = original_offset + original.entry();
  result.shared_exit = shared_exit;
  result.original_offset = original_offset;
  result.target_offset = target_offset;
  result.combined = Cfg(std::move(g), result.shared_entry);
  return result;
}

}  // namespace

const char* insertion_point_name(InsertionPoint p) noexcept {
  switch (p) {
    case InsertionPoint::kEntryGuard: return "entry";
    case InsertionPoint::kMidBlock: return "mid";
  }
  return "unknown";
}

GeaResult gea_combine(const Cfg& original, const Cfg& target) {
  require_nonempty(original, "original");
  require_nonempty(target, "target");

  graph::DiGraph g;
  const graph::NodeId shared_entry = g.add_node();
  const graph::NodeId original_offset = g.merge_disjoint(original.graph());
  const graph::NodeId target_offset = g.merge_disjoint(target.graph());
  const graph::NodeId shared_exit = g.add_node();

  g.add_edge(shared_entry, original_offset + original.entry());
  g.add_edge(shared_entry, target_offset + target.entry());
  for (graph::NodeId v : exits_or_deepest(original)) {
    g.add_edge(original_offset + v, shared_exit);
  }
  for (graph::NodeId v : exits_or_deepest(target)) {
    g.add_edge(target_offset + v, shared_exit);
  }

  GeaResult result;
  result.shared_entry = shared_entry;
  result.shared_exit = shared_exit;
  result.original_offset = original_offset;
  result.target_offset = target_offset;
  result.combined = Cfg(std::move(g), shared_entry);
  return result;
}

GeaResult gea_combine(const Cfg& original, const Cfg& target,
                      const GeaOptions& options) {
  if (options.insertion == InsertionPoint::kMidBlock) {
    require_nonempty(original, "original");
    require_nonempty(target, "target");
    return combine_mid_block(original, target, options.anchor);
  }
  return gea_combine(original, target);
}

MultiGeaResult gea_combine_multi(const Cfg& original,
                                 std::span<const Cfg> targets) {
  require_nonempty(original, "original");
  if (targets.empty()) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "gea_combine_multi: no targets");
  }
  for (const Cfg& t : targets) require_nonempty(t, "target");

  graph::DiGraph g;
  MultiGeaResult result;
  result.guards.reserve(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    result.guards.push_back(g.add_node());
  }
  result.original_offset = g.merge_disjoint(original.graph());
  result.target_offsets.reserve(targets.size());
  for (const Cfg& t : targets) {
    result.target_offsets.push_back(g.merge_disjoint(t.graph()));
  }
  result.shared_exit = g.add_node();

  // Guard chain: guard i branches into target i, falls through to the
  // next guard (or, after the last one, into the original).
  for (std::size_t i = 0; i < targets.size(); ++i) {
    g.add_edge(result.guards[i],
               result.target_offsets[i] + targets[i].entry());
    const graph::NodeId next =
        i + 1 < targets.size()
            ? result.guards[i + 1]
            : result.original_offset + original.entry();
    g.add_edge(result.guards[i], next);
  }
  for (graph::NodeId v : exits_or_deepest(original)) {
    g.add_edge(result.original_offset + v, result.shared_exit);
  }
  for (std::size_t i = 0; i < targets.size(); ++i) {
    for (graph::NodeId v : exits_or_deepest(targets[i])) {
      g.add_edge(result.target_offsets[i] + v, result.shared_exit);
    }
  }

  result.combined = Cfg(std::move(g), result.guards.front());
  return result;
}

}  // namespace soteria::cfg
