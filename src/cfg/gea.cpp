#include "cfg/gea.h"

#include <stdexcept>

#include "graph/traversal.h"

namespace soteria::cfg {

namespace {

/// Exit nodes of `c`, falling back to the deepest reachable node when
/// the sub-CFG has none (everything loops).
std::vector<graph::NodeId> exits_or_deepest(const Cfg& c) {
  auto exits = c.exit_nodes();
  if (!exits.empty()) return exits;
  const auto dist = graph::bfs_distances(c.graph(), c.entry());
  graph::NodeId deepest = c.entry();
  std::size_t best = 0;
  for (graph::NodeId v = 0; v < dist.size(); ++v) {
    if (dist[v] != graph::kUnreachable && dist[v] >= best) {
      best = dist[v];
      deepest = v;
    }
  }
  return {deepest};
}

}  // namespace

GeaResult gea_combine(const Cfg& original, const Cfg& target) {
  if (original.node_count() == 0 || target.node_count() == 0) {
    throw std::invalid_argument("gea_combine: empty CFG");
  }

  graph::DiGraph g;
  const graph::NodeId shared_entry = g.add_node();
  const graph::NodeId original_offset = g.merge_disjoint(original.graph());
  const graph::NodeId target_offset = g.merge_disjoint(target.graph());
  const graph::NodeId shared_exit = g.add_node();

  g.add_edge(shared_entry, original_offset + original.entry());
  g.add_edge(shared_entry, target_offset + target.entry());
  for (graph::NodeId v : exits_or_deepest(original)) {
    g.add_edge(original_offset + v, shared_exit);
  }
  for (graph::NodeId v : exits_or_deepest(target)) {
    g.add_edge(target_offset + v, shared_exit);
  }

  GeaResult result;
  result.shared_entry = shared_entry;
  result.shared_exit = shared_exit;
  result.original_offset = original_offset;
  result.target_offset = target_offset;
  result.combined = Cfg(std::move(g), shared_entry);
  return result;
}

}  // namespace soteria::cfg
