// Cross-phase cache of DBL/LBL labelings.
//
// Labeling is a pure function of CFG content, yet the training flow
// (`pipeline.fit` -> training `extract` -> `calibrate`) and repeated
// batch analysis re-derive the same labelings for the same CFGs — and
// labeling is the dominant extraction cost (centrality is O(V*E) per
// graph). `LabelingCache` memoizes `label_both` keyed by a 64-bit
// content hash of the CFG (entry + node count + edge list) plus the
// effective centrality mode (exact, or sampled-pivot with its resolved
// pivot count and seed), so exact and approximate labelings of the
// same CFG never alias.
//
// Correctness under collisions: every entry stores the full canonical
// key alongside the hash and verifies it on lookup, so two CFGs that
// collide in the hash can never serve each other's labelings (the
// cache tests construct collisions via an injected degenerate hasher).
// Because labeling is deterministic, cached results are bit-identical
// to uncached computation — the cache changes *when* work happens,
// never *what* is computed.
//
// Thread safety: one mutex guards the LRU structure; the labeling
// itself is computed outside the lock, so concurrent misses on
// different CFGs don't serialize. Hit/miss/eviction totals are exposed
// via `stats()` and mirrored to the observability counters
// `soteria.cache.labeling.{hits,misses,evictions}`.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cfg/cfg.h"
#include "cfg/labeling.h"

namespace soteria::cfg {

/// Capacity-bounded, thread-safe LRU cache of `label_both` results.
class LabelingCache {
 public:
  /// Hash over CFG content; injectable so tests can force collisions.
  using Hasher = std::function<std::uint64_t(const Cfg&)>;

  /// Cache holding at most `capacity` entries (LRU eviction). Throws
  /// std::invalid_argument for zero capacity — disable caching by not
  /// constructing one (SoteriaConfig::labeling_cache_capacity = 0).
  explicit LabelingCache(std::size_t capacity);

  /// As above with a custom content hasher (tests only).
  LabelingCache(std::size_t capacity, Hasher hasher);

  /// The DBL/LBL labelings of `cfg`: served from the cache when an
  /// entry with identical content exists, computed via label_both and
  /// inserted otherwise. Throws std::invalid_argument for an empty CFG
  /// (nothing is cached in that case).
  [[nodiscard]] NodeLabelings labels(const Cfg& cfg);

  /// As above under explicit labeling options. The cache key covers the
  /// *effective* centrality mode — exact, or approximate with its
  /// resolved pivot count and seed — so exact and approximate labelings
  /// of the same CFG content miss each other instead of aliasing.
  /// Options that resolve to the exact sweep (threshold unset, CFG
  /// below it, or a full pivot set) share entries with labels(cfg).
  [[nodiscard]] NodeLabelings labels(const Cfg& cfg,
                                     const LabelingOptions& options);

  /// Monotonic accounting since construction (or clear()).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Drops every entry and zeroes the stats.
  void clear();

  /// Default content hash: FNV-1a over entry, node count, and the edge
  /// list in DiGraph::edges() order. Deliberately *shape-addressed*:
  /// two binaries whose decoders produce identical CFGs hash equal,
  /// which is what shard routing (serve/sharded_service.h) wants —
  /// same shape, same shard, same warm labeling cache. Decoder
  /// identity is kept out of feature-store keys separately, via the
  /// frontend name hashed into the pipeline fingerprint.
  [[nodiscard]] static std::uint64_t content_hash(const Cfg& cfg);

  /// Content hash further keyed by the producing front end's name
  /// ("toy", "x86_64"). Use wherever CFGs from different decoders must
  /// never alias even when their shapes coincide — distinct tags are
  /// guaranteed to mix to distinct streams (pinned by the frontend
  /// test suite).
  [[nodiscard]] static std::uint64_t content_hash(
      const Cfg& cfg, std::string_view frontend_tag);

 private:
  /// The effective centrality mode of a labeling, normalized: exact
  /// entries are all-zero regardless of which options requested them,
  /// approximate entries carry the resolved pivot count and seed (the
  /// two inputs that change the scores; epsilon/delta only matter
  /// through the pivot count they resolve to).
  struct Mode {
    bool approximate = false;
    std::size_t pivots = 0;
    std::uint64_t seed = 0;

    bool operator==(const Mode& other) const = default;
  };

  /// Canonical CFG content plus the effective centrality mode; compared
  /// on lookup so hash collisions are detected instead of served.
  struct Key {
    graph::NodeId entry = 0;
    std::size_t nodes = 0;
    std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
    Mode mode;

    bool operator==(const Key& other) const = default;
  };

  struct Entry {
    std::uint64_t hash = 0;
    Key key;
    NodeLabelings labelings;
  };

  [[nodiscard]] static Key make_key(const Cfg& cfg,
                                    const LabelingOptions& options);

  const std::size_t capacity_;
  const Hasher hasher_;

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::vector<std::list<Entry>::iterator>>
      buckets_;
  Stats stats_;
};

}  // namespace soteria::cfg
