#include "cfg/extractor.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/traversal.h"
#include "isa/isa.h"
#include "obs/trace.h"

namespace soteria::cfg {

namespace {

using isa::Instruction;
using isa::Opcode;

/// Absolute instruction index a control-flow instruction at `index`
/// targets, or -1 if the target lands outside the image.
std::int64_t branch_target(const Instruction& insn, std::size_t index,
                           std::size_t instruction_count) {
  const auto target =
      static_cast<std::int64_t>(index) + 1 + static_cast<std::int64_t>(insn.imm);
  if (target < 0 || target >= static_cast<std::int64_t>(instruction_count)) {
    return -1;
  }
  return target;
}

}  // namespace

Cfg extract(std::span<const std::uint8_t> image,
            const ExtractOptions& options) {
  if (image.empty()) {
    throw std::invalid_argument("extract: empty image");
  }
  const obs::Span span("cfg.extract");
  const auto instructions = isa::disassemble(image);
  const std::size_t n = instructions.size();
  obs::registry().counter_add("soteria.cfg.images");
  obs::registry().counter_add("soteria.cfg.instructions", n);

  // Pass 1: leaders. Instruction 0, every in-range branch/call target,
  // and every instruction following a block terminator.
  std::vector<bool> leader(n, false);
  leader[0] = true;
  for (std::size_t i = 0; i < n; ++i) {
    const Instruction& insn = instructions[i];
    if (isa::is_control_flow(insn.opcode)) {
      const auto target = branch_target(insn, i, n);
      if (target >= 0) leader[static_cast<std::size_t>(target)] = true;
    }
    if (isa::ends_basic_block(insn.opcode) && i + 1 < n) {
      leader[i + 1] = true;
    }
  }

  // Pass 2: blocks. block_of[i] = block index containing instruction i.
  std::vector<std::size_t> block_of(n, 0);
  std::vector<BasicBlock> blocks;
  for (std::size_t i = 0; i < n; ++i) {
    if (leader[i]) {
      blocks.push_back(BasicBlock{i, 0});
    }
    block_of[i] = blocks.size() - 1;
    ++blocks.back().instruction_count;
  }

  // Pass 3: edges.
  graph::DiGraph g(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const std::size_t last =
        blocks[b].first_instruction + blocks[b].instruction_count - 1;
    const Instruction& insn = instructions[last];
    const bool has_fallthrough = last + 1 < n;
    switch (insn.opcode) {
      case Opcode::kJmp: {
        const auto target = branch_target(insn, last, n);
        if (target >= 0)
          g.add_edge(b, block_of[static_cast<std::size_t>(target)]);
        break;
      }
      case Opcode::kJz:
      case Opcode::kJnz:
      case Opcode::kJlt:
      case Opcode::kJge:
      case Opcode::kCall: {
        const auto target = branch_target(insn, last, n);
        if (target >= 0)
          g.add_edge(b, block_of[static_cast<std::size_t>(target)]);
        if (has_fallthrough) g.add_edge(b, block_of[last + 1]);
        break;
      }
      case Opcode::kRet:
      case Opcode::kHalt:
        break;  // no successors
      default:
        // Block ended because the next instruction is a leader.
        if (has_fallthrough) g.add_edge(b, block_of[last + 1]);
        break;
    }
  }

  const graph::NodeId entry = block_of[0];
  if (!options.prune_unreachable) {
    return Cfg(std::move(g), entry, std::move(blocks));
  }

  // Pass 4: prune to the entry-reachable subgraph with compact ids.
  const auto reachable = graph::reachable_from(g, entry);
  std::vector<graph::NodeId> remap(blocks.size(), graph::NodeId{0});
  graph::DiGraph pruned;
  std::vector<BasicBlock> pruned_blocks;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (reachable[b]) {
      remap[b] = pruned.add_node();
      pruned_blocks.push_back(blocks[b]);
    }
  }
  for (const auto& [u, v] : g.edges()) {
    if (reachable[u] && reachable[v]) pruned.add_edge(remap[u], remap[v]);
  }
  return Cfg(std::move(pruned), remap[entry], std::move(pruned_blocks));
}

}  // namespace soteria::cfg
