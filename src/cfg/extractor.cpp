#include "cfg/extractor.h"

#include "frontend/toy_isa_frontend.h"
#include "loader/image.h"

namespace soteria::cfg {

Cfg extract(std::span<const std::uint8_t> image,
            const ExtractOptions& options) {
  loader::Image raw;
  raw.bytes = image;
  raw.text = image;
  static const frontend::ToyIsaFrontend toy;
  return toy.extract(raw, options);
}

}  // namespace soteria::cfg
