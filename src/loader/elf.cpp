#include "loader/elf.h"

#include <string>

#include "soteria/error.h"

namespace soteria::loader {

namespace {

using core::Error;
using core::ErrorCode;

constexpr std::size_t kIdentSize = 16;
constexpr std::uint32_t kShtNobits = 8;
constexpr std::uint32_t kPtLoad = 1;
constexpr std::uint64_t kShfAlloc = 0x2;
constexpr std::uint64_t kShfExecinstr = 0x4;

[[noreturn]] void corrupt(const std::string& what) {
  throw Error(ErrorCode::kCorruptModel, "load_elf: " + what);
}

/// Bounds-checked little/big-endian scalar reader over the file bytes.
class Reader {
 public:
  Reader(std::span<const std::uint8_t> bytes, bool big_endian) noexcept
      : bytes_(bytes), big_endian_(big_endian) {}

  [[nodiscard]] std::uint64_t size() const noexcept { return bytes_.size(); }

  [[nodiscard]] bool in_range(std::uint64_t offset,
                              std::uint64_t length) const noexcept {
    return offset <= bytes_.size() && length <= bytes_.size() - offset;
  }

  [[nodiscard]] std::uint8_t u8(std::uint64_t offset) const {
    check(offset, 1);
    return bytes_[static_cast<std::size_t>(offset)];
  }
  [[nodiscard]] std::uint16_t u16(std::uint64_t offset) const {
    return static_cast<std::uint16_t>(scalar(offset, 2));
  }
  [[nodiscard]] std::uint32_t u32(std::uint64_t offset) const {
    return static_cast<std::uint32_t>(scalar(offset, 4));
  }
  [[nodiscard]] std::uint64_t u64(std::uint64_t offset) const {
    return scalar(offset, 8);
  }
  /// ELF "word-sized" field: 4 bytes in ELF32, 8 in ELF64.
  [[nodiscard]] std::uint64_t word(std::uint64_t offset, bool elf64) const {
    return elf64 ? u64(offset) : u32(offset);
  }

 private:
  void check(std::uint64_t offset, std::uint64_t length) const {
    if (!in_range(offset, length)) {
      corrupt("truncated at offset " + std::to_string(offset));
    }
  }

  [[nodiscard]] std::uint64_t scalar(std::uint64_t offset,
                                     unsigned width) const {
    check(offset, width);
    std::uint64_t value = 0;
    for (unsigned i = 0; i < width; ++i) {
      const auto byte = static_cast<std::uint64_t>(
          bytes_[static_cast<std::size_t>(offset) + i]);
      value |= byte << (8 * (big_endian_ ? width - 1 - i : i));
    }
    return value;
  }

  std::span<const std::uint8_t> bytes_;
  bool big_endian_;
};

/// Reads the NUL-terminated section name at `offset` inside the
/// .shstrtab bounds; malformed names (offset past the table, no
/// terminator before its end) are structural corruption.
std::string section_name(std::span<const std::uint8_t> bytes,
                         std::uint64_t strtab_offset,
                         std::uint64_t strtab_size,
                         std::uint32_t name_offset) {
  if (name_offset >= strtab_size) corrupt("section name outside .shstrtab");
  std::string name;
  for (std::uint64_t i = strtab_offset + name_offset;; ++i) {
    if (i >= strtab_offset + strtab_size || i >= bytes.size()) {
      corrupt("unterminated section name");
    }
    const char c = static_cast<char>(bytes[static_cast<std::size_t>(i)]);
    if (c == '\0') break;
    name.push_back(c);
  }
  return name;
}

}  // namespace

bool is_elf(std::span<const std::uint8_t> bytes) noexcept {
  return bytes.size() >= 4 && bytes[0] == 0x7f && bytes[1] == 'E' &&
         bytes[2] == 'L' && bytes[3] == 'F';
}

Image load_elf(std::span<const std::uint8_t> bytes) {
  // --- e_ident: magic, class, data encoding, version. ---
  if (bytes.size() < kIdentSize) corrupt("file smaller than e_ident");
  if (!is_elf(bytes)) corrupt("bad magic");
  const std::uint8_t ei_class = bytes[4];
  if (ei_class != 1 && ei_class != 2) {
    corrupt("bad EI_CLASS " + std::to_string(ei_class));
  }
  const bool elf64 = ei_class == 2;
  const std::uint8_t ei_data = bytes[5];
  if (ei_data != 1 && ei_data != 2) {
    corrupt("bad EI_DATA " + std::to_string(ei_data));
  }
  const bool big_endian = ei_data == 2;
  if (bytes[6] != 1) {
    corrupt("bad EI_VERSION " + std::to_string(bytes[6]));
  }
  const Reader r(bytes, big_endian);

  // --- ELF header (52 bytes for ELF32, 64 for ELF64). ---
  const std::uint64_t ehsize = elf64 ? 64 : 52;
  if (!r.in_range(0, ehsize)) corrupt("file smaller than ELF header");

  Image image;
  image.format = Format::kElf;
  image.elf_class = elf64 ? ElfClass::kElf64 : ElfClass::kElf32;
  image.big_endian = big_endian;
  image.bytes = bytes;
  image.machine = r.u16(18);
  if (r.u32(20) != 1) corrupt("bad e_version");
  image.entry = r.word(24, elf64);

  const std::uint64_t phoff = r.word(elf64 ? 32 : 28, elf64);
  const std::uint64_t shoff = r.word(elf64 ? 40 : 32, elf64);
  const std::uint16_t phentsize = r.u16(elf64 ? 54 : 42);
  const std::uint16_t phnum = r.u16(elf64 ? 56 : 44);
  const std::uint16_t shentsize = r.u16(elf64 ? 58 : 46);
  const std::uint16_t shnum = r.u16(elf64 ? 60 : 48);
  const std::uint16_t shstrndx = r.u16(elf64 ? 62 : 50);

  // --- Program headers. ---
  const std::uint64_t min_phentsize = elf64 ? 56 : 32;
  if (phnum > 0) {
    if (phentsize < min_phentsize) corrupt("e_phentsize too small");
    if (!r.in_range(phoff, static_cast<std::uint64_t>(phentsize) * phnum)) {
      corrupt("program header table out of range");
    }
    image.segments.reserve(phnum);
    for (std::uint16_t i = 0; i < phnum; ++i) {
      const std::uint64_t ph = phoff + static_cast<std::uint64_t>(i) * phentsize;
      Segment seg;
      seg.type = r.u32(ph);
      // ELF64 moved p_flags up next to p_type; ELF32 keeps it after
      // p_memsz.
      const std::uint32_t flags = elf64 ? r.u32(ph + 4) : r.u32(ph + 24);
      seg.offset = r.word(ph + (elf64 ? 8 : 4), elf64);
      seg.vaddr = r.word(ph + (elf64 ? 16 : 8), elf64);
      seg.file_size = r.word(ph + (elf64 ? 32 : 16), elf64);
      seg.mem_size = r.word(ph + (elf64 ? 40 : 20), elf64);
      seg.executable = (flags & 0x1) != 0;  // PF_X
      if (seg.type == kPtLoad && !r.in_range(seg.offset, seg.file_size)) {
        corrupt("PT_LOAD segment " + std::to_string(i) + " out of range");
      }
      image.segments.push_back(seg);
    }
  }

  // --- Section headers + names via .shstrtab. ---
  const std::uint64_t min_shentsize = elf64 ? 64 : 40;
  if (shnum > 0) {
    if (shentsize < min_shentsize) corrupt("e_shentsize too small");
    if (!r.in_range(shoff, static_cast<std::uint64_t>(shentsize) * shnum)) {
      corrupt("section header table out of range");
    }
    if (shstrndx >= shnum) corrupt("e_shstrndx out of range");
    const std::uint64_t strtab_header =
        shoff + static_cast<std::uint64_t>(shstrndx) * shentsize;
    const std::uint64_t strtab_offset =
        r.word(strtab_header + (elf64 ? 24 : 16), elf64);
    const std::uint64_t strtab_size =
        r.word(strtab_header + (elf64 ? 32 : 20), elf64);
    if (!r.in_range(strtab_offset, strtab_size)) {
      corrupt(".shstrtab out of range");
    }

    image.sections.reserve(shnum);
    for (std::uint16_t i = 0; i < shnum; ++i) {
      const std::uint64_t sh = shoff + static_cast<std::uint64_t>(i) * shentsize;
      const std::uint32_t name_offset = r.u32(sh);
      const std::uint32_t type = r.u32(sh + 4);
      const std::uint64_t flags = r.word(sh + 8, elf64);
      Section section;
      section.address = r.word(sh + (elf64 ? 16 : 12), elf64);
      section.offset = r.word(sh + (elf64 ? 24 : 16), elf64);
      section.size = r.word(sh + (elf64 ? 32 : 20), elf64);
      section.executable = (flags & kShfExecinstr) != 0;
      section.loadable = (flags & kShfAlloc) != 0;
      // SHT_NOBITS (.bss) occupies no file bytes; everything else that
      // claims file extent must fit in the file.
      if (type != kShtNobits && !r.in_range(section.offset, section.size)) {
        corrupt("section " + std::to_string(i) + " out of range");
      }
      section.name =
          section_name(bytes, strtab_offset, strtab_size, name_offset);
      image.sections.push_back(std::move(section));
    }
  }

  // --- Locate the code region: the .text section, else the first
  // executable PT_LOAD segment (sectionless firmware blobs). ---
  for (const auto& section : image.sections) {
    if (section.name == ".text" && section.executable) {
      image.text = bytes.subspan(static_cast<std::size_t>(section.offset),
                                 static_cast<std::size_t>(section.size));
      image.text_vaddr = section.address;
      return image;
    }
  }
  for (const auto& seg : image.segments) {
    if (seg.type == kPtLoad && seg.executable && seg.file_size > 0) {
      image.text = bytes.subspan(static_cast<std::size_t>(seg.offset),
                                 static_cast<std::size_t>(seg.file_size));
      image.text_vaddr = seg.vaddr;
      return image;
    }
  }
  throw Error(ErrorCode::kInvalidArgument,
              "load_elf: no executable .text section or PT_LOAD segment");
}

Image load_image(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) {
    throw Error(ErrorCode::kInvalidArgument, "load_image: empty image");
  }
  if (is_elf(bytes)) return load_elf(bytes);
  Image image;
  image.format = Format::kRaw;
  image.machine = kElfMachineToyIsa;
  image.bytes = bytes;
  image.text = bytes;
  return image;
}

}  // namespace soteria::loader
