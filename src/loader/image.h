// Loaded-binary abstraction: what a front end decodes.
//
// An `Image` is a non-owning *view* of one binary — the raw file bytes,
// the located code region (`.text` for ELF, the whole file for raw toy
// images), and enough format metadata (class, endianness, machine,
// entry point) for a `frontend::Frontend` to decide whether it can
// decode it. Views keep loading allocation-free on the serving hot
// path; the caller owns the underlying byte buffer and must keep it
// alive for the lifetime of the Image (exactly like std::span).
//
// The loader/ + frontend/ split mirrors Boomerang's architecture:
// loader/ understands container formats (ELF here), frontend/
// understands instruction sets, and everything downstream of
// `cfg::Cfg` is format- and ISA-agnostic.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace soteria::loader {

/// Container format of a binary image.
enum class Format : std::uint8_t {
  kRaw = 0,  ///< bare code bytes (the toy-ISA corpus format)
  kElf = 1,  ///< ELF32/ELF64 (see loader/elf.h)
};

/// ELF class of an image; kNone for raw images.
enum class ElfClass : std::uint8_t { kNone = 0, kElf32 = 1, kElf64 = 2 };

/// `e_machine` value this repo uses to tag ELF containers whose .text
/// holds toy-ISA (SIR-32) code — the wrap format `soteria_cli corpus
/// --format elf` emits. Outside every assigned EM_* range.
inline constexpr std::uint16_t kElfMachineToyIsa = 0x5349;  // "SI"

/// `e_machine` for x86-64 (EM_X86_64).
inline constexpr std::uint16_t kElfMachineX8664 = 62;

/// One parsed section (ELF only; raw images have none).
struct Section {
  std::string name;
  std::uint64_t address = 0;  ///< virtual address (sh_addr)
  std::uint64_t offset = 0;   ///< file offset (sh_offset)
  std::uint64_t size = 0;     ///< sh_size
  bool executable = false;    ///< SHF_EXECINSTR
  bool loadable = false;      ///< SHT_PROGBITS / SHT_NOBITS with SHF_ALLOC
};

/// One parsed program header (ELF only).
struct Segment {
  std::uint32_t type = 0;  ///< p_type (1 = PT_LOAD)
  std::uint64_t offset = 0;
  std::uint64_t vaddr = 0;
  std::uint64_t file_size = 0;
  std::uint64_t mem_size = 0;
  bool executable = false;  ///< PF_X
};

/// A loaded binary, ready for a front end. Non-owning: `bytes` and
/// `text` view the caller's buffer.
struct Image {
  Format format = Format::kRaw;
  ElfClass elf_class = ElfClass::kNone;
  bool big_endian = false;
  /// e_machine for ELF images; kElfMachineToyIsa by convention for raw
  /// toy images (raw images *are* toy code — there is nothing else a
  /// bare byte stream can be in this repo).
  std::uint16_t machine = kElfMachineToyIsa;

  /// The whole file.
  std::span<const std::uint8_t> bytes;

  /// The code region a front end sweeps: `.text` for ELF, the entire
  /// file for raw images.
  std::span<const std::uint8_t> text;
  /// Virtual address the code region is mapped at (0 for raw).
  std::uint64_t text_vaddr = 0;

  /// Program entry point as a virtual address (e_entry; 0 for raw,
  /// where execution starts at offset 0 by convention).
  std::uint64_t entry = 0;

  std::vector<Section> sections;
  std::vector<Segment> segments;

  /// Entry point as a byte offset into `text`, or 0 when the entry does
  /// not land inside the code region (front ends then start the sweep
  /// at the first decoded instruction, matching the raw convention).
  [[nodiscard]] std::uint64_t entry_text_offset() const noexcept {
    if (entry >= text_vaddr && entry - text_vaddr < text.size()) {
      return entry - text_vaddr;
    }
    return 0;
  }
};

}  // namespace soteria::loader
