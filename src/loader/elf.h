// Minimal ELF32/ELF64 loader (the container-format half of the binary
// front end; see loader/image.h for the architecture note).
//
// Scope: enough of the ELF spec to take a real firmware binary to its
// executable code — ident validation (magic, class, data encoding,
// version), the ELF header, every program header, every section
// header with names resolved through .shstrtab, and `.text` location
// plus the entry point. Both classes and both byte orders parse; the
// rest of the spec (relocations, symbols, dynamic linking) is out of
// scope because the CFG front ends only need the code bytes.
//
// Every malformed input surfaces as a typed `core::Error` — a file
// that is not ELF at all, or whose structure is inconsistent with its
// own header fields (truncated tables, out-of-range offsets), throws
// `kCorruptModel`; a well-formed ELF the pipeline cannot use (no
// `.text`) throws `kInvalidArgument`. No input reaches undefined
// behavior: every offset and size is bounds-checked before it is
// dereferenced (tests/loader/ sweeps every truncation of the golden
// fixtures and every flipped ident byte).
#pragma once

#include <cstdint>
#include <span>

#include "loader/image.h"

namespace soteria::loader {

/// True if `bytes` starts with the 4-byte ELF magic. A cheap sniff for
/// format auto-detection; says nothing about overall validity.
[[nodiscard]] bool is_elf(std::span<const std::uint8_t> bytes) noexcept;

/// Parses `bytes` as ELF32/ELF64 and locates `.text` and the entry
/// point. The returned Image views `bytes` (no copy) — the caller
/// keeps the buffer alive. Throws core::Error{kCorruptModel} for
/// structurally invalid input and core::Error{kInvalidArgument} for a
/// valid ELF without an executable `.text` section.
[[nodiscard]] Image load_elf(std::span<const std::uint8_t> bytes);

/// Loads a binary of either supported container format: ELF when the
/// magic matches (full validation applies), otherwise a raw toy-ISA
/// image spanning the whole buffer. Throws core::Error{kInvalidArgument}
/// for an empty buffer.
[[nodiscard]] Image load_image(std::span<const std::uint8_t> bytes);

}  // namespace soteria::loader
