// Minimal ELF emitter: wraps a code blob into a well-formed ELF32 or
// ELF64 file with one PT_LOAD segment and three sections (NULL, .text,
// .shstrtab). The inverse of loader/elf.h for the subset this repo
// uses — `soteria_cli corpus --format elf` emits toy-ISA corpora in
// this shape so the serving path exercises the real loader, and the
// committed golden fixtures under tests/loader/fixtures/ were
// generated (then hand-verified and pinned byte-for-byte) from it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "loader/image.h"

namespace soteria::loader {

/// Knobs for write_elf. Defaults produce a little-endian ELF64 with
/// the toy-ISA machine tag, entry at the start of .text.
struct ElfWriteOptions {
  ElfClass elf_class = ElfClass::kElf64;
  bool big_endian = false;
  std::uint16_t machine = kElfMachineToyIsa;
  /// Virtual address .text is linked at.
  std::uint64_t text_vaddr = 0x400000;
  /// Entry point as an offset into the code blob.
  std::uint64_t entry_offset = 0;
};

/// Emits a complete ELF file whose .text holds `code`. Throws
/// core::Error{kInvalidArgument} for an invalid class or an
/// entry_offset outside the code blob.
[[nodiscard]] std::vector<std::uint8_t> write_elf(
    std::span<const std::uint8_t> code, const ElfWriteOptions& options = {});

}  // namespace soteria::loader
