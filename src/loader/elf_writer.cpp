#include "loader/elf_writer.h"

#include <string_view>

#include "soteria/error.h"

namespace soteria::loader {

namespace {

/// Endianness-aware scalar appender mirroring the loader's Reader.
class Writer {
 public:
  explicit Writer(bool big_endian) noexcept : big_endian_(big_endian) {}

  void u8(std::uint8_t value) { bytes_.push_back(value); }
  void u16(std::uint16_t value) { scalar(value, 2); }
  void u32(std::uint32_t value) { scalar(value, 4); }
  void u64(std::uint64_t value) { scalar(value, 8); }
  void word(std::uint64_t value, bool elf64) {
    if (elf64) {
      u64(value);
    } else {
      u32(static_cast<std::uint32_t>(value));
    }
  }
  void raw(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }
  void pad_to(std::size_t offset) {
    while (bytes_.size() < offset) bytes_.push_back(0);
  }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  void scalar(std::uint64_t value, unsigned width) {
    for (unsigned i = 0; i < width; ++i) {
      const unsigned shift = 8 * (big_endian_ ? width - 1 - i : i);
      bytes_.push_back(static_cast<std::uint8_t>((value >> shift) & 0xff));
    }
  }

  std::vector<std::uint8_t> bytes_;
  bool big_endian_;
};

}  // namespace

std::vector<std::uint8_t> write_elf(std::span<const std::uint8_t> code,
                                    const ElfWriteOptions& options) {
  const bool elf64 = options.elf_class == ElfClass::kElf64;
  if (!elf64 && options.elf_class != ElfClass::kElf32) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "write_elf: elf_class must be kElf32 or kElf64");
  }
  if (options.entry_offset > code.size()) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "write_elf: entry_offset outside code");
  }

  const std::uint64_t ehsize = elf64 ? 64 : 52;
  const std::uint64_t phentsize = elf64 ? 56 : 32;
  const std::uint64_t shentsize = elf64 ? 64 : 40;
  constexpr std::string_view kShstrtab{"\0.text\0.shstrtab\0", 17};
  constexpr std::uint32_t kTextNameOffset = 1;
  constexpr std::uint32_t kShstrtabNameOffset = 7;

  // File layout: [ehdr][phdr][.text][.shstrtab][shdr x 3], with .text
  // aligned to 16 and the section header table to the word size.
  const std::uint64_t text_offset = ((ehsize + phentsize) + 15) / 16 * 16;
  const std::uint64_t strtab_offset = text_offset + code.size();
  const std::uint64_t align = elf64 ? 8 : 4;
  const std::uint64_t shoff =
      (strtab_offset + kShstrtab.size() + align - 1) / align * align;

  Writer w(options.big_endian);
  // e_ident.
  w.raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>("\x7f" "ELF"), 4));
  w.u8(elf64 ? 2 : 1);                   // EI_CLASS
  w.u8(options.big_endian ? 2 : 1);      // EI_DATA
  w.u8(1);                               // EI_VERSION
  w.pad_to(16);
  w.u16(2);                              // e_type = ET_EXEC
  w.u16(options.machine);
  w.u32(1);                              // e_version
  w.word(options.text_vaddr + options.entry_offset, elf64);  // e_entry
  w.word(ehsize, elf64);                 // e_phoff
  w.word(shoff, elf64);                  // e_shoff
  w.u32(0);                              // e_flags
  w.u16(static_cast<std::uint16_t>(ehsize));
  w.u16(static_cast<std::uint16_t>(phentsize));
  w.u16(1);                              // e_phnum
  w.u16(static_cast<std::uint16_t>(shentsize));
  w.u16(3);                              // e_shnum
  w.u16(2);                              // e_shstrndx

  // Program header: one executable PT_LOAD covering .text.
  const std::uint32_t kPfRX = 0x5;  // PF_R | PF_X
  w.u32(1);                              // p_type = PT_LOAD
  if (elf64) w.u32(kPfRX);               // p_flags (ELF64 position)
  w.word(text_offset, elf64);            // p_offset
  w.word(options.text_vaddr, elf64);     // p_vaddr
  w.word(options.text_vaddr, elf64);     // p_paddr
  w.word(code.size(), elf64);            // p_filesz
  w.word(code.size(), elf64);            // p_memsz
  if (!elf64) w.u32(kPfRX);              // p_flags (ELF32 position)
  w.word(16, elf64);                     // p_align

  w.pad_to(static_cast<std::size_t>(text_offset));
  w.raw(code);
  w.raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kShstrtab.data()),
      kShstrtab.size()));
  w.pad_to(static_cast<std::size_t>(shoff));

  const auto section = [&](std::uint32_t name, std::uint32_t type,
                           std::uint64_t flags, std::uint64_t addr,
                           std::uint64_t offset, std::uint64_t size) {
    w.u32(name);
    w.u32(type);
    w.word(flags, elf64);
    w.word(addr, elf64);
    w.word(offset, elf64);
    w.word(size, elf64);
    w.u32(0);                            // sh_link
    w.u32(0);                            // sh_info
    w.word(type == 0 ? 0 : 1, elf64);    // sh_addralign
    w.word(0, elf64);                    // sh_entsize
  };
  section(0, 0, 0, 0, 0, 0);  // SHT_NULL
  section(kTextNameOffset, /*SHT_PROGBITS=*/1,
          /*SHF_ALLOC|SHF_EXECINSTR=*/0x6, options.text_vaddr, text_offset,
          code.size());
  section(kShstrtabNameOffset, /*SHT_STRTAB=*/3, 0, 0, strtab_offset,
          kShstrtab.size());

  return w.take();
}

}  // namespace soteria::loader
