// Bounded MPMC queue — the admission-control primitive of the analysis
// service.
//
// Design goals, in order:
//   1. Explicit backpressure. `try_push` never blocks: when the queue
//      is at capacity it reports kFull immediately, so the caller (and
//      ultimately the remote client) decides whether to retry, shed, or
//      escalate — unbounded buffering is how serving systems fall over.
//   2. Orderly teardown. `close()` stops producers permanently while
//      consumers drain whatever is queued (drain-mode shutdown);
//      `take_all()` empties the queue atomically so a cancel-mode
//      shutdown can fail every pending item exactly once.
//   3. Operability. `pause()` holds consumers without rejecting
//      producers — a maintenance valve (and the hook the backpressure /
//      deadline tests use to pin queue state deterministically).
//
// Implementation: one mutex + one condition variable over a deque.
// Serving queues are short (bounded!) and the per-item work (feature
// extraction + NN inference) is orders of magnitude heavier than a
// lock handoff, so a lock-free ring would buy nothing here.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "soteria/error.h"

namespace soteria::serve {

/// Outcome of a non-blocking push attempt.
enum class PushStatus {
  kAccepted,  ///< item enqueued
  kFull,      ///< at capacity — backpressure, try again later
  kClosed,    ///< queue closed, no new work accepted
};

template <typename T>
class BoundedMpmcQueue {
 public:
  /// Throws core::Error{kInvalidArgument} for a zero capacity.
  explicit BoundedMpmcQueue(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
      throw core::Error(core::ErrorCode::kInvalidArgument,
                        "BoundedMpmcQueue: capacity must be positive");
    }
  }

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Non-blocking enqueue. Rejects (kFull) at exactly `capacity()`
  /// queued items; never rejects below it.
  [[nodiscard]] PushStatus try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushStatus::kClosed;
      if (items_.size() >= capacity_) return PushStatus::kFull;
      items_.push_back(std::move(value));
    }
    consumers_.notify_one();
    return PushStatus::kAccepted;
  }

  /// Blocks until an item is available (and the queue is not paused) or
  /// the queue is closed and drained — then returns nullopt, the
  /// consumer's signal to exit.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    consumers_.wait(lock, [&] {
      return (!paused_ && !items_.empty()) || (closed_ && items_.empty());
    });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Blocks like pop(), then drains up to `max_items` queued items in
  /// one lock hold — the micro-batching primitive: a consumer that
  /// takes N items per wakeup costs one lock round-trip per *batch*
  /// instead of one per request. Returns items in FIFO order; an empty
  /// vector means the queue is closed and drained (the consumer's exit
  /// signal). `max_items` of 0 is treated as 1.
  [[nodiscard]] std::vector<T> pop_batch(std::size_t max_items) {
    std::vector<T> batch;
    std::unique_lock<std::mutex> lock(mutex_);
    consumers_.wait(lock, [&] {
      return (!paused_ && !items_.empty()) || (closed_ && items_.empty());
    });
    const std::size_t count =
        std::min(std::max<std::size_t>(max_items, 1), items_.size());
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      batch.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return batch;
  }

  /// Holds consumers (pop blocks even when items are queued). Producers
  /// are unaffected: the queue keeps filling until capacity rejects.
  void pause() {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
  }

  /// Releases paused consumers.
  void resume() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      paused_ = false;
    }
    consumers_.notify_all();
  }

  /// Permanently stops producers; implies resume() so consumers can
  /// drain the remaining items and observe the nullopt sentinel.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      paused_ = false;
    }
    consumers_.notify_all();
  }

  /// Atomically removes and returns every queued item (cancel-mode
  /// shutdown: each pending item is failed exactly once by the caller).
  [[nodiscard]] std::vector<T> take_all() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<T> taken;
    taken.reserve(items_.size());
    for (auto& item : items_) taken.push_back(std::move(item));
    items_.clear();
    return taken;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable consumers_;
  std::deque<T> items_;    // guarded by mutex_
  bool paused_ = false;    // guarded by mutex_
  bool closed_ = false;    // guarded by mutex_
};

}  // namespace soteria::serve
