#include "serve/service.h"

#include <exception>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace soteria::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

AnalysisService::AnalysisService(
    std::shared_ptr<const core::SoteriaSystem> system, ServiceConfig config)
    : config_(config),
      worker_count_(runtime::resolve_threads(config.num_threads)),
      base_rng_(config.seed),
      model_(std::move(system)),
      queue_(config.queue_depth),
      pool_(worker_count_),
      dispatcher_([this] {
        // One long-lived parallel region whose bodies are the worker
        // loops: the pool contributes worker_count_ - 1 threads and the
        // dispatcher itself is the remaining runner.
        pool_.parallel_for(worker_count_,
                           [this](std::size_t) { worker_loop(); });
      }) {
  if (model_ == nullptr) {
    // Unblock the already-started workers before throwing.
    queue_.close();
    dispatcher_.join();
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "AnalysisService: null system");
  }
}

AnalysisService::~AnalysisService() { shutdown(config_.shutdown_policy); }

AnalysisService::Ticket AnalysisService::submit(cfg::Cfg cfg) {
  const auto deadline =
      config_.default_deadline.count() > 0
          ? Clock::now() + config_.default_deadline
          : Clock::time_point::max();
  return submit_internal(std::move(cfg), deadline);
}

AnalysisService::Ticket AnalysisService::submit(cfg::Cfg cfg,
                                                Clock::time_point deadline) {
  return submit_internal(std::move(cfg), deadline);
}

AnalysisService::Ticket AnalysisService::submit_internal(
    cfg::Cfg cfg, Clock::time_point deadline) {
  Ticket ticket;
  Request request;
  request.cfg = std::move(cfg);
  request.deadline = deadline;
  auto verdict = request.promise.get_future();
  {
    // Id allocation and enqueue are one atomic step: accepted ids stay
    // dense and queue order matches id order (the analyze_batch
    // bit-identity contract), and no submission can race past an
    // in-progress shutdown.
    std::lock_guard<std::mutex> lock(submit_mutex_);
    if (!accepting_.load(std::memory_order_relaxed)) {
      ticket.status = core::ErrorCode::kShuttingDown;
    } else {
      request.id = next_id_;
      request.enqueued = Clock::now();
      switch (queue_.try_push(std::move(request))) {
        case PushStatus::kAccepted:
          ticket.id = next_id_++;
          ticket.status = core::ErrorCode::kOk;
          ticket.verdict = std::move(verdict);
          break;
        case PushStatus::kFull:
          ticket.status = core::ErrorCode::kQueueFull;
          break;
        case PushStatus::kClosed:
          ticket.status = core::ErrorCode::kShuttingDown;
          break;
      }
    }
  }
  auto& registry = obs::registry();
  if (ticket.accepted()) {
    accepted_.fetch_add(1, std::memory_order_relaxed);
    registry.counter_add("serve.requests.accepted");
    registry.gauge_set("serve.queue.depth",
                       static_cast<double>(queue_.size()));
  } else {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    registry.counter_add("serve.requests.rejected");
  }
  return ticket;
}

void AnalysisService::worker_loop() {
  auto& registry = obs::registry();
  while (auto item = queue_.pop()) {
    Request request = std::move(*item);
    const auto start = Clock::now();
    registry.gauge_set("serve.queue.depth",
                       static_cast<double>(queue_.size()));
    registry.record("serve.queue.wait",
                    seconds_between(request.enqueued, start));

    // Expire queued work before it wastes a worker on inference.
    if (start >= request.deadline) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      registry.counter_add("serve.requests.expired");
      request.promise.set_exception(std::make_exception_ptr(core::Error(
          core::ErrorCode::kDeadlineExceeded,
          "AnalysisService: deadline passed while request was queued")));
      continue;
    }

    // The model is pinned for this request only: a concurrent
    // swap_model publishes to later requests while this one finishes on
    // the system it started with.
    const auto model = this->model();
    try {
      core::Verdict verdict = [&] {
        const obs::Span span("serve.request");
        // The per-request child is fresh, which lets its seed key the
        // feature store; the verdict is bit-identical either way.
        core::AnalyzeOptions options;
        options.feature_store = config_.feature_store;
        return model->analyze(request.cfg, base_rng_.child(request.id),
                              options);
      }();
      // Count *before* fulfilling the promise: a caller unblocked by
      // the future must observe the completion in stats().
      completed_.fetch_add(1, std::memory_order_relaxed);
      registry.counter_add("serve.requests.completed");
      request.promise.set_value(std::move(verdict));
    } catch (...) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      registry.counter_add("serve.requests.failed");
      request.promise.set_exception(std::current_exception());
    }
  }
}

void AnalysisService::swap_model(
    std::shared_ptr<const core::SoteriaSystem> system) {
  if (system == nullptr) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "AnalysisService::swap_model: null system");
  }
  {
    const std::lock_guard<std::mutex> lock(model_mutex_);
    model_ = std::move(system);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  obs::registry().counter_add("serve.model.swaps");
}

std::shared_ptr<const core::SoteriaSystem> AnalysisService::swap_model_file(
    const std::string& path) {
  auto fresh = std::make_shared<const core::SoteriaSystem>(
      core::SoteriaSystem::load_file(path));
  swap_model(fresh);
  return fresh;
}

std::shared_ptr<const core::SoteriaSystem> AnalysisService::model() const {
  const std::lock_guard<std::mutex> lock(model_mutex_);
  return model_;
}

void AnalysisService::pause() { queue_.pause(); }

void AnalysisService::resume() { queue_.resume(); }

void AnalysisService::shutdown(ShutdownPolicy policy) {
  // The lock covers the whole teardown so a second caller returns only
  // after the first finished joining the workers.
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (shut_down_) return;
  shut_down_ = true;
  {
    std::lock_guard<std::mutex> submit_lock(submit_mutex_);
    accepting_.store(false, std::memory_order_relaxed);
  }
  if (policy == ShutdownPolicy::kCancel) {
    auto pending = queue_.take_all();
    for (auto& request : pending) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      obs::registry().counter_add("serve.requests.cancelled");
      request.promise.set_exception(std::make_exception_ptr(core::Error(
          core::ErrorCode::kCancelled,
          "AnalysisService: request cancelled by shutdown")));
    }
  }
  queue_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

ServiceStats AnalysisService::stats() const {
  ServiceStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.swaps = swaps_.load(std::memory_order_relaxed);
  stats.queue_depth = queue_.size();
  return stats;
}

}  // namespace soteria::serve
