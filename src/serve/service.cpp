#include "serve/service.h"

#include <exception>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace soteria::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

AnalysisService::AnalysisService(
    std::shared_ptr<const core::SoteriaSystem> system, ServiceConfig config)
    : config_(std::move(config)),
      worker_count_(runtime::resolve_threads(config_.num_threads)),
      base_rng_(config_.seed),
      model_(std::move(system)),
      queue_(config_.queue_depth),
      pool_(worker_count_),
      dispatcher_([this] {
        // One long-lived parallel region whose bodies are the worker
        // loops: the pool contributes worker_count_ - 1 threads and the
        // dispatcher itself is the remaining runner.
        pool_.parallel_for(worker_count_,
                           [this](std::size_t) { worker_loop(); });
      }) {
  if (model_ == nullptr || config_.max_batch == 0) {
    // Unblock the already-started workers before throwing.
    queue_.close();
    dispatcher_.join();
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      model_ == nullptr
                          ? "AnalysisService: null system"
                          : "AnalysisService: max_batch must be positive");
  }
}

AnalysisService::~AnalysisService() { shutdown(config_.shutdown_policy); }

Clock::time_point AnalysisService::default_deadline() const {
  return config_.default_deadline.count() > 0
             ? Clock::now() + config_.default_deadline
             : Clock::time_point::max();
}

AnalysisService::Ticket AnalysisService::submit(cfg::Cfg cfg) {
  return submit_internal(std::make_shared<const cfg::Cfg>(std::move(cfg)),
                         default_deadline(), std::nullopt);
}

AnalysisService::Ticket AnalysisService::submit(
    std::shared_ptr<const cfg::Cfg> cfg) {
  return submit_internal(std::move(cfg), default_deadline(), std::nullopt);
}

AnalysisService::Ticket AnalysisService::submit(cfg::Cfg cfg,
                                                Clock::time_point deadline) {
  return submit_internal(std::make_shared<const cfg::Cfg>(std::move(cfg)),
                         deadline, std::nullopt);
}

AnalysisService::Ticket AnalysisService::submit(
    std::shared_ptr<const cfg::Cfg> cfg, Clock::time_point deadline) {
  return submit_internal(std::move(cfg), deadline, std::nullopt);
}

AnalysisService::Ticket AnalysisService::submit_keyed(
    std::shared_ptr<const cfg::Cfg> cfg, Clock::time_point deadline,
    std::uint64_t id) {
  return submit_internal(std::move(cfg), deadline, id);
}

AnalysisService::Ticket AnalysisService::submit_internal(
    std::shared_ptr<const cfg::Cfg> cfg, Clock::time_point deadline,
    std::optional<std::uint64_t> external_id) {
  if (cfg == nullptr) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "AnalysisService::submit: null cfg");
  }
  Ticket ticket;
  Request request;
  request.cfg = std::move(cfg);
  request.deadline = deadline;
  auto verdict = request.promise.get_future();
  {
    // Id allocation and enqueue are one atomic step: accepted ids stay
    // dense and queue order matches id order (the analyze_batch
    // bit-identity contract), and no submission can race past an
    // in-progress shutdown.
    std::lock_guard<std::mutex> lock(submit_mutex_);
    if (!accepting_.load(std::memory_order_relaxed)) {
      ticket.status = core::ErrorCode::kShuttingDown;
    } else {
      const std::uint64_t id = external_id ? *external_id : next_id_;
      request.id = id;
      request.enqueued = Clock::now();
      switch (queue_.try_push(std::move(request))) {
        case PushStatus::kAccepted:
          if (!external_id) ++next_id_;
          ticket.id = id;
          ticket.status = core::ErrorCode::kOk;
          ticket.verdict = std::move(verdict);
          break;
        case PushStatus::kFull:
          ticket.status = core::ErrorCode::kQueueFull;
          break;
        case PushStatus::kClosed:
          ticket.status = core::ErrorCode::kShuttingDown;
          break;
      }
    }
  }
  auto& registry = obs::registry();
  if (ticket.accepted()) {
    accepted_.fetch_add(1, std::memory_order_relaxed);
    registry.counter_add("serve.requests.accepted");
    // queue_.size() takes the queue lock, so only pay for it when the
    // registry is actually collecting.
    if (registry.enabled()) {
      registry.gauge_set("serve.queue.depth",
                         static_cast<double>(queue_.size()));
    }
  } else {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    registry.counter_add("serve.requests.rejected");
  }
  return ticket;
}

void AnalysisService::worker_loop() {
  auto& registry = obs::registry();
  for (;;) {
    std::vector<Request> batch = queue_.pop_batch(config_.max_batch);
    if (batch.empty()) break;  // closed and drained
    const auto start = Clock::now();
    if (registry.enabled()) {
      registry.gauge_set("serve.queue.depth",
                         static_cast<double>(queue_.size()));
      registry.record("serve.batch.size",
                      static_cast<double>(batch.size()));
      for (const auto& request : batch) {
        registry.record("serve.queue.wait",
                        seconds_between(request.enqueued, start));
      }
    }
    batches_.fetch_add(1, std::memory_order_relaxed);

    // Pin the published model once per batch: every request in the
    // batch runs on the same system (no torn batches), and an
    // in-flight batch finishes on the model it was drained under even
    // when a hot swap lands mid-execution.
    const auto model = this->model();
    if (config_.batch_hook) config_.batch_hook(batch.size());

    // Deadline triage at drain time: requests whose deadline passed
    // while queued are expired before the batch wastes inference on
    // them — including requests drained alongside healthy ones.
    std::vector<Request> live;
    live.reserve(batch.size());
    for (auto& request : batch) {
      if (start >= request.deadline) {
        expired_.fetch_add(1, std::memory_order_relaxed);
        registry.counter_add("serve.requests.expired");
        request.promise.set_exception(std::make_exception_ptr(core::Error(
            core::ErrorCode::kDeadlineExceeded,
            "AnalysisService: deadline passed while request was queued")));
      } else {
        live.push_back(std::move(request));
      }
    }
    if (live.empty()) continue;

    // Each sample carries its own fresh child generator, which both
    // keys the feature store and makes the verdict independent of how
    // requests were packed into batches. num_threads = 1: the workers
    // *are* the parallelism (and a nested region would serialize
    // inline anyway).
    core::AnalyzeOptions options;
    options.feature_store = config_.feature_store;
    options.num_threads = 1;
    std::vector<const cfg::Cfg*> cfgs;
    std::vector<math::Rng> rngs;
    cfgs.reserve(live.size());
    rngs.reserve(live.size());
    for (const auto& request : live) {
      cfgs.push_back(request.cfg.get());
      rngs.push_back(base_rng_.child(request.id));
    }
    try {
      auto verdicts = [&] {
        const obs::Span span("serve.batch");
        return model->analyze_batch(cfgs, rngs, options);
      }();
      const auto end = Clock::now();
      for (std::size_t i = 0; i < live.size(); ++i) {
        // Count *before* fulfilling the promise: a caller unblocked by
        // the future must observe the completion in stats().
        completed_.fetch_add(1, std::memory_order_relaxed);
        registry.counter_add("serve.requests.completed");
        registry.record("serve.request.e2e",
                        seconds_between(live[i].enqueued, end));
        live[i].promise.set_value(std::move(verdicts[i]));
      }
    } catch (...) {
      // One throwing sample poisons the whole batch call; re-run each
      // request alone so failures stay per-request (a neighbor's bad
      // CFG must not fail your healthy one). Analysis is deterministic
      // and store writes are idempotent, so the re-run is safe.
      for (auto& request : live) {
        try {
          core::Verdict verdict = model->analyze(
              *request.cfg, base_rng_.child(request.id), options);
          completed_.fetch_add(1, std::memory_order_relaxed);
          registry.counter_add("serve.requests.completed");
          registry.record("serve.request.e2e",
                          seconds_between(request.enqueued, Clock::now()));
          request.promise.set_value(std::move(verdict));
        } catch (...) {
          failed_.fetch_add(1, std::memory_order_relaxed);
          registry.counter_add("serve.requests.failed");
          request.promise.set_exception(std::current_exception());
        }
      }
    }
  }
}

void AnalysisService::swap_model(
    std::shared_ptr<const core::SoteriaSystem> system) {
  if (system == nullptr) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "AnalysisService::swap_model: null system");
  }
  {
    const std::lock_guard<std::mutex> lock(model_mutex_);
    model_ = std::move(system);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  obs::registry().counter_add("serve.model.swaps");
}

std::shared_ptr<const core::SoteriaSystem> AnalysisService::swap_model_file(
    const std::string& path) {
  auto fresh = std::make_shared<const core::SoteriaSystem>(
      core::SoteriaSystem::load_file(path));
  swap_model(fresh);
  return fresh;
}

std::shared_ptr<const core::SoteriaSystem> AnalysisService::model() const {
  const std::lock_guard<std::mutex> lock(model_mutex_);
  return model_;
}

void AnalysisService::pause() { queue_.pause(); }

void AnalysisService::resume() { queue_.resume(); }

void AnalysisService::shutdown(ShutdownPolicy policy) {
  // The lock covers the whole teardown so a second caller returns only
  // after the first finished joining the workers.
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (shut_down_) return;
  shut_down_ = true;
  {
    std::lock_guard<std::mutex> submit_lock(submit_mutex_);
    accepting_.store(false, std::memory_order_relaxed);
  }
  if (policy == ShutdownPolicy::kCancel) {
    auto pending = queue_.take_all();
    for (auto& request : pending) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      obs::registry().counter_add("serve.requests.cancelled");
      request.promise.set_exception(std::make_exception_ptr(core::Error(
          core::ErrorCode::kCancelled,
          "AnalysisService: request cancelled by shutdown")));
    }
  }
  queue_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

ServiceStats AnalysisService::stats() const {
  ServiceStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.swaps = swaps_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.queue_depth = queue_.size();
  return stats;
}

}  // namespace soteria::serve
