// Asynchronous analysis service: a trained SoteriaSystem behind a
// bounded-queue, deadline-aware, hot-swappable, micro-batching request
// API — the long-lived serving path the blocking analyze/analyze_batch
// calls don't provide.
//
// Contract highlights:
//
//  * Admission control. `submit` never blocks: at `queue_depth` pending
//    requests it returns a rejected Ticket (ErrorCode::kQueueFull), and
//    after shutdown begins it returns kShuttingDown. Backpressure is a
//    first-class answer, not an exception.
//  * Determinism. Accepted requests receive dense ids 0, 1, 2, ... and
//    request i is analyzed with `Rng(config.seed).child(i)` — exactly
//    the per-index split analyze_batch uses — so the verdict stream is
//    bit-identical to a serial `analyze_batch` over the same CFGs in
//    submission order, at any worker count, shard count (see
//    ShardedService), or micro-batch size.
//  * Micro-batching. A worker drains up to `max_batch` queued requests
//    in one queue-lock hold and analyzes them as one
//    `SoteriaSystem::analyze_batch` call, so the per-request cost of
//    lock round-trips, gauge reads, and model pinning is amortized
//    across the batch while the labeling cache and feature store do
//    the per-sample work. Because every sample carries its own
//    `child(id)` generator, batch composition never affects verdicts.
//  * Deadlines. A request whose deadline passes while it waits in the
//    queue is expired at drain time (Error{kDeadlineExceeded}) before
//    it wastes a worker on inference — including requests drained into
//    a batch alongside healthy ones.
//  * Hot swap. `swap_model` atomically publishes a new trained system:
//    the model is pinned once per drained batch, so an in-flight batch
//    finishes entirely on the model it started with (never a torn
//    batch) and later batches see the new one. No lock is held during
//    inference.
//  * Shutdown. `shutdown(kDrain)` stops intake and finishes every
//    queued request; `shutdown(kCancel)` fails queued-but-unstarted
//    requests with Error{kCancelled}; a batch already drained by a
//    worker always runs to completion under either policy. The
//    destructor runs the configured policy.
//
// Workers run on the existing runtime::ThreadPool: a dispatcher thread
// opens one parallel region whose bodies are persistent worker loops,
// so the pool's span-context propagation and lifecycle management are
// reused as-is.
//
// Observability (when the obs registry is enabled): gauge
// `serve.queue.depth`; counters `serve.requests.{accepted,rejected,
// expired,completed,cancelled,failed}` and `serve.model.swaps`;
// histograms `t/serve.batch` (batch inference latency),
// `serve.batch.size` (requests per drained batch),
// `serve.request.e2e` (submit-to-verdict seconds), and
// `serve.queue.wait` (time spent queued, seconds).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cfg/cfg.h"
#include "math/rng.h"
#include "runtime/thread_pool.h"
#include "serve/queue.h"
#include "soteria/error.h"
#include "soteria/system.h"

namespace soteria::serve {

/// What happens to queued-but-unstarted requests when the service stops.
enum class ShutdownPolicy {
  kDrain,   ///< finish every queued request, then stop
  kCancel,  ///< fail queued requests with Error{kCancelled}
};

/// Result of a submission attempt — shared by AnalysisService and the
/// ShardedService front door. `verdict` is valid only when
/// `accepted()`; it yields the Verdict or rethrows the request's
/// failure (Error{kDeadlineExceeded}, Error{kCancelled}, or whatever
/// inference threw).
struct Ticket {
  std::uint64_t id = 0;
  core::ErrorCode status = core::ErrorCode::kOk;
  std::future<core::Verdict> verdict;

  [[nodiscard]] bool accepted() const noexcept {
    return status == core::ErrorCode::kOk;
  }
};

struct ServiceConfig {
  /// Maximum queued (accepted but not yet running) requests; submission
  /// `queue_depth + 1` is rejected with kQueueFull.
  std::size_t queue_depth = 256;

  /// Worker threads (runtime::resolve_threads semantics: 0 = all
  /// hardware threads).
  std::size_t num_threads = 0;

  /// Micro-batch bound: a worker drains up to this many queued requests
  /// per wakeup and analyzes them as one batch. 1 disables batching;
  /// verdicts are bit-identical at any setting. Zero is rejected with
  /// Error{kInvalidArgument}.
  std::size_t max_batch = 8;

  /// Deadline applied to submissions that don't carry their own;
  /// zero = no deadline.
  std::chrono::nanoseconds default_deadline{0};

  /// Policy the destructor applies to still-queued work.
  ShutdownPolicy shutdown_policy = ShutdownPolicy::kDrain;

  /// Base seed: request i draws walks from Rng(seed).child(i).
  std::uint64_t seed = 0;

  /// Persistent feature store shared by every worker (passed via
  /// AnalyzeOptions on each request); nullptr defers to the store
  /// installed on the published model's pipeline, if any. Because
  /// entries are keyed by pipeline fingerprint, a hot-swapped model
  /// with different fitted state naturally misses instead of reading
  /// the old model's vectors.
  std::shared_ptr<store::FeatureStore> feature_store;

  /// Test-only hook: invoked by the draining worker after a batch is
  /// taken off the queue and the model pinned, before the batch
  /// executes (argument: batch size). Lets the micro-batch boundary
  /// property tests land a hot swap or a shutdown deterministically
  /// between drain and execute. Leave empty in production.
  std::function<void(std::size_t)> batch_hook;
};

/// Point-in-time counters (monotonic since construction, except
/// queue_depth which is instantaneous).
struct ServiceStats {
  std::uint64_t accepted = 0;   ///< admitted into the queue
  std::uint64_t rejected = 0;   ///< kQueueFull + kShuttingDown rejections
  std::uint64_t expired = 0;    ///< deadline passed while queued
  std::uint64_t completed = 0;  ///< verdict delivered
  std::uint64_t cancelled = 0;  ///< failed by a cancel-mode shutdown
  std::uint64_t failed = 0;     ///< inference threw
  std::uint64_t swaps = 0;      ///< models published via swap_model
  std::uint64_t batches = 0;    ///< micro-batches drained by workers
  std::size_t queue_depth = 0;  ///< requests queued right now
};

class AnalysisService {
 public:
  using Ticket = ::soteria::serve::Ticket;

  /// Starts `config.num_threads` workers immediately. Throws
  /// core::Error{kInvalidArgument} for a null system or a zero
  /// max_batch; queue and thread validation errors propagate from the
  /// underlying components.
  explicit AnalysisService(std::shared_ptr<const core::SoteriaSystem> system,
                           ServiceConfig config = {});

  /// Runs shutdown(config().shutdown_policy) if the service is still up.
  ~AnalysisService();

  AnalysisService(const AnalysisService&) = delete;
  AnalysisService& operator=(const AnalysisService&) = delete;

  /// Non-blocking submission with the config's default deadline. The
  /// by-value overloads copy the CFG once into shared ownership; hot
  /// submitters should pass a shared_ptr to skip the copy entirely.
  [[nodiscard]] Ticket submit(cfg::Cfg cfg);
  [[nodiscard]] Ticket submit(std::shared_ptr<const cfg::Cfg> cfg);

  /// Non-blocking submission with an explicit absolute deadline.
  [[nodiscard]] Ticket submit(cfg::Cfg cfg,
                              std::chrono::steady_clock::time_point deadline);
  [[nodiscard]] Ticket submit(std::shared_ptr<const cfg::Cfg> cfg,
                              std::chrono::steady_clock::time_point deadline);

  /// Front-door entry: submission under a caller-allocated request id
  /// (walks are drawn from Rng(seed).child(id)). ShardedService uses
  /// this to keep ids dense *across* shards; a service must not mix
  /// keyed and plain submissions (ids could collide and the dense-id
  /// invariant would belong to nobody). Admission control, stats, and
  /// deadlines behave exactly like submit().
  [[nodiscard]] Ticket submit_keyed(
      std::shared_ptr<const cfg::Cfg> cfg,
      std::chrono::steady_clock::time_point deadline, std::uint64_t id);

  /// Atomically publishes `system` to subsequent batches. Throws
  /// core::Error{kInvalidArgument} for null.
  void swap_model(std::shared_ptr<const core::SoteriaSystem> system);

  /// Loads a trained system from `path` (core::Error{kIoError} /
  /// {kCorruptModel} on failure) and publishes it. Returns the new model.
  std::shared_ptr<const core::SoteriaSystem> swap_model_file(
      const std::string& path);

  /// The currently published model.
  [[nodiscard]] std::shared_ptr<const core::SoteriaSystem> model() const;

  /// Maintenance valve: hold workers (queued requests wait, submissions
  /// keep filling the queue until backpressure) / release them.
  void pause();
  void resume();

  /// Stops intake, applies `policy` to queued work, joins the workers.
  /// Idempotent; later calls are no-ops (the first policy wins).
  void shutdown(ShutdownPolicy policy);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }
  /// Resolved worker count (after resolve_threads).
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return worker_count_;
  }

 private:
  struct Request {
    std::uint64_t id = 0;
    std::shared_ptr<const cfg::Cfg> cfg;
    std::chrono::steady_clock::time_point deadline;
    std::chrono::steady_clock::time_point enqueued;
    std::promise<core::Verdict> promise;
  };

  [[nodiscard]] Ticket submit_internal(
      std::shared_ptr<const cfg::Cfg> cfg,
      std::chrono::steady_clock::time_point deadline,
      std::optional<std::uint64_t> external_id);
  [[nodiscard]] std::chrono::steady_clock::time_point default_deadline()
      const;
  void worker_loop();

  ServiceConfig config_;
  std::size_t worker_count_;
  math::Rng base_rng_;  ///< never advanced; only child() is used
  /// Guards only the published-model pointer; held for a shared_ptr
  /// copy, never during inference. (A std::atomic<std::shared_ptr>
  /// would do, but libstdc++'s lock-bit protocol is opaque to TSan and
  /// the serve suite must stay sanitizer-clean.)
  mutable std::mutex model_mutex_;
  std::shared_ptr<const core::SoteriaSystem> model_;
  BoundedMpmcQueue<Request> queue_;

  /// Serializes id allocation with enqueue so accepted ids are dense and
  /// queue order matches id order (the determinism contract), and so no
  /// submission can slip past an in-progress shutdown.
  std::mutex submit_mutex_;
  std::uint64_t next_id_ = 0;       // guarded by submit_mutex_
  std::atomic<bool> accepting_{true};

  std::mutex shutdown_mutex_;
  bool shut_down_ = false;  // guarded by shutdown_mutex_

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> batches_{0};

  runtime::ThreadPool pool_;
  std::thread dispatcher_;
};

}  // namespace soteria::serve
