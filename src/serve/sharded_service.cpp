#include "serve/sharded_service.h"

#include <algorithm>
#include <limits>

#include "cfg/labeling_cache.h"
#include "math/rng.h"
#include "obs/metrics.h"

namespace soteria::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Salt decorrelating ring points from anything else split_mix64 is
/// used for (RNG child derivation, store sharding).
constexpr std::uint64_t kRingSalt = 0x53484152444e4721ULL;  // "SHARDNG!"

}  // namespace

HashRing::HashRing(std::size_t shard_count, std::size_t virtual_nodes)
    : shard_count_(shard_count) {
  if (shard_count == 0) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "HashRing: shard_count must be positive");
  }
  if (virtual_nodes == 0) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "HashRing: virtual_nodes must be positive");
  }
  points_.reserve(shard_count * virtual_nodes);
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    // Each shard's points depend only on its own index, never on the
    // total shard count — the property that makes ring growth move
    // keys only to the new shard.
    const std::uint64_t shard_salt = math::split_mix64(kRingSalt ^ shard);
    for (std::size_t vnode = 0; vnode < virtual_nodes; ++vnode) {
      points_.emplace_back(math::split_mix64(shard_salt ^ (vnode + 1)),
                           static_cast<std::uint32_t>(shard));
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::size_t HashRing::shard_of(std::uint64_t content_hash) const noexcept {
  // Re-mix the content hash so clustered inputs spread over the ring.
  const std::uint64_t key = math::split_mix64(content_hash);
  auto it = std::upper_bound(
      points_.begin(), points_.end(),
      std::make_pair(key, std::numeric_limits<std::uint32_t>::max()));
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->second;
}

ShardedService::ShardedService(
    std::shared_ptr<const core::SoteriaSystem> system,
    ShardedServiceConfig config)
    : config_(std::move(config)),
      ring_(config_.num_shards, config_.virtual_nodes),
      model_(std::move(system)) {
  if (model_ == nullptr) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "ShardedService: null system");
  }
  if (!config_.shard_stores.empty() &&
      config_.shard_stores.size() != config_.num_shards) {
    throw core::Error(
        core::ErrorCode::kInvalidArgument,
        "ShardedService: shard_stores must be empty or hold one store "
        "per shard");
  }
  replicas_.reserve(config_.num_shards);
  accepted_counters_.reserve(config_.num_shards);
  rejected_counters_.reserve(config_.num_shards);
  for (std::size_t shard = 0; shard < config_.num_shards; ++shard) {
    ServiceConfig replica_config = config_.shard;
    replica_config.seed = config_.seed;
    if (!config_.shard_stores.empty()) {
      replica_config.feature_store = config_.shard_stores[shard];
    }
    replicas_.push_back(std::make_unique<AnalysisService>(
        model_, std::move(replica_config)));
    const std::string prefix = "serve.shard" + std::to_string(shard);
    accepted_counters_.push_back(prefix + ".requests.accepted");
    rejected_counters_.push_back(prefix + ".requests.rejected");
  }
}

ShardedService::~ShardedService() {
  shutdown(config_.shard.shutdown_policy);
}

ShardedService::Ticket ShardedService::submit(cfg::Cfg cfg) {
  return submit(std::make_shared<const cfg::Cfg>(std::move(cfg)));
}

ShardedService::Ticket ShardedService::submit(
    std::shared_ptr<const cfg::Cfg> cfg) {
  const auto deadline = config_.shard.default_deadline.count() > 0
                            ? Clock::now() + config_.shard.default_deadline
                            : Clock::time_point::max();
  return submit_internal(std::move(cfg), deadline);
}

ShardedService::Ticket ShardedService::submit(
    std::shared_ptr<const cfg::Cfg> cfg, Clock::time_point deadline) {
  return submit_internal(std::move(cfg), deadline);
}

ShardedService::Ticket ShardedService::submit_internal(
    std::shared_ptr<const cfg::Cfg> cfg, Clock::time_point deadline) {
  if (cfg == nullptr) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "ShardedService::submit: null cfg");
  }
  // Routing is computed outside the id lock — it depends only on
  // content, not on submission order.
  const std::size_t shard =
      ring_.shard_of(cfg::LabelingCache::content_hash(*cfg));
  Ticket ticket;
  {
    std::lock_guard<std::mutex> lock(submit_mutex_);
    ticket = replicas_[shard]->submit_keyed(std::move(cfg), deadline,
                                            next_id_);
    if (ticket.accepted()) ++next_id_;
  }
  obs::registry().counter_add(ticket.accepted() ? accepted_counters_[shard]
                                                : rejected_counters_[shard]);
  return ticket;
}

std::size_t ShardedService::shard_for(const cfg::Cfg& cfg) const noexcept {
  return ring_.shard_of(cfg::LabelingCache::content_hash(cfg));
}

void ShardedService::swap_model(
    std::shared_ptr<const core::SoteriaSystem> system) {
  if (system == nullptr) {
    throw core::Error(core::ErrorCode::kInvalidArgument,
                      "ShardedService::swap_model: null system");
  }
  {
    const std::lock_guard<std::mutex> lock(model_mutex_);
    model_ = system;
  }
  for (auto& replica : replicas_) replica->swap_model(system);
  swaps_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const core::SoteriaSystem> ShardedService::swap_model_file(
    const std::string& path) {
  auto fresh = std::make_shared<const core::SoteriaSystem>(
      core::SoteriaSystem::load_file(path));
  swap_model(fresh);
  return fresh;
}

std::shared_ptr<const core::SoteriaSystem> ShardedService::model() const {
  const std::lock_guard<std::mutex> lock(model_mutex_);
  return model_;
}

void ShardedService::pause() {
  for (auto& replica : replicas_) replica->pause();
}

void ShardedService::resume() {
  for (auto& replica : replicas_) replica->resume();
}

void ShardedService::shutdown(ShutdownPolicy policy) {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (shut_down_) return;
  shut_down_ = true;
  // Shard by shard: each replica stops its own intake, applies the
  // policy to its queue, and joins its workers. A submission racing
  // the teardown either lands before its target shard's shutdown (and
  // is drained/cancelled by the policy) or is rejected kShuttingDown.
  for (auto& replica : replicas_) replica->shutdown(policy);
}

ShardedStats ShardedService::stats() const {
  ShardedStats stats;
  stats.shards.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    stats.shards.push_back(replica->stats());
    const auto& s = stats.shards.back();
    stats.total.accepted += s.accepted;
    stats.total.rejected += s.rejected;
    stats.total.expired += s.expired;
    stats.total.completed += s.completed;
    stats.total.cancelled += s.cancelled;
    stats.total.failed += s.failed;
    stats.total.batches += s.batches;
    stats.total.queue_depth += s.queue_depth;
  }
  // One front-door swap publishes to every replica; report publishes,
  // not replica notifications.
  stats.total.swaps = swaps_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace soteria::serve
