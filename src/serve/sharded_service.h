// Multi-replica serving front door: consistent-hash request routing
// over independent AnalysisService shards.
//
// Why sharding: a single AnalysisService funnels every request through
// one bounded queue and one submit mutex, and every worker shares one
// labeling cache and one feature store. `ShardedService` runs N fully
// independent replicas — each with its own queue, workers, and
// (optionally) its own feature store — and routes each request by the
// *binary content hash* of its CFG over a consistent-hash ring. The
// same binary always lands on the same shard, so each shard's labeling
// cache and feature store see a stable subset of the corpus and stay
// hot; scaling the fleet from k to k+1 shards only moves the keys
// claimed by the new shard (the classic consistent-hashing property,
// asserted by the tests), so a resize keeps most caches warm.
//
// Determinism: the front door allocates one *global* dense id sequence
// 0, 1, 2, ... across all shards and submits each request under its
// global id (AnalysisService::submit_keyed), and every replica derives
// request generators from the same base seed. Verdict i is therefore
// `Rng(seed).child(i)` — bit-identical to a serial
// `SoteriaSystem::analyze_batch` over the accepted CFGs in submission
// order, at any shard count, worker count, or micro-batch size. The
// id is allocated and enqueued under one front-door mutex so a
// rejected submission (per-shard backpressure, kQueueFull) never
// burns an id and the accepted sequence stays dense.
//
// Observability: per-shard counters `serve.shard<k>.requests.
// {accepted,rejected}` on top of each replica's own serve.* metrics.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "serve/service.h"

namespace soteria::serve {

/// Consistent-hash ring mapping 64-bit content hashes onto
/// `shard_count` shards via `virtual_nodes` ring points per shard.
/// Routing is a pure function of (hash, shard_count, virtual_nodes):
/// stable across processes and restarts. Growing a k-shard ring to
/// k+1 shards moves keys only *to* the new shard.
class HashRing {
 public:
  /// Throws core::Error{kInvalidArgument} when either count is zero.
  HashRing(std::size_t shard_count, std::size_t virtual_nodes);

  [[nodiscard]] std::size_t shard_of(std::uint64_t content_hash) const
      noexcept;
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shard_count_;
  }

 private:
  std::size_t shard_count_;
  /// (ring point, shard) sorted by point; lookup is the first point
  /// strictly greater than the hashed key, wrapping at the end.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
};

struct ShardedServiceConfig {
  /// Independent AnalysisService replicas behind the front door.
  std::size_t num_shards = 2;

  /// Ring points per shard; more points = smoother key balance.
  std::size_t virtual_nodes = 64;

  /// Base seed for the *global* id sequence: request i (front-door id)
  /// draws walks from Rng(seed).child(i) on whichever shard it lands.
  /// Overrides `shard.seed` on every replica.
  std::uint64_t seed = 0;

  /// Per-replica template (queue depth, workers, micro-batch bound,
  /// default deadline, shutdown policy apply to each shard
  /// independently — total capacity is num_shards * queue_depth).
  ServiceConfig shard;

  /// Optional per-shard feature stores (keeps each shard's store hot
  /// for exactly the keys the ring routes to it). Must be empty or
  /// hold exactly num_shards entries; when empty, every replica shares
  /// `shard.feature_store` (which may be null).
  std::vector<std::shared_ptr<store::FeatureStore>> shard_stores;
};

/// Aggregate + per-shard serving counters.
struct ShardedStats {
  ServiceStats total;  ///< field-wise sum over shards (swaps: front door)
  std::vector<ServiceStats> shards;
};

class ShardedService {
 public:
  using Ticket = ::soteria::serve::Ticket;

  /// Starts every shard's workers immediately. Throws
  /// core::Error{kInvalidArgument} for a null system, zero shards or
  /// virtual nodes, or a shard_stores size mismatch.
  explicit ShardedService(std::shared_ptr<const core::SoteriaSystem> system,
                          ShardedServiceConfig config = {});

  /// Runs shutdown(config().shard.shutdown_policy) if still up.
  ~ShardedService();

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Non-blocking submission routed by the CFG's content hash; the
  /// ticket's id is the global (cross-shard) request id. Rejection
  /// (kQueueFull) reflects the *target shard's* queue — other shards
  /// may have room, but the same binary always routes to the same
  /// shard, so retrying is the only way to keep its caches hot.
  [[nodiscard]] Ticket submit(cfg::Cfg cfg);
  [[nodiscard]] Ticket submit(std::shared_ptr<const cfg::Cfg> cfg);
  [[nodiscard]] Ticket submit(std::shared_ptr<const cfg::Cfg> cfg,
                              std::chrono::steady_clock::time_point deadline);

  /// The shard the ring routes this CFG (or raw content hash) to.
  [[nodiscard]] std::size_t shard_for(const cfg::Cfg& cfg) const noexcept;
  [[nodiscard]] std::size_t shard_for_hash(std::uint64_t content_hash) const
      noexcept {
    return ring_.shard_of(content_hash);
  }

  /// Publishes `system` to every shard (each in-flight batch finishes
  /// on its pinned model). Throws core::Error{kInvalidArgument} for
  /// null.
  void swap_model(std::shared_ptr<const core::SoteriaSystem> system);

  /// Loads a trained system from `path` and publishes it everywhere.
  std::shared_ptr<const core::SoteriaSystem> swap_model_file(
      const std::string& path);

  /// The currently published model.
  [[nodiscard]] std::shared_ptr<const core::SoteriaSystem> model() const;

  /// Maintenance valve across all shards.
  void pause();
  void resume();

  /// Stops intake on every shard and applies `policy` to queued work.
  /// Idempotent; the first policy wins.
  void shutdown(ShutdownPolicy policy);

  [[nodiscard]] ShardedStats stats() const;
  [[nodiscard]] const ShardedServiceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return replicas_.size();
  }
  /// Direct access to one replica (tests, per-shard maintenance).
  [[nodiscard]] AnalysisService& shard(std::size_t index) {
    return *replicas_.at(index);
  }
  [[nodiscard]] const AnalysisService& shard(std::size_t index) const {
    return *replicas_.at(index);
  }

 private:
  [[nodiscard]] Ticket submit_internal(
      std::shared_ptr<const cfg::Cfg> cfg,
      std::chrono::steady_clock::time_point deadline);

  ShardedServiceConfig config_;
  HashRing ring_;
  std::vector<std::unique_ptr<AnalysisService>> replicas_;
  /// Pre-built per-shard counter names so the submit hot path never
  /// formats a string.
  std::vector<std::string> accepted_counters_;
  std::vector<std::string> rejected_counters_;

  mutable std::mutex model_mutex_;
  std::shared_ptr<const core::SoteriaSystem> model_;

  /// Guards the global id sequence: the id is allocated and handed to
  /// the target shard in one step, so rejected submissions never burn
  /// an id and accepted ids stay dense in submission order.
  std::mutex submit_mutex_;
  std::uint64_t next_id_ = 0;  // guarded by submit_mutex_

  std::atomic<std::uint64_t> swaps_{0};

  std::mutex shutdown_mutex_;
  bool shut_down_ = false;  // guarded by shutdown_mutex_
};

}  // namespace soteria::serve
