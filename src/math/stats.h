// Descriptive statistics used for detector thresholds, dataset summaries,
// and the graph-theoretic baseline features.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace soteria::math {

/// Arithmetic mean; 0 for an empty range.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Population standard deviation; 0 for ranges with < 2 elements.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Minimum / maximum. Throw std::invalid_argument on empty input.
[[nodiscard]] double min(std::span<const double> xs);
[[nodiscard]] double max(std::span<const double> xs);

/// Median (average of middle two for even sizes). Throws on empty input.
[[nodiscard]] double median(std::span<const double> xs);

/// p-th percentile with linear interpolation, p in [0, 100]. Throws on
/// empty input or p outside range.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Equal-width histogram over [lo, hi] with `bins` buckets; values
/// outside the range are clamped into the edge buckets.
[[nodiscard]] std::vector<std::size_t> histogram(std::span<const double> xs,
                                                 double lo, double hi,
                                                 std::size_t bins);

/// Summary bundle used by dataset/report code.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

/// Computes all Summary fields in one pass (plus a sort for the order
/// statistics). Returns a zeroed Summary for empty input.
[[nodiscard]] Summary summarize(std::span<const double> xs);

}  // namespace soteria::math
