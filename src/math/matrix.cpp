#include "math/matrix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/rng.h"

namespace soteria::math {

namespace {

void require_same_shape(const Matrix& a, const Matrix& b, const char* what) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                a.shape_string() + " vs " + b.shape_string());
  }
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> values)
    : rows_(rows), cols_(cols), data_(std::move(values)) {
  if (data_.size() != rows_ * cols_) {
    throw std::invalid_argument("Matrix: value count " +
                                std::to_string(data_.size()) +
                                " != rows*cols " +
                                std::to_string(rows_ * cols_));
  }
}

float& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at(" + std::to_string(r) + "," +
                            std::to_string(c) + ") on " + shape_string());
  }
  return data_[r * cols_ + c];
}

float Matrix::at(std::size_t r, std::size_t c) const {
  return const_cast<Matrix*>(this)->at(r, c);
}

std::span<float> Matrix::row(std::size_t r) {
  if (r >= rows_) {
    throw std::out_of_range("Matrix::row(" + std::to_string(r) + ") on " +
                            shape_string());
  }
  return std::span<float>(data_).subspan(r * cols_, cols_);
}

std::span<const float> Matrix::row(std::size_t r) const {
  if (r >= rows_) {
    throw std::out_of_range("Matrix::row(" + std::to_string(r) + ") on " +
                            shape_string());
  }
  return std::span<const float>(data_).subspan(r * cols_, cols_);
}

void Matrix::fill(float value) noexcept {
  for (float& x : data_) x = value;
}

void Matrix::apply(const std::function<float(float)>& f) {
  for (float& x : data_) x = f(x);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  require_same_shape(*this, other, "Matrix::operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  require_same_shape(*this, other, "Matrix::operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  require_same_shape(*this, other, "Matrix::hadamard");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] * other.data_[i];
  return out;
}

Matrix& Matrix::operator*=(float scalar) noexcept {
  for (float& x : data_) x *= scalar;
  return *this;
}

void Matrix::add_row_vector(std::span<const float> v) {
  if (v.size() != cols_) {
    throw std::invalid_argument("Matrix::add_row_vector: vector length " +
                                std::to_string(v.size()) + " != cols " +
                                std::to_string(cols_));
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    float* rowp = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) rowp[c] += v[c];
  }
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

std::vector<float> Matrix::column_sums() const {
  std::vector<float> sums(cols_, 0.0F);
  for (std::size_t r = 0; r < rows_; ++r) {
    const float* rowp = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) sums[c] += rowp[c];
  }
  return sums;
}

double Matrix::frobenius_norm() const noexcept {
  double acc = 0.0;
  for (float x : data_) acc += static_cast<double>(x) * x;
  return std::sqrt(acc);
}

void Matrix::fill_uniform(Rng& rng, float lo, float hi) {
  for (float& x : data_) x = static_cast<float>(rng.uniform(lo, hi));
}

void Matrix::fill_normal(Rng& rng, float mean, float stddev) {
  for (float& x : data_) x = static_cast<float>(rng.normal(mean, stddev));
}

std::string Matrix::shape_string() const {
  return "[" + std::to_string(rows_) + "x" + std::to_string(cols_) + "]";
}

namespace {

/// k-panel height for the blocked kernels: a panel of B rows (up to
/// kKBlock x n floats) stays hot in L2 while every row tile of A
/// streams across it.
constexpr std::size_t kKBlock = 256;

/// A-row tile height: four C rows accumulate against each B row load,
/// quartering the B traffic per flop.
constexpr std::size_t kRowUnroll = 4;

}  // namespace

void matmul_into(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n) noexcept {
  std::fill(c, c + m * n, 0.0F);
  // Per output cell the k-products accumulate in ascending kk order
  // (blocks ascending, kk ascending inside each block) with the same
  // `crow[j] += aik * brow[j]` statement as the naive reference, so
  // the result is bit-identical for finite inputs. Skipping all-zero
  // A tiles is bitwise-neutral: adding a signed zero never changes a
  // finite accumulator that is not itself -0, and the accumulators
  // start at +0 and can never turn -0 (exact cancellation rounds to
  // +0 in round-to-nearest).
  for (std::size_t kb = 0; kb < k; kb += kKBlock) {
    const std::size_t kend = std::min(kb + kKBlock, k);
    std::size_t i = 0;
    for (; i + kRowUnroll <= m; i += kRowUnroll) {
      const float* a0 = a + (i + 0) * k;
      const float* a1 = a + (i + 1) * k;
      const float* a2 = a + (i + 2) * k;
      const float* a3 = a + (i + 3) * k;
      float* c0 = c + (i + 0) * n;
      float* c1 = c + (i + 1) * n;
      float* c2 = c + (i + 2) * n;
      float* c3 = c + (i + 3) * n;
      for (std::size_t kk = kb; kk < kend; ++kk) {
        const float a0k = a0[kk];
        const float a1k = a1[kk];
        const float a2k = a2[kk];
        const float a3k = a3[kk];
        if (a0k == 0.0F && a1k == 0.0F && a2k == 0.0F && a3k == 0.0F) {
          continue;
        }
        const float* brow = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) {
          c0[j] += a0k * brow[j];
          c1[j] += a1k * brow[j];
          c2[j] += a2k * brow[j];
          c3[j] += a3k * brow[j];
        }
      }
    }
    for (; i < m; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (std::size_t kk = kb; kk < kend; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0F) continue;
        const float* brow = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

void matmul_at_into(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t k, std::size_t n) noexcept {
  std::fill(c, c + m * n, 0.0F);
  for (std::size_t kb = 0; kb < k; kb += kKBlock) {
    const std::size_t kend = std::min(kb + kKBlock, k);
    std::size_t i = 0;
    for (; i + kRowUnroll <= m; i += kRowUnroll) {
      float* c0 = c + (i + 0) * n;
      float* c1 = c + (i + 1) * n;
      float* c2 = c + (i + 2) * n;
      float* c3 = c + (i + 3) * n;
      for (std::size_t kk = kb; kk < kend; ++kk) {
        const float* arow = a + kk * m;
        const float a0k = arow[i + 0];
        const float a1k = arow[i + 1];
        const float a2k = arow[i + 2];
        const float a3k = arow[i + 3];
        if (a0k == 0.0F && a1k == 0.0F && a2k == 0.0F && a3k == 0.0F) {
          continue;
        }
        const float* brow = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) {
          c0[j] += a0k * brow[j];
          c1[j] += a1k * brow[j];
          c2[j] += a2k * brow[j];
          c3[j] += a3k * brow[j];
        }
      }
    }
    for (; i < m; ++i) {
      float* crow = c + i * n;
      for (std::size_t kk = kb; kk < kend; ++kk) {
        const float aki = a[kk * m + i];
        if (aki == 0.0F) continue;
        const float* brow = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
      }
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul: inner dimensions " +
                                a.shape_string() + " * " + b.shape_string());
  }
  Matrix c(a.rows(), b.cols(), 0.0F);
  matmul_into(a.data().data(), b.data().data(), c.data().data(), a.rows(),
              a.cols(), b.cols());
  return c;
}

Matrix matmul_reference(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul_reference: inner dimensions " +
                                a.shape_string() + " * " + b.shape_string());
  }
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n, 0.0F);
  // i-k-j loop order: the inner loop streams over contiguous rows of B
  // and C, which is the cache-friendly order for row-major data.
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c.data().data() + i * n;
    const float* arow = a.data().data() + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0F) continue;
      const float* brow = b.data().data() + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix matmul_bt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_bt: inner dimensions " +
                                a.shape_string() + " * " + b.shape_string() +
                                "^T");
  }
  // Materializing the transpose lets the streaming i-k-j kernel run;
  // the O(k*n) copy is negligible next to the O(m*k*n) product.
  return matmul(a, b.transposed());
}

Matrix matmul_at(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("matmul_at: inner dimensions " +
                                a.shape_string() + "^T * " +
                                b.shape_string());
  }
  Matrix c(a.cols(), b.cols(), 0.0F);
  matmul_at_into(a.data().data(), b.data().data(), c.data().data(), a.cols(),
                 a.rows(), b.cols());
  return c;
}

Matrix matmul_at_reference(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("matmul_at_reference: inner dimensions " +
                                a.shape_string() + "^T * " +
                                b.shape_string());
  }
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  Matrix c(m, n, 0.0F);
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = a.data().data() + kk * m;
    const float* brow = b.data().data() + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0F) continue;
      float* crow = c.data().data() + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

std::vector<float> matvec(const Matrix& m, std::span<const float> x) {
  if (x.size() != m.cols()) {
    throw std::invalid_argument("matvec: vector length " +
                                std::to_string(x.size()) + " != cols of " +
                                m.shape_string());
  }
  std::vector<float> y(m.rows(), 0.0F);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* rowp = m.data().data() + r * m.cols();
    float acc = 0.0F;
    for (std::size_t c = 0; c < m.cols(); ++c) acc += rowp[c] * x[c];
    y[r] = acc;
  }
  return y;
}

}  // namespace soteria::math
