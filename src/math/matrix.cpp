#include "math/matrix.h"

#include <cmath>
#include <stdexcept>

#include "math/rng.h"

namespace soteria::math {

namespace {

void require_same_shape(const Matrix& a, const Matrix& b, const char* what) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                a.shape_string() + " vs " + b.shape_string());
  }
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> values)
    : rows_(rows), cols_(cols), data_(std::move(values)) {
  if (data_.size() != rows_ * cols_) {
    throw std::invalid_argument("Matrix: value count " +
                                std::to_string(data_.size()) +
                                " != rows*cols " +
                                std::to_string(rows_ * cols_));
  }
}

float& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at(" + std::to_string(r) + "," +
                            std::to_string(c) + ") on " + shape_string());
  }
  return data_[r * cols_ + c];
}

float Matrix::at(std::size_t r, std::size_t c) const {
  return const_cast<Matrix*>(this)->at(r, c);
}

std::span<float> Matrix::row(std::size_t r) {
  if (r >= rows_) {
    throw std::out_of_range("Matrix::row(" + std::to_string(r) + ") on " +
                            shape_string());
  }
  return std::span<float>(data_).subspan(r * cols_, cols_);
}

std::span<const float> Matrix::row(std::size_t r) const {
  if (r >= rows_) {
    throw std::out_of_range("Matrix::row(" + std::to_string(r) + ") on " +
                            shape_string());
  }
  return std::span<const float>(data_).subspan(r * cols_, cols_);
}

void Matrix::fill(float value) noexcept {
  for (float& x : data_) x = value;
}

void Matrix::apply(const std::function<float(float)>& f) {
  for (float& x : data_) x = f(x);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  require_same_shape(*this, other, "Matrix::operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  require_same_shape(*this, other, "Matrix::operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  require_same_shape(*this, other, "Matrix::hadamard");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] * other.data_[i];
  return out;
}

Matrix& Matrix::operator*=(float scalar) noexcept {
  for (float& x : data_) x *= scalar;
  return *this;
}

void Matrix::add_row_vector(std::span<const float> v) {
  if (v.size() != cols_) {
    throw std::invalid_argument("Matrix::add_row_vector: vector length " +
                                std::to_string(v.size()) + " != cols " +
                                std::to_string(cols_));
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    float* rowp = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) rowp[c] += v[c];
  }
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

std::vector<float> Matrix::column_sums() const {
  std::vector<float> sums(cols_, 0.0F);
  for (std::size_t r = 0; r < rows_; ++r) {
    const float* rowp = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) sums[c] += rowp[c];
  }
  return sums;
}

double Matrix::frobenius_norm() const noexcept {
  double acc = 0.0;
  for (float x : data_) acc += static_cast<double>(x) * x;
  return std::sqrt(acc);
}

void Matrix::fill_uniform(Rng& rng, float lo, float hi) {
  for (float& x : data_) x = static_cast<float>(rng.uniform(lo, hi));
}

void Matrix::fill_normal(Rng& rng, float mean, float stddev) {
  for (float& x : data_) x = static_cast<float>(rng.normal(mean, stddev));
}

std::string Matrix::shape_string() const {
  return "[" + std::to_string(rows_) + "x" + std::to_string(cols_) + "]";
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul: inner dimensions " +
                                a.shape_string() + " * " + b.shape_string());
  }
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n, 0.0F);
  // i-k-j loop order: the inner loop streams over contiguous rows of B
  // and C, which is the cache-friendly order for row-major data.
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c.data().data() + i * n;
    const float* arow = a.data().data() + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0F) continue;
      const float* brow = b.data().data() + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix matmul_bt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_bt: inner dimensions " +
                                a.shape_string() + " * " + b.shape_string() +
                                "^T");
  }
  // Materializing the transpose lets the streaming i-k-j kernel run;
  // the O(k*n) copy is negligible next to the O(m*k*n) product.
  return matmul(a, b.transposed());
}

Matrix matmul_at(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("matmul_at: inner dimensions " +
                                a.shape_string() + "^T * " +
                                b.shape_string());
  }
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  Matrix c(m, n, 0.0F);
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = a.data().data() + kk * m;
    const float* brow = b.data().data() + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0F) continue;
      float* crow = c.data().data() + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

std::vector<float> matvec(const Matrix& m, std::span<const float> x) {
  if (x.size() != m.cols()) {
    throw std::invalid_argument("matvec: vector length " +
                                std::to_string(x.size()) + " != cols of " +
                                m.shape_string());
  }
  std::vector<float> y(m.rows(), 0.0F);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* rowp = m.data().data() + r * m.cols();
    float acc = 0.0F;
    for (std::size_t c = 0; c < m.cols(); ++c) acc += rowp[c] * x[c];
    y[r] = acc;
  }
  return y;
}

}  // namespace soteria::math
