// Principal Component Analysis via power iteration with deflation.
//
// The paper projects 1000-dimensional Soteria feature vectors (and the
// baseline's graph-theoretic vectors) onto their top-2 principal
// components to visualise class separation (Figs. 8-11). Power iteration
// on the centred data matrix avoids forming the d x d covariance matrix,
// keeping the fit O(iters * n * d) — fast even at d = 1000 on one core.
#pragma once

#include <cstddef>
#include <vector>

#include "math/matrix.h"
#include "math/rng.h"

namespace soteria::math {

/// Fitted PCA model: top-k components of the input's covariance.
class Pca {
 public:
  /// Fits `k` principal components to `data` (rows = observations,
  /// columns = variables). Throws std::invalid_argument if `k` is 0,
  /// exceeds the number of variables, or `data` has < 2 rows.
  static Pca fit(const Matrix& data, std::size_t k,
                 std::size_t max_iterations = 300, double tolerance = 1e-7);

  /// Projects observations onto the fitted components -> n x k scores.
  /// Throws if the column count differs from the training data.
  [[nodiscard]] Matrix transform(const Matrix& data) const;

  /// Component matrix, k x d (each row a unit-norm direction).
  [[nodiscard]] const Matrix& components() const noexcept {
    return components_;
  }

  /// Variance captured by each component, descending.
  [[nodiscard]] const std::vector<double>& explained_variance()
      const noexcept {
    return explained_variance_;
  }

  /// Fraction of total variance captured by each component.
  [[nodiscard]] const std::vector<double>& explained_variance_ratio()
      const noexcept {
    return explained_variance_ratio_;
  }

  /// Per-variable training means (used for centring at transform time).
  [[nodiscard]] const std::vector<float>& means() const noexcept {
    return means_;
  }

 private:
  Pca() = default;

  Matrix components_;
  std::vector<float> means_;
  std::vector<double> explained_variance_;
  std::vector<double> explained_variance_ratio_;
};

}  // namespace soteria::math
