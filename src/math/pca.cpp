#include "math/pca.h"

#include <cmath>
#include <stdexcept>

namespace soteria::math {

namespace {

// Normalizes v in place; returns its pre-normalization L2 norm.
double normalize(std::vector<double>& v) {
  double norm = 0.0;
  for (double x : v) norm += x * x;
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (double& x : v) x /= norm;
  }
  return norm;
}

}  // namespace

Pca Pca::fit(const Matrix& data, std::size_t k, std::size_t max_iterations,
             double tolerance) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  if (k == 0) throw std::invalid_argument("Pca::fit: k must be > 0");
  if (k > d)
    throw std::invalid_argument("Pca::fit: k exceeds variable count");
  if (n < 2)
    throw std::invalid_argument("Pca::fit: need at least 2 observations");

  Pca pca;
  pca.means_.assign(d, 0.0F);
  for (std::size_t j = 0; j < d; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += data(i, j);
    pca.means_[j] = static_cast<float>(acc / static_cast<double>(n));
  }

  // Centred copy in double for numerical stability of the iteration.
  std::vector<double> centred(n * d);
  double total_variance = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      const double v = static_cast<double>(data(i, j)) - pca.means_[j];
      centred[i * d + j] = v;
      total_variance += v * v;
    }
  }
  total_variance /= static_cast<double>(n - 1);

  pca.components_ = Matrix(k, d);
  pca.explained_variance_.reserve(k);
  pca.explained_variance_ratio_.reserve(k);

  Rng rng(0x9ca5eedULL);
  std::vector<double> v(d);
  std::vector<double> xv(n);
  for (std::size_t comp = 0; comp < k; ++comp) {
    for (double& x : v) x = rng.normal();
    normalize(v);

    double eigenvalue = 0.0;
    for (std::size_t iter = 0; iter < max_iterations; ++iter) {
      // v <- X^T (X v) / (n - 1), the covariance product without
      // materializing the covariance matrix.
      for (std::size_t i = 0; i < n; ++i) {
        const double* rowp = centred.data() + i * d;
        double acc = 0.0;
        for (std::size_t j = 0; j < d; ++j) acc += rowp[j] * v[j];
        xv[i] = acc;
      }
      std::vector<double> next(d, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        const double* rowp = centred.data() + i * d;
        const double w = xv[i];
        for (std::size_t j = 0; j < d; ++j) next[j] += w * rowp[j];
      }
      for (double& x : next) x /= static_cast<double>(n - 1);

      const double new_eigenvalue = normalize(next);
      double delta = 0.0;
      for (std::size_t j = 0; j < d; ++j)
        delta += std::abs(next[j] - v[j]);
      v = std::move(next);
      const bool converged =
          std::abs(new_eigenvalue - eigenvalue) <
              tolerance * std::max(1.0, std::abs(new_eigenvalue)) &&
          delta < tolerance * static_cast<double>(d);
      eigenvalue = new_eigenvalue;
      if (converged) break;
    }

    for (std::size_t j = 0; j < d; ++j)
      pca.components_(comp, j) = static_cast<float>(v[j]);
    pca.explained_variance_.push_back(eigenvalue);
    pca.explained_variance_ratio_.push_back(
        total_variance > 0.0 ? eigenvalue / total_variance : 0.0);

    // Deflate: remove the captured direction from every observation.
    for (std::size_t i = 0; i < n; ++i) {
      double* rowp = centred.data() + i * d;
      double proj = 0.0;
      for (std::size_t j = 0; j < d; ++j) proj += rowp[j] * v[j];
      for (std::size_t j = 0; j < d; ++j) rowp[j] -= proj * v[j];
    }
  }
  return pca;
}

Matrix Pca::transform(const Matrix& data) const {
  const std::size_t d = means_.size();
  if (data.cols() != d) {
    throw std::invalid_argument(
        "Pca::transform: column count " + std::to_string(data.cols()) +
        " != fitted dimension " + std::to_string(d));
  }
  const std::size_t k = components_.rows();
  Matrix scores(data.rows(), k);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    for (std::size_t comp = 0; comp < k; ++comp) {
      double acc = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        acc += (static_cast<double>(data(i, j)) - means_[j]) *
               components_(comp, j);
      }
      scores(i, comp) = static_cast<float>(acc);
    }
  }
  return scores;
}

}  // namespace soteria::math
