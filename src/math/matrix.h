// Dense row-major float matrix used throughout the NN substrate and PCA.
//
// The class keeps a single invariant: data_.size() == rows_ * cols_.
// Element access is bounds-checked in debug builds (assert) and raw in
// release builds; the checked `at()` form throws and is used at API
// boundaries.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace soteria::math {

class Rng;

/// Dense rows x cols matrix of float, row-major.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, all elements set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0F);

  /// rows x cols matrix adopting `values` (row-major). Throws
  /// std::invalid_argument if sizes disagree.
  Matrix(std::size_t rows, std::size_t cols, std::vector<float> values);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  /// Unchecked element access (asserted in debug builds).
  [[nodiscard]] float& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Checked element access; throws std::out_of_range.
  [[nodiscard]] float& at(std::size_t r, std::size_t c);
  [[nodiscard]] float at(std::size_t r, std::size_t c) const;

  /// Row view (length == cols()).
  [[nodiscard]] std::span<float> row(std::size_t r);
  [[nodiscard]] std::span<const float> row(std::size_t r) const;

  /// Raw storage access (row-major).
  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

  /// Sets every element to `value`.
  void fill(float value) noexcept;

  /// Applies `f` to every element in place.
  void apply(const std::function<float(float)>& f);

  /// Element-wise addition / subtraction / product. Throw on shape
  /// mismatch.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  [[nodiscard]] Matrix hadamard(const Matrix& other) const;

  /// Scalar scaling in place.
  Matrix& operator*=(float scalar) noexcept;

  /// Adds `v` (length == cols()) to every row; the usual bias broadcast.
  void add_row_vector(std::span<const float> v);

  /// Matrix transpose.
  [[nodiscard]] Matrix transposed() const;

  /// Sum over rows -> vector of length cols().
  [[nodiscard]] std::vector<float> column_sums() const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const noexcept;

  /// Fills with uniform deviates in [lo, hi).
  void fill_uniform(Rng& rng, float lo, float hi);

  /// Fills with normal deviates.
  void fill_normal(Rng& rng, float mean, float stddev);

  /// Human-readable shape string, e.g. "[3x4]".
  [[nodiscard]] std::string shape_string() const;

  [[nodiscard]] bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B. Cache-blocked, row-unrolled kernel; bit-identical to
/// matmul_reference for finite inputs (each output cell accumulates its
/// k-products in the same ascending order, and both kernels share the
/// same inner-statement shape so the compiler contracts them alike).
/// Throws on inner-dimension mismatch.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A * B^T (internally transposes B once so the streaming kernel
/// applies; the copy is negligible next to the product).
[[nodiscard]] Matrix matmul_bt(const Matrix& a, const Matrix& b);

/// C = A^T * B without materializing the transpose. Blocked like
/// matmul; bit-identical to matmul_at_reference for finite inputs.
[[nodiscard]] Matrix matmul_at(const Matrix& a, const Matrix& b);

/// Raw-pointer kernel behind matmul: writes the m x n product of
/// row-major `a` (m x k) and `b` (k x n) into `c`, overwriting it.
/// No aliasing between `c` and the inputs. Shared with nn::FrozenNet so
/// the frozen path runs the exact same arithmetic on preallocated
/// scratch.
void matmul_into(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n) noexcept;

/// Raw-pointer kernel behind matmul_at: `a` is k x m, `b` is k x n,
/// writes A^T * B (m x n) into `c`, overwriting it.
void matmul_at_into(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t k, std::size_t n) noexcept;

/// The original naive i-k-j / k-i-j kernels, preserved verbatim as the
/// oracle the blocked kernels are tested bit-identical against
/// (tests/infer) and as the before-side of the bench/perf_nn GFLOP/s
/// stage.
[[nodiscard]] Matrix matmul_reference(const Matrix& a, const Matrix& b);
[[nodiscard]] Matrix matmul_at_reference(const Matrix& a, const Matrix& b);

/// y = M * x for a vector x (length == cols).
[[nodiscard]] std::vector<float> matvec(const Matrix& m,
                                        std::span<const float> x);

}  // namespace soteria::math
