#include "math/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace soteria::math {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double min(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("stats::min: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("stats::max: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("stats::median: empty input");
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  const std::size_t n = copy.size();
  if (n % 2 == 1) return copy[n / 2];
  return 0.5 * (copy[n / 2 - 1] + copy[n / 2]);
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty())
    throw std::invalid_argument("stats::percentile: empty input");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("stats::percentile: p outside [0,100]");
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  if (copy.size() == 1) return copy.front();
  const double rank = p / 100.0 * static_cast<double>(copy.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return copy[lo] + frac * (copy[hi] - copy[lo]);
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins) {
  if (bins == 0) throw std::invalid_argument("stats::histogram: zero bins");
  if (!(lo < hi))
    throw std::invalid_argument("stats::histogram: lo must be < hi");
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto idx = static_cast<std::int64_t>((x - lo) / width);
    idx = std::clamp<std::int64_t>(idx, 0,
                                   static_cast<std::int64_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(idx)];
  }
  return counts;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min(xs);
  s.median = median(xs);
  s.max = max(xs);
  return s;
}

}  // namespace soteria::math
