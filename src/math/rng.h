// Deterministic random number generation for all stochastic components.
//
// Every stochastic piece of Soteria (random walks, dataset generation,
// weight initialization, dropout, shuffling) draws from an explicitly
// seeded `Rng`, so experiments are reproducible bit-for-bit. Child
// generators derived via `fork()` are decorrelated through a SplitMix64
// hash of the parent stream, which lets independent pipeline stages own
// independent streams without manual seed bookkeeping.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace soteria::math {

/// Mixes a 64-bit value through the SplitMix64 finalizer. Used to derive
/// well-distributed seeds from small integers (0, 1, 2, ...).
[[nodiscard]] constexpr std::uint64_t split_mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seeded pseudo-random generator wrapping std::mt19937_64.
///
/// Copyable (copies duplicate the stream state) and cheap to fork.
class Rng {
 public:
  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit Rng(std::uint64_t seed) : engine_(split_mix64(seed)), seed_(seed) {}

  /// The seed this generator was constructed with.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Derives an independent child generator. Children with distinct
  /// `stream` values (or drawn from distinct parents) are decorrelated.
  [[nodiscard]] Rng fork(std::uint64_t stream) noexcept {
    return Rng(split_mix64(seed_ ^ split_mix64(stream + 0x51ed2701)));
  }

  /// Same derivation as fork(), but const: the child depends only on
  /// this generator's construction seed, never on its stream position.
  /// This is the split used by the parallel batch engine — one child
  /// per sample index makes results independent of scheduling order and
  /// bit-identical to a serial loop at any thread count.
  [[nodiscard]] Rng child(std::uint64_t index) const noexcept {
    return Rng(split_mix64(seed_ ^ split_mix64(index + 0x51ed2701)));
  }

  /// Uniform integer in [lo, hi] (inclusive). Throws if lo > hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Throws if n == 0.
  [[nodiscard]] std::size_t index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::index: empty range");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    if (!(lo < hi)) throw std::invalid_argument("Rng::uniform: lo >= hi");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Normal deviate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) {
    if (stddev < 0.0) throw std::invalid_argument("Rng::normal: stddev < 0");
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p) {
    if (p < 0.0 || p > 1.0)
      throw std::invalid_argument("Rng::bernoulli: p outside [0,1]");
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Geometric-ish positive count: 1 + Geometric(p). Handy for sizing
  /// synthetic program constructs.
  [[nodiscard]] int positive_geometric(double p) {
    if (p <= 0.0 || p > 1.0)
      throw std::invalid_argument("Rng::positive_geometric: p outside (0,1]");
    return 1 + std::geometric_distribution<int>(p)(engine_);
  }

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  [[nodiscard]] const T& choice(std::span<const T> items) {
    return items[index(items.size())];
  }

  template <typename T>
  [[nodiscard]] const T& choice(const std::vector<T>& items) {
    return items[index(items.size())];
  }

  /// Fisher-Yates shuffle in place.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// A random permutation of [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n) {
    std::vector<std::size_t> p(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = i;
    shuffle(p);
    return p;
  }

  /// Access to the underlying engine for std distributions.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace soteria::math
