// Numerical gradient checking for layers: compares analytic backprop
// gradients against central finite differences of a scalar loss.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "math/matrix.h"
#include "nn/layer.h"

namespace soteria::nn::testing {

/// Scalar loss used by the checks: L = sum(output^2) / 2, so
/// dL/d(output) = output.
inline double half_square_sum(const math::Matrix& m) {
  double acc = 0.0;
  for (float x : m.data()) acc += 0.5 * static_cast<double>(x) * x;
  return acc;
}

/// Verifies d(loss)/d(input) returned by `layer.backward` against finite
/// differences. The layer must be deterministic in training mode for
/// this to be valid (no dropout).
inline void check_input_gradient(Layer& layer, math::Matrix input,
                                 double tolerance = 2e-2) {
  const math::Matrix output = layer.forward(input, /*training=*/true);
  const math::Matrix analytic = layer.backward(output);  // dL/dout = out

  const float eps = 1e-3F;
  for (std::size_t r = 0; r < input.rows(); ++r) {
    for (std::size_t c = 0; c < input.cols(); ++c) {
      const float saved = input(r, c);
      input(r, c) = saved + eps;
      const double plus = half_square_sum(layer.forward(input, true));
      input(r, c) = saved - eps;
      const double minus = half_square_sum(layer.forward(input, true));
      input(r, c) = saved;
      const double numeric = (plus - minus) / (2.0 * eps);
      EXPECT_NEAR(analytic(r, c), numeric,
                  tolerance * std::max(1.0, std::abs(numeric)))
          << "input gradient mismatch at (" << r << ", " << c << ")";
    }
  }
  // Restore caches for any follow-up backward calls.
  (void)layer.forward(input, true);
}

/// Verifies parameter gradients against finite differences.
inline void check_parameter_gradients(Layer& layer,
                                      const math::Matrix& input,
                                      double tolerance = 2e-2) {
  layer.zero_gradients();
  const math::Matrix output = layer.forward(input, /*training=*/true);
  (void)layer.backward(output);

  std::vector<ParamRef> params;
  layer.collect_parameters(params);
  const float eps = 1e-3F;
  for (std::size_t p = 0; p < params.size(); ++p) {
    auto values = params[p].value->data();
    const auto grads = params[p].grad->data();
    for (std::size_t i = 0; i < values.size(); ++i) {
      const float saved = values[i];
      values[i] = saved + eps;
      const double plus = half_square_sum(layer.forward(input, true));
      values[i] = saved - eps;
      const double minus = half_square_sum(layer.forward(input, true));
      values[i] = saved;
      const double numeric = (plus - minus) / (2.0 * eps);
      EXPECT_NEAR(grads[i], numeric,
                  tolerance * std::max(1.0, std::abs(numeric)))
          << "parameter " << p << " gradient mismatch at index " << i;
    }
  }
}

}  // namespace soteria::nn::testing
