// End-to-end learning sanity checks for the NN substrate: the exact
// architectures the system uses must be able to fit the kinds of
// signals the system feeds them.
#include <gtest/gtest.h>

#include "nn/autoencoder.h"
#include "nn/cnn.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"

namespace soteria::nn {
namespace {

TEST(Learning, AutoencoderMemorizesSmallDataset) {
  math::Rng rng(1);
  AutoencoderConfig config;
  config.input_dim = 32;
  config.hidden_dims = {48, 64, 48};
  auto model = build_autoencoder(config, rng);

  math::Matrix data(16, 32);
  data.fill_uniform(rng, 0.0F, 0.3F);
  Adam optimizer(3e-3);
  const auto report = train_regression(model, data, data, optimizer,
                                       make_train_config(150, 8), rng);
  EXPECT_LT(report.final_loss(), report.epoch_losses.front() * 0.2);
  const auto rmse = row_rmse(model.predict(data), data);
  for (double v : rmse) EXPECT_LT(v, 0.08);
}

TEST(Learning, AutoencoderReconstructsClusterBetterThanOutliers) {
  math::Rng rng(2);
  AutoencoderConfig config;
  config.input_dim = 24;
  config.hidden_dims = {12, 8, 12};  // bottleneck
  auto model = build_autoencoder(config, rng);

  // Clean cluster: first half of dims active.
  math::Matrix train(64, 24, 0.0F);
  for (std::size_t r = 0; r < train.rows(); ++r) {
    for (std::size_t c = 0; c < 12; ++c) {
      train(r, c) = 0.5F + static_cast<float>(rng.normal(0.0, 0.03));
    }
  }
  Adam optimizer(3e-3);
  (void)train_regression(model, train, train, optimizer,
                         make_train_config(120, 16), rng);

  math::Matrix clean(8, 24, 0.0F);
  math::Matrix outlier(8, 24, 0.0F);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 12; ++c) {
      clean(r, c) = 0.5F + static_cast<float>(rng.normal(0.0, 0.03));
      outlier(r, 12 + c) = 0.5F;  // mass in the never-seen half
    }
  }
  const auto clean_rmse = row_rmse(model.predict(clean), clean);
  const auto outlier_rmse = row_rmse(model.predict(outlier), outlier);
  double clean_mean = 0.0;
  double outlier_mean = 0.0;
  for (double v : clean_rmse) clean_mean += v;
  for (double v : outlier_rmse) outlier_mean += v;
  EXPECT_GT(outlier_mean, 2.0 * clean_mean);
}

TEST(Learning, CnnLearnsSpatialPatterns) {
  math::Rng rng(3);
  CnnConfig config;
  config.input_length = 64;
  config.classes = 2;
  config.filters = 8;
  config.dense_units = 16;
  auto model = build_cnn(config, rng);

  // Class 0: bump near the start; class 1: bump near the end.
  constexpr std::size_t kPerClass = 32;
  math::Matrix inputs(2 * kPerClass, 64, 0.0F);
  std::vector<std::size_t> labels(2 * kPerClass);
  for (std::size_t i = 0; i < kPerClass; ++i) {
    const auto lo = 4 + rng.index(8);
    const auto hi = 44 + rng.index(8);
    for (int k = 0; k < 6; ++k) {
      inputs(i, lo + k) = 1.0F;
      inputs(kPerClass + i, hi + k) = 1.0F;
    }
    labels[i] = 0;
    labels[kPerClass + i] = 1;
  }
  Adam optimizer(3e-3);
  (void)train_classifier(model, inputs, labels, optimizer,
                         make_train_config(40, 16), rng);
  const auto predictions = argmax_rows(model.predict(inputs));
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    correct += predictions[i] == labels[i];
  }
  EXPECT_GT(correct, labels.size() * 9 / 10);
}

TEST(Learning, SequentialGradientsFlowThroughWholeCnn) {
  // Composite finite-difference check over a miniature CNN stack: the
  // loss gradient w.r.t. the *input* must match numerics through conv,
  // pool, and dense layers chained together.
  math::Rng rng(4);
  CnnConfig config;
  config.input_length = 20;
  config.classes = 3;
  config.filters = 2;
  config.dense_units = 6;
  config.conv_dropout = 0.0;   // determinism for finite differences
  config.dense_dropout = 0.0;
  auto model = build_cnn(config, rng);

  math::Matrix input(1, 20);
  input.fill_normal(rng, 0.0F, 0.5F);
  const std::vector<std::size_t> label{1};

  model.zero_gradients();
  const auto logits = model.forward(input, true);
  const auto loss = softmax_cross_entropy(logits, label);
  const auto input_grad = model.backward(loss.gradient);

  const float eps = 1e-2F;
  for (std::size_t c = 0; c < 20; c += 3) {
    const float saved = input(0, c);
    input(0, c) = saved + eps;
    const double plus =
        softmax_cross_entropy(model.forward(input, true), label).loss;
    input(0, c) = saved - eps;
    const double minus =
        softmax_cross_entropy(model.forward(input, true), label).loss;
    input(0, c) = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    EXPECT_NEAR(input_grad(0, c), numeric,
                0.05 * std::max(0.05, std::abs(numeric)))
        << "input dim " << c;
  }
}

}  // namespace
}  // namespace soteria::nn
