#include "nn/sequential.h"

#include <gtest/gtest.h>

#include <sstream>

#include "nn/activations.h"
#include "nn/autoencoder.h"
#include "nn/cnn.h"
#include "nn/dense.h"

namespace soteria::nn {
namespace {

Sequential two_layer(std::uint64_t seed) {
  math::Rng rng(seed);
  Sequential model;
  model.emplace<Dense>(4, 8, rng);
  model.emplace<Relu>();
  model.emplace<Dense>(8, 2, rng);
  return model;
}

TEST(Sequential, ForwardChainsLayers) {
  auto model = two_layer(1);
  math::Rng rng(2);
  math::Matrix input(3, 4);
  input.fill_normal(rng, 0.0F, 1.0F);
  const auto out = model.forward(input, false);
  EXPECT_EQ(out.rows(), 3U);
  EXPECT_EQ(out.cols(), 2U);
}

TEST(Sequential, EmptyModelThrows) {
  Sequential model;
  EXPECT_THROW((void)model.forward(math::Matrix(1, 1), false),
               std::logic_error);
  EXPECT_THROW((void)model.backward(math::Matrix(1, 1)), std::logic_error);
  EXPECT_THROW(model.add(nullptr), std::invalid_argument);
}

TEST(Sequential, OutputDimensionValidatesChain) {
  const auto model = two_layer(3);
  EXPECT_EQ(model.output_dimension(4), 2U);
  EXPECT_THROW((void)model.output_dimension(5), std::invalid_argument);
}

TEST(Sequential, ParametersInStableOrder) {
  auto model = two_layer(4);
  const auto params = model.parameters();
  ASSERT_EQ(params.size(), 4U);  // two dense layers x (W, b)
  EXPECT_EQ(params[0].value->rows(), 4U);
  EXPECT_EQ(params[2].value->rows(), 8U);
  EXPECT_EQ(model.parameter_count(), 4 * 8 + 8 + 8 * 2 + 2U);
  EXPECT_EQ(model.layer_count(), 3U);
}

TEST(Sequential, SummaryListsLayers) {
  const auto model = two_layer(5);
  const auto text = model.summary();
  EXPECT_NE(text.find("Dense(4->8)"), std::string::npos);
  EXPECT_NE(text.find("ReLU"), std::string::npos);
  EXPECT_NE(text.find("total parameters"), std::string::npos);
}

TEST(Sequential, SaveLoadRoundTripsPredictions) {
  auto model = two_layer(6);
  math::Rng rng(7);
  math::Matrix input(2, 4);
  input.fill_normal(rng, 0.0F, 1.0F);
  const auto before = model.predict(input);

  std::stringstream stream;
  model.save_parameters(stream);
  auto fresh = two_layer(999);  // different init
  fresh.load_parameters(stream);
  EXPECT_EQ(fresh.predict(input), before);
}

TEST(Sequential, LoadRejectsWrongArchitecture) {
  auto model = two_layer(8);
  std::stringstream stream;
  model.save_parameters(stream);

  math::Rng rng(9);
  Sequential other;
  other.emplace<Dense>(4, 4, rng);
  EXPECT_THROW(other.load_parameters(stream), std::runtime_error);
}

TEST(Sequential, LoadRejectsGarbage) {
  std::stringstream stream;
  stream.write("garbage!", 8);
  auto model = two_layer(10);
  EXPECT_THROW(model.load_parameters(stream), std::runtime_error);
}

TEST(Autoencoder, BuildsPaperShape) {
  math::Rng rng(11);
  AutoencoderConfig config;
  config.input_dim = 100;
  config.hidden_dims = {200, 300, 200};
  auto model = build_autoencoder(config, rng);
  EXPECT_EQ(model.output_dimension(100), 100U);
  // dense+relu per hidden layer, plus the output dense
  EXPECT_EQ(model.layer_count(), 3 * 2 + 1U);
}

TEST(Autoencoder, WidthScaleShrinksHiddenLayers) {
  math::Rng rng(12);
  AutoencoderConfig config;
  config.input_dim = 50;
  config.hidden_dims = {100};
  config.width_scale = 0.5;
  auto model = build_autoencoder(config, rng);
  // 50 -> 50 -> 50: parameters = 50*50+50 + 50*50+50.
  EXPECT_EQ(model.parameter_count(), 2U * (50 * 50 + 50));
}

TEST(Autoencoder, ConfigValidation) {
  AutoencoderConfig bad;
  bad.input_dim = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = AutoencoderConfig{};
  bad.hidden_dims.clear();
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = AutoencoderConfig{};
  bad.width_scale = 0.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = AutoencoderConfig{};
  bad.hidden_dims = {0};
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(Cnn, BuildsAndValidates) {
  math::Rng rng(13);
  CnnConfig config;
  config.input_length = 100;
  config.filters = 4;
  config.dense_units = 16;
  auto model = build_cnn(config, rng);
  EXPECT_EQ(model.output_dimension(100), config.classes);
}

TEST(Cnn, PaperArchitectureShape) {
  math::Rng rng(14);
  CnnConfig config;  // 500-wide input, 46 filters, dense 512
  auto model = build_cnn(config, rng);
  EXPECT_EQ(model.output_dimension(500), 4U);
  // ConvB1: 500->498->496->248, ConvB2: 248->246->244->122.
  // Flatten = 46*122 = 5612 -> 512 -> 4.
  const std::size_t expected =
      (46 * 1 * 3 + 46) + (46 * 46 * 3 + 46) +  // ConvB1
      (46 * 46 * 3 + 46) + (46 * 46 * 3 + 46) +  // ConvB2
      (5612 * 512 + 512) + (512 * 4 + 4);
  EXPECT_EQ(model.parameter_count(), expected);
}

TEST(Cnn, ConfigValidation) {
  CnnConfig bad;
  bad.input_length = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = CnnConfig{};
  bad.input_length = 8;  // too short for two conv blocks + pooling
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = CnnConfig{};
  bad.conv_dropout = 1.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

}  // namespace
}  // namespace soteria::nn
