#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

namespace soteria::nn {
namespace {

TEST(MseLoss, ValueAndGradient) {
  const math::Matrix pred(1, 2, {3.0F, 5.0F});
  const math::Matrix target(1, 2, {1.0F, 5.0F});
  const auto result = mse_loss(pred, target);
  EXPECT_DOUBLE_EQ(result.loss, (4.0 + 0.0) / 2.0);
  EXPECT_FLOAT_EQ(result.gradient(0, 0), 2.0F * 2.0F / 2.0F);
  EXPECT_FLOAT_EQ(result.gradient(0, 1), 0.0F);
}

TEST(MseLoss, ZeroForPerfectPrediction) {
  const math::Matrix m(2, 3, 1.5F);
  const auto result = mse_loss(m, m);
  EXPECT_DOUBLE_EQ(result.loss, 0.0);
}

TEST(MseLoss, ShapeMismatchThrows) {
  EXPECT_THROW((void)mse_loss(math::Matrix(1, 2), math::Matrix(2, 1)),
               std::invalid_argument);
}

TEST(Softmax, RowsSumToOne) {
  const math::Matrix logits(2, 3, {1.0F, 2.0F, 3.0F, -1.0F, 0.0F, 1.0F});
  const auto probs = softmax(logits);
  for (std::size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_GT(probs(r, c), 0.0F);
      sum += probs(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(Softmax, IsShiftInvariantAndStable) {
  const math::Matrix a(1, 2, {1.0F, 2.0F});
  const math::Matrix b(1, 2, {1001.0F, 1002.0F});
  const auto pa = softmax(a);
  const auto pb = softmax(b);
  EXPECT_NEAR(pa(0, 0), pb(0, 0), 1e-6);
  EXPECT_FALSE(std::isnan(pb(0, 1)));
}

TEST(SoftmaxCrossEntropy, KnownValue) {
  // Uniform logits over 4 classes -> loss = ln(4).
  const math::Matrix logits(1, 4, 0.0F);
  const std::vector<std::size_t> labels{2};
  const auto result = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(result.loss, std::log(4.0), 1e-6);
  // Gradient: probs - onehot, / batch.
  EXPECT_NEAR(result.gradient(0, 0), 0.25F, 1e-6);
  EXPECT_NEAR(result.gradient(0, 2), 0.25F - 1.0F, 1e-6);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  const math::Matrix logits(2, 3, {1.0F, -2.0F, 0.5F, 3.0F, 3.0F, 0.0F});
  const std::vector<std::size_t> labels{0, 1};
  const auto result = softmax_cross_entropy(logits, labels);
  for (std::size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) sum += result.gradient(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectPredictionHasLowLoss) {
  const math::Matrix logits(1, 2, {10.0F, -10.0F});
  const std::vector<std::size_t> labels{0};
  EXPECT_LT(softmax_cross_entropy(logits, labels).loss, 1e-6);
}

TEST(SoftmaxCrossEntropy, Validation) {
  const math::Matrix logits(2, 3);
  const std::vector<std::size_t> short_labels{0};
  EXPECT_THROW((void)softmax_cross_entropy(logits, short_labels),
               std::invalid_argument);
  const std::vector<std::size_t> bad_label{0, 3};
  EXPECT_THROW((void)softmax_cross_entropy(logits, bad_label),
               std::invalid_argument);
}

TEST(RowRmse, PerRowValues) {
  const math::Matrix pred(2, 2, {1.0F, 1.0F, 0.0F, 0.0F});
  const math::Matrix target(2, 2, {0.0F, 0.0F, 0.0F, 0.0F});
  const auto rmse = row_rmse(pred, target);
  ASSERT_EQ(rmse.size(), 2U);
  EXPECT_NEAR(rmse[0], 1.0, 1e-9);
  EXPECT_NEAR(rmse[1], 0.0, 1e-9);
}

TEST(RowRmse, ShapeMismatchThrows) {
  EXPECT_THROW((void)row_rmse(math::Matrix(1, 2), math::Matrix(1, 3)),
               std::invalid_argument);
}

}  // namespace
}  // namespace soteria::nn
