#include <gtest/gtest.h>

#include "gradient_check.h"
#include "math/rng.h"
#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/pooling.h"

namespace soteria::nn {
namespace {

using testing::check_input_gradient;
using testing::check_parameter_gradients;

math::Matrix random_batch(std::size_t rows, std::size_t cols,
                          std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix m(rows, cols);
  m.fill_normal(rng, 0.0F, 1.0F);
  return m;
}

// ---------------------------------------------------------------- Dense

TEST(Dense, ForwardIsAffine) {
  math::Rng rng(1);
  Dense layer(2, 3, rng);
  layer.weights() = math::Matrix(2, 3, {1, 2, 3, 4, 5, 6});
  layer.bias() = math::Matrix(1, 3, {10, 20, 30});
  const math::Matrix input(1, 2, {1.0F, 2.0F});
  const auto out = layer.forward(input, false);
  EXPECT_FLOAT_EQ(out(0, 0), 1 * 1 + 2 * 4 + 10);
  EXPECT_FLOAT_EQ(out(0, 1), 1 * 2 + 2 * 5 + 20);
  EXPECT_FLOAT_EQ(out(0, 2), 1 * 3 + 2 * 6 + 30);
}

TEST(Dense, RejectsZeroDims) {
  math::Rng rng(1);
  EXPECT_THROW(Dense(0, 3, rng), std::invalid_argument);
  EXPECT_THROW(Dense(3, 0, rng), std::invalid_argument);
}

TEST(Dense, RejectsWrongInputWidth) {
  math::Rng rng(1);
  Dense layer(4, 2, rng);
  EXPECT_THROW((void)layer.forward(math::Matrix(1, 3), false),
               std::invalid_argument);
  EXPECT_EQ(layer.output_dimension(4), 2U);
  EXPECT_THROW((void)layer.output_dimension(5), std::invalid_argument);
}

TEST(Dense, InputGradientMatchesNumeric) {
  math::Rng rng(2);
  Dense layer(4, 3, rng);
  check_input_gradient(layer, random_batch(2, 4, 3));
}

TEST(Dense, ParameterGradientsMatchNumeric) {
  math::Rng rng(4);
  Dense layer(3, 2, rng);
  check_parameter_gradients(layer, random_batch(2, 3, 5));
}

TEST(Dense, GradientsAccumulateUntilZeroed) {
  math::Rng rng(6);
  Dense layer(2, 2, rng);
  const auto input = random_batch(1, 2, 7);
  const auto out = layer.forward(input, true);
  (void)layer.backward(out);
  std::vector<ParamRef> params;
  layer.collect_parameters(params);
  const float first = params[0].grad->data()[0];
  (void)layer.forward(input, true);
  (void)layer.backward(out);
  EXPECT_NEAR(params[0].grad->data()[0], 2.0F * first, 1e-4);
  layer.zero_gradients();
  EXPECT_FLOAT_EQ(params[0].grad->data()[0], 0.0F);
}

TEST(Dense, ParameterCount) {
  math::Rng rng(8);
  Dense layer(10, 5, rng);
  EXPECT_EQ(layer.parameter_count(), 10 * 5 + 5U);
  EXPECT_EQ(layer.name(), "Dense(10->5)");
}

// ----------------------------------------------------------------- ReLU

TEST(Relu, ForwardClampsNegatives) {
  Relu relu;
  const math::Matrix in(1, 4, {-1.0F, 0.0F, 2.0F, -3.0F});
  const auto out = relu.forward(in, false);
  EXPECT_FLOAT_EQ(out(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(out(0, 2), 2.0F);
}

TEST(Relu, BackwardMasksBlockedUnits) {
  Relu relu;
  const math::Matrix in(1, 3, {-1.0F, 2.0F, 3.0F});
  (void)relu.forward(in, true);
  const math::Matrix grad(1, 3, {5.0F, 5.0F, 5.0F});
  const auto gin = relu.backward(grad);
  EXPECT_FLOAT_EQ(gin(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(gin(0, 1), 5.0F);
}

TEST(Relu, GradientMatchesNumeric) {
  Relu relu;
  // Keep values away from the kink for finite differences.
  math::Matrix in(2, 3, {-1.0F, 2.0F, 0.5F, -0.4F, 1.2F, -2.0F});
  check_input_gradient(relu, in);
}

// -------------------------------------------------------------- Sigmoid

TEST(Sigmoid, ForwardRange) {
  Sigmoid sigmoid;
  const math::Matrix in(1, 3, {-100.0F, 0.0F, 100.0F});
  const auto out = sigmoid.forward(in, false);
  EXPECT_NEAR(out(0, 0), 0.0F, 1e-6);
  EXPECT_FLOAT_EQ(out(0, 1), 0.5F);
  EXPECT_NEAR(out(0, 2), 1.0F, 1e-6);
}

TEST(Sigmoid, GradientMatchesNumeric) {
  Sigmoid sigmoid;
  check_input_gradient(sigmoid, random_batch(2, 4, 9));
}

// --------------------------------------------------------------- Conv1d

TEST(Conv1d, ForwardMatchesHandComputation) {
  math::Rng rng(10);
  Conv1d conv(1, 4, 1, 2, rng);
  std::vector<ParamRef> params;
  conv.collect_parameters(params);
  // kernel [1, 2], bias 0.5
  params[0].value->data()[0] = 1.0F;
  params[0].value->data()[1] = 2.0F;
  params[1].value->data()[0] = 0.5F;
  const math::Matrix in(1, 4, {1.0F, 2.0F, 3.0F, 4.0F});
  const auto out = conv.forward(in, false);
  ASSERT_EQ(out.cols(), 3U);
  EXPECT_FLOAT_EQ(out(0, 0), 1 + 4 + 0.5F);
  EXPECT_FLOAT_EQ(out(0, 1), 2 + 6 + 0.5F);
  EXPECT_FLOAT_EQ(out(0, 2), 3 + 8 + 0.5F);
}

TEST(Conv1d, MultiChannelShapes) {
  math::Rng rng(11);
  Conv1d conv(3, 10, 5, 3, rng);
  EXPECT_EQ(conv.out_length(), 8U);
  EXPECT_EQ(conv.output_dimension(30), 40U);
  EXPECT_THROW((void)conv.output_dimension(29), std::invalid_argument);
  const auto out = conv.forward(random_batch(2, 30, 12), false);
  EXPECT_EQ(out.rows(), 2U);
  EXPECT_EQ(out.cols(), 40U);
}

TEST(Conv1d, Validation) {
  math::Rng rng(13);
  EXPECT_THROW(Conv1d(0, 4, 1, 2, rng), std::invalid_argument);
  EXPECT_THROW(Conv1d(1, 4, 1, 5, rng), std::invalid_argument);
  Conv1d conv(1, 4, 1, 2, rng);
  EXPECT_THROW((void)conv.forward(math::Matrix(1, 5), false),
               std::invalid_argument);
}

TEST(Conv1d, InputGradientMatchesNumeric) {
  math::Rng rng(14);
  Conv1d conv(2, 6, 3, 2, rng);
  check_input_gradient(conv, random_batch(2, 12, 15));
}

TEST(Conv1d, ParameterGradientsMatchNumeric) {
  math::Rng rng(16);
  Conv1d conv(2, 5, 2, 3, rng);
  check_parameter_gradients(conv, random_batch(2, 10, 17));
}

// ------------------------------------------------------------ MaxPool1d

TEST(MaxPool1d, ForwardPicksWindowMax) {
  MaxPool1d pool(1, 6, 2);
  const math::Matrix in(1, 6, {1.0F, 5.0F, 2.0F, 2.0F, 9.0F, -1.0F});
  const auto out = pool.forward(in, false);
  ASSERT_EQ(out.cols(), 3U);
  EXPECT_FLOAT_EQ(out(0, 0), 5.0F);
  EXPECT_FLOAT_EQ(out(0, 1), 2.0F);
  EXPECT_FLOAT_EQ(out(0, 2), 9.0F);
}

TEST(MaxPool1d, DropsRemainder) {
  MaxPool1d pool(1, 5, 2);
  EXPECT_EQ(pool.out_length(), 2U);
  const math::Matrix in(1, 5, {1, 2, 3, 4, 99});
  const auto out = pool.forward(in, false);
  EXPECT_EQ(out.cols(), 2U);  // the 99 in the tail is dropped
}

TEST(MaxPool1d, BackwardRoutesToArgmax) {
  MaxPool1d pool(1, 4, 2);
  const math::Matrix in(1, 4, {1.0F, 5.0F, 7.0F, 2.0F});
  (void)pool.forward(in, true);
  const math::Matrix grad(1, 2, {10.0F, 20.0F});
  const auto gin = pool.backward(grad);
  EXPECT_FLOAT_EQ(gin(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(gin(0, 1), 10.0F);
  EXPECT_FLOAT_EQ(gin(0, 2), 20.0F);
  EXPECT_FLOAT_EQ(gin(0, 3), 0.0F);
}

TEST(MaxPool1d, MultiChannelIndependence) {
  MaxPool1d pool(2, 4, 2);
  const math::Matrix in(1, 8, {1, 9, 0, 0, 5, 1, 2, 8});
  const auto out = pool.forward(in, false);
  ASSERT_EQ(out.cols(), 4U);
  EXPECT_FLOAT_EQ(out(0, 0), 9.0F);
  EXPECT_FLOAT_EQ(out(0, 2), 5.0F);
  EXPECT_FLOAT_EQ(out(0, 3), 8.0F);
}

TEST(MaxPool1d, Validation) {
  EXPECT_THROW(MaxPool1d(0, 4, 2), std::invalid_argument);
  EXPECT_THROW(MaxPool1d(1, 4, 5), std::invalid_argument);
  MaxPool1d pool(1, 4, 2);
  EXPECT_THROW((void)pool.forward(math::Matrix(1, 5), false),
               std::invalid_argument);
}

// -------------------------------------------------------------- Dropout

TEST(Dropout, IdentityAtInference) {
  math::Rng rng(20);
  Dropout dropout(0.5, rng);
  const auto in = random_batch(2, 8, 21);
  EXPECT_EQ(dropout.forward(in, false), in);
}

TEST(Dropout, TrainingZeroesAndRescales) {
  math::Rng rng(22);
  Dropout dropout(0.5, rng);
  math::Matrix in(1, 2000, 1.0F);
  const auto out = dropout.forward(in, true);
  std::size_t zeros = 0;
  for (float x : out.data()) {
    if (x == 0.0F) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(x, 2.0F);  // inverted dropout scale 1/(1-p)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 2000.0, 0.5, 0.05);
}

TEST(Dropout, BackwardUsesSameMask) {
  math::Rng rng(23);
  Dropout dropout(0.5, rng);
  math::Matrix in(1, 100, 1.0F);
  const auto out = dropout.forward(in, true);
  const math::Matrix grad(1, 100, 1.0F);
  const auto gin = dropout.backward(grad);
  for (std::size_t c = 0; c < 100; ++c) {
    EXPECT_FLOAT_EQ(gin(0, c), out(0, c));  // same zero pattern & scale
  }
}

TEST(Dropout, ZeroRateIsIdentityEvenInTraining) {
  math::Rng rng(24);
  Dropout dropout(0.0, rng);
  const auto in = random_batch(1, 5, 25);
  EXPECT_EQ(dropout.forward(in, true), in);
}

TEST(Dropout, RateValidation) {
  math::Rng rng(26);
  EXPECT_THROW(Dropout(-0.1, rng), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace soteria::nn
