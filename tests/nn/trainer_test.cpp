#include "nn/trainer.h"

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace soteria::nn {
namespace {

TEST(TrainConfig, Validation) {
  EXPECT_NO_THROW(validate(TrainConfig{}));
  TrainConfig zero_epochs;
  zero_epochs.epochs = 0;
  EXPECT_THROW(validate(zero_epochs), std::invalid_argument);
  TrainConfig zero_batch;
  zero_batch.batch_size = 0;
  EXPECT_THROW(validate(zero_batch), std::invalid_argument);
}

TEST(TrainConfig, FactorySetsFields) {
  const auto config = make_train_config(7, 13);
  EXPECT_EQ(config.epochs, 7U);
  EXPECT_EQ(config.batch_size, 13U);
  EXPECT_TRUE(config.shuffle);
}

TEST(TrainRegression, LossDecreasesOnLinearTask) {
  math::Rng rng(1);
  // y = 2 x0 - x1 + 0.5: learnable by a single dense layer.
  math::Matrix inputs(64, 2);
  inputs.fill_normal(rng, 0.0F, 1.0F);
  math::Matrix targets(64, 1);
  for (std::size_t r = 0; r < 64; ++r) {
    targets(r, 0) = 2.0F * inputs(r, 0) - inputs(r, 1) + 0.5F;
  }
  Sequential model;
  model.emplace<Dense>(2, 1, rng);
  Adam optimizer(0.05);
  const auto report = train_regression(model, inputs, targets, optimizer,
                                       make_train_config(60, 16), rng);
  ASSERT_EQ(report.epoch_losses.size(), 60U);
  EXPECT_LT(report.final_loss(), 0.01);
  EXPECT_LT(report.final_loss(), report.epoch_losses.front());
}

TEST(TrainRegression, RowCountMismatchThrows) {
  math::Rng rng(2);
  Sequential model;
  model.emplace<Dense>(2, 1, rng);
  Adam optimizer(0.01);
  EXPECT_THROW((void)train_regression(model, math::Matrix(4, 2),
                                      math::Matrix(3, 1), optimizer,
                                      TrainConfig{}, rng),
               std::invalid_argument);
}

TEST(TrainRegression, EmptyDatasetThrows) {
  math::Rng rng(3);
  Sequential model;
  model.emplace<Dense>(2, 1, rng);
  Adam optimizer(0.01);
  EXPECT_THROW((void)train_regression(model, math::Matrix(0, 2),
                                      math::Matrix(0, 1), optimizer,
                                      TrainConfig{}, rng),
               std::invalid_argument);
}

TEST(TrainClassifier, LearnsSeparableBlobs) {
  math::Rng rng(4);
  constexpr std::size_t kPerClass = 40;
  math::Matrix inputs(2 * kPerClass, 2);
  std::vector<std::size_t> labels(2 * kPerClass);
  for (std::size_t i = 0; i < kPerClass; ++i) {
    inputs(i, 0) = static_cast<float>(rng.normal(-2.0, 0.4));
    inputs(i, 1) = static_cast<float>(rng.normal(-2.0, 0.4));
    labels[i] = 0;
    inputs(kPerClass + i, 0) = static_cast<float>(rng.normal(2.0, 0.4));
    inputs(kPerClass + i, 1) = static_cast<float>(rng.normal(2.0, 0.4));
    labels[kPerClass + i] = 1;
  }
  Sequential model;
  model.emplace<Dense>(2, 8, rng);
  model.emplace<Relu>();
  model.emplace<Dense>(8, 2, rng);
  Adam optimizer(0.02);
  (void)train_classifier(model, inputs, labels, optimizer,
                         make_train_config(40, 16), rng);
  const auto predictions = argmax_rows(model.predict(inputs));
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    correct += predictions[i] == labels[i];
  }
  EXPECT_GT(correct, labels.size() * 95 / 100);
}

TEST(TrainClassifier, OnEpochCallbackFires) {
  math::Rng rng(5);
  Sequential model;
  model.emplace<Dense>(2, 2, rng);
  Adam optimizer(0.01);
  math::Matrix inputs(8, 2, 0.5F);
  const std::vector<std::size_t> labels(8, 0);
  std::size_t calls = 0;
  TrainConfig config = make_train_config(5, 4);
  config.on_epoch = [&calls](std::size_t, double) { ++calls; };
  (void)train_classifier(model, inputs, labels, optimizer, config, rng);
  EXPECT_EQ(calls, 5U);
}

TEST(ArgmaxRows, PicksPerRowMaximum) {
  const math::Matrix m(2, 3, {0.1F, 0.7F, 0.2F, 0.9F, 0.05F, 0.05F});
  const auto result = argmax_rows(m);
  EXPECT_EQ(result, (std::vector<std::size_t>{1, 0}));
}

TEST(GatherRows, CopiesSelectedRows) {
  const math::Matrix m(3, 2, {1, 2, 3, 4, 5, 6});
  const std::vector<std::size_t> rows{2, 0};
  const auto gathered = gather_rows(m, rows);
  EXPECT_FLOAT_EQ(gathered(0, 0), 5.0F);
  EXPECT_FLOAT_EQ(gathered(1, 1), 2.0F);
  const std::vector<std::size_t> bad{7};
  EXPECT_THROW((void)gather_rows(m, bad), std::out_of_range);
}

}  // namespace
}  // namespace soteria::nn
