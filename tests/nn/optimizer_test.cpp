#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace soteria::nn {
namespace {

// Minimizes f(x) = 0.5 * ||x - target||^2 with gradient x - target.
template <typename Opt>
double optimize_quadratic(Opt& optimizer, std::size_t steps) {
  math::Matrix x(1, 4, {5.0F, -3.0F, 2.0F, 8.0F});
  const math::Matrix target(1, 4, {1.0F, 1.0F, 1.0F, 1.0F});
  math::Matrix grad(1, 4);
  const std::vector<ParamRef> params{{&x, &grad}};
  for (std::size_t i = 0; i < steps; ++i) {
    for (std::size_t c = 0; c < 4; ++c) grad(0, c) = x(0, c) - target(0, c);
    optimizer.step(params);
  }
  double err = 0.0;
  for (std::size_t c = 0; c < 4; ++c) {
    err += std::abs(x(0, c) - target(0, c));
  }
  return err;
}

TEST(Sgd, ConvergesOnQuadratic) {
  Sgd sgd(0.1);
  EXPECT_LT(optimize_quadratic(sgd, 200), 1e-3);
}

TEST(Sgd, MomentumAcceleratesEarlySteps) {
  Sgd plain(0.05);
  Sgd momentum(0.05, 0.9);
  const double plain_err = optimize_quadratic(plain, 20);
  const double momentum_err = optimize_quadratic(momentum, 20);
  EXPECT_LT(momentum_err, plain_err);
}

TEST(Sgd, SingleStepMatchesHandComputation) {
  Sgd sgd(0.5);
  math::Matrix x(1, 1, {2.0F});
  math::Matrix grad(1, 1, {4.0F});
  const std::vector<ParamRef> params{{&x, &grad}};
  sgd.step(params);
  EXPECT_FLOAT_EQ(x(0, 0), 0.0F);  // 2 - 0.5*4
}

TEST(Sgd, Validation) {
  EXPECT_THROW(Sgd(0.0), std::invalid_argument);
  EXPECT_THROW(Sgd(0.1, 1.0), std::invalid_argument);
  Sgd sgd(0.1);
  EXPECT_THROW(sgd.set_learning_rate(-1.0), std::invalid_argument);
  sgd.set_learning_rate(0.2);
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.2);
}

TEST(Adam, ConvergesOnQuadratic) {
  Adam adam(0.1);
  EXPECT_LT(optimize_quadratic(adam, 500), 1e-2);
}

TEST(Adam, FirstStepSizeIsLearningRate) {
  // With bias correction, the very first Adam update is ~lr * sign(g).
  Adam adam(0.01);
  math::Matrix x(1, 2, {1.0F, 1.0F});
  math::Matrix grad(1, 2, {100.0F, -0.001F});
  const std::vector<ParamRef> params{{&x, &grad}};
  adam.step(params);
  EXPECT_NEAR(x(0, 0), 1.0F - 0.01F, 1e-4);
  EXPECT_NEAR(x(0, 1), 1.0F + 0.01F, 1e-3);
}

TEST(Adam, Validation) {
  EXPECT_THROW(Adam(0.0), std::invalid_argument);
  EXPECT_THROW(Adam(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(Adam(0.1, 0.9, 1.0), std::invalid_argument);
  EXPECT_THROW(Adam(0.1, 0.9, 0.999, 0.0), std::invalid_argument);
}

TEST(Optimizer, RejectsChangedParameterList) {
  Adam adam(0.01);
  math::Matrix a(1, 2), ga(1, 2), b(1, 3), gb(1, 3);
  const std::vector<ParamRef> one{{&a, &ga}};
  adam.step(one);
  const std::vector<ParamRef> two{{&a, &ga}, {&b, &gb}};
  EXPECT_THROW(adam.step(two), std::invalid_argument);
}

TEST(Optimizer, RejectsNullAndMismatchedRefs) {
  Sgd sgd(0.1);
  math::Matrix a(1, 2), wrong_grad(1, 3);
  const std::vector<ParamRef> null_ref{{&a, nullptr}};
  EXPECT_THROW(sgd.step(null_ref), std::invalid_argument);
  const std::vector<ParamRef> mismatched{{&a, &wrong_grad}};
  EXPECT_THROW(sgd.step(mismatched), std::invalid_argument);
}

}  // namespace
}  // namespace soteria::nn
