// Robustness of the binary-facing layers against arbitrary input: the
// disassembler, extractor, and VM must never crash, hang, or violate
// their invariants on random byte images (malware analysis tooling is
// fed hostile bytes by definition).
#include <gtest/gtest.h>

#include "cfg/extractor.h"
#include "cfg/labeling.h"
#include "graph/traversal.h"
#include "isa/vm.h"
#include "math/rng.h"

namespace soteria::cfg {
namespace {

std::vector<std::uint8_t> random_image(std::size_t instructions,
                                       math::Rng& rng) {
  std::vector<std::uint8_t> image(instructions * isa::kInstructionSize);
  for (auto& byte : image) {
    byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return image;
}

class FuzzRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzRobustness, DisassembleNeverThrowsOnAlignedImages) {
  math::Rng rng(GetParam());
  const auto image = random_image(1 + rng.index(256), rng);
  const auto insns = isa::disassemble(image);
  EXPECT_EQ(insns.size(), image.size() / isa::kInstructionSize);
}

TEST_P(FuzzRobustness, ExtractorInvariantsHoldOnRandomBytes) {
  math::Rng rng(GetParam() ^ 0x5eed);
  const auto image = random_image(1 + rng.index(256), rng);
  const Cfg cfg = extract(image);
  ASSERT_GT(cfg.node_count(), 0U);
  // Entry-reachability invariant survives arbitrary input.
  const auto reach = graph::reachable_from(cfg.graph(), cfg.entry());
  for (graph::NodeId v = 0; v < cfg.node_count(); ++v) {
    EXPECT_TRUE(reach[v]);
  }
  // Labelings stay total orders over whatever came out.
  const auto dbl = label_nodes(cfg, LabelingMethod::kDensity);
  const auto lbl = label_nodes(cfg, LabelingMethod::kLevel);
  EXPECT_EQ(dbl.size(), cfg.node_count());
  EXPECT_EQ(lbl[cfg.entry()], 0U);
}

TEST_P(FuzzRobustness, VmAlwaysTerminatesWithinBudget) {
  math::Rng rng(GetParam() ^ 0xf00d);
  const auto image = random_image(1 + rng.index(128), rng);
  isa::VmConfig config;
  config.max_steps = 20'000;
  const auto result = isa::execute(image, config);
  // Any of the three statuses is legal for hostile bytes; what must
  // hold is the budget.
  EXPECT_LE(result.steps, config.max_steps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRobustness,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(FuzzRobustness, AllNopImage) {
  const std::vector<std::uint8_t> image(64 * isa::kInstructionSize, 0);
  const Cfg cfg = extract(image);
  EXPECT_EQ(cfg.node_count(), 1U);  // one straight-line block
  const auto result = isa::execute(image);
  EXPECT_EQ(result.status, isa::VmStatus::kFault);  // runs off the end
}

TEST(FuzzRobustness, AllInvalidOpcodeImage) {
  std::vector<std::uint8_t> image(16 * isa::kInstructionSize, 0xFF);
  const Cfg cfg = extract(image);
  EXPECT_EQ(cfg.node_count(), 1U);  // inert data words form one block
}

TEST(FuzzRobustness, SingleInstructionImages) {
  for (std::uint8_t opcode : {0x01, 0x40, 0x51, 0x60}) {
    const std::vector<std::uint8_t> image{opcode, 0, 0, 0};
    EXPECT_NO_THROW((void)extract(image));
    EXPECT_NO_THROW((void)isa::execute(image));
  }
}

}  // namespace
}  // namespace soteria::cfg
