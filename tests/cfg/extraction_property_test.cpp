// Property tests: invariants of binary->CFG extraction over randomly
// generated firmware of every family profile.
#include <gtest/gtest.h>

#include <set>

#include "cfg/extractor.h"
#include "dataset/family_profiles.h"
#include "graph/traversal.h"
#include "isa/codegen.h"

namespace soteria::cfg {
namespace {

struct Case {
  dataset::Family family;
  std::uint64_t seed;
};

class ExtractionProperties : public ::testing::TestWithParam<Case> {};

TEST_P(ExtractionProperties, BlocksPartitionReachableInstructions) {
  math::Rng rng(GetParam().seed);
  const auto binary =
      isa::generate_binary(dataset::profile_for(GetParam().family), rng);
  const Cfg cfg = extract(binary);

  // Blocks are disjoint, non-empty, in-range instruction intervals.
  const std::size_t instruction_count =
      binary.size() / isa::kInstructionSize;
  std::set<std::size_t> covered;
  for (const auto& block : cfg.blocks()) {
    EXPECT_GT(block.instruction_count, 0U);
    for (std::size_t i = 0; i < block.instruction_count; ++i) {
      const std::size_t index = block.first_instruction + i;
      EXPECT_LT(index, instruction_count);
      EXPECT_TRUE(covered.insert(index).second)
          << "instruction " << index << " appears in two blocks";
    }
  }
}

TEST_P(ExtractionProperties, EveryBlockReachableFromEntry) {
  math::Rng rng(GetParam().seed);
  const auto binary =
      isa::generate_binary(dataset::profile_for(GetParam().family), rng);
  const Cfg cfg = extract(binary);
  const auto reach = graph::reachable_from(cfg.graph(), cfg.entry());
  for (graph::NodeId v = 0; v < cfg.node_count(); ++v) {
    EXPECT_TRUE(reach[v]);
  }
}

TEST_P(ExtractionProperties, EntryBlockContainsInstructionZero) {
  math::Rng rng(GetParam().seed);
  const auto binary =
      isa::generate_binary(dataset::profile_for(GetParam().family), rng);
  const Cfg cfg = extract(binary);
  const auto& entry_block = cfg.blocks()[cfg.entry()];
  EXPECT_EQ(entry_block.first_instruction, 0U);
}

TEST_P(ExtractionProperties, SuccessorCountsAreBounded) {
  math::Rng rng(GetParam().seed);
  const auto binary =
      isa::generate_binary(dataset::profile_for(GetParam().family), rng);
  const Cfg cfg = extract(binary);
  for (graph::NodeId v = 0; v < cfg.node_count(); ++v) {
    // No SIR-32 terminator produces more than two successors.
    EXPECT_LE(cfg.graph().out_degree(v), 2U);
  }
}

TEST_P(ExtractionProperties, PruningIsIdempotent) {
  math::Rng rng(GetParam().seed);
  const auto binary =
      isa::generate_binary(dataset::profile_for(GetParam().family), rng);
  const Cfg once = extract(binary);
  // The pruned CFG re-extracted from the same binary is identical in
  // shape (extraction is deterministic).
  const Cfg twice = extract(binary);
  EXPECT_EQ(once.node_count(), twice.node_count());
  EXPECT_EQ(once.edge_count(), twice.edge_count());
  EXPECT_EQ(once.entry(), twice.entry());
}

TEST_P(ExtractionProperties, UnprunedIsSupersetOfPruned) {
  math::Rng rng(GetParam().seed);
  const auto binary =
      isa::generate_binary(dataset::profile_for(GetParam().family), rng);
  ExtractOptions keep_all;
  keep_all.prune_unreachable = false;
  const Cfg full = extract(binary, keep_all);
  const Cfg pruned = extract(binary);
  EXPECT_GE(full.node_count(), pruned.node_count());
  EXPECT_GE(full.edge_count(), pruned.edge_count());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExtractionProperties,
    ::testing::Values(Case{dataset::Family::kBenign, 11},
                      Case{dataset::Family::kBenign, 12},
                      Case{dataset::Family::kGafgyt, 13},
                      Case{dataset::Family::kGafgyt, 14},
                      Case{dataset::Family::kMirai, 15},
                      Case{dataset::Family::kMirai, 16},
                      Case{dataset::Family::kTsunami, 17},
                      Case{dataset::Family::kTsunami, 18}),
    [](const auto& info) {
      return std::string(dataset::family_name(info.param.family)) +
             "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace soteria::cfg
