#include "cfg/gea.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/traversal.h"
#include "math/rng.h"

namespace soteria::cfg {
namespace {

Cfg diamond_cfg() {
  graph::DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return Cfg(std::move(g), 0);
}

Cfg chain_cfg(std::size_t n) {
  math::Rng rng(1);
  return Cfg(graph::chain_graph(n, 0, rng), 0);
}

TEST(Gea, CombinedSizeIsSumPlusTwo) {
  const auto result = gea_combine(diamond_cfg(), chain_cfg(3));
  EXPECT_EQ(result.combined.node_count(), 4U + 3U + 2U);
}

TEST(Gea, SharedEntryBranchesToBothEntries) {
  const auto result = gea_combine(diamond_cfg(), chain_cfg(3));
  const auto& g = result.combined.graph();
  EXPECT_EQ(g.out_degree(result.shared_entry), 2U);
  EXPECT_TRUE(g.has_edge(result.shared_entry, result.original_offset + 0));
  EXPECT_TRUE(g.has_edge(result.shared_entry, result.target_offset + 0));
  EXPECT_EQ(result.combined.entry(), result.shared_entry);
}

TEST(Gea, SharedExitJoinsBothExits) {
  const auto result = gea_combine(diamond_cfg(), chain_cfg(3));
  const auto& g = result.combined.graph();
  EXPECT_EQ(g.out_degree(result.shared_exit), 0U);
  // diamond exit = node 3; chain exit = node 2.
  EXPECT_TRUE(g.has_edge(result.original_offset + 3, result.shared_exit));
  EXPECT_TRUE(g.has_edge(result.target_offset + 2, result.shared_exit));
}

TEST(Gea, LobesKeepTheirInternalEdges) {
  const Cfg original = diamond_cfg();
  const Cfg target = chain_cfg(4);
  const auto result = gea_combine(original, target);
  const auto& g = result.combined.graph();
  for (const auto& [u, v] : original.graph().edges()) {
    EXPECT_TRUE(g.has_edge(result.original_offset + u,
                           result.original_offset + v));
  }
  for (const auto& [u, v] : target.graph().edges()) {
    EXPECT_TRUE(
        g.has_edge(result.target_offset + u, result.target_offset + v));
  }
  // No cross-lobe edges except through shared entry/exit.
  for (const auto& [u, v] : g.edges()) {
    const bool u_original = u >= result.original_offset &&
                            u < result.original_offset +
                                    original.node_count();
    const bool v_target = v >= result.target_offset &&
                          v < result.target_offset + target.node_count();
    EXPECT_FALSE(u_original && v_target);
  }
}

TEST(Gea, EverythingReachableFromSharedEntry) {
  math::Rng rng(3);
  const Cfg a(graph::random_connected_dag_plus(12, 0.1, rng), 0);
  const Cfg b(graph::random_connected_dag_plus(9, 0.1, rng), 0);
  const auto result = gea_combine(a, b);
  const auto reach = graph::reachable_from(result.combined.graph(),
                                           result.combined.entry());
  for (bool r : reach) EXPECT_TRUE(r);
}

TEST(Gea, EmptyCfgThrows) {
  EXPECT_THROW((void)gea_combine(Cfg{}, diamond_cfg()),
               std::invalid_argument);
  EXPECT_THROW((void)gea_combine(diamond_cfg(), Cfg{}),
               std::invalid_argument);
}

TEST(Gea, LoopOnlyCfgStillJoinsExit) {
  // 2-cycle with no natural exit: the deepest node links to the shared
  // exit instead.
  graph::DiGraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const Cfg looper(std::move(g), 0);
  const auto result = gea_combine(looper, diamond_cfg());
  EXPECT_GT(result.combined.graph().in_degree(result.shared_exit), 1U);
}

TEST(Gea, SelfCombinationDoublesStructure) {
  const Cfg d = diamond_cfg();
  const auto result = gea_combine(d, d);
  EXPECT_EQ(result.combined.node_count(), 10U);
  EXPECT_EQ(result.combined.edge_count(), 2U * d.edge_count() + 2 + 2);
}

TEST(Cfg, ExitNodesFindsSinks) {
  const Cfg d = diamond_cfg();
  const auto exits = d.exit_nodes();
  ASSERT_EQ(exits.size(), 1U);
  EXPECT_EQ(exits[0], 3U);
}

TEST(Cfg, ConstructorValidation) {
  graph::DiGraph g(2);
  EXPECT_THROW(Cfg(g, 5), std::invalid_argument);
  EXPECT_THROW(Cfg(g, 0, std::vector<BasicBlock>(3)),
               std::invalid_argument);
  EXPECT_NO_THROW(Cfg(g, 1));
  EXPECT_NO_THROW(Cfg(graph::DiGraph{}, 0));  // empty graph, any entry
}

}  // namespace
}  // namespace soteria::cfg
