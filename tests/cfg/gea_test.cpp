#include "cfg/gea.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/traversal.h"
#include "math/rng.h"
#include "soteria/error.h"

namespace soteria::cfg {
namespace {

Cfg diamond_cfg() {
  graph::DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return Cfg(std::move(g), 0);
}

Cfg chain_cfg(std::size_t n) {
  math::Rng rng(1);
  return Cfg(graph::chain_graph(n, 0, rng), 0);
}

TEST(Gea, CombinedSizeIsSumPlusTwo) {
  const auto result = gea_combine(diamond_cfg(), chain_cfg(3));
  EXPECT_EQ(result.combined.node_count(), 4U + 3U + 2U);
}

TEST(Gea, SharedEntryBranchesToBothEntries) {
  const auto result = gea_combine(diamond_cfg(), chain_cfg(3));
  const auto& g = result.combined.graph();
  EXPECT_EQ(g.out_degree(result.shared_entry), 2U);
  EXPECT_TRUE(g.has_edge(result.shared_entry, result.original_offset + 0));
  EXPECT_TRUE(g.has_edge(result.shared_entry, result.target_offset + 0));
  EXPECT_EQ(result.combined.entry(), result.shared_entry);
}

TEST(Gea, SharedExitJoinsBothExits) {
  const auto result = gea_combine(diamond_cfg(), chain_cfg(3));
  const auto& g = result.combined.graph();
  EXPECT_EQ(g.out_degree(result.shared_exit), 0U);
  // diamond exit = node 3; chain exit = node 2.
  EXPECT_TRUE(g.has_edge(result.original_offset + 3, result.shared_exit));
  EXPECT_TRUE(g.has_edge(result.target_offset + 2, result.shared_exit));
}

TEST(Gea, LobesKeepTheirInternalEdges) {
  const Cfg original = diamond_cfg();
  const Cfg target = chain_cfg(4);
  const auto result = gea_combine(original, target);
  const auto& g = result.combined.graph();
  for (const auto& [u, v] : original.graph().edges()) {
    EXPECT_TRUE(g.has_edge(result.original_offset + u,
                           result.original_offset + v));
  }
  for (const auto& [u, v] : target.graph().edges()) {
    EXPECT_TRUE(
        g.has_edge(result.target_offset + u, result.target_offset + v));
  }
  // No cross-lobe edges except through shared entry/exit.
  for (const auto& [u, v] : g.edges()) {
    const bool u_original = u >= result.original_offset &&
                            u < result.original_offset +
                                    original.node_count();
    const bool v_target = v >= result.target_offset &&
                          v < result.target_offset + target.node_count();
    EXPECT_FALSE(u_original && v_target);
  }
}

TEST(Gea, EverythingReachableFromSharedEntry) {
  math::Rng rng(3);
  const Cfg a(graph::random_connected_dag_plus(12, 0.1, rng), 0);
  const Cfg b(graph::random_connected_dag_plus(9, 0.1, rng), 0);
  const auto result = gea_combine(a, b);
  const auto reach = graph::reachable_from(result.combined.graph(),
                                           result.combined.entry());
  for (bool r : reach) EXPECT_TRUE(r);
}

TEST(Gea, EmptyCfgThrows) {
  try {
    (void)gea_combine(Cfg{}, diamond_cfg());
    FAIL() << "expected core::Error";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
  }
  EXPECT_THROW((void)gea_combine(diamond_cfg(), Cfg{}), core::Error);
}

TEST(Gea, MidBlockHangsLobeOffAnchor) {
  const Cfg original = diamond_cfg();
  const Cfg target = chain_cfg(3);
  GeaOptions options;
  options.insertion = InsertionPoint::kMidBlock;
  options.anchor = 1;
  const auto result = gea_combine(original, target, options);
  const auto& g = result.combined.graph();
  // original + target + shared exit only (no new shared entry).
  EXPECT_EQ(result.combined.node_count(), 4U + 3U + 1U);
  EXPECT_EQ(result.combined.entry(), result.original_offset + 0);
  EXPECT_TRUE(g.has_edge(result.original_offset + 1,
                         result.target_offset + 0));
  EXPECT_TRUE(g.has_edge(result.original_offset + 3, result.shared_exit));
  EXPECT_TRUE(g.has_edge(result.target_offset + 2, result.shared_exit));
  // Everything stays reachable from the original entry.
  const auto reach = graph::reachable_from(g, result.combined.entry());
  for (bool r : reach) EXPECT_TRUE(r);
}

TEST(Gea, MidBlockAnchorOutOfRangeThrows) {
  GeaOptions options;
  options.insertion = InsertionPoint::kMidBlock;
  options.anchor = 99;
  try {
    (void)gea_combine(diamond_cfg(), chain_cfg(3), options);
    FAIL() << "expected core::Error";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kOutOfRange);
  }
}

TEST(Gea, EntryGuardOptionsMatchTwoArgOverload) {
  const auto plain = gea_combine(diamond_cfg(), chain_cfg(3));
  const auto opt = gea_combine(diamond_cfg(), chain_cfg(3), GeaOptions{});
  EXPECT_EQ(plain.combined.node_count(), opt.combined.node_count());
  EXPECT_EQ(plain.combined.edge_count(), opt.combined.edge_count());
  EXPECT_EQ(plain.shared_entry, opt.shared_entry);
  EXPECT_EQ(plain.shared_exit, opt.shared_exit);
}

TEST(Gea, MultiInjectionBuildsGuardChain) {
  const Cfg original = diamond_cfg();
  const std::vector<Cfg> targets = {chain_cfg(3), chain_cfg(2),
                                    chain_cfg(5)};
  const auto result = gea_combine_multi(original, targets);
  const auto& g = result.combined.graph();
  ASSERT_EQ(result.guards.size(), 3U);
  ASSERT_EQ(result.target_offsets.size(), 3U);
  EXPECT_EQ(result.combined.node_count(),
            3U + 4U + (3U + 2U + 5U) + 1U);
  EXPECT_EQ(result.combined.entry(), result.guards.front());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_TRUE(
        g.has_edge(result.guards[i], result.target_offsets[i] + 0));
  }
  EXPECT_TRUE(g.has_edge(result.guards[0], result.guards[1]));
  EXPECT_TRUE(g.has_edge(result.guards[1], result.guards[2]));
  EXPECT_TRUE(g.has_edge(result.guards[2], result.original_offset + 0));
  const auto reach = graph::reachable_from(g, result.combined.entry());
  for (bool r : reach) EXPECT_TRUE(r);
}

TEST(Gea, MultiInjectionRejectsEmptyTargetList) {
  EXPECT_THROW((void)gea_combine_multi(diamond_cfg(), {}), core::Error);
}

TEST(Gea, LoopOnlyCfgStillJoinsExit) {
  // 2-cycle with no natural exit: the deepest node links to the shared
  // exit instead.
  graph::DiGraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const Cfg looper(std::move(g), 0);
  const auto result = gea_combine(looper, diamond_cfg());
  EXPECT_GT(result.combined.graph().in_degree(result.shared_exit), 1U);
}

TEST(Gea, SelfCombinationDoublesStructure) {
  const Cfg d = diamond_cfg();
  const auto result = gea_combine(d, d);
  EXPECT_EQ(result.combined.node_count(), 10U);
  EXPECT_EQ(result.combined.edge_count(), 2U * d.edge_count() + 2 + 2);
}

TEST(Cfg, ExitNodesFindsSinks) {
  const Cfg d = diamond_cfg();
  const auto exits = d.exit_nodes();
  ASSERT_EQ(exits.size(), 1U);
  EXPECT_EQ(exits[0], 3U);
}

TEST(Cfg, ConstructorValidation) {
  graph::DiGraph g(2);
  EXPECT_THROW(Cfg(g, 5), std::invalid_argument);
  EXPECT_THROW(Cfg(g, 0, std::vector<BasicBlock>(3)),
               std::invalid_argument);
  EXPECT_NO_THROW(Cfg(g, 1));
  EXPECT_NO_THROW(Cfg(graph::DiGraph{}, 0));  // empty graph, any entry
}

}  // namespace
}  // namespace soteria::cfg
