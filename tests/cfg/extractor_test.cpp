#include "cfg/extractor.h"

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "soteria/error.h"

namespace soteria::cfg {
namespace {

using isa::AsmProgram;
using isa::Opcode;

std::vector<std::uint8_t> straight_line() {
  AsmProgram p;
  p.emit(Opcode::kMovImm, 0, 1);
  p.emit(Opcode::kAdd, 0, 1);
  p.emit(Opcode::kHalt);
  return assemble(p);
}

TEST(Extractor, StraightLineIsOneBlock) {
  const Cfg cfg = extract(straight_line());
  EXPECT_EQ(cfg.node_count(), 1U);
  EXPECT_EQ(cfg.edge_count(), 0U);
  EXPECT_EQ(cfg.entry(), 0U);
  ASSERT_TRUE(cfg.has_block_metadata());
  EXPECT_EQ(cfg.blocks()[0].first_instruction, 0U);
  EXPECT_EQ(cfg.blocks()[0].instruction_count, 3U);
}

TEST(Extractor, EmptyImageThrows) {
  try {
    (void)extract(std::vector<std::uint8_t>{});
    FAIL() << "empty image should throw";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
  }
  const std::vector<std::uint8_t> ragged{1, 2, 3};
  try {
    (void)extract(ragged);
    FAIL() << "ragged image should throw";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
  }
}

TEST(Extractor, BranchCreatesDiamond) {
  AsmProgram p;
  p.emit(Opcode::kCmpImm, 0, 5);
  p.emit_branch(Opcode::kJz, "else");
  p.emit(Opcode::kMovImm, 1, 1);   // then-block
  p.emit_branch(Opcode::kJmp, "end");
  p.define_label("else");
  p.emit(Opcode::kMovImm, 1, 2);   // else-block
  p.define_label("end");
  p.emit(Opcode::kHalt);

  const Cfg cfg = extract(assemble(p));
  // Blocks: [cmp,jz], [mov,jmp], [mov], [halt].
  EXPECT_EQ(cfg.node_count(), 4U);
  EXPECT_EQ(cfg.edge_count(), 4U);
  const auto& g = cfg.graph();
  EXPECT_TRUE(g.has_edge(0, 1));  // fall-through
  EXPECT_TRUE(g.has_edge(0, 2));  // taken branch
  EXPECT_TRUE(g.has_edge(1, 3));  // jmp end
  EXPECT_TRUE(g.has_edge(2, 3));  // fall-through
}

TEST(Extractor, LoopCreatesBackEdge) {
  AsmProgram p;
  p.define_label("head");
  p.emit(Opcode::kCmpImm, 1, 0);
  p.emit_branch(Opcode::kJz, "exit");
  p.emit(Opcode::kSub, 1, 1);
  p.emit_branch(Opcode::kJmp, "head");
  p.define_label("exit");
  p.emit(Opcode::kHalt);

  const Cfg cfg = extract(assemble(p));
  EXPECT_EQ(cfg.node_count(), 3U);
  const auto& g = cfg.graph();
  EXPECT_TRUE(g.has_edge(1, 0));  // back edge
  EXPECT_TRUE(g.has_edge(0, 2));  // exit branch
}

TEST(Extractor, CallHasTargetAndFallThrough) {
  AsmProgram p;
  p.emit_branch(Opcode::kCall, "fn");
  p.emit(Opcode::kHalt);
  p.define_label("fn");
  p.emit(Opcode::kRet);

  const Cfg cfg = extract(assemble(p));
  EXPECT_EQ(cfg.node_count(), 3U);
  const auto& g = cfg.graph();
  EXPECT_TRUE(g.has_edge(0, 2));  // call target
  EXPECT_TRUE(g.has_edge(0, 1));  // return fall-through
  EXPECT_EQ(g.out_degree(1), 0U);  // halt
  EXPECT_EQ(g.out_degree(2), 0U);  // ret
}

TEST(Extractor, RetEndsBlockWithoutSuccessors) {
  AsmProgram p;
  p.emit(Opcode::kRet);
  p.emit(Opcode::kNop);  // unreachable
  const Cfg cfg = extract(assemble(p));
  EXPECT_EQ(cfg.node_count(), 1U);  // nop pruned
}

// The paper's central extraction property: appended bytes that are
// never reachable from the entry leave the CFG untouched.
TEST(Extractor, AppendedCodeIsInvisible) {
  AsmProgram p;
  p.emit(Opcode::kCmpImm, 0, 5);
  p.emit_branch(Opcode::kJz, "end");
  p.emit(Opcode::kMovImm, 1, 1);
  p.define_label("end");
  p.emit(Opcode::kHalt);
  auto image = assemble(p);
  const Cfg before = extract(image);

  // Append a "benign blob": lots of inert instructions.
  AsmProgram blob;
  for (int i = 0; i < 16; ++i) blob.emit(Opcode::kXor, 2, 7);
  blob.emit(Opcode::kRet);
  const auto blob_image = assemble(blob);
  image.insert(image.end(), blob_image.begin(), blob_image.end());

  const Cfg after = extract(image);
  EXPECT_EQ(after.node_count(), before.node_count());
  EXPECT_EQ(after.edge_count(), before.edge_count());
}

TEST(Extractor, UnprunedExtractionSeesAppendedCode) {
  auto image = straight_line();
  AsmProgram blob;
  blob.emit(Opcode::kNop);
  blob.emit(Opcode::kRet);
  const auto blob_image = assemble(blob);
  image.insert(image.end(), blob_image.begin(), blob_image.end());

  ExtractOptions keep_all;
  keep_all.prune_unreachable = false;
  const Cfg full = extract(image, keep_all);
  const Cfg pruned = extract(image);
  EXPECT_GT(full.node_count(), pruned.node_count());
}

TEST(Extractor, OutOfRangeBranchTargetHasNoEdge) {
  // Hand-encode a jmp far beyond the image.
  std::vector<std::uint8_t> image;
  isa::encode_to(isa::Instruction{Opcode::kJmp, 0, 100}, image);
  const Cfg cfg = extract(image);
  EXPECT_EQ(cfg.node_count(), 1U);
  EXPECT_EQ(cfg.edge_count(), 0U);
}

TEST(Extractor, ConditionalAtImageEndKeepsTargetEdge) {
  AsmProgram p;
  p.define_label("top");
  p.emit(Opcode::kNop);
  p.emit_branch(Opcode::kJnz, "top");  // last instruction; no fall-through
  const Cfg cfg = extract(assemble(p));
  EXPECT_EQ(cfg.node_count(), 1U);
  EXPECT_TRUE(cfg.graph().has_edge(0, 0));  // self loop back to top
}

TEST(Extractor, BlockMetadataCoversImage) {
  AsmProgram p;
  p.emit(Opcode::kCmpImm, 0, 1);
  p.emit_branch(Opcode::kJz, "x");
  p.emit(Opcode::kNop);
  p.define_label("x");
  p.emit(Opcode::kHalt);
  const Cfg cfg = extract(assemble(p));
  std::size_t covered = 0;
  for (const auto& b : cfg.blocks()) covered += b.instruction_count;
  EXPECT_EQ(covered, 4U);  // all reachable here
}

}  // namespace
}  // namespace soteria::cfg
