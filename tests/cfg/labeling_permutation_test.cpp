// Property test: DBL and LBL orderings are invariant under a random
// permutation of CFG node ids. Density (total_degree / edge_count) and
// BFS level are exactly permutation-equivariant; the centrality factor
// is a floating-point reduction whose summation order follows node ids,
// so it may move by ulps under relabeling. The assertions therefore
// compare orderings through the exact keys and require only label-SET
// equality inside exact-key tie groups — plus full within-group order
// equality whenever the centrality factors in a group are separated by
// more than a fat FP margin.
#include "cfg/labeling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "graph/centrality.h"
#include "graph/generators.h"
#include "math/rng.h"

namespace soteria::cfg {
namespace {

Cfg permuted_cfg(const Cfg& original, const std::vector<std::size_t>& perm) {
  graph::DiGraph g(original.node_count());
  for (const auto& [u, v] : original.graph().edges()) {
    g.add_edge(perm[u], perm[v]);
  }
  return Cfg(std::move(g), perm[original.entry()]);
}

/// Exact sort-prefix key: every comparator key up to (exclusive) the
/// first floating-point one. DBL sorts by density first (density =
/// total_degree / edge_count and edge_count is permutation-invariant,
/// so the integer degree is an exact proxy); LBL sorts by level, then
/// density.
using ExactKey = std::pair<std::size_t, std::size_t>;

ExactKey exact_key(const Cfg& cfg, graph::NodeId v,
                   const std::vector<NodeRank>& ranks,
                   LabelingMethod method) {
  const std::size_t degree = cfg.graph().total_degree(v);
  if (method == LabelingMethod::kDensity) {
    return {degree, 0};
  }
  return {static_cast<std::size_t>(ranks[v].level), degree};
}

void check_permutation_invariance(const Cfg& original,
                                  const std::vector<std::size_t>& perm,
                                  LabelingMethod method,
                                  const LabelingOptions& options = {}) {
  const Cfg permuted = permuted_cfg(original, perm);
  const std::size_t n = original.node_count();

  const auto ranks = node_ranks(original, options);
  const auto pranks = node_ranks(permuted, options);

  // Rank equivariance: density and level exactly, centrality to ulps.
  for (graph::NodeId v = 0; v < n; ++v) {
    ASSERT_DOUBLE_EQ(pranks[perm[v]].density, ranks[v].density);
    ASSERT_EQ(pranks[perm[v]].level, ranks[v].level);
    ASSERT_NEAR(pranks[perm[v]].centrality_factor,
                ranks[v].centrality_factor,
                1e-9 * (1.0 + std::abs(ranks[v].centrality_factor)));
  }

  const auto labels = label_nodes(original, method, options);
  const auto plabels = label_nodes(permuted, method, options);

  // Both labelings are permutations of [0, n) (throws otherwise).
  const auto order = nodes_by_label(labels);
  (void)nodes_by_label(plabels);

  // (1) The sequence of exact keys read off in label order must be
  // identical: the exact keys dominate the comparison, so label
  // position p holds the same exact key in both graphs.
  for (std::size_t p = 0; p < n; ++p) {
    // Node holding label p in each graph.
    graph::NodeId pv = 0;
    for (graph::NodeId u = 0; u < n; ++u) {
      if (plabels[u] == p) pv = u;
    }
    ASSERT_EQ(exact_key(permuted, pv, pranks, method),
              exact_key(original, order[p], ranks, method))
        << "exact-key sequence diverged at label " << p;
  }

  // (2) Exact-key tie groups occupy identical label sets, and a node's
  // label can only move within its own group under permutation.
  std::map<ExactKey, std::set<std::size_t>> group_labels;
  std::map<ExactKey, std::set<std::size_t>> pgroup_labels;
  for (graph::NodeId v = 0; v < n; ++v) {
    group_labels[exact_key(original, v, ranks, method)].insert(labels[v]);
    pgroup_labels[exact_key(original, v, ranks, method)].insert(
        plabels[perm[v]]);
  }
  ASSERT_EQ(group_labels, pgroup_labels);

  // (3) Where centrality factors within a tie group are clearly
  // separated (and so are ulp-proof), the full within-group order is
  // determined by exact data and must match node for node.
  std::map<ExactKey, std::vector<graph::NodeId>> groups;
  for (graph::NodeId v = 0; v < n; ++v) {
    groups[exact_key(original, v, ranks, method)].push_back(v);
  }
  for (const auto& [key, members] : groups) {
    if (members.size() < 2) {
      const graph::NodeId v = members.front();
      EXPECT_EQ(plabels[perm[v]], labels[v]);
      continue;
    }
    bool separated = true;
    std::vector<double> cfs;
    for (const graph::NodeId v : members) {
      cfs.push_back(ranks[v].centrality_factor);
    }
    std::sort(cfs.begin(), cfs.end());
    for (std::size_t i = 0; i + 1 < cfs.size(); ++i) {
      if (cfs[i + 1] - cfs[i] < 1e-6 * (1.0 + std::abs(cfs[i]))) {
        separated = false;
      }
    }
    // For LBL the comparator still consults density before centrality;
    // members of a (level, degree) group share density, so centrality
    // decides. Same for DBL groups (shared density).
    if (!separated) continue;
    for (const graph::NodeId v : members) {
      EXPECT_EQ(plabels[perm[v]], labels[v])
          << "well-separated node " << v << " changed label";
    }
  }
}

void run_shapes(LabelingMethod method) {
  math::Rng rng(404);

  std::vector<Cfg> shapes;
  shapes.emplace_back(graph::chain_graph(24, 3, rng), 0);
  shapes.emplace_back(graph::binary_tree(4), 0);
  shapes.emplace_back(graph::complete_digraph(7), 0);
  for (const std::size_t n : {12UL, 40UL, 80UL}) {
    shapes.emplace_back(
        graph::random_connected_dag_plus(
            n, 3.0 / static_cast<double>(n), rng),
        0);
    shapes.emplace_back(
        graph::random_connected_dag_plus(
            n, 8.0 / static_cast<double>(n), rng),
        0);
  }

  for (const auto& cfg : shapes) {
    const std::size_t n = cfg.node_count();
    // Identity, reversal, and a few random permutations.
    std::vector<std::vector<std::size_t>> perms;
    std::vector<std::size_t> identity(n);
    for (std::size_t i = 0; i < n; ++i) identity[i] = i;
    perms.push_back(identity);
    std::vector<std::size_t> reversed(identity.rbegin(), identity.rend());
    perms.push_back(reversed);
    for (int k = 0; k < 4; ++k) perms.push_back(rng.permutation(n));

    for (const auto& perm : perms) {
      check_permutation_invariance(cfg, perm, method);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(LabelingPermutation, DblOrderingInvariantUnderNodeRelabeling) {
  run_shapes(LabelingMethod::kDensity);
}

TEST(LabelingPermutation, LblOrderingInvariantUnderNodeRelabeling) {
  run_shapes(LabelingMethod::kLevel);
}

// Approximate (sampled-pivot) labeling obeys the same invariance when
// the WL signature priorities separate every node: the pivot *set* then
// maps through the permutation, so the estimated centrality factors are
// equivariant to ulps and the exact-key machinery above applies
// unchanged. Graphs with automorphic nodes can tie priorities (and a
// tie broken by node id is legitimately permutation-sensitive), so
// candidate shapes are screened for the distinct-priority precondition.
TEST(LabelingPermutation, ApproxOrderingInvariantUnderNodeRelabeling) {
  math::Rng rng(406);
  std::size_t checked = 0;
  for (int attempt = 0; attempt < 12 && checked < 3; ++attempt) {
    const Cfg cfg(graph::random_connected_dag_plus(60, 0.06, rng), 0);
    const std::size_t n = cfg.node_count();

    LabelingOptions options;
    options.approx_centrality_threshold = 1;  // approximate at any size
    options.approx.pivot_count = n / 3;
    ASSERT_TRUE(approximate_labeling(options, n));

    auto priorities =
        graph::pivot_priorities(cfg.graph(), options.approx.seed);
    std::sort(priorities.begin(), priorities.end());
    if (std::adjacent_find(priorities.begin(), priorities.end()) !=
        priorities.end()) {
      continue;
    }
    ++checked;

    std::vector<std::size_t> identity(n);
    for (std::size_t i = 0; i < n; ++i) identity[i] = i;
    std::vector<std::vector<std::size_t>> perms;
    perms.push_back({identity.rbegin(), identity.rend()});
    for (int k = 0; k < 3; ++k) perms.push_back(rng.permutation(n));

    for (const auto& perm : perms) {
      for (const auto method :
           {LabelingMethod::kDensity, LabelingMethod::kLevel}) {
        check_permutation_invariance(cfg, perm, method, options);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
  ASSERT_GE(checked, 3U)
      << "too few candidate shapes had fully distinct signatures";
}

// The identity permutation is a pure determinism check: two labelings
// of the same graph must agree exactly.
TEST(LabelingPermutation, LabelingIsDeterministic) {
  math::Rng rng(405);
  const Cfg cfg(graph::random_connected_dag_plus(50, 0.08, rng), 0);
  for (const auto method :
       {LabelingMethod::kDensity, LabelingMethod::kLevel}) {
    EXPECT_EQ(label_nodes(cfg, method), label_nodes(cfg, method));
  }
}

}  // namespace
}  // namespace soteria::cfg
