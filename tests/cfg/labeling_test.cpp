#include "cfg/labeling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cfg/gea.h"
#include "graph/generators.h"
#include "math/rng.h"

namespace soteria::cfg {
namespace {

Cfg diamond_cfg() {
  graph::DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return Cfg(std::move(g), 0);
}

TEST(Labeling, MethodNames) {
  EXPECT_STREQ(method_name(LabelingMethod::kDensity), "DBL");
  EXPECT_STREQ(method_name(LabelingMethod::kLevel), "LBL");
}

TEST(Labeling, EmptyCfgThrows) {
  EXPECT_THROW((void)label_nodes(Cfg{}, LabelingMethod::kDensity),
               std::invalid_argument);
}

class BothMethods : public ::testing::TestWithParam<LabelingMethod> {};

TEST_P(BothMethods, LabelsFormPermutation) {
  math::Rng rng(5);
  const auto g = graph::random_connected_dag_plus(40, 0.05, rng);
  const Cfg cfg(g, 0);
  const auto labels = label_nodes(cfg, GetParam());
  std::set<Label> seen(labels.begin(), labels.end());
  EXPECT_EQ(seen.size(), cfg.node_count());
  EXPECT_EQ(*seen.begin(), 0U);
  EXPECT_EQ(*seen.rbegin(), cfg.node_count() - 1);
}

TEST_P(BothMethods, DeterministicAcrossCalls) {
  math::Rng rng(6);
  const auto g = graph::random_connected_dag_plus(30, 0.08, rng);
  const Cfg cfg(g, 0);
  EXPECT_EQ(label_nodes(cfg, GetParam()), label_nodes(cfg, GetParam()));
}

TEST_P(BothMethods, InverseViewIsConsistent) {
  const Cfg cfg = diamond_cfg();
  const auto labels = label_nodes(cfg, GetParam());
  const auto inverse = nodes_by_label(labels);
  for (graph::NodeId v = 0; v < cfg.node_count(); ++v) {
    EXPECT_EQ(inverse[labels[v]], v);
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, BothMethods,
                         ::testing::Values(LabelingMethod::kDensity,
                                           LabelingMethod::kLevel),
                         [](const auto& info) {
                           return method_name(info.param);
                         });

TEST(Labeling, LblEntryIsAlwaysLabelZero) {
  // Paper: "the entry block will always have the label 0 when using the
  // LBL method."
  math::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = graph::random_connected_dag_plus(25, 0.1, rng);
    const Cfg cfg(g, 0);
    const auto labels = label_nodes(cfg, LabelingMethod::kLevel);
    EXPECT_EQ(labels[cfg.entry()], 0U);
  }
}

TEST(Labeling, DblRanksDensestFirst) {
  // Star: hub 0 has degree 4, spokes degree 1 -> hub gets label 0.
  graph::DiGraph g(5);
  for (graph::NodeId v = 1; v < 5; ++v) g.add_edge(0, v);
  const Cfg cfg(std::move(g), 0);
  const auto labels = label_nodes(cfg, LabelingMethod::kDensity);
  EXPECT_EQ(labels[0], 0U);
}

TEST(Labeling, DensityTieBrokenByCentralityFactor) {
  // Path 0-1-2-3: ends have degree 1, middles degree 2. Node 1 and 2
  // tie on density AND centrality by symmetry -> falls through to the
  // level tie-break (node 1 is closer to the entry).
  graph::DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const Cfg cfg(std::move(g), 0);
  const auto labels = label_nodes(cfg, LabelingMethod::kDensity);
  EXPECT_LT(labels[1], labels[2]);  // shallower wins the tie
  EXPECT_LT(labels[1], labels[0]);  // denser beats the entry
  // Ends: entry at level 1 sorts before the far end.
  EXPECT_LT(labels[0], labels[3]);
}

TEST(Labeling, LblOrdersByLevelThenDensity) {
  // 0 -> {1, 2}, 1 -> 2, 2 -> 3: nodes 1 and 2 share level 2, but node
  // 2 has degree 3 vs node 1's degree 2, so it sorts first within the
  // level.
  graph::DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const Cfg cfg(std::move(g), 0);
  const auto labels = label_nodes(cfg, LabelingMethod::kLevel);
  EXPECT_EQ(labels[0], 0U);
  EXPECT_EQ(labels[2], 1U);  // denser within the level
  EXPECT_EQ(labels[1], 2U);
  EXPECT_EQ(labels[3], 3U);
}

TEST(Labeling, SymmetricTriangleFallsBackToNodeId) {
  // 0 -> 1, 0 -> 2, 1 -> 2 is fully symmetric in density and
  // centrality for nodes 1 and 2; the id tie-break makes it total.
  graph::DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const Cfg cfg(std::move(g), 0);
  const auto labels = label_nodes(cfg, LabelingMethod::kLevel);
  EXPECT_EQ(labels[0], 0U);
  EXPECT_EQ(labels[1], 1U);
  EXPECT_EQ(labels[2], 2U);
}

TEST(Labeling, NodeRanksExposeComputedKeys) {
  const Cfg cfg = diamond_cfg();
  const auto ranks = node_ranks(cfg);
  ASSERT_EQ(ranks.size(), 4U);
  EXPECT_DOUBLE_EQ(ranks[0].density, 2.0 / 4.0);
  EXPECT_EQ(ranks[0].level, 1U);
  EXPECT_EQ(ranks[3].level, 3U);
  // Symmetric middle nodes share all keys.
  EXPECT_DOUBLE_EQ(ranks[1].density, ranks[2].density);
  EXPECT_DOUBLE_EQ(ranks[1].centrality_factor, ranks[2].centrality_factor);
}

// The property the detector leans on: a GEA merge perturbs labels of
// the original sub-graph.
TEST(Labeling, GeaShiftsLabels) {
  math::Rng rng(8);
  const auto a = graph::random_connected_dag_plus(20, 0.08, rng);
  const auto b = graph::random_connected_dag_plus(15, 0.08, rng);
  const Cfg original(a, 0);
  const Cfg target(b, 0);
  const auto gea = gea_combine(original, target);

  const auto before = label_nodes(original, LabelingMethod::kDensity);
  const auto after = label_nodes(gea.combined, LabelingMethod::kDensity);
  std::size_t changed = 0;
  for (graph::NodeId v = 0; v < original.node_count(); ++v) {
    if (after[gea.original_offset + v] != before[v]) ++changed;
  }
  // Not necessarily all change, but a majority must.
  EXPECT_GT(changed, original.node_count() / 2);
}

TEST(Labeling, NodesByLabelValidatesRange) {
  std::vector<Label> bogus{0, 5};
  EXPECT_THROW((void)nodes_by_label(bogus), std::invalid_argument);
}

// Regression: duplicate labels used to be silently accepted — the later
// node overwrote the earlier one's slot, leaving a stale NodeId at the
// label the earlier node should have held.
TEST(Labeling, NodesByLabelRejectsDuplicates) {
  EXPECT_THROW((void)nodes_by_label({0, 1, 1}), std::invalid_argument);
  EXPECT_THROW((void)nodes_by_label({2, 2, 2}), std::invalid_argument);
  // A valid permutation still inverts.
  const auto inverse = nodes_by_label({2, 0, 1});
  EXPECT_EQ(inverse, (std::vector<graph::NodeId>{1, 2, 0}));
}

// label_both must agree with the per-method entry points exactly — it
// is the same computation over one shared node_ranks pass.
TEST(Labeling, LabelBothMatchesPerMethodLabeling) {
  math::Rng rng(11);
  for (int trial = 0; trial < 4; ++trial) {
    const Cfg cfg(graph::random_connected_dag_plus(30 + 10 * trial, 0.1, rng),
                  0);
    const auto both = label_both(cfg);
    EXPECT_EQ(both.dbl, label_nodes(cfg, LabelingMethod::kDensity));
    EXPECT_EQ(both.lbl, label_nodes(cfg, LabelingMethod::kLevel));
  }
}

TEST(Labeling, LabelBothThrowsOnEmptyCfg) {
  EXPECT_THROW((void)label_both(Cfg{}), std::invalid_argument);
}

}  // namespace
}  // namespace soteria::cfg
