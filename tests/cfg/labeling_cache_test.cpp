// LabelingCache contract: exact accounting, collision safety via full
// key verification, LRU eviction order, bit-identical results with the
// cache on or off (including through analyze_batch at several thread
// counts), and data-race freedom under concurrent access (this file is
// part of the `concurrency` ctest label, so it runs under TSan).
#include "cfg/labeling_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "dataset/generator.h"
#include "graph/generators.h"
#include "math/rng.h"
#include "obs/metrics.h"
#include "soteria/presets.h"
#include "soteria/system.h"

namespace soteria::cfg {
namespace {

Cfg random_cfg(std::uint64_t seed, std::size_t n = 20) {
  math::Rng rng(seed);
  return Cfg(graph::random_connected_dag_plus(n, 0.1, rng), 0);
}

/// AnalyzeOptions with an explicit thread count.
core::AnalyzeOptions with_threads(std::size_t threads) {
  core::AnalyzeOptions options;
  options.num_threads = threads;
  return options;
}

TEST(LabelingCache, RejectsZeroCapacityAndNullHasher) {
  EXPECT_THROW(LabelingCache(0), std::invalid_argument);
  EXPECT_THROW(LabelingCache(4, LabelingCache::Hasher{}),
               std::invalid_argument);
}

TEST(LabelingCache, RejectsEmptyCfg) {
  LabelingCache cache(4);
  EXPECT_THROW((void)cache.labels(Cfg{}), std::invalid_argument);
  EXPECT_EQ(cache.size(), 0U);
}

TEST(LabelingCache, ServedLabelingsMatchLabelBoth) {
  LabelingCache cache(8);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Cfg cfg = random_cfg(seed);
    const auto expected = label_both(cfg);
    const auto miss = cache.labels(cfg);  // computed
    const auto hit = cache.labels(cfg);   // served
    EXPECT_EQ(miss.dbl, expected.dbl);
    EXPECT_EQ(miss.lbl, expected.lbl);
    EXPECT_EQ(hit.dbl, expected.dbl);
    EXPECT_EQ(hit.lbl, expected.lbl);
  }
}

TEST(LabelingCache, HitMissAccounting) {
  LabelingCache cache(8);
  const Cfg a = random_cfg(1);
  const Cfg b = random_cfg(2);

  (void)cache.labels(a);  // miss
  (void)cache.labels(a);  // hit
  (void)cache.labels(b);  // miss
  (void)cache.labels(a);  // hit
  (void)cache.labels(b);  // hit

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2U);
  EXPECT_EQ(stats.hits, 3U);
  EXPECT_EQ(stats.evictions, 0U);
  EXPECT_EQ(cache.size(), 2U);

  // Content-keyed, not identity-keyed: a copy of `a` hits.
  const Cfg a_copy = a;
  (void)cache.labels(a_copy);
  EXPECT_EQ(cache.stats().hits, 4U);
}

TEST(LabelingCache, EvictsLeastRecentlyUsed) {
  LabelingCache cache(2);
  const Cfg a = random_cfg(1);
  const Cfg b = random_cfg(2);
  const Cfg c = random_cfg(3);

  (void)cache.labels(a);  // {a}
  (void)cache.labels(b);  // {b, a}
  (void)cache.labels(a);  // {a, b} — refresh a's recency
  (void)cache.labels(c);  // {c, a} — evicts b, the LRU entry

  EXPECT_EQ(cache.stats().evictions, 1U);
  EXPECT_EQ(cache.size(), 2U);

  (void)cache.labels(a);  // still cached
  (void)cache.labels(c);  // still cached
  EXPECT_EQ(cache.stats().misses, 3U);
  (void)cache.labels(b);  // was evicted -> miss again
  EXPECT_EQ(cache.stats().misses, 4U);
}

TEST(LabelingCache, ClearDropsEntriesAndStats) {
  LabelingCache cache(4);
  (void)cache.labels(random_cfg(1));
  (void)cache.labels(random_cfg(1));
  cache.clear();
  EXPECT_EQ(cache.size(), 0U);
  EXPECT_EQ(cache.stats().hits, 0U);
  EXPECT_EQ(cache.stats().misses, 0U);
}

TEST(LabelingCache, CollidingHashesNeverServeWrongLabelings) {
  // Degenerate hasher: every CFG collides. Correctness must come from
  // the full-key verification, with each distinct CFG counted as its
  // own miss.
  LabelingCache cache(8, [](const Cfg&) { return std::uint64_t{42}; });
  const Cfg a = random_cfg(1);
  const Cfg b = random_cfg(2, 25);
  const Cfg c = random_cfg(3, 30);

  const auto la = cache.labels(a);
  const auto lb = cache.labels(b);
  const auto lc = cache.labels(c);
  EXPECT_EQ(cache.stats().misses, 3U);
  EXPECT_EQ(cache.stats().hits, 0U);

  // Every colliding entry still resolves to its own labeling.
  EXPECT_EQ(cache.labels(a).dbl, la.dbl);
  EXPECT_EQ(cache.labels(b).dbl, lb.dbl);
  EXPECT_EQ(cache.labels(c).lbl, lc.lbl);
  EXPECT_EQ(cache.stats().hits, 3U);

  const auto expected_b = label_both(b);
  EXPECT_EQ(lb.dbl, expected_b.dbl);
  EXPECT_EQ(lb.lbl, expected_b.lbl);
}

TEST(LabelingCache, ExactAndApproxModesNeverAlias) {
  // Same CFG content, different effective centrality mode -> distinct
  // cache entries. An approximate entry must never serve an exact
  // request (or vice versa), and two approximate configurations that
  // differ in pivot count or seed must also miss each other — the key
  // folds in the *normalized* mode (labeling_cache.h).
  LabelingCache cache(8);
  const Cfg cfg = random_cfg(7, 40);

  const LabelingOptions exact;  // mode: exact
  LabelingOptions approx;
  approx.approx_centrality_threshold = 1;
  approx.approx.pivot_count = 8;
  LabelingOptions approx_more = approx;
  approx_more.approx.pivot_count = 12;
  LabelingOptions approx_reseeded = approx;
  approx_reseeded.approx.seed = 99;

  const auto exact_labels = cache.labels(cfg, exact);    // miss
  const auto approx_labels = cache.labels(cfg, approx);  // miss
  (void)cache.labels(cfg, approx_more);                  // miss
  (void)cache.labels(cfg, approx_reseeded);              // miss
  EXPECT_EQ(cache.stats().misses, 4U);
  EXPECT_EQ(cache.stats().hits, 0U);
  EXPECT_EQ(cache.size(), 4U);

  // Each mode hits its own entry and never a neighbor's...
  EXPECT_EQ(cache.labels(cfg, exact).dbl, exact_labels.dbl);
  EXPECT_EQ(cache.labels(cfg, approx).dbl, approx_labels.dbl);
  EXPECT_EQ(cache.stats().hits, 2U);
  EXPECT_EQ(cache.stats().misses, 4U);

  // ...and served labelings match direct computation per mode.
  const auto expected_exact = label_both(cfg);
  EXPECT_EQ(exact_labels.dbl, expected_exact.dbl);
  EXPECT_EQ(exact_labels.lbl, expected_exact.lbl);
  const auto expected_approx = label_both(cfg, approx);
  EXPECT_EQ(approx_labels.dbl, expected_approx.dbl);
  EXPECT_EQ(approx_labels.lbl, expected_approx.lbl);

  // Options that *resolve* to exact share the exact entry: a threshold
  // above the CFG size leaves the mode exact no matter how the approx
  // knobs are set, so the key normalizes to all-zero mode.
  LabelingOptions exact_by_threshold;
  exact_by_threshold.approx_centrality_threshold = cfg.node_count() + 1;
  exact_by_threshold.approx.seed = 123;
  (void)cache.labels(cfg, exact_by_threshold);
  EXPECT_EQ(cache.stats().hits, 3U);
  EXPECT_EQ(cache.stats().misses, 4U);

  // The legacy no-options entry point is the exact mode.
  (void)cache.labels(cfg);
  EXPECT_EQ(cache.stats().hits, 4U);
  EXPECT_EQ(cache.stats().misses, 4U);
}

TEST(LabelingCache, ContentHashSeparatesNearMisses) {
  // Not a strict requirement (collisions are tolerated), but the FNV
  // hash should separate these obviously-different CFGs.
  graph::DiGraph g1(3);
  g1.add_edge(0, 1);
  g1.add_edge(1, 2);
  graph::DiGraph g2(3);
  g2.add_edge(0, 1);
  g2.add_edge(0, 2);
  const auto h1 = LabelingCache::content_hash(Cfg(g1, 0));
  const auto h2 = LabelingCache::content_hash(Cfg(g2, 0));
  EXPECT_NE(h1, h2);
  // Same graph, same hash.
  EXPECT_EQ(h1, LabelingCache::content_hash(Cfg(g1, 0)));
}

TEST(LabelingCache, ObsCountersMirrorStats) {
  auto& registry = obs::registry();
  registry.reset();
  registry.set_enabled(true);

  LabelingCache cache(1);
  (void)cache.labels(random_cfg(1));  // miss
  (void)cache.labels(random_cfg(1));  // hit
  (void)cache.labels(random_cfg(2));  // miss + eviction (capacity 1)

  const auto counters = registry.snapshot().counters;
  registry.set_enabled(false);
  registry.reset();

  ASSERT_TRUE(counters.contains("soteria.cache.labeling.misses"));
  EXPECT_EQ(counters.at("soteria.cache.labeling.misses"), 2U);
  ASSERT_TRUE(counters.contains("soteria.cache.labeling.hits"));
  EXPECT_EQ(counters.at("soteria.cache.labeling.hits"), 1U);
  ASSERT_TRUE(counters.contains("soteria.cache.labeling.evictions"));
  EXPECT_EQ(counters.at("soteria.cache.labeling.evictions"), 1U);
}

TEST(LabelingCache, ConcurrentMixedAccessIsRaceFree) {
  // 8 threads hammer one small cache with overlapping CFGs so hits,
  // misses, evictions, and concurrent same-key computation all happen
  // at once. TSan (via the `concurrency` label) checks the locking;
  // the assertions check the results stay correct under contention.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kCfgs = 6;
  constexpr std::size_t kIters = 40;

  std::vector<Cfg> cfgs;
  std::vector<NodeLabelings> expected;
  for (std::size_t i = 0; i < kCfgs; ++i) {
    cfgs.push_back(random_cfg(100 + i, 15 + i));
    expected.push_back(label_both(cfgs.back()));
  }

  LabelingCache cache(kCfgs / 2);  // small: forces eviction churn
  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIters; ++i) {
        const std::size_t pick = (t + i) % kCfgs;
        const auto got = cache.labels(cfgs[pick]);
        if (got.dbl != expected[pick].dbl ||
            got.lbl != expected[pick].lbl) {
          ++failures[t];
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kIters);
  EXPECT_LE(cache.size(), cache.capacity());
}

// End-to-end guarantee: the cache is purely a performance knob. A
// system trained with caching disabled serializes byte-identically to
// one trained with the default cache, and batch analysis agrees
// bit-for-bit at every thread count.
struct CacheEquivalenceFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    dataset::DatasetConfig data_config;
    data_config.scale = 0.008;
    math::Rng rng(43);
    data = new dataset::Dataset(dataset::generate_dataset(data_config, rng));

    core::SoteriaConfig config = core::tiny_config();
    config.seed = 43;
    config.num_threads = 4;
    ASSERT_GT(config.labeling_cache_capacity, 0U);  // default: enabled
    cached = new core::SoteriaSystem(
        core::SoteriaSystem::train(data->train, config));
    config.labeling_cache_capacity = 0;
    uncached = new core::SoteriaSystem(
        core::SoteriaSystem::train(data->train, config));
  }
  static void TearDownTestSuite() {
    delete uncached;
    delete cached;
    delete data;
    uncached = nullptr;
    cached = nullptr;
    data = nullptr;
  }

  static dataset::Dataset* data;
  static core::SoteriaSystem* cached;
  static core::SoteriaSystem* uncached;
};

dataset::Dataset* CacheEquivalenceFixture::data = nullptr;
core::SoteriaSystem* CacheEquivalenceFixture::cached = nullptr;
core::SoteriaSystem* CacheEquivalenceFixture::uncached = nullptr;

TEST_F(CacheEquivalenceFixture, TrainedSystemsSerializeIdentically) {
  std::stringstream with_cache;
  std::stringstream without_cache;
  cached->save(with_cache);
  uncached->save(without_cache);
  EXPECT_EQ(with_cache.str(), without_cache.str());
}

TEST_F(CacheEquivalenceFixture, AnalyzeBatchAgreesAcrossThreadCounts) {
  std::vector<Cfg> cfgs;
  for (std::size_t i = 0; i < std::min<std::size_t>(10, data->test.size());
       ++i) {
    cfgs.push_back(data->test[i].cfg);
  }
  ASSERT_FALSE(cfgs.empty());

  const math::Rng rng(47);
  const auto baseline = uncached->analyze_batch(cfgs, rng, with_threads(1));
  for (std::size_t threads : {1U, 2U, 8U}) {
    const auto verdicts = cached->analyze_batch(cfgs, rng, with_threads(threads));
    ASSERT_EQ(verdicts.size(), baseline.size());
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      EXPECT_EQ(verdicts[i].adversarial, baseline[i].adversarial);
      EXPECT_EQ(verdicts[i].predicted, baseline[i].predicted);
      EXPECT_EQ(verdicts[i].reconstruction_error,
                baseline[i].reconstruction_error)
          << "sample " << i << " with " << threads << " threads";
    }
  }
}

TEST_F(CacheEquivalenceFixture, TrainingWarmsTheSharedCache) {
  const auto& cache = cached->pipeline().labeling_cache();
  ASSERT_NE(cache, nullptr);
  const auto stats = cache->stats();
  // fit computes each training labeling once (misses); the training
  // extraction and calibration phases then reuse them (hits).
  EXPECT_GT(stats.misses, 0U);
  EXPECT_GT(stats.hits, 0U);
  EXPECT_EQ(uncached->pipeline().labeling_cache(), nullptr);
}

}  // namespace
}  // namespace soteria::cfg
