// Statistical pins on the generated corpus: CFG sizes stay inside
// loose, paper-informed bounds per family, and strain structure shows
// up as within-strain similarity. These bounds are deliberately slack —
// they catch generator regressions, not exact distributions.
#include <gtest/gtest.h>

#include <algorithm>

#include "dataset/generator.h"
#include "graph/properties.h"
#include "math/stats.h"

namespace soteria::dataset {
namespace {

struct FamilyBounds {
  Family family;
  double min_median;
  double max_median;
  std::size_t hard_max;
};

class CorpusStats : public ::testing::TestWithParam<FamilyBounds> {};

TEST_P(CorpusStats, NodeCountsStayInFamilyRange) {
  const auto bounds = GetParam();
  math::Rng rng(314);
  std::vector<double> nodes;
  for (int i = 0; i < 60; ++i) {
    const auto sample = generate_sample(bounds.family, i, rng);
    nodes.push_back(static_cast<double>(sample.cfg.node_count()));
  }
  const double median = math::median(nodes);
  EXPECT_GE(median, bounds.min_median) << family_name(bounds.family);
  EXPECT_LE(median, bounds.max_median) << family_name(bounds.family);
  EXPECT_LE(math::max(nodes), static_cast<double>(bounds.hard_max));
  EXPECT_GE(math::min(nodes), 8.0);  // generator's rejection floor
}

INSTANTIATE_TEST_SUITE_P(
    Families, CorpusStats,
    ::testing::Values(FamilyBounds{Family::kBenign, 40, 260, 700},
                      FamilyBounds{Family::kGafgyt, 30, 180, 600},
                      FamilyBounds{Family::kMirai, 40, 260, 700},
                      FamilyBounds{Family::kTsunami, 15, 160, 500}),
    [](const auto& info) { return family_name(info.param.family); });

TEST(CorpusStats, StrainMatesShareSize) {
  math::Rng rng(315);
  isa::MutationConfig mutation;  // defaults
  std::vector<double> spread;
  for (std::uint64_t strain = 0; strain < 6; ++strain) {
    std::vector<double> nodes;
    for (int i = 0; i < 6; ++i) {
      const auto sample = generate_variant_sample(
          Family::kGafgyt, i, 9000 + strain, mutation, rng);
      nodes.push_back(static_cast<double>(sample.cfg.node_count()));
    }
    spread.push_back(math::max(nodes) - math::min(nodes));
  }
  // Constants-and-padding mutations keep strain-mates within a small
  // structural band.
  EXPECT_LE(math::max(spread), 14.0);
}

TEST(CorpusStats, FamiliesHaveDistinctLoopDensity) {
  // Mirai's profile is loop-dominated, Tsunami's is switch-dominated:
  // their mean back-edge fractions must be ordered accordingly.
  math::Rng rng(316);
  const auto mean_loop_fraction = [&rng](Family family) {
    double total = 0.0;
    for (int i = 0; i < 25; ++i) {
      const auto sample = generate_sample(family, i, rng);
      const auto props = graph::graph_properties(sample.cfg.graph());
      if (props.edge_count > 0) {
        total += static_cast<double>(props.loop_edge_count) /
                 static_cast<double>(props.edge_count);
      }
    }
    return total / 25.0;
  };
  EXPECT_GT(mean_loop_fraction(Family::kMirai),
            mean_loop_fraction(Family::kTsunami));
}

}  // namespace
}  // namespace soteria::dataset
