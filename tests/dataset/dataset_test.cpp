#include "dataset/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "dataset/adversarial.h"
#include "dataset/family_profiles.h"
#include "graph/traversal.h"

namespace soteria::dataset {
namespace {

TEST(Family, IndexRoundTrips) {
  for (Family f : all_families()) {
    EXPECT_EQ(family_from_index(family_index(f)), f);
  }
  EXPECT_THROW((void)family_from_index(4), std::invalid_argument);
}

TEST(Family, NamesAreDistinct) {
  std::set<std::string> names;
  for (Family f : all_families()) names.insert(family_name(f));
  EXPECT_EQ(names.size(), kFamilyCount);
}

TEST(DatasetConfig, Validation) {
  EXPECT_NO_THROW(validate(DatasetConfig{}));
  DatasetConfig bad_scale;
  bad_scale.scale = 0.0;
  EXPECT_THROW(validate(bad_scale), std::invalid_argument);
  DatasetConfig bad_fraction;
  bad_fraction.train_fraction = 1.0;
  EXPECT_THROW(validate(bad_fraction), std::invalid_argument);
  DatasetConfig bad_variants;
  bad_variants.min_variants = 0;
  EXPECT_THROW(validate(bad_variants), std::invalid_argument);
  DatasetConfig bad_ratio;
  bad_ratio.variant_ratio[1] = 0.0;
  EXPECT_THROW(validate(bad_ratio), std::invalid_argument);
}

TEST(ScaledCount, FloorsWithMinimum) {
  EXPECT_EQ(scaled_count(1000, 0.5), 500U);
  EXPECT_EQ(scaled_count(1000, 0.001), 5U);  // floor of 1 -> min 5
  EXPECT_EQ(scaled_count(10, 1.0), 10U);
}

TEST(VariantCount, RespectsRatiosAndBounds) {
  DatasetConfig config;
  EXPECT_EQ(variant_count(config, Family::kGafgyt, 1000),
            static_cast<std::size_t>(1000 * config.variant_ratio[1]));
  EXPECT_EQ(variant_count(config, Family::kTsunami, 10),
            config.min_variants);
  EXPECT_LE(variant_count(config, Family::kBenign, 2), 2U);
}

TEST(GenerateSample, ProducesReachableCfg) {
  math::Rng rng(1);
  for (Family f : all_families()) {
    const auto sample = generate_sample(f, 7, rng);
    EXPECT_EQ(sample.family, f);
    EXPECT_EQ(sample.id, 7U);
    EXPECT_FALSE(sample.binary.empty());
    EXPECT_GE(sample.cfg.node_count(), 8U);
    const auto reach =
        graph::reachable_from(sample.cfg.graph(), sample.cfg.entry());
    for (bool r : reach) EXPECT_TRUE(r);
  }
}

TEST(GenerateVariantSample, SameSeedGivesClusteredCfgs) {
  math::Rng rng(2);
  isa::MutationConfig mutation;
  const auto a = generate_variant_sample(Family::kMirai, 0, 555, mutation,
                                         rng);
  const auto b = generate_variant_sample(Family::kMirai, 1, 555, mutation,
                                         rng);
  const auto c = generate_variant_sample(Family::kMirai, 2, 777, mutation,
                                         rng);
  // Same strain: node counts within mutation distance of each other.
  const auto na = static_cast<double>(a.cfg.node_count());
  const auto nb = static_cast<double>(b.cfg.node_count());
  EXPECT_LT(std::abs(na - nb), 16.0);
  // Mutations actually changed something between strain-mates.
  EXPECT_NE(a.binary, b.binary);
  (void)c;
}

TEST(GenerateDataset, SplitsAreStratified) {
  DatasetConfig config;
  config.scale = 0.005;
  math::Rng rng(3);
  const auto data = generate_dataset(config, rng);
  const auto train_counts = Dataset::class_counts(data.train);
  const auto test_counts = Dataset::class_counts(data.test);
  for (Family f : all_families()) {
    const auto i = family_index(f);
    EXPECT_GE(train_counts[i], 1U) << family_name(f);
    EXPECT_GE(test_counts[i], 1U) << family_name(f);
    const double total =
        static_cast<double>(train_counts[i] + test_counts[i]);
    EXPECT_NEAR(static_cast<double>(train_counts[i]) / total, 0.8, 0.15);
  }
}

TEST(GenerateDataset, DeterministicGivenSeed) {
  DatasetConfig config;
  config.scale = 0.003;
  math::Rng a(4);
  math::Rng b(4);
  const auto da = generate_dataset(config, a);
  const auto db = generate_dataset(config, b);
  ASSERT_EQ(da.train.size(), db.train.size());
  for (std::size_t i = 0; i < da.train.size(); ++i) {
    EXPECT_EQ(da.train[i].binary, db.train[i].binary);
    EXPECT_EQ(da.train[i].family, db.train[i].family);
  }
}

TEST(GenerateDataset, ClassRatiosFollowPaper) {
  DatasetConfig config;
  config.scale = 0.02;
  math::Rng rng(5);
  const auto data = generate_dataset(config, rng);
  const auto train = Dataset::class_counts(data.train);
  const auto test = Dataset::class_counts(data.test);
  const double gafgyt = static_cast<double>(train[1] + test[1]);
  const double benign = static_cast<double>(train[0] + test[0]);
  // Paper: Gafgyt ~3.7x Benign.
  EXPECT_NEAR(gafgyt / benign, 11085.0 / 3016.0, 0.8);
}

TEST(SelectTargets, OrdersSmallMedianLarge) {
  DatasetConfig config;
  config.scale = 0.004;
  math::Rng rng(6);
  const auto data = generate_dataset(config, rng);
  for (Family f : all_families()) {
    const auto targets = select_targets(data.train, f);
    ASSERT_EQ(targets.size(), 3U);
    EXPECT_EQ(targets[0].size, TargetSize::kSmall);
    EXPECT_EQ(targets[2].size, TargetSize::kLarge);
    EXPECT_LE(targets[0].node_count, targets[1].node_count);
    EXPECT_LE(targets[1].node_count, targets[2].node_count);
    EXPECT_EQ(targets[0].family, f);
  }
}

TEST(SelectTargets, MissingClassThrows) {
  std::vector<Sample> only_benign;
  math::Rng rng(7);
  only_benign.push_back(generate_sample(Family::kBenign, 0, rng));
  EXPECT_THROW((void)select_targets(only_benign, Family::kMirai),
               std::invalid_argument);
}

TEST(AdversarialSet, ExcludesTargetClassAndCountsMatch) {
  DatasetConfig config;
  config.scale = 0.004;
  math::Rng rng(8);
  const auto data = generate_dataset(config, rng);
  const auto targets = select_targets(data.train, Family::kBenign);
  const auto aes = generate_adversarial_set(data.test, targets[1]);

  const auto test_counts = Dataset::class_counts(data.test);
  const std::size_t expected = data.test.size() - test_counts[0];
  EXPECT_EQ(aes.size(), expected);
  for (const auto& ae : aes) {
    EXPECT_NE(ae.original_family, Family::kBenign);
    EXPECT_EQ(ae.target_family, Family::kBenign);
    EXPECT_EQ(ae.target_size, TargetSize::kMedium);
    EXPECT_GT(ae.cfg.node_count(), targets[1].node_count);
  }
}

TEST(AdversarialSet, FullSetCoversTwelveTargets) {
  DatasetConfig config;
  config.scale = 0.004;
  math::Rng rng(9);
  const auto data = generate_dataset(config, rng);
  const auto targets = select_all_targets(data.train);
  ASSERT_EQ(targets.size(), 12U);
  const auto all = generate_full_adversarial_set(data.test, targets);
  std::size_t expected = 0;
  const auto test_counts = Dataset::class_counts(data.test);
  for (const auto& t : targets) {
    expected += data.test.size() - test_counts[family_index(t.family)];
  }
  EXPECT_EQ(all.size(), expected);
}

TEST(TargetSize, NamesAreDistinct) {
  EXPECT_STREQ(target_size_name(TargetSize::kSmall), "Small");
  EXPECT_STREQ(target_size_name(TargetSize::kMedium), "Medium");
  EXPECT_STREQ(target_size_name(TargetSize::kLarge), "Large");
}

}  // namespace
}  // namespace soteria::dataset
