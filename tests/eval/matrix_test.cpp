// Robustness-matrix tests (`attack` ctest label): grid shape, seed and
// thread-count bit-identity of the versioned JSON, degenerate-input
// contracts, and failure accounting.
#include "eval/matrix.h"

#include <gtest/gtest.h>

#include <vector>

#include "dataset/generator.h"
#include "obs/metrics.h"
#include "soteria/error.h"
#include "soteria/presets.h"

namespace soteria::eval {
namespace {

struct MatrixFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    dataset::DatasetConfig data_config;
    data_config.scale = 0.008;
    math::Rng rng(17);
    data = new dataset::Dataset(dataset::generate_dataset(data_config, rng));
    core::SoteriaConfig config = core::tiny_config();
    config.seed = 17;
    system = new core::SoteriaSystem(
        core::SoteriaSystem::train(data->train, config));
  }
  static void TearDownTestSuite() {
    delete system;
    delete data;
    system = nullptr;
    data = nullptr;
  }

  static std::vector<AttackSpec> small_grid_attacks() {
    return {
        {"gea-small", "gea", "target=benign,size=small"},
        {"adaptive", "adaptive", "target=benign,candidates=2"},
    };
  }
  static std::vector<DefenseSpec> small_grid_defenses() {
    return {{"alpha=2", 2.0}, {"alpha=4", 4.0}};
  }

  static dataset::Dataset* data;
  static core::SoteriaSystem* system;
};

dataset::Dataset* MatrixFixture::data = nullptr;
core::SoteriaSystem* MatrixFixture::system = nullptr;

TEST_F(MatrixFixture, GridShapeAndAccounting) {
  const auto attacks = small_grid_attacks();
  const auto defenses = small_grid_defenses();
  MatrixOptions options;
  options.seed = 7;
  options.victims_per_cell = 4;
  const auto report = run_matrix(*system, data->test, data->train,
                                 attacks, defenses, options);
  ASSERT_EQ(report.cells.size(), attacks.size() * defenses.size());
  EXPECT_EQ(report.attacks.size(), attacks.size());
  EXPECT_EQ(report.defenses.size(), defenses.size());
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const MatrixCell& cell = report.cells[i];
    EXPECT_EQ(cell.attack, attacks[i / defenses.size()].label);
    EXPECT_EQ(cell.defense, defenses[i % defenses.size()].label);
    EXPECT_EQ(cell.victims + cell.skipped + cell.failures, 4U);
    EXPECT_EQ(cell.detected + cell.evaded, cell.victims);
    EXPECT_LE(cell.target_hits, cell.evaded);
  }
  // The guided column spends queries; the oblivious one does not.
  EXPECT_EQ(report.cells.front().queries, 0U);
  EXPECT_GT(report.cells.back().queries, 0U);
}

TEST_F(MatrixFixture, JsonIsBitIdenticalAcrossRunsAndThreadCounts) {
  const auto attacks = small_grid_attacks();
  const auto defenses = small_grid_defenses();
  MatrixOptions options;
  options.seed = 7;
  options.victims_per_cell = 3;

  options.num_threads = 1;
  const std::string once =
      run_matrix(*system, data->test, data->train, attacks, defenses,
                 options)
          .to_json();
  const std::string again =
      run_matrix(*system, data->test, data->train, attacks, defenses,
                 options)
          .to_json();
  EXPECT_EQ(once, again);

  for (const std::size_t threads : {2ULL, 4ULL}) {
    options.num_threads = threads;
    const std::string parallel =
        run_matrix(*system, data->test, data->train, attacks, defenses,
                   options)
            .to_json();
    EXPECT_EQ(once, parallel) << "at " << threads << " threads";
  }
  EXPECT_NE(once.find("\"version\":1"), std::string::npos);
  EXPECT_NE(once.find("\"seed\":7"), std::string::npos);
}

TEST_F(MatrixFixture, SeedSelectsDifferentVictimsDeterministically) {
  const auto attacks = small_grid_attacks();
  const auto defenses = small_grid_defenses();
  MatrixOptions options;
  options.victims_per_cell = 3;
  options.seed = 7;
  const auto a = run_matrix(*system, data->test, data->train, attacks,
                            defenses, options);
  options.seed = 8;
  const auto b = run_matrix(*system, data->test, data->train, attacks,
                            defenses, options);
  EXPECT_NE(a.to_json(), b.to_json());
}

TEST_F(MatrixFixture, EmptySpecsAreTypedErrors) {
  const auto attacks = small_grid_attacks();
  const auto defenses = small_grid_defenses();
  MatrixOptions options;
  const std::vector<AttackSpec> no_attacks;
  const std::vector<DefenseSpec> no_defenses;
  const std::vector<dataset::Sample> no_victims;
  try {
    (void)run_matrix(*system, data->test, data->train, no_attacks,
                     defenses, options);
    FAIL() << "empty attacks must throw";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
  }
  EXPECT_THROW((void)run_matrix(*system, data->test, data->train, attacks,
                                no_defenses, options),
               core::Error);
  EXPECT_THROW((void)run_matrix(*system, no_victims, data->train, attacks,
                                defenses, options),
               core::Error);
}

TEST_F(MatrixFixture, MissingTargetFamilyCountsAsFailuresNotAbort) {
  // A corpus without the requested family makes every generation fail
  // with a typed error; the grid keeps going and accounts for them.
  std::vector<dataset::Sample> no_benign;
  for (const auto& s : data->train) {
    if (s.family != dataset::Family::kBenign) no_benign.push_back(s);
  }
  const auto attacks = small_grid_attacks();
  const auto defenses = small_grid_defenses();
  MatrixOptions options;
  options.victims_per_cell = 3;
  const auto report = run_matrix(*system, data->test, no_benign, attacks,
                                 defenses, options);
  for (const MatrixCell& cell : report.cells) {
    EXPECT_EQ(cell.failures, 3U);
    EXPECT_EQ(cell.victims, 0U);
    EXPECT_EQ(cell.detection_rate(), 0.0);
  }
}

TEST_F(MatrixFixture, SingleFamilyVictimsAreSkippedNotScored) {
  // Benign victims attacked toward benign are vacuous: skipped, never
  // counted into the rates.
  std::vector<dataset::Sample> benign_only;
  for (const auto& s : data->test) {
    if (s.family == dataset::Family::kBenign) benign_only.push_back(s);
  }
  ASSERT_FALSE(benign_only.empty());
  const auto attacks = small_grid_attacks();
  const auto defenses = small_grid_defenses();
  MatrixOptions options;
  options.victims_per_cell = 2;
  const auto report = run_matrix(*system, benign_only, data->train,
                                 attacks, defenses, options);
  for (const MatrixCell& cell : report.cells) {
    EXPECT_EQ(cell.victims, 0U);
    EXPECT_EQ(cell.skipped + cell.failures, 2U);
  }
}

TEST_F(MatrixFixture, CellCounterTicksWhenEnabled) {
  obs::registry().reset();
  obs::set_enabled(true);
  const auto attacks = small_grid_attacks();
  const auto defenses = small_grid_defenses();
  MatrixOptions options;
  options.victims_per_cell = 2;
  const auto report = run_matrix(*system, data->test, data->train,
                                 attacks, defenses, options);
  const auto snap = obs::registry().snapshot();
  obs::set_enabled(false);
  obs::registry().reset();
  EXPECT_EQ(snap.counters.at("eval.matrix.cells"), report.cells.size());
  EXPECT_EQ(snap.histograms.at("t/eval.cell").count, report.cells.size());
}

}  // namespace
}  // namespace soteria::eval
