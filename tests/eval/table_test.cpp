#include "eval/table.h"

#include <gtest/gtest.h>

namespace soteria::eval {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table table({"Name", "Value"});
  table.add_row({"alpha", "1"});
  table.add_row({"a-much-longer-name", "22"});
  const auto text = table.render("Title");
  EXPECT_NE(text.find("Title\n"), std::string::npos);
  EXPECT_NE(text.find("Name"), std::string::npos);
  EXPECT_NE(text.find("a-much-longer-name"), std::string::npos);
  // Header underline present.
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2U);
}

TEST(Table, RenderWithoutTitle) {
  Table table({"X"});
  table.add_row({"1"});
  const auto text = table.render();
  EXPECT_EQ(text.find("Title"), std::string::npos);
  EXPECT_EQ(text.front(), 'X');
}

TEST(Table, Validation) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table table({"A", "B"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.9779), "97.79");
  EXPECT_EQ(format_percent(1.0, 1), "100.0");
  EXPECT_EQ(format_percent(0.0), "0.00");
}

TEST(Format, Double) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace soteria::eval
