#include "eval/roc.h"

#include <gtest/gtest.h>

#include "math/rng.h"

namespace soteria::eval {
namespace {

TEST(Roc, PerfectSeparationHasAucOne) {
  const std::vector<double> positives{5.0, 6.0, 7.0};
  const std::vector<double> negatives{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(auc(positives, negatives), 1.0);
}

TEST(Roc, ReversedSeparationHasAucZero) {
  const std::vector<double> positives{1.0, 2.0};
  const std::vector<double> negatives{5.0, 6.0};
  EXPECT_DOUBLE_EQ(auc(positives, negatives), 0.0);
}

TEST(Roc, IdenticalScoresGiveHalf) {
  const std::vector<double> same{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(auc(same, same), 0.5);
}

TEST(Roc, RandomScoresNearHalf) {
  math::Rng rng(1);
  std::vector<double> a(2000);
  std::vector<double> b(2000);
  for (double& v : a) v = rng.uniform();
  for (double& v : b) v = rng.uniform();
  EXPECT_NEAR(auc(a, b), 0.5, 0.03);
}

TEST(Roc, AucMatchesBruteForce) {
  math::Rng rng(2);
  std::vector<double> positives(40);
  std::vector<double> negatives(30);
  for (double& v : positives) v = rng.normal(1.0, 1.0);
  for (double& v : negatives) v = rng.normal(0.0, 1.0);
  double wins = 0.0;
  for (double p : positives) {
    for (double n : negatives) {
      if (p > n) {
        wins += 1.0;
      } else if (p == n) {
        wins += 0.5;
      }
    }
  }
  const double brute = wins / (40.0 * 30.0);
  EXPECT_NEAR(auc(positives, negatives), brute, 1e-12);
}

TEST(Roc, EmptyInputsThrow) {
  const std::vector<double> some{1.0};
  EXPECT_THROW((void)auc({}, some), std::invalid_argument);
  EXPECT_THROW((void)auc(some, {}), std::invalid_argument);
  EXPECT_THROW((void)roc_curve(some, some, 0), std::invalid_argument);
}

TEST(Roc, CurveIsMonotoneInThreshold) {
  math::Rng rng(3);
  std::vector<double> positives(50);
  std::vector<double> negatives(50);
  for (double& v : positives) v = rng.normal(2.0, 1.0);
  for (double& v : negatives) v = rng.normal(0.0, 1.0);
  const auto curve = roc_curve(positives, negatives, 25);
  ASSERT_EQ(curve.size(), 26U);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].threshold, curve[i - 1].threshold);
    EXPECT_LE(curve[i].true_positive_rate,
              curve[i - 1].true_positive_rate);
    EXPECT_LE(curve[i].false_positive_rate,
              curve[i - 1].false_positive_rate);
  }
  // Ends of the sweep: everything above the min, nothing above the max.
  EXPECT_GT(curve.front().true_positive_rate, 0.9);
  EXPECT_DOUBLE_EQ(curve.back().true_positive_rate, 0.0);
}

TEST(Roc, YoudenThresholdSeparatesWellSeparatedSets) {
  const std::vector<double> positives{8.0, 9.0, 10.0};
  const std::vector<double> negatives{1.0, 2.0, 3.0};
  const double threshold = best_youden_threshold(positives, negatives);
  EXPECT_GT(threshold, 3.0);
  EXPECT_LT(threshold, 8.0);
}

}  // namespace
}  // namespace soteria::eval
