#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace soteria::eval {
namespace {

TEST(ConfusionMatrix, RecordsAndCounts) {
  ConfusionMatrix cm(3);
  cm.record(0, 0);
  cm.record(0, 1);
  cm.record(1, 1);
  cm.record(2, 2);
  EXPECT_EQ(cm.total(), 4U);
  EXPECT_EQ(cm.count(0, 1), 1U);
  EXPECT_EQ(cm.count(0, 2), 0U);
  EXPECT_EQ(cm.class_total(0), 2U);
}

TEST(ConfusionMatrix, Accuracies) {
  ConfusionMatrix cm(2);
  cm.record(0, 0);
  cm.record(0, 0);
  cm.record(0, 1);
  cm.record(1, 1);
  EXPECT_NEAR(cm.class_accuracy(0), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.overall_accuracy(), 0.75);
}

TEST(ConfusionMatrix, EmptyClassesAreZero) {
  ConfusionMatrix cm(2);
  EXPECT_DOUBLE_EQ(cm.overall_accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(0), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(0), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(0), 0.0);
}

TEST(ConfusionMatrix, PrecisionRecallF1) {
  ConfusionMatrix cm(2);
  // class 0: TP=3, FN=1; predictions of 0: 3 correct + 2 wrong.
  cm.record(0, 0);
  cm.record(0, 0);
  cm.record(0, 0);
  cm.record(0, 1);
  cm.record(1, 0);
  cm.record(1, 0);
  EXPECT_DOUBLE_EQ(cm.precision(0), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(cm.recall(0), 3.0 / 4.0);
  const double p = 0.6;
  const double r = 0.75;
  EXPECT_NEAR(cm.f1(0), 2 * p * r / (p + r), 1e-12);
}

TEST(ConfusionMatrix, Validation) {
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.record(2, 0), std::out_of_range);
  EXPECT_THROW(cm.record(0, 2), std::out_of_range);
  EXPECT_THROW((void)cm.count(5, 0), std::out_of_range);
  EXPECT_THROW((void)cm.class_total(5), std::out_of_range);
  EXPECT_THROW((void)cm.precision(5), std::out_of_range);
}

TEST(ConfusionFrom, BuildsFromParallelArrays) {
  const std::vector<std::size_t> truths{0, 1, 1, 0};
  const std::vector<std::size_t> predictions{0, 1, 0, 0};
  const auto cm = confusion_from(truths, predictions, 2);
  EXPECT_DOUBLE_EQ(cm.overall_accuracy(), 0.75);
  const std::vector<std::size_t> short_preds{0};
  EXPECT_THROW((void)confusion_from(truths, short_preds, 2),
               std::invalid_argument);
}

TEST(DetectionStats, Rates) {
  DetectionStats stats;
  stats.true_positives = 90;
  stats.false_negatives = 10;
  stats.true_negatives = 95;
  stats.false_positives = 5;
  EXPECT_DOUBLE_EQ(stats.detection_rate(), 0.9);
  EXPECT_DOUBLE_EQ(stats.false_positive_rate(), 0.05);
  EXPECT_DOUBLE_EQ(stats.accuracy(), 185.0 / 200.0);
  EXPECT_EQ(stats.total(), 200U);
}

TEST(DetectionStats, EmptyIsZero) {
  const DetectionStats stats;
  EXPECT_DOUBLE_EQ(stats.detection_rate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.false_positive_rate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.accuracy(), 0.0);
}

}  // namespace
}  // namespace soteria::eval
