// End-to-end frontend integration: SoteriaSystem::analyze_image must
// produce bit-identical verdicts to the CFG-taking path for toy
// binaries — raw or ELF-wrapped — and decoder identity must separate
// every persistent key space (pipeline fingerprint, tagged labeling
// hashes) so models and caches built under one front end can never
// serve another's.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "cfg/extractor.h"
#include "cfg/labeling_cache.h"
#include "dataset/generator.h"
#include "features/pipeline.h"
#include "isa/assembler.h"
#include "loader/elf_writer.h"
#include "soteria/presets.h"
#include "soteria/system.h"
#include "store/fingerprint.h"

namespace soteria::core {
namespace {

// Shared tiny experiment, trained once for the suite (training
// dominates test time; see tests/soteria/system_test.cpp).
struct FrontendE2E : public ::testing::Test {
  static void SetUpTestSuite() {
    dataset::DatasetConfig data_config;
    data_config.scale = 0.008;
    math::Rng rng(29);
    data = new dataset::Dataset(dataset::generate_dataset(data_config, rng));
    SoteriaConfig config = tiny_config();
    config.seed = 29;
    system = new SoteriaSystem(SoteriaSystem::train(data->train, config));
  }
  static void TearDownTestSuite() {
    delete system;
    delete data;
    system = nullptr;
    data = nullptr;
  }

  static const dataset::Sample& binary_sample() {
    for (const auto& sample : data->test) {
      if (!sample.binary.empty()) return sample;
    }
    throw std::logic_error("no test sample with a binary image");
  }

  static dataset::Dataset* data;
  static SoteriaSystem* system;
};

dataset::Dataset* FrontendE2E::data = nullptr;
SoteriaSystem* FrontendE2E::system = nullptr;

void expect_same_verdict(const Verdict& a, const Verdict& b) {
  EXPECT_EQ(a.adversarial, b.adversarial);
  EXPECT_EQ(a.reconstruction_error, b.reconstruction_error);
  EXPECT_EQ(a.predicted, b.predicted);
}

TEST_F(FrontendE2E, AnalyzeImageMatchesCfgAnalysis) {
  const auto& sample = binary_sample();
  const Verdict via_cfg =
      system->analyze(sample.cfg, math::Rng(123), AnalyzeOptions{});
  const Verdict via_image = system->analyze_image(sample.binary,
                                                  math::Rng(123));
  expect_same_verdict(via_cfg, via_image);
}

TEST_F(FrontendE2E, ElfWrappedBinaryMatchesRaw) {
  const auto& sample = binary_sample();
  const Verdict raw = system->analyze_image(sample.binary, math::Rng(321));
  for (const loader::ElfClass elf_class :
       {loader::ElfClass::kElf32, loader::ElfClass::kElf64}) {
    loader::ElfWriteOptions options;
    options.elf_class = elf_class;
    const auto elf_bytes = loader::write_elf(sample.binary, options);
    const Verdict wrapped =
        system->analyze_image(elf_bytes, math::Rng(321));
    expect_same_verdict(raw, wrapped);
  }
}

TEST_F(FrontendE2E, ExplicitFrontendSelection) {
  const auto& sample = binary_sample();
  AnalyzeOptions toy;
  toy.frontend = "toy";
  const Verdict named =
      system->analyze_image(sample.binary, math::Rng(55), toy);
  AnalyzeOptions detect;
  detect.frontend = "auto";
  const Verdict detected =
      system->analyze_image(sample.binary, math::Rng(55), detect);
  expect_same_verdict(named, detected);

  // Forcing a decoder that rejects the image is a typed error.
  AnalyzeOptions wrong;
  wrong.frontend = "x86_64";
  try {
    (void)system->analyze_image(sample.binary, math::Rng(55), wrong);
    FAIL() << "x86_64 must refuse a raw toy image";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
  }
}

TEST_F(FrontendE2E, MalformedImagesAreTypedErrors) {
  const auto& sample = binary_sample();
  const auto elf_bytes = loader::write_elf(sample.binary);
  const std::vector<std::uint8_t> truncated(elf_bytes.begin(),
                                            elf_bytes.begin() + 30);
  try {
    (void)system->analyze_image(truncated, math::Rng(1));
    FAIL() << "truncated ELF";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kCorruptModel);
  }
  try {
    (void)system->analyze_image(std::vector<std::uint8_t>{}, math::Rng(1));
    FAIL() << "empty image";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
  }
}

TEST_F(FrontendE2E, FrozenPathBitIdentical) {
  system->freeze();
  const auto& sample = binary_sample();
  AnalyzeOptions interpreted;
  interpreted.use_frozen = false;
  AnalyzeOptions frozen;
  frozen.use_frozen = true;
  const Verdict a =
      system->analyze_image(sample.binary, math::Rng(77), interpreted);
  const Verdict b =
      system->analyze_image(sample.binary, math::Rng(77), frozen);
  expect_same_verdict(a, b);
}

TEST_F(FrontendE2E, TrainedSystemRecordsFrontend) {
  EXPECT_EQ(system->config().pipeline.frontend, "toy");
  std::stringstream stream;
  system->save(stream);
  const auto loaded = SoteriaSystem::load(stream);
  EXPECT_EQ(loaded.config().pipeline.frontend, "toy");
  EXPECT_EQ(loaded.config().frontend, "toy");  // mirrored by load()
  EXPECT_EQ(loaded.pipeline().fingerprint(),
            system->pipeline().fingerprint());
}

std::vector<cfg::Cfg> tiny_corpus() {
  std::vector<cfg::Cfg> corpus;
  for (int variant = 0; variant < 3; ++variant) {
    isa::AsmProgram p;
    p.emit(isa::Opcode::kCmpImm, 0, static_cast<std::int16_t>(variant));
    p.emit_branch(isa::Opcode::kJz, "skip");
    for (int i = 0; i <= variant; ++i) p.emit(isa::Opcode::kAdd, 1, 2);
    p.emit_branch(isa::Opcode::kJmp, "out");
    p.define_label("skip");
    p.emit(isa::Opcode::kXor, 1, 1);
    p.define_label("out");
    p.emit(isa::Opcode::kHalt);
    corpus.push_back(cfg::extract(assemble(p)));
  }
  return corpus;
}

TEST(FrontendFingerprint, SeparatesDecodersWithIdenticalVocabularies) {
  const auto corpus = tiny_corpus();
  features::PipelineConfig config;
  config.top_k = 16;

  config.frontend = "toy";
  math::Rng rng_a(5);
  const auto toy_pipeline =
      features::FeaturePipeline::fit(corpus, config, rng_a);

  config.frontend = "x86_64";
  math::Rng rng_b(5);
  const auto x86_pipeline =
      features::FeaturePipeline::fit(corpus, config, rng_b);

  // Same corpus, same seed, same hyper-parameters: the vocabularies are
  // identical, so the *only* difference is the frontend name — and that
  // alone must separate the store key space.
  EXPECT_EQ(toy_pipeline.dbl_vocabulary().size(),
            x86_pipeline.dbl_vocabulary().size());
  EXPECT_NE(toy_pipeline.fingerprint(), x86_pipeline.fingerprint());
  EXPECT_EQ(store::fingerprint_of(toy_pipeline), toy_pipeline.fingerprint());
}

TEST(FrontendFingerprint, SaveLoadRoundTripsFrontendName) {
  const auto corpus = tiny_corpus();
  features::PipelineConfig config;
  config.top_k = 16;
  config.frontend = "x86_64";
  math::Rng rng(9);
  const auto pipeline = features::FeaturePipeline::fit(corpus, config, rng);

  std::stringstream stream;
  pipeline.save(stream);
  const auto loaded = features::FeaturePipeline::load(stream);
  EXPECT_EQ(loaded.config().frontend, "x86_64");
  EXPECT_EQ(loaded.fingerprint(), pipeline.fingerprint());
}

TEST(FrontendFingerprint, EmptyFrontendNameIsInvalid) {
  features::PipelineConfig config;
  config.frontend.clear();
  EXPECT_THROW(features::validate(config), std::invalid_argument);

  SoteriaConfig system_config = tiny_config();
  system_config.frontend = "sparc";
  EXPECT_THROW(validate(system_config), std::invalid_argument);
}

TEST(FrontendTaggedHash, SeparatesDecodersOnIdenticalShapes) {
  const auto corpus = tiny_corpus();
  const auto& cfg = corpus.front();

  const auto untagged = cfg::LabelingCache::content_hash(cfg);
  const auto toy = cfg::LabelingCache::content_hash(cfg, "toy");
  const auto x86 = cfg::LabelingCache::content_hash(cfg, "x86_64");

  EXPECT_NE(untagged, toy);
  EXPECT_NE(untagged, x86);
  EXPECT_NE(toy, x86);

  // Deterministic, and the untagged hash stays shape-addressed (shard
  // routing relies on it being a pure function of CFG content).
  EXPECT_EQ(cfg::LabelingCache::content_hash(cfg, "toy"), toy);
  EXPECT_EQ(cfg::LabelingCache::content_hash(cfg), untagged);
}

}  // namespace
}  // namespace soteria::core
