// FrontendRegistry contract: registration rules, by-name lookup,
// magic-byte auto-detection, and the resolve_frontend policy the CLI
// and SoteriaSystem::analyze_image route through.
#include "frontend/frontend.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "frontend/toy_isa_frontend.h"
#include "frontend/x86_64_frontend.h"
#include "loader/elf.h"
#include "loader/elf_writer.h"
#include "soteria/error.h"

namespace soteria::frontend {
namespace {

/// Minimal stub frontend for registration tests.
class StubFrontend final : public Frontend {
 public:
  explicit StubFrontend(std::string name, bool claims_everything = false)
      : name_(std::move(name)), claims_(claims_everything) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] bool can_decode(
      const loader::Image& /*image*/) const noexcept override {
    return claims_;
  }
  [[nodiscard]] cfg::Cfg extract(
      const loader::Image& /*image*/,
      const FrontendOptions& /*options*/) const override {
    return {};
  }

 private:
  std::string name_;
  bool claims_;
};

loader::Image raw_image(const std::vector<std::uint8_t>& bytes) {
  loader::Image image;
  image.bytes = bytes;
  image.text = bytes;
  return image;
}

core::ErrorCode error_code(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const core::Error& e) {
    return e.code();
  }
  return core::ErrorCode::kOk;
}

TEST(FrontendRegistry, BuiltinShipsToyAndX8664) {
  const auto& registry = FrontendRegistry::builtin();
  ASSERT_EQ(registry.size(), 2U);
  const auto names = registry.names();
  ASSERT_EQ(names.size(), 2U);
  EXPECT_EQ(names[0], "toy");
  EXPECT_EQ(names[1], "x86_64");

  EXPECT_NE(registry.find("toy"), nullptr);
  EXPECT_NE(registry.find("x86_64"), nullptr);
  EXPECT_EQ(registry.find("arm"), nullptr);
  EXPECT_EQ(registry.by_name("toy").name(), "toy");
  EXPECT_EQ(registry.by_name("x86_64").name(), "x86_64");
}

TEST(FrontendRegistry, RejectsNullAndDuplicateRegistration) {
  FrontendRegistry registry;
  EXPECT_EQ(error_code([&] { registry.add(nullptr); }),
            core::ErrorCode::kInvalidArgument);

  registry.add(std::make_shared<StubFrontend>("alpha"));
  EXPECT_EQ(error_code(
                [&] { registry.add(std::make_shared<StubFrontend>("alpha")); }),
            core::ErrorCode::kInvalidArgument);
  EXPECT_EQ(registry.size(), 1U);
}

TEST(FrontendRegistry, ByNameErrorListsRegisteredNames) {
  const auto& registry = FrontendRegistry::builtin();
  try {
    (void)registry.by_name("mips");
    FAIL() << "expected kInvalidArgument";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
    const std::string what = e.what();
    EXPECT_NE(what.find("toy"), std::string::npos) << what;
    EXPECT_NE(what.find("x86_64"), std::string::npos) << what;
  }
}

TEST(FrontendRegistry, DetectsRawAsToy) {
  const std::vector<std::uint8_t> bytes(8, 0x00);
  const auto image = raw_image(bytes);
  const Frontend* frontend = FrontendRegistry::builtin().detect(image);
  ASSERT_NE(frontend, nullptr);
  EXPECT_EQ(frontend->name(), "toy");
}

TEST(FrontendRegistry, DetectsElfByMachine) {
  const std::vector<std::uint8_t> code(8, 0x00);

  loader::ElfWriteOptions toy_options;  // default machine = toy tag
  const auto toy_bytes = loader::write_elf(code, toy_options);
  const auto toy_image = loader::load_elf(toy_bytes);
  const Frontend* toy = FrontendRegistry::builtin().detect(toy_image);
  ASSERT_NE(toy, nullptr);
  EXPECT_EQ(toy->name(), "toy");

  loader::ElfWriteOptions x86_options;
  x86_options.machine = loader::kElfMachineX8664;
  const auto x86_bytes = loader::write_elf(code, x86_options);
  const auto x86_image = loader::load_elf(x86_bytes);
  const Frontend* x86 = FrontendRegistry::builtin().detect(x86_image);
  ASSERT_NE(x86, nullptr);
  EXPECT_EQ(x86->name(), "x86_64");
}

TEST(FrontendRegistry, DetectionFailureIsTyped) {
  const std::vector<std::uint8_t> code(8, 0x00);
  loader::ElfWriteOptions options;
  options.machine = 40;  // EM_ARM: no registered decoder
  const auto bytes = loader::write_elf(code, options);
  const auto image = loader::load_elf(bytes);

  EXPECT_EQ(FrontendRegistry::builtin().detect(image), nullptr);
  EXPECT_EQ(error_code([&] {
              (void)FrontendRegistry::builtin().detect_or_throw(image);
            }),
            core::ErrorCode::kInvalidArgument);
}

TEST(ResolveFrontend, EmptyAndAutoDetect) {
  const std::vector<std::uint8_t> bytes(8, 0x00);
  const auto image = raw_image(bytes);
  const auto& registry = FrontendRegistry::builtin();
  EXPECT_EQ(resolve_frontend(registry, image).name(), "toy");
  EXPECT_EQ(resolve_frontend(registry, image, "auto").name(), "toy");
}

TEST(ResolveFrontend, ExplicitNameWinsWhenCompatible) {
  const std::vector<std::uint8_t> bytes(8, 0x00);
  const auto image = raw_image(bytes);
  const auto& registry = FrontendRegistry::builtin();
  EXPECT_EQ(resolve_frontend(registry, image, "toy").name(), "toy");
}

TEST(ResolveFrontend, NamedFrontendMustAcceptTheImage) {
  // x86_64 refuses raw images: forcing it must be a typed error, not a
  // silent mis-decode.
  const std::vector<std::uint8_t> bytes(8, 0x00);
  const auto image = raw_image(bytes);
  const auto& registry = FrontendRegistry::builtin();
  EXPECT_EQ(
      error_code([&] { (void)resolve_frontend(registry, image, "x86_64"); }),
      core::ErrorCode::kInvalidArgument);
  EXPECT_EQ(
      error_code([&] { (void)resolve_frontend(registry, image, "sparc"); }),
      core::ErrorCode::kInvalidArgument);
}

TEST(ResolveFrontend, RegistrationOrderBreaksTies) {
  // A catch-all registered first shadows later decoders under
  // auto-detection but stays reachable by name.
  FrontendRegistry registry;
  registry.add(std::make_shared<StubFrontend>("greedy", true));
  registry.add(std::make_shared<StubFrontend>("other", true));
  const std::vector<std::uint8_t> bytes(4, 0x00);
  const auto image = raw_image(bytes);
  EXPECT_EQ(registry.detect(image)->name(), "greedy");
  EXPECT_EQ(resolve_frontend(registry, image, "other").name(), "other");
}

TEST(FrontendCanDecode, MatchesFormatAndMachine) {
  const ToyIsaFrontend toy;
  const X8664Frontend x86;

  const std::vector<std::uint8_t> raw_bytes(8, 0x00);
  const auto raw = raw_image(raw_bytes);
  EXPECT_TRUE(toy.can_decode(raw));
  EXPECT_FALSE(x86.can_decode(raw));

  const auto x86_bytes =
      loader::write_elf(raw_bytes, {.machine = loader::kElfMachineX8664});
  const auto x86_image = loader::load_elf(x86_bytes);
  EXPECT_FALSE(toy.can_decode(x86_image));
  EXPECT_TRUE(x86.can_decode(x86_image));
}

}  // namespace
}  // namespace soteria::frontend
