// Bit-identity pin: re-homing the toy-ISA sweep behind the Frontend
// seam must not change a single CFG. `cfg::extract` (now a delegating
// wrapper), `ToyIsaFrontend` on a raw image, and `ToyIsaFrontend` on
// the same code wrapped in an ELF32/ELF64 container must agree on
// entry, node count, block metadata, and the exact DiGraph edge *order*
// — the edge order feeds LabelingCache::content_hash and therefore
// every cache and store key downstream.
#include "frontend/toy_isa_frontend.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "cfg/extractor.h"
#include "cfg/labeling_cache.h"
#include "isa/assembler.h"
#include "isa/isa.h"
#include "loader/elf.h"
#include "loader/elf_writer.h"
#include "soteria/error.h"

namespace soteria::frontend {
namespace {

loader::Image raw_image(std::span<const std::uint8_t> bytes) {
  loader::Image image;
  image.bytes = bytes;
  image.text = bytes;
  return image;
}

/// Structural equality down to edge order and block metadata — the
/// full observable surface of a Cfg.
void expect_identical(const cfg::Cfg& a, const cfg::Cfg& b) {
  EXPECT_EQ(a.entry(), b.entry());
  ASSERT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.graph().edges(), b.graph().edges());
  ASSERT_EQ(a.blocks().size(), b.blocks().size());
  for (std::size_t i = 0; i < a.blocks().size(); ++i) {
    EXPECT_EQ(a.blocks()[i].first_instruction, b.blocks()[i].first_instruction);
    EXPECT_EQ(a.blocks()[i].instruction_count, b.blocks()[i].instruction_count);
  }
  EXPECT_EQ(cfg::LabelingCache::content_hash(a),
            cfg::LabelingCache::content_hash(b));
}

/// Extracts `code` through every toy path (wrapper, raw frontend,
/// ELF32 wrap, ELF64 wrap) and asserts all four agree.
void expect_all_paths_identical(const std::vector<std::uint8_t>& code,
                                const FrontendOptions& options) {
  const ToyIsaFrontend toy;
  const cfg::Cfg via_wrapper = cfg::extract(code, options);
  const cfg::Cfg via_raw = toy.extract(raw_image(code), options);
  expect_identical(via_wrapper, via_raw);

  for (const loader::ElfClass elf_class :
       {loader::ElfClass::kElf32, loader::ElfClass::kElf64}) {
    loader::ElfWriteOptions elf_options;
    elf_options.elf_class = elf_class;
    const auto elf_bytes = loader::write_elf(code, elf_options);
    const auto image = loader::load_elf(elf_bytes);
    ASSERT_TRUE(toy.can_decode(image));
    expect_identical(via_wrapper, toy.extract(image, options));
  }
}

std::vector<std::uint8_t> diamond_code() {
  isa::AsmProgram p;
  p.emit(isa::Opcode::kCmpImm, 0, 5);
  p.emit_branch(isa::Opcode::kJz, "else");
  p.emit(isa::Opcode::kMovImm, 1, 1);
  p.emit_branch(isa::Opcode::kJmp, "end");
  p.define_label("else");
  p.emit(isa::Opcode::kMovImm, 1, 2);
  p.define_label("end");
  p.emit(isa::Opcode::kHalt);
  return assemble(p);
}

TEST(ToyIdentity, DiamondMatchesAcrossAllPaths) {
  const auto code = diamond_code();
  expect_all_paths_identical(code, FrontendOptions{});

  // And the diamond's structure itself stays pinned: blocks [0,1],
  // [2,3], [4], [5]; edges in exactly the pre-seam order.
  const auto cfg = cfg::extract(code);
  ASSERT_EQ(cfg.node_count(), 4U);
  EXPECT_EQ(cfg.entry(), 0U);
  const std::vector<std::pair<graph::NodeId, graph::NodeId>> expected = {
      {0, 2}, {0, 1}, {1, 3}, {2, 3}};
  EXPECT_EQ(cfg.graph().edges(), expected);
}

TEST(ToyIdentity, UnreachableCodeUnprunedMatches) {
  isa::AsmProgram p;
  p.emit_branch(isa::Opcode::kJmp, "end");
  p.emit(isa::Opcode::kMovImm, 0, 7);  // unreachable
  p.define_label("end");
  p.emit(isa::Opcode::kHalt);
  const auto code = assemble(p);

  FrontendOptions keep;
  keep.prune_unreachable = false;
  expect_all_paths_identical(code, keep);
  expect_all_paths_identical(code, FrontendOptions{});

  const auto pruned = cfg::extract(code);
  const auto unpruned = cfg::extract(code, keep);
  EXPECT_LT(pruned.node_count(), unpruned.node_count());
}

TEST(ToyIdentity, RandomizedImagesMatchAcrossAllPaths) {
  // Deterministic xorshift fuzz over two populations: streams of valid
  // opcodes with aggressive branch immediates (dense control flow), and
  // fully random words (exercises the unknown-opcode path).
  std::uint64_t state = 0x2545f4914f6cdd1dULL;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const std::vector<std::uint8_t> opcodes = {
      0x00, 0x01, 0x10, 0x12, 0x21, 0x30, 0x32,
      0x40, 0x41, 0x42, 0x50, 0x51, 0x60,
  };

  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t count = 1 + next() % 48;
    std::vector<std::uint8_t> code;
    code.reserve(count * isa::kInstructionSize);
    const bool valid_opcodes = trial % 2 == 0;
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint8_t opcode =
          valid_opcodes ? opcodes[next() % opcodes.size()]
                        : static_cast<std::uint8_t>(next() & 0xff);
      code.push_back(opcode);
      code.push_back(static_cast<std::uint8_t>(next() & 0xff));
      // Small signed immediate so branches mostly stay in range.
      const auto imm = static_cast<std::int16_t>(
          static_cast<std::int64_t>(next() % (2 * count)) -
          static_cast<std::int64_t>(count));
      code.push_back(static_cast<std::uint8_t>(imm & 0xff));
      code.push_back(static_cast<std::uint8_t>((imm >> 8) & 0xff));
    }

    FrontendOptions keep;
    keep.prune_unreachable = false;
    expect_all_paths_identical(code, FrontendOptions{});
    expect_all_paths_identical(code, keep);
  }
}

TEST(ToyIdentity, ElfEntryPointSelectsEntryBlock) {
  // Entry at instruction 2: the ELF path must honor e_entry where the
  // raw path starts at 0 by convention.
  isa::AsmProgram p;
  p.emit(isa::Opcode::kHalt);      // 0: only reachable from entry 0
  p.emit(isa::Opcode::kNop);       // 1
  p.emit(isa::Opcode::kMovImm, 0, 3);  // 2: ELF entry
  p.emit(isa::Opcode::kHalt);      // 3
  const auto code = assemble(p);

  loader::ElfWriteOptions options;
  options.entry_offset = 2 * isa::kInstructionSize;
  const auto elf_bytes = loader::write_elf(code, options);
  const auto image = loader::load_elf(elf_bytes);
  EXPECT_EQ(image.entry_text_offset(), 8U);

  const ToyIsaFrontend toy;
  const auto cfg = toy.extract(image);
  ASSERT_TRUE(cfg.has_block_metadata());
  EXPECT_EQ(cfg.blocks()[cfg.entry()].first_instruction, 2U);

  const auto raw_cfg = toy.extract(raw_image(code));
  EXPECT_EQ(raw_cfg.blocks()[raw_cfg.entry()].first_instruction, 0U);
}

TEST(ToyIdentity, GuardsAreTypedErrors) {
  const ToyIsaFrontend toy;
  const auto code = diamond_code();

  {
    const std::vector<std::uint8_t> empty;
    try {
      (void)toy.extract(raw_image(empty));
      FAIL() << "empty image";
    } catch (const core::Error& e) {
      EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
    }
  }
  {
    const std::vector<std::uint8_t> ragged = {1, 2, 3};
    try {
      (void)toy.extract(raw_image(ragged));
      FAIL() << "ragged image";
    } catch (const core::Error& e) {
      EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
    }
  }
  {
    FrontendOptions small;
    small.max_image_bytes = 8;
    try {
      (void)toy.extract(raw_image(code), small);
      FAIL() << "max_image_bytes";
    } catch (const core::Error& e) {
      EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
    }
  }
  {
    // Unaligned ELF entry point.
    loader::ElfWriteOptions options;
    options.entry_offset = 2;
    const auto elf_bytes = loader::write_elf(code, options);
    const auto image = loader::load_elf(elf_bytes);
    try {
      (void)toy.extract(image);
      FAIL() << "unaligned entry";
    } catch (const core::Error& e) {
      EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
    }
  }
}

}  // namespace
}  // namespace soteria::frontend
