// x86-64 subset decoder + linear-sweep frontend tests. The decoder
// assertions pin exact instruction lengths (the property that keeps a
// linear sweep in phase) and flow kinds for the encodings the frontend
// claims to understand; the CFG assertions cover the committed
// x86_branch.elf64 fixture, whose disassembly was cross-checked against
// binutils objdump when the fixture was generated.
#include "frontend/x86_64_frontend.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "loader/elf.h"
#include "loader/elf_writer.h"
#include "soteria/error.h"

namespace soteria::frontend {
namespace {

X86Instruction decode(const std::vector<std::uint8_t>& bytes,
                      std::size_t offset = 0) {
  const auto insn = decode_x86_64(bytes, offset);
  EXPECT_TRUE(insn.has_value());
  return insn.value_or(X86Instruction{});
}

TEST(X86Decode, PastTheEndIsNullopt) {
  const std::vector<std::uint8_t> bytes = {0x90};
  EXPECT_FALSE(decode_x86_64(bytes, 1).has_value());
  EXPECT_FALSE(decode_x86_64(bytes, 100).has_value());
  EXPECT_FALSE(decode_x86_64({}, 0).has_value());
}

TEST(X86Decode, BranchFamily) {
  {
    const auto insn = decode({0x74, 0x08});  // je +8
    EXPECT_EQ(insn.length, 2U);
    EXPECT_EQ(insn.kind, FlowKind::kCondBranch);
    EXPECT_TRUE(insn.has_target);
    EXPECT_EQ(insn.rel, 8);
  }
  {
    const auto insn = decode({0x0f, 0x84, 0x01, 0x00, 0x00, 0x00});
    EXPECT_EQ(insn.length, 6U);  // je rel32
    EXPECT_EQ(insn.kind, FlowKind::kCondBranch);
    EXPECT_EQ(insn.rel, 1);
  }
  {
    const auto insn = decode({0xeb, 0xfe});  // jmp -2 (self loop)
    EXPECT_EQ(insn.length, 2U);
    EXPECT_EQ(insn.kind, FlowKind::kJump);
    EXPECT_EQ(insn.rel, -2);
  }
  {
    const auto insn = decode({0xe9, 0x00, 0x01, 0x00, 0x00});
    EXPECT_EQ(insn.length, 5U);  // jmp rel32
    EXPECT_EQ(insn.kind, FlowKind::kJump);
    EXPECT_EQ(insn.rel, 256);
  }
  {
    const auto insn = decode({0xe8, 0xf1, 0xff, 0xff, 0xff});
    EXPECT_EQ(insn.length, 5U);  // call rel32
    EXPECT_EQ(insn.kind, FlowKind::kCall);
    EXPECT_EQ(insn.rel, -15);
  }
  EXPECT_EQ(decode({0xc3}).kind, FlowKind::kReturn);
  {
    const auto insn = decode({0xc2, 0x08, 0x00});  // ret imm16
    EXPECT_EQ(insn.length, 3U);
    EXPECT_EQ(insn.kind, FlowKind::kReturn);
  }
  EXPECT_EQ(decode({0xf4}).kind, FlowKind::kHalt);  // hlt
  EXPECT_EQ(decode({0xcc}).kind, FlowKind::kHalt);  // int3
  {
    const auto insn = decode({0x0f, 0x0b});  // ud2
    EXPECT_EQ(insn.length, 2U);
    EXPECT_EQ(insn.kind, FlowKind::kHalt);
  }
}

TEST(X86Decode, IndirectBranchesThroughGroup5) {
  {
    const auto insn = decode({0xff, 0xd0});  // call rax
    EXPECT_EQ(insn.length, 2U);
    EXPECT_EQ(insn.kind, FlowKind::kCall);
    EXPECT_FALSE(insn.has_target);
  }
  {
    const auto insn = decode({0xff, 0xe0});  // jmp rax
    EXPECT_EQ(insn.length, 2U);
    EXPECT_EQ(insn.kind, FlowKind::kJump);
    EXPECT_FALSE(insn.has_target);
  }
  {
    const auto insn = decode({0xff, 0x25, 0x00, 0x00, 0x00, 0x00});
    EXPECT_EQ(insn.length, 6U);  // jmp [rip+0]
    EXPECT_EQ(insn.kind, FlowKind::kJump);
  }
  {
    const auto insn = decode({0xff, 0xc0});  // inc eax: plain data flow
    EXPECT_EQ(insn.length, 2U);
    EXPECT_EQ(insn.kind, FlowKind::kFallthrough);
  }
}

TEST(X86Decode, ExactLengthsAcrossTheFallthroughSubset) {
  const std::vector<std::pair<std::vector<std::uint8_t>, std::size_t>> cases = {
      {{0x55}, 1},                                      // push rbp
      {{0x48, 0x89, 0xe5}, 3},                          // mov rbp, rsp
      {{0x85, 0xff}, 2},                                // test edi, edi
      {{0x31, 0xc0}, 2},                                // xor eax, eax
      {{0x90}, 1},                                      // nop
      {{0x66, 0x0f, 0x1f, 0x44, 0x00, 0x00}, 6},        // canonical nopw
      {{0x0f, 0x05}, 2},                                // syscall
      {{0xb8, 0x01, 0x00, 0x00, 0x00}, 5},              // mov eax, imm32
      {{0x66, 0xb8, 0x01, 0x00}, 4},                    // mov ax, imm16
      {{0x48, 0xb8, 1, 2, 3, 4, 5, 6, 7, 8}, 10},       // mov rax, imm64
      {{0x8b, 0x45, 0x08}, 3},                          // mov eax, [rbp+8]
      {{0x8b, 0x05, 0x00, 0x00, 0x00, 0x00}, 6},        // mov eax, [rip+0]
      {{0x8b, 0x04, 0x25, 0x00, 0x00, 0x00, 0x00}, 7},  // SIB, no base
      {{0x8b, 0x80, 0x00, 0x01, 0x00, 0x00}, 6},        // disp32
      {{0x8d, 0x3d, 0x00, 0x00, 0x00, 0x00}, 6},        // lea rdi, [rip]
      {{0x83, 0xc0, 0x01}, 3},                          // add eax, imm8
      {{0x81, 0xc0, 0x44, 0x33, 0x22, 0x11}, 6},        // add eax, imm32
      {{0x6a, 0x10}, 2},                                // push imm8
      {{0x68, 0x10, 0x00, 0x00, 0x00}, 5},              // push imm32
      {{0xc1, 0xe0, 0x02}, 3},                          // shl eax, 2
      {{0xc7, 0x45, 0xfc, 0, 0, 0, 0}, 7},              // mov [rbp-4], imm32
      {{0xf7, 0xc0, 0x01, 0x00, 0x00, 0x00}, 6},        // test eax, imm32
      {{0xf7, 0xd8}, 2},                                // neg eax (no imm)
      {{0xf6, 0xc0, 0x01}, 3},                          // test al, imm8
      {{0x63, 0xd0}, 2},                                // movsxd rdx, eax
      {{0x0f, 0xb6, 0xc0}, 3},                          // movzx eax, al
      {{0x0f, 0xaf, 0xc2}, 3},                          // imul eax, edx
      {{0x0f, 0x94, 0xc0}, 3},                          // sete al
      {{0xc9}, 1},                                      // leave
  };
  for (const auto& [bytes, length] : cases) {
    const auto insn = decode(bytes);
    EXPECT_TRUE(insn.recognized) << "bytes[0]=" << int{bytes[0]};
    EXPECT_EQ(insn.length, length) << "bytes[0]=" << int{bytes[0]};
    EXPECT_EQ(insn.kind, FlowKind::kFallthrough);
  }
}

TEST(X86Decode, UnknownAndTruncatedConsumeOneByte) {
  const std::vector<std::vector<std::uint8_t>> cases = {
      {0x06},                          // unassigned in 64-bit mode
      {0x0f, 0xc7},                    // outside the decoded 0F subset
      {0x0f},                          // truncated two-byte opcode
      {0xe8, 0x00, 0x00},              // call with truncated rel32
      {0x8b},                          // mov missing its ModRM
      {0x8b, 0x45},                    // ModRM present, disp8 missing
      {0x66, 0x48},                    // prefixes with no opcode
      {0x66, 0x66, 0x66, 0x66, 0x66, 0x90},  // prefix overflow
  };
  for (const auto& bytes : cases) {
    const auto insn = decode(bytes);
    EXPECT_FALSE(insn.recognized) << "bytes[0]=" << int{bytes[0]};
    EXPECT_EQ(insn.length, 1U);
    EXPECT_EQ(insn.kind, FlowKind::kFallthrough);
  }
}

cfg::Cfg extract_x86(const std::vector<std::uint8_t>& code,
                     const FrontendOptions& options = {},
                     std::uint64_t entry_offset = 0) {
  loader::ElfWriteOptions elf_options;
  elf_options.machine = loader::kElfMachineX8664;
  elf_options.entry_offset = entry_offset;
  const auto bytes = loader::write_elf(code, elf_options);
  const auto image = loader::load_elf(bytes);
  const X8664Frontend frontend;
  EXPECT_TRUE(frontend.can_decode(image));
  return frontend.extract(image, options);
}

TEST(X86Frontend, CommittedFixtureCfg) {
#ifndef SOTERIA_LOADER_FIXTURE_DIR
#error "SOTERIA_LOADER_FIXTURE_DIR must be defined"
#endif
  const std::string path =
      std::string(SOTERIA_LOADER_FIXTURE_DIR) + "/x86_branch.elf64";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  const auto image = loader::load_elf(bytes);
  const X8664Frontend frontend;
  const auto cfg = frontend.extract(image);

  // push; mov; test; je +8 | dec; call -15 | ret | xor; pop; ret
  //   B0 = [0..3], B1 = [4,5], B2 = [6], B3 = [7..9]
  ASSERT_EQ(cfg.node_count(), 4U);
  EXPECT_EQ(cfg.entry(), 0U);
  const std::vector<std::pair<graph::NodeId, graph::NodeId>> expected = {
      {0, 3},  // je taken -> xor block
      {0, 1},  // je fall-through -> dec block
      {1, 0},  // call back to the function entry
      {1, 2},  // call return path -> ret block
  };
  EXPECT_EQ(cfg.graph().edges(), expected);

  ASSERT_EQ(cfg.blocks().size(), 4U);
  EXPECT_EQ(cfg.blocks()[0].first_instruction, 0U);
  EXPECT_EQ(cfg.blocks()[0].instruction_count, 4U);
  EXPECT_EQ(cfg.blocks()[1].first_instruction, 4U);
  EXPECT_EQ(cfg.blocks()[1].instruction_count, 2U);
  EXPECT_EQ(cfg.blocks()[2].first_instruction, 6U);
  EXPECT_EQ(cfg.blocks()[2].instruction_count, 1U);
  EXPECT_EQ(cfg.blocks()[3].first_instruction, 7U);
  EXPECT_EQ(cfg.blocks()[3].instruction_count, 3U);
}

TEST(X86Frontend, MidInstructionTargetGetsNoEdge) {
  // je +1 lands inside the REX-prefixed ret at [2,4): conservative
  // policy is no edge, leaving only the fall-through successor.
  const std::vector<std::uint8_t> code = {0x74, 0x01, 0x48, 0xc3, 0xc3};
  const auto cfg = extract_x86(code);
  ASSERT_EQ(cfg.node_count(), 2U);
  const std::vector<std::pair<graph::NodeId, graph::NodeId>> expected = {
      {0, 1}};
  EXPECT_EQ(cfg.graph().edges(), expected);

  // Nudge the displacement to an instruction start and the edge
  // appears: je +2 targets the final ret.
  const std::vector<std::uint8_t> taken = {0x74, 0x02, 0x48, 0xc3, 0xc3};
  const auto taken_cfg = extract_x86(taken);
  ASSERT_EQ(taken_cfg.node_count(), 3U);
  const std::vector<std::pair<graph::NodeId, graph::NodeId>> taken_expected = {
      {0, 2}, {0, 1}};
  EXPECT_EQ(taken_cfg.graph().edges(), taken_expected);
}

TEST(X86Frontend, OutOfRangeTargetGetsNoEdge) {
  const std::vector<std::uint8_t> code = {0xeb, 0x7f, 0xc3};  // jmp +127
  const auto cfg = extract_x86(code);
  EXPECT_EQ(cfg.node_count(), 1U);
  EXPECT_EQ(cfg.edge_count(), 0U);
}

TEST(X86Frontend, SelfLoop) {
  const std::vector<std::uint8_t> code = {0xeb, 0xfe};  // jmp $
  const auto cfg = extract_x86(code);
  ASSERT_EQ(cfg.node_count(), 1U);
  const std::vector<std::pair<graph::NodeId, graph::NodeId>> expected = {
      {0, 0}};
  EXPECT_EQ(cfg.graph().edges(), expected);
}

TEST(X86Frontend, MidInstructionEntryFallsBackToZero) {
  // e_entry points one byte into the mov: the sweep starts at offset 0.
  const std::vector<std::uint8_t> code = {0x48, 0x89, 0xe5, 0xc3};
  const auto cfg = extract_x86(code, {}, /*entry_offset=*/1);
  ASSERT_TRUE(cfg.has_block_metadata());
  EXPECT_EQ(cfg.blocks()[cfg.entry()].first_instruction, 0U);
}

TEST(X86Frontend, UnknownBytesSweepConservatively) {
  // Garbage never throws and never invents control flow: a stream of
  // unknown opcodes is one straight-line block into the ret.
  const std::vector<std::uint8_t> code = {0x06, 0x07, 0x0e, 0x16, 0xc3};
  const auto cfg = extract_x86(code);
  EXPECT_EQ(cfg.node_count(), 1U);
  EXPECT_EQ(cfg.edge_count(), 0U);
  ASSERT_TRUE(cfg.has_block_metadata());
  EXPECT_EQ(cfg.blocks()[0].instruction_count, 5U);
}

TEST(X86Frontend, GuardsAreTypedErrors) {
  const X8664Frontend frontend;
  {
    loader::Image image;  // ELF-tagged but empty code region
    image.format = loader::Format::kElf;
    image.machine = loader::kElfMachineX8664;
    try {
      (void)frontend.extract(image);
      FAIL() << "empty code region";
    } catch (const core::Error& e) {
      EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
    }
  }
  {
    FrontendOptions small;
    small.max_image_bytes = 2;
    try {
      (void)extract_x86({0x90, 0x90, 0x90, 0xc3}, small);
      FAIL() << "max_image_bytes";
    } catch (const core::Error& e) {
      EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
    }
  }
}

}  // namespace
}  // namespace soteria::frontend
