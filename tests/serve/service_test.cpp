// AnalysisService contract: backpressure rejection at exact capacity,
// deadline expiry of queued work, drain-vs-cancel shutdown, hot model
// swap under concurrent submission, and — above all — verdict streams
// bit-identical to a serial analyze_batch over the same inputs. Carries
// the `serve` ctest label; the sanitize builds run it under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "dataset/generator.h"
#include "obs/metrics.h"
#include "serve/service.h"
#include "soteria/presets.h"
#include "soteria/system.h"

namespace soteria::serve {
namespace {

using core::ErrorCode;
using Clock = std::chrono::steady_clock;

/// Expired before it was ever queued — deterministic deadline expiry.
constexpr auto kAlreadyExpired = Clock::time_point::min();

// Training dominates suite wall-clock, so two tiny systems (different
// seeds => different weights and thresholds) are trained once and
// shared read-only by every test.
struct ServiceFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    dataset::DatasetConfig data_config;
    data_config.scale = 0.008;
    math::Rng rng(29);
    data = new dataset::Dataset(dataset::generate_dataset(data_config, rng));

    core::SoteriaConfig config = core::tiny_config();
    config.seed = 29;
    model_a = new std::shared_ptr<const core::SoteriaSystem>(
        std::make_shared<const core::SoteriaSystem>(
            core::SoteriaSystem::train(data->train, config)));
    config.seed = 31;
    model_b = new std::shared_ptr<const core::SoteriaSystem>(
        std::make_shared<const core::SoteriaSystem>(
            core::SoteriaSystem::train(data->train, config)));
  }
  static void TearDownTestSuite() {
    delete model_b;
    delete model_a;
    delete data;
    model_b = nullptr;
    model_a = nullptr;
    data = nullptr;
  }

  [[nodiscard]] static std::vector<cfg::Cfg> test_cfgs(std::size_t n) {
    std::vector<cfg::Cfg> cfgs;
    for (std::size_t i = 0; i < std::min(n, data->test.size()); ++i) {
      cfgs.push_back(data->test[i].cfg);
    }
    return cfgs;
  }

  static dataset::Dataset* data;
  static std::shared_ptr<const core::SoteriaSystem>* model_a;
  static std::shared_ptr<const core::SoteriaSystem>* model_b;
};

dataset::Dataset* ServiceFixture::data = nullptr;
std::shared_ptr<const core::SoteriaSystem>* ServiceFixture::model_a = nullptr;
std::shared_ptr<const core::SoteriaSystem>* ServiceFixture::model_b = nullptr;

void expect_verdicts_equal(const core::Verdict& actual,
                           const core::Verdict& expected,
                           std::size_t index) {
  EXPECT_EQ(actual.adversarial, expected.adversarial) << "request " << index;
  EXPECT_EQ(actual.predicted, expected.predicted) << "request " << index;
  // Bit-identical, not approximately equal: the service must run the
  // same arithmetic in the same order as the serial batch.
  EXPECT_EQ(actual.reconstruction_error, expected.reconstruction_error)
      << "request " << index;
}

TEST_F(ServiceFixture, NullSystemIsRejected) {
  try {
    AnalysisService service(nullptr, ServiceConfig{});
    FAIL() << "expected core::Error";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
}

TEST_F(ServiceFixture, VerdictStreamBitIdenticalToSerialAnalyzeBatch) {
  const auto cfgs = test_cfgs(10);
  ASSERT_FALSE(cfgs.empty());

  ServiceConfig config;
  config.num_threads = 3;
  config.queue_depth = 64;
  config.seed = 33;
  AnalysisService service(*model_a, config);

  std::vector<AnalysisService::Ticket> tickets;
  tickets.reserve(cfgs.size());
  for (const auto& cfg : cfgs) {
    auto ticket = service.submit(cfg);
    ASSERT_TRUE(ticket.accepted());
    tickets.push_back(std::move(ticket));
  }
  // Accepted ids are dense and in submission order — the property that
  // makes the comparison below meaningful.
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(tickets[i].id, i);
  }

  core::AnalyzeOptions serial;
  serial.num_threads = 1;
  const auto expected =
      (*model_a)->analyze_batch(cfgs, math::Rng(33), serial);
  ASSERT_EQ(expected.size(), tickets.size());
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    expect_verdicts_equal(tickets[i].verdict.get(), expected[i], i);
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.accepted, cfgs.size());
  EXPECT_EQ(stats.completed, cfgs.size());
  EXPECT_EQ(stats.rejected, 0U);
  EXPECT_EQ(stats.expired, 0U);
  // Every completion flowed through a drained micro-batch, and no batch
  // can hold more requests than were ever submitted.
  EXPECT_GE(stats.batches, 1U);
  EXPECT_LE(stats.batches, cfgs.size());
}

TEST_F(ServiceFixture, VerdictsInvariantAcrossWorkerCounts) {
  const auto cfgs = test_cfgs(6);
  ASSERT_FALSE(cfgs.empty());
  std::vector<std::vector<core::Verdict>> runs;
  for (const std::size_t threads : {1U, 4U}) {
    ServiceConfig config;
    config.num_threads = threads;
    config.seed = 35;
    AnalysisService service(*model_a, config);
    std::vector<AnalysisService::Ticket> tickets;
    for (const auto& cfg : cfgs) {
      auto ticket = service.submit(cfg);
      ASSERT_TRUE(ticket.accepted());
      tickets.push_back(std::move(ticket));
    }
    std::vector<core::Verdict> verdicts;
    verdicts.reserve(tickets.size());
    for (auto& ticket : tickets) verdicts.push_back(ticket.verdict.get());
    runs.push_back(std::move(verdicts));
  }
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    expect_verdicts_equal(runs[1][i], runs[0][i], i);
  }
}

TEST_F(ServiceFixture, BackpressureRejectsAtExactCapacity) {
  const auto cfgs = test_cfgs(1);
  ASSERT_FALSE(cfgs.empty());

  ServiceConfig config;
  config.queue_depth = 3;
  config.num_threads = 1;
  AnalysisService service(*model_a, config);
  service.pause();  // pin the queue: nothing is dequeued below

  std::vector<AnalysisService::Ticket> accepted;
  for (int i = 0; i < 3; ++i) {
    auto ticket = service.submit(cfgs[0]);
    ASSERT_TRUE(ticket.accepted()) << i;
    accepted.push_back(std::move(ticket));
  }
  // Submission queue_depth + 1 is rejected immediately — not blocked.
  auto rejected = service.submit(cfgs[0]);
  EXPECT_FALSE(rejected.accepted());
  EXPECT_EQ(rejected.status, ErrorCode::kQueueFull);
  EXPECT_FALSE(rejected.verdict.valid());

  EXPECT_EQ(service.stats().queue_depth, 3U);
  EXPECT_EQ(service.stats().rejected, 1U);

  service.resume();
  for (auto& ticket : accepted) EXPECT_NO_THROW((void)ticket.verdict.get());
  EXPECT_EQ(service.stats().completed, 3U);
}

TEST_F(ServiceFixture, QueuedRequestExpiresBeforeWastingAWorker) {
  const auto cfgs = test_cfgs(1);
  ASSERT_FALSE(cfgs.empty());

  ServiceConfig config;
  config.num_threads = 1;
  AnalysisService service(*model_a, config);
  service.pause();

  auto doomed = service.submit(cfgs[0], kAlreadyExpired);
  auto healthy = service.submit(cfgs[0]);
  ASSERT_TRUE(doomed.accepted());
  ASSERT_TRUE(healthy.accepted());
  service.resume();

  try {
    (void)doomed.verdict.get();
    FAIL() << "expected Error{kDeadlineExceeded}";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
  }
  EXPECT_NO_THROW((void)healthy.verdict.get());

  const auto stats = service.stats();
  EXPECT_EQ(stats.expired, 1U);
  EXPECT_EQ(stats.completed, 1U);
}

TEST_F(ServiceFixture, DefaultDeadlineFromConfigApplies) {
  const auto cfgs = test_cfgs(1);
  ASSERT_FALSE(cfgs.empty());

  ServiceConfig config;
  config.num_threads = 1;
  config.default_deadline = std::chrono::nanoseconds(1);
  AnalysisService service(*model_a, config);
  service.pause();
  auto ticket = service.submit(cfgs[0]);
  ASSERT_TRUE(ticket.accepted());
  // The 1 ns budget is long gone by the time the worker resumes.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  service.resume();
  try {
    (void)ticket.verdict.get();
    FAIL() << "expected Error{kDeadlineExceeded}";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
  }
}

TEST_F(ServiceFixture, DrainShutdownFinishesQueuedRequests) {
  const auto cfgs = test_cfgs(4);
  ASSERT_FALSE(cfgs.empty());

  ServiceConfig config;
  config.num_threads = 2;
  AnalysisService service(*model_a, config);
  service.pause();
  std::vector<AnalysisService::Ticket> tickets;
  for (const auto& cfg : cfgs) {
    auto ticket = service.submit(cfg);
    ASSERT_TRUE(ticket.accepted());
    tickets.push_back(std::move(ticket));
  }

  service.shutdown(ShutdownPolicy::kDrain);
  for (auto& ticket : tickets) EXPECT_NO_THROW((void)ticket.verdict.get());

  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, cfgs.size());
  EXPECT_EQ(stats.cancelled, 0U);

  // Post-shutdown submissions are typed rejections, not hangs.
  auto late = service.submit(cfgs[0]);
  EXPECT_EQ(late.status, ErrorCode::kShuttingDown);
  EXPECT_EQ(service.stats().rejected, 1U);
}

TEST_F(ServiceFixture, CancelShutdownFailsQueuedRequests) {
  const auto cfgs = test_cfgs(4);
  ASSERT_FALSE(cfgs.empty());

  ServiceConfig config;
  config.num_threads = 2;
  AnalysisService service(*model_a, config);
  service.pause();
  std::vector<AnalysisService::Ticket> tickets;
  for (const auto& cfg : cfgs) {
    auto ticket = service.submit(cfg);
    ASSERT_TRUE(ticket.accepted());
    tickets.push_back(std::move(ticket));
  }

  service.shutdown(ShutdownPolicy::kCancel);
  for (auto& ticket : tickets) {
    try {
      (void)ticket.verdict.get();
      FAIL() << "expected Error{kCancelled}";
    } catch (const core::Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kCancelled);
    }
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.cancelled, cfgs.size());
  EXPECT_EQ(stats.completed, 0U);
}

TEST_F(ServiceFixture, HotSwapPublishesToSubsequentRequests) {
  const auto cfgs = test_cfgs(1);
  ASSERT_FALSE(cfgs.empty());

  ServiceConfig config;
  config.num_threads = 1;
  config.seed = 40;
  AnalysisService service(*model_a, config);

  auto before = service.submit(cfgs[0]);
  ASSERT_TRUE(before.accepted());
  const auto verdict_before = before.verdict.get();

  service.swap_model(*model_b);
  EXPECT_EQ(service.model().get(), model_b->get());
  EXPECT_EQ(service.stats().swaps, 1U);

  auto after = service.submit(cfgs[0]);
  ASSERT_TRUE(after.accepted());
  const auto verdict_after = after.verdict.get();

  // Each verdict is bit-identical to the owning model's serial answer
  // for that request id.
  {
    math::Rng rng = math::Rng(40).child(0);
    expect_verdicts_equal(verdict_before,
                          (*model_a)->analyze(cfgs[0], rng), 0);
  }
  {
    math::Rng rng = math::Rng(40).child(1);
    expect_verdicts_equal(verdict_after, (*model_b)->analyze(cfgs[0], rng),
                          1);
  }

  try {
    service.swap_model(nullptr);
    FAIL() << "expected Error{kInvalidArgument}";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
}

TEST_F(ServiceFixture, ConcurrentSubmissionAndSwapStaysDeterministic) {
  const auto cfgs = test_cfgs(6);
  ASSERT_FALSE(cfgs.empty());

  ServiceConfig config;
  config.num_threads = 2;
  config.queue_depth = 8;  // small enough that backpressure really fires
  config.seed = 50;
  AnalysisService service(*model_a, config);

  constexpr int kSubmitters = 3;
  std::mutex results_mutex;
  // (cfg index, ticket) pairs from every submitter.
  std::vector<std::pair<std::size_t, AnalysisService::Ticket>> submitted;

  std::atomic<bool> stop_swapping{false};
  std::thread swapper([&] {
    bool use_b = true;
    while (!stop_swapping.load()) {
      service.swap_model(use_b ? *model_b : *model_a);
      use_b = !use_b;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (std::size_t i = 0; i < cfgs.size(); ++i) {
        for (;;) {
          auto ticket = service.submit(cfgs[i]);
          if (ticket.accepted()) {
            std::lock_guard<std::mutex> lock(results_mutex);
            submitted.emplace_back(i, std::move(ticket));
            break;
          }
          ASSERT_EQ(ticket.status, ErrorCode::kQueueFull);
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& submitter : submitters) submitter.join();
  stop_swapping.store(true);
  swapper.join();

  ASSERT_EQ(submitted.size(), kSubmitters * cfgs.size());
  for (auto& [cfg_index, ticket] : submitted) {
    const auto verdict = ticket.verdict.get();
    // Whichever model was current when the worker picked the request
    // up, the verdict must be *that* model's bit-exact serial answer
    // for this request id — never a torn mixture.
    math::Rng rng_a = math::Rng(50).child(ticket.id);
    math::Rng rng_b = math::Rng(50).child(ticket.id);
    const auto expected_a = (*model_a)->analyze(cfgs[cfg_index], rng_a);
    const auto expected_b = (*model_b)->analyze(cfgs[cfg_index], rng_b);
    const bool matches_a =
        verdict.adversarial == expected_a.adversarial &&
        verdict.predicted == expected_a.predicted &&
        verdict.reconstruction_error == expected_a.reconstruction_error;
    const bool matches_b =
        verdict.adversarial == expected_b.adversarial &&
        verdict.predicted == expected_b.predicted &&
        verdict.reconstruction_error == expected_b.reconstruction_error;
    EXPECT_TRUE(matches_a || matches_b) << "request " << ticket.id;
  }
  EXPECT_EQ(service.stats().completed, submitted.size());
}

TEST_F(ServiceFixture, ServeMetricsAreRecorded) {
  const auto cfgs = test_cfgs(3);
  ASSERT_FALSE(cfgs.empty());

  obs::registry().reset();
  obs::set_enabled(true);
  {
    ServiceConfig config;
    config.num_threads = 1;
    AnalysisService service(*model_a, config);
    std::vector<AnalysisService::Ticket> tickets;
    for (const auto& cfg : cfgs) {
      auto ticket = service.submit(cfg);
      ASSERT_TRUE(ticket.accepted());
      tickets.push_back(std::move(ticket));
    }
    for (auto& ticket : tickets) (void)ticket.verdict.get();
    service.shutdown(ShutdownPolicy::kDrain);
  }
  obs::set_enabled(false);
  const auto snapshot = obs::registry().snapshot();
  obs::registry().reset();

  EXPECT_EQ(snapshot.counters.at("serve.requests.accepted"), cfgs.size());
  EXPECT_EQ(snapshot.counters.at("serve.requests.completed"), cfgs.size());
  // Batch-level instrumentation: at least one drained batch, and the
  // per-batch sizes must add up to exactly the requests served.
  const auto& batch_span = snapshot.histograms.at("t/serve.batch");
  EXPECT_GE(batch_span.count, 1U);
  const auto& batch_size = snapshot.histograms.at("serve.batch.size");
  EXPECT_EQ(batch_size.count, batch_span.count);
  EXPECT_EQ(batch_size.sum, static_cast<double>(cfgs.size()));
  // Per-request instrumentation: one queue-wait and one end-to-end
  // sample per completed request.
  EXPECT_EQ(snapshot.histograms.at("serve.queue.wait").count, cfgs.size());
  EXPECT_EQ(snapshot.histograms.at("serve.request.e2e").count, cfgs.size());
  EXPECT_TRUE(snapshot.gauges.count("serve.queue.depth"));
}

TEST_F(ServiceFixture, LoadPathsCarryTypedErrorCodes) {
  try {
    (void)core::SoteriaSystem::load_file("/nonexistent/model.bin");
    FAIL() << "expected Error{kIoError}";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
  }

  std::istringstream garbage("not a model");
  try {
    (void)core::SoteriaSystem::load(garbage);
    FAIL() << "expected Error{kCorruptModel}";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptModel);
  }

  // A failed swap_model_file leaves the published model untouched.
  ServiceConfig config;
  config.num_threads = 1;
  AnalysisService service(*model_a, config);
  try {
    (void)service.swap_model_file("/nonexistent/model.bin");
    FAIL() << "expected Error{kIoError}";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
  }
  EXPECT_EQ(service.model().get(), model_a->get());
  EXPECT_EQ(service.stats().swaps, 0U);
}

}  // namespace
}  // namespace soteria::serve
